//! FMM-based Boolean 4-cycle detection (experiment E12).
//!
//! The Boolean 4-cycle query `Q□^bool() :- R(X,Y),S(Y,Z),T(Z,W),U(W,X)`
//! (Eq. 76) can be answered by two matrix products: `A = R·S` records which
//! `(x,z)` pairs are connected through some `y`, `B = T·U` records which
//! `(z,x)` pairs are connected through some `w`, and the query is true iff
//! `A` and `Bᵀ` share a `true` entry.  With fast matrix multiplication this
//! is the `O(N^{(4ω−1)/(2ω+1)})`-style strategy of Section 9.3; here the
//! products are combinatorial (bit-parallel Boolean or Strassen), so the
//! experiment compares *strategies* rather than asymptotics.

// panda-lint: allow-file(P1) -- shape detection indexes variables and
// atoms by positions the pattern match itself established.

use std::collections::HashMap;

use panda_relation::{Database, Relation, Value};

use crate::matrix::BoolMatrix;

/// Adds every row/column value of a binary relation to the two
/// dictionaries.
fn fill_dicts(rel: &Relation, rows: &mut HashMap<Value, usize>, cols: &mut HashMap<Value, usize>) {
    for row in rel.iter() {
        let next = rows.len();
        rows.entry(row[0]).or_insert(next);
        let next = cols.len();
        cols.entry(row[1]).or_insert(next);
    }
}

/// Builds the Boolean matrix of a binary relation under fixed dictionaries.
fn build_matrix(
    rel: &Relation,
    rows: &HashMap<Value, usize>,
    cols: &HashMap<Value, usize>,
) -> BoolMatrix {
    let mut m = BoolMatrix::zeros(rows.len().max(1), cols.len().max(1));
    for row in rel.iter() {
        m.set(rows[&row[0]], cols[&row[1]]);
    }
    m
}

/// Detects whether the database contains a 4-cycle
/// `R(x,y), S(y,z), T(z,w), U(w,x)` using two Boolean matrix products:
/// `A = R·S` (pairs `(x,z)` connected through `y`), `B = T·U` (pairs
/// `(z,x)` connected through `w`), and a cycle exists iff `A ∩ Bᵀ ≠ ∅`.
///
/// The relations `R`, `S`, `T`, `U` must be binary; missing relations are
/// treated as empty (no cycle).
#[must_use]
pub fn detect_four_cycle_fmm(db: &Database) -> bool {
    let empty = Relation::new(2);
    let r = db.relation("R").unwrap_or(&empty);
    let s = db.relation("S").unwrap_or(&empty);
    let t = db.relation("T").unwrap_or(&empty);
    let u = db.relation("U").unwrap_or(&empty);
    if r.is_empty() || s.is_empty() || t.is_empty() || u.is_empty() {
        return false;
    }
    // Shared dictionaries so the inner dimensions line up: X between R's
    // rows and U's columns, Y between R's columns and S's rows, Z between
    // S's columns and T's rows, W between T's columns and U's rows.
    let mut x_ids: HashMap<Value, usize> = HashMap::new();
    let mut y_ids: HashMap<Value, usize> = HashMap::new();
    let mut z_ids: HashMap<Value, usize> = HashMap::new();
    let mut w_ids: HashMap<Value, usize> = HashMap::new();
    fill_dicts(r, &mut x_ids, &mut y_ids);
    fill_dicts(s, &mut y_ids, &mut z_ids);
    fill_dicts(t, &mut z_ids, &mut w_ids);
    fill_dicts(u, &mut w_ids, &mut x_ids);
    let a = build_matrix(r, &x_ids, &y_ids).multiply(&build_matrix(s, &y_ids, &z_ids)); // X × Z through Y
    let b = build_matrix(t, &z_ids, &w_ids).multiply(&build_matrix(u, &w_ids, &x_ids)); // Z × X through W
    a.intersects(&b.transpose())
}

/// Counts the 4-cycle homomorphisms `(x,y,z,w)`… restricted to pairs: the
/// number of `(x,z)` pairs that lie on at least one 4-cycle, computed with
/// Boolean products.  Used as a cross-check in tests and benches.
#[must_use]
pub fn count_four_cycles_fmm(db: &Database) -> usize {
    let empty = Relation::new(2);
    let r = db.relation("R").unwrap_or(&empty);
    let s = db.relation("S").unwrap_or(&empty);
    let t = db.relation("T").unwrap_or(&empty);
    let u = db.relation("U").unwrap_or(&empty);
    if r.is_empty() || s.is_empty() || t.is_empty() || u.is_empty() {
        return 0;
    }
    let mut x_ids = HashMap::new();
    let mut y_ids = HashMap::new();
    let mut z_ids = HashMap::new();
    let mut w_ids = HashMap::new();
    fill_dicts(r, &mut x_ids, &mut y_ids);
    fill_dicts(s, &mut y_ids, &mut z_ids);
    fill_dicts(t, &mut z_ids, &mut w_ids);
    fill_dicts(u, &mut w_ids, &mut x_ids);
    let a = build_matrix(r, &x_ids, &y_ids).multiply(&build_matrix(s, &y_ids, &z_ids));
    let b = build_matrix(t, &z_ids, &w_ids).multiply(&build_matrix(u, &w_ids, &x_ids));
    let bt = b.transpose();
    let mut count = 0;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            if a.get(i, j) && bt.get(i, j) {
                count += 1;
            }
        }
    }
    count
}

/// Reference combinatorial detector: a straightforward hash-join pipeline
/// (`R ⋈ S` probed against `T ⋈ U`).  Used as the baseline in E12 and to
/// cross-check the FMM detector in tests.
#[must_use]
pub fn detect_four_cycle_join(db: &Database) -> bool {
    let empty = Relation::new(2);
    let r = db.relation("R").unwrap_or(&empty);
    let s = db.relation("S").unwrap_or(&empty);
    let t = db.relation("T").unwrap_or(&empty);
    let u = db.relation("U").unwrap_or(&empty);
    // x→z pairs through y.
    let mut s_by_y: HashMap<Value, Vec<Value>> = HashMap::new();
    for row in s.iter() {
        s_by_y.entry(row[0]).or_default().push(row[1]);
    }
    let mut xz: std::collections::HashSet<(Value, Value)> = std::collections::HashSet::new();
    for row in r.iter() {
        if let Some(zs) = s_by_y.get(&row[1]) {
            for &z in zs {
                xz.insert((row[0], z));
            }
        }
    }
    // z→x pairs through w, probed against xz.
    let mut u_by_w: HashMap<Value, Vec<Value>> = HashMap::new();
    for row in u.iter() {
        u_by_w.entry(row[0]).or_default().push(row[1]);
    }
    for row in t.iter() {
        if let Some(xs) = u_by_w.get(&row[1]) {
            for &x in xs {
                if xz.contains(&(x, row[0])) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn db_with_cycle() -> Database {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [5, 6]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 3], [6, 9]]));
        db.insert("T", Relation::from_rows(2, vec![[3, 4]]));
        db.insert("U", Relation::from_rows(2, vec![[4, 1]]));
        db
    }

    fn db_without_cycle() -> Database {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 3]]));
        db.insert("T", Relation::from_rows(2, vec![[3, 4]]));
        db.insert("U", Relation::from_rows(2, vec![[4, 99]]));
        db
    }

    #[test]
    fn detects_a_planted_cycle() {
        assert!(detect_four_cycle_fmm(&db_with_cycle()));
        assert!(detect_four_cycle_join(&db_with_cycle()));
        assert!(count_four_cycles_fmm(&db_with_cycle()) >= 1);
    }

    #[test]
    fn rejects_when_no_cycle_exists() {
        assert!(!detect_four_cycle_fmm(&db_without_cycle()));
        assert!(!detect_four_cycle_join(&db_without_cycle()));
        assert_eq!(count_four_cycles_fmm(&db_without_cycle()), 0);
    }

    #[test]
    fn empty_relations_mean_no_cycle() {
        let mut db = db_with_cycle();
        db.insert("T", Relation::new(2));
        assert!(!detect_four_cycle_fmm(&db));
        assert!(!detect_four_cycle_join(&db));
    }

    #[test]
    fn fmm_and_join_detectors_agree_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..20 {
            let n = 8 + round % 5;
            let edges = 10 + 3 * round;
            let mut db = Database::new();
            for name in ["R", "S", "T", "U"] {
                db.insert(
                    name,
                    Relation::from_rows(
                        2,
                        (0..edges)
                            .map(|_| [rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)]),
                    )
                    .deduped(),
                );
            }
            assert_eq!(detect_four_cycle_fmm(&db), detect_four_cycle_join(&db), "round {round}");
        }
    }
}
