//! Dense Boolean and counting matrices.

// panda-lint: allow-file(P1) -- dense matrix kernel: `(i, j)` accesses
// are bounded by the `rows`/`cols` dimensions every constructor checks.

use std::collections::HashMap;

use panda_relation::{Relation, Value};

/// A dense Boolean matrix stored as bit-packed rows (64 columns per word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BoolMatrix {
    /// Creates an all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BoolMatrix { rows, cols, words_per_row, bits: vec![0; rows * words_per_row] }
    }

    /// The number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets an entry to `true`.
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.bits[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    /// Reads an entry.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.bits[row * self.words_per_row + col / 64] & (1 << (col % 64)) != 0
    }

    /// The number of `true` entries.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Boolean matrix product `self · other` using word-parallel row
    /// OR-accumulation: for every `true` entry `(i,k)` of `self`, row `k` of
    /// `other` is OR-ed into row `i` of the result.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    #[must_use]
    pub fn multiply(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in Boolean matrix product");
        let mut out = BoolMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let out_row = i * out.words_per_row;
            for k in 0..self.cols {
                if self.get(i, k) {
                    let other_row = k * other.words_per_row;
                    for w in 0..other.words_per_row {
                        out.bits[out_row + w] |= other.bits[other_row + w];
                    }
                }
            }
        }
        out
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> BoolMatrix {
        let mut out = BoolMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                if self.get(i, j) {
                    out.set(j, i);
                }
            }
        }
        out
    }

    /// `true` iff `self` and `other` (of the same shape) share a `true`
    /// entry — used to finish cycle detection without materialising the
    /// intersection.
    #[must_use]
    pub fn intersects(&self, other: &BoolMatrix) -> bool {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }
}

/// A dense counting matrix over `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl CountMatrix {
    /// Creates an all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CountMatrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// The number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads an entry.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.data[row * self.cols + col]
    }

    /// Writes an entry.
    pub fn set(&mut self, row: usize, col: usize, value: u64) {
        self.data[row * self.cols + col] = value;
    }

    /// Naive `O(n³)` product.
    ///
    /// Arithmetic is performed modulo `2^64` (wrapping); since the true
    /// entries of a counting product fit in `u64` for all the workloads in
    /// this repository, the final result is exact.  Wrapping is required so
    /// that the intermediate differences of [`CountMatrix::multiply_strassen`]
    /// (which can be "negative" modulo `2^64`) still combine correctly.
    #[must_use]
    pub fn multiply_naive(&self, other: &CountMatrix) -> CountMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = CountMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..other.cols {
                    let cell = &mut out.data[i * out.cols + j];
                    *cell = cell.wrapping_add(a.wrapping_mul(other.get(k, j)));
                }
            }
        }
        out
    }

    /// Strassen's recursive product (ω ≈ 2.807) for square power-of-two
    /// matrices, falling back to the naive product below a cutoff or for
    /// non-square shapes.
    #[must_use]
    pub fn multiply_strassen(&self, other: &CountMatrix) -> CountMatrix {
        const CUTOFF: usize = 64;
        if self.rows != self.cols
            || other.rows != other.cols
            || self.rows != other.rows
            || !self.rows.is_power_of_two()
            || self.rows <= CUTOFF
        {
            return self.multiply_naive(other);
        }
        let n = self.rows;
        let h = n / 2;
        let sub = |m: &CountMatrix, r0: usize, c0: usize| -> CountMatrix {
            let mut s = CountMatrix::zeros(h, h);
            for i in 0..h {
                for j in 0..h {
                    s.set(i, j, m.get(r0 + i, c0 + j));
                }
            }
            s
        };
        let add = |a: &CountMatrix, b: &CountMatrix| -> CountMatrix {
            let mut s = CountMatrix::zeros(h, h);
            for i in 0..h * h {
                s.data[i] = a.data[i].wrapping_add(b.data[i]);
            }
            s
        };
        // Counting matrices are unsigned; Strassen needs subtraction, so we
        // work in wrapping arithmetic — the final results are exact because
        // the true values are non-negative and bounded.
        let sub_m = |a: &CountMatrix, b: &CountMatrix| -> CountMatrix {
            let mut s = CountMatrix::zeros(h, h);
            for i in 0..h * h {
                s.data[i] = a.data[i].wrapping_sub(b.data[i]);
            }
            s
        };
        let (a11, a12, a21, a22) =
            (sub(self, 0, 0), sub(self, 0, h), sub(self, h, 0), sub(self, h, h));
        let (b11, b12, b21, b22) =
            (sub(other, 0, 0), sub(other, 0, h), sub(other, h, 0), sub(other, h, h));
        let m1 = add(&a11, &a22).multiply_strassen(&add(&b11, &b22));
        let m2 = add(&a21, &a22).multiply_strassen(&b11);
        let m3 = a11.multiply_strassen(&sub_m(&b12, &b22));
        let m4 = a22.multiply_strassen(&sub_m(&b21, &b11));
        let m5 = add(&a11, &a12).multiply_strassen(&b22);
        let m6 = sub_m(&a21, &a11).multiply_strassen(&add(&b11, &b12));
        let m7 = sub_m(&a12, &a22).multiply_strassen(&add(&b21, &b22));
        let c11 = add(&sub_m(&add(&m1, &m4), &m5), &m7);
        let c12 = add(&m3, &m5);
        let c21 = add(&m2, &m4);
        let c22 = add(&add(&sub_m(&m1, &m2), &m3), &m6);
        let mut out = CountMatrix::zeros(n, n);
        for i in 0..h {
            for j in 0..h {
                out.set(i, j, c11.get(i, j));
                out.set(i, j + h, c12.get(i, j));
                out.set(i + h, j, c21.get(i, j));
                out.set(i + h, j + h, c22.get(i, j));
            }
        }
        out
    }
}

/// Converts a binary relation into a Boolean matrix, returning the matrix
/// together with the dictionaries mapping row values (column 0 of the
/// relation) and column values (column 1) to matrix indices.
#[must_use]
pub fn relation_to_matrix(
    rel: &Relation,
) -> (BoolMatrix, HashMap<Value, usize>, HashMap<Value, usize>) {
    assert_eq!(rel.arity(), 2, "relation_to_matrix expects a binary relation");
    let mut row_ids: HashMap<Value, usize> = HashMap::new();
    let mut col_ids: HashMap<Value, usize> = HashMap::new();
    for row in rel.iter() {
        let next = row_ids.len();
        row_ids.entry(row[0]).or_insert(next);
        let next = col_ids.len();
        col_ids.entry(row[1]).or_insert(next);
    }
    let mut m = BoolMatrix::zeros(row_ids.len().max(1), col_ids.len().max(1));
    for row in rel.iter() {
        m.set(row_ids[&row[0]], col_ids[&row[1]]);
    }
    (m, row_ids, col_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bool_matrix_basics() {
        let mut m = BoolMatrix::zeros(3, 70);
        assert_eq!(m.count_ones(), 0);
        m.set(0, 0);
        m.set(2, 69);
        assert!(m.get(0, 0));
        assert!(m.get(2, 69));
        assert!(!m.get(1, 5));
        assert_eq!(m.count_ones(), 2);
        let t = m.transpose();
        assert!(t.get(69, 2));
        assert_eq!(t.rows(), 70);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    fn bool_product_matches_definition() {
        let mut rng = StdRng::seed_from_u64(1);
        let (n, m, p) = (17, 23, 31);
        let mut a = BoolMatrix::zeros(n, m);
        let mut b = BoolMatrix::zeros(m, p);
        for i in 0..n {
            for j in 0..m {
                if rng.gen_bool(0.2) {
                    a.set(i, j);
                }
            }
        }
        for i in 0..m {
            for j in 0..p {
                if rng.gen_bool(0.2) {
                    b.set(i, j);
                }
            }
        }
        let c = a.multiply(&b);
        for i in 0..n {
            for j in 0..p {
                let expected = (0..m).any(|k| a.get(i, k) && b.get(k, j));
                assert_eq!(c.get(i, j), expected, "({i},{j})");
            }
        }
    }

    #[test]
    fn intersects_detects_overlap() {
        let mut a = BoolMatrix::zeros(4, 4);
        let mut b = BoolMatrix::zeros(4, 4);
        a.set(1, 2);
        b.set(2, 1);
        assert!(!a.intersects(&b));
        b.set(1, 2);
        assert!(a.intersects(&b));
    }

    #[test]
    fn strassen_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 128;
        let mut a = CountMatrix::zeros(n, n);
        let mut b = CountMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, rng.gen_range(0..4));
                b.set(i, j, rng.gen_range(0..4));
            }
        }
        let naive = a.multiply_naive(&b);
        let strassen = a.multiply_strassen(&b);
        assert_eq!(naive, strassen);
    }

    #[test]
    fn strassen_falls_back_for_odd_shapes() {
        let a = CountMatrix::zeros(3, 5);
        let b = CountMatrix::zeros(5, 2);
        let c = a.multiply_strassen(&b);
        assert_eq!((c.rows(), c.cols()), (3, 2));
    }

    #[test]
    fn relation_conversion_round_trips() {
        let rel = Relation::from_rows(2, vec![[10, 20], [10, 30], [40, 20]]);
        let (m, rows, cols) = relation_to_matrix(&rel);
        assert_eq!(m.count_ones(), 3);
        assert!(m.get(rows[&10], cols[&30]));
        assert!(!m.get(rows[&40], cols[&30]));
    }
}
