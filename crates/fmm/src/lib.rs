//! Matrix-multiplication substrate for the ω-submodular width extension
//! (Section 9.3 of the paper).
//!
//! The paper adds matrix multiplication as an extra operator to PANDA's
//! plan space: eliminating a variable `Y` from two binary atoms `R(X,Y)`,
//! `S(Y,Z)` can be done either by a combinatorial join (cost `h(XYZ)`) or
//! by multiplying the Boolean adjacency matrices (cost `MM(X;Y;Z)`,
//! Eq. 78).  This crate provides the data-plane side of that choice:
//!
//! * [`BoolMatrix`] — a dense bit-packed Boolean matrix with word-parallel
//!   multiplication,
//! * [`CountMatrix`] — a dense `u64` counting matrix with naive and
//!   Strassen multiplication,
//! * [`relation_to_matrix`] / [`detect_four_cycle_fmm`] — converting binary
//!   relations to matrices and the FMM-based Boolean 4-cycle detector that
//!   experiment E12 compares against the combinatorial evaluators,
//! * the ω-subw *values* themselves live in `panda_entropy::mm`.

#![forbid(unsafe_code)]
pub mod detect;
pub mod matrix;

pub use detect::{count_four_cycles_fmm, detect_four_cycle_fmm, detect_four_cycle_join};
pub use matrix::{relation_to_matrix, BoolMatrix, CountMatrix};
