//! Differential and edge-case tests for the two simplex engines.
//!
//! The revised engine ([`panda_lp::SimplexEngine::Revised`]) must return
//! bit-for-bit the same outcome — objective, primal point *and* dual
//! values — as the dense-tableau reference on every program, because the
//! entropy crate reads Shannon-flow certificates straight off the duals.
//! These tests pin that equivalence on textbook cycling/degenerate LPs,
//! infeasible and unbounded programs, warm-started solves, and random
//! small LPs via proptest.

use panda_lp::{ConstraintOp, LinearProgram, LpError, LpOutcome};
use panda_rational::Rat;
use proptest::collection;
use proptest::prelude::*;

fn r(n: i128) -> Rat {
    Rat::from_int(n)
}

/// Solves with both engines and asserts bitwise agreement; returns the
/// shared outcome.
fn solve_both(lp: &LinearProgram) -> LpOutcome {
    let dense = lp.solve_dense().expect("dense solve");
    let revised = lp.solve().expect("revised solve");
    assert_eq!(dense, revised, "engines disagree");
    if let LpOutcome::Optimal(s) = &revised {
        assert!(
            s.certificate_violations(lp).is_empty(),
            "invalid certificate: {:?}",
            s.certificate_violations(lp)
        );
    }
    revised
}

/// Beale's classic cycling example: Dantzig pricing with naive tie-breaks
/// cycles forever on this LP; the automatic switch to Bland's rule must
/// terminate it, in both engines, at the optimum 1/20.
#[test]
fn beale_cycling_example_terminates_at_the_known_optimum() {
    let mut lp = LinearProgram::new(4);
    lp.set_objective(vec![Rat::new(3, 4), r(-150), Rat::new(1, 50), r(-6)]);
    lp.add_constraint(
        vec![(0, Rat::new(1, 4)), (1, r(-60)), (2, Rat::new(-1, 25)), (3, r(9))],
        ConstraintOp::Le,
        Rat::ZERO,
    );
    lp.add_constraint(
        vec![(0, Rat::new(1, 2)), (1, r(-90)), (2, Rat::new(-1, 50)), (3, r(3))],
        ConstraintOp::Le,
        Rat::ZERO,
    );
    lp.add_constraint(vec![(2, Rat::ONE)], ConstraintOp::Le, Rat::ONE);
    let LpOutcome::Optimal(s) = solve_both(&lp) else {
        panic!("Beale's example has a finite optimum");
    };
    assert_eq!(s.objective, Rat::new(1, 20));
    assert_eq!(s.primal, vec![Rat::new(1, 25), Rat::ZERO, Rat::ONE, Rat::ZERO]);
}

/// A heavily degenerate LP: every pairwise-difference constraint passes
/// through the origin, so most pivots make no progress.  Both engines must
/// agree pivot-for-pivot and terminate.
#[test]
fn degenerate_origin_fan_terminates_identically() {
    let n = 4usize;
    let mut lp = LinearProgram::new(n);
    lp.set_objective((0..n).map(|i| r(i as i128 + 1)).collect());
    for a in 0..n {
        for b in 0..n {
            if a != b {
                lp.add_constraint(vec![(a, Rat::ONE), (b, -Rat::ONE)], ConstraintOp::Le, Rat::ZERO);
            }
        }
    }
    lp.add_constraint((0..n).map(|i| (i, Rat::ONE)).collect(), ConstraintOp::Le, r(8));
    let LpOutcome::Optimal(s) = solve_both(&lp) else { panic!("bounded and feasible") };
    // All variables forced equal, summing to 8.
    assert_eq!(s.objective, r(20));
}

#[test]
fn infeasible_equalities_detected_by_both_engines() {
    let mut lp = LinearProgram::new(2);
    lp.set_objective(vec![Rat::ONE, Rat::ONE]);
    lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Eq, r(5));
    lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Eq, r(3));
    assert_eq!(solve_both(&lp), LpOutcome::Infeasible);
}

#[test]
fn infeasible_ge_band_detected_by_both_engines() {
    let mut lp = LinearProgram::new(1);
    lp.set_objective(vec![Rat::ONE]);
    lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Ge, r(7));
    lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, r(2));
    assert_eq!(solve_both(&lp), LpOutcome::Infeasible);
}

#[test]
fn unbounded_with_ge_constraints_detected_by_both_engines() {
    let mut lp = LinearProgram::new(2);
    lp.set_objective(vec![Rat::ONE, Rat::ONE]);
    lp.add_constraint(vec![(0, Rat::ONE), (1, -Rat::ONE)], ConstraintOp::Ge, r(1));
    assert_eq!(solve_both(&lp), LpOutcome::Unbounded);
}

#[test]
fn iteration_limit_is_an_error_not_a_panic() {
    // The limit cannot be hit by a real program (Bland's rule terminates),
    // so pin the error type's shape and rendering instead.
    let err = LpError::IterationLimit(200_000);
    assert_eq!(err.to_string(), "simplex exceeded the iteration limit of 200000");
    assert_eq!(err.clone(), LpError::IterationLimit(200_000));
}

#[test]
fn warm_start_skips_phase_one_and_matches_the_cold_objective() {
    // Two LPs with identical constraints, different objectives — the shape
    // `fhtw` produces when it re-targets the same Γ_n scaffold per bag.
    let build = |obj: Vec<Rat>| {
        let mut lp = LinearProgram::new(3);
        lp.set_objective(obj);
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Ge, r(2));
        lp.add_constraint(
            vec![(0, Rat::ONE), (1, Rat::ONE), (2, Rat::ONE)],
            ConstraintOp::Le,
            r(6),
        );
        lp.add_constraint(vec![(1, Rat::ONE), (2, Rat::ONE)], ConstraintOp::Le, r(4));
        lp
    };
    let first = build(vec![Rat::ONE, Rat::ZERO, Rat::ZERO]);
    let (outcome, basis) = first.solve_warm(None).unwrap();
    let cold_first = first.solve().unwrap();
    assert_eq!(outcome, cold_first, "warm API without a hint is a cold solve");
    let basis = basis.expect("optimal solve returns a basis");

    let second = build(vec![Rat::ZERO, Rat::ZERO, Rat::ONE]);
    let (warm, _) = second.solve_warm(Some(&basis)).unwrap();
    let warm = warm.expect_optimal("warm");
    let cold = second.solve().unwrap().expect_optimal("cold");
    // A degenerate optimum may pick a different basis, but the optimal
    // value is unique and the certificate must still verify.
    assert_eq!(warm.objective, cold.objective);
    assert!(warm.certificate_violations(&second).is_empty());
}

#[test]
fn incompatible_warm_hint_falls_back_to_the_cold_path() {
    let mut small = LinearProgram::new(1);
    small.set_objective(vec![Rat::ONE]);
    small.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, r(3));
    let (_, basis) = small.solve_warm(None).unwrap();
    let basis = basis.unwrap();

    let mut other = LinearProgram::new(2);
    other.set_objective(vec![Rat::ONE, Rat::ONE]);
    other.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Le, r(5));
    let (with_hint, _) = other.solve_warm(Some(&basis)).unwrap();
    assert_eq!(with_hint, other.solve().unwrap(), "stale hint must not change the result");
}

#[test]
fn warm_hint_with_a_basic_artificial_is_rejected() {
    // A duplicate equality leaves an artificial basic (at zero) on the
    // redundant row, so the returned basis contains an artificial column.
    // Fed to a same-shaped program whose second row is *independent*, a
    // naive install would let phase 2 drive that artificial positive and
    // report an infeasible point as optimal; the hint must be rejected.
    let mut first = LinearProgram::new(2);
    first.set_objective(vec![Rat::ZERO, Rat::ONE]);
    first.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Eq, r(2));
    first.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Eq, r(2));
    let (_, basis) = first.solve_warm(None).unwrap();

    let mut second = LinearProgram::new(2);
    second.set_objective(vec![Rat::ZERO, Rat::ONE]);
    second.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Eq, r(2));
    second.add_constraint(vec![(0, Rat::ONE), (1, -Rat::ONE)], ConstraintOp::Eq, r(2));
    let (warm, _) = second.solve_warm(basis.as_ref()).unwrap();
    let cold = second.solve().unwrap();
    assert_eq!(warm, cold);
    let s = warm.expect_optimal("x=2, y=0 is the unique feasible point");
    assert_eq!(s.primal, vec![r(2), Rat::ZERO]);
}

#[test]
fn infeasible_warm_hint_falls_back_to_the_cold_path() {
    // Same shape, but the carried basis is infeasible for the new rhs.
    let build = |rhs: i128| {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![Rat::ONE, Rat::ZERO]);
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Ge, r(rhs));
        lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, r(10));
        lp.add_constraint(vec![(1, Rat::ONE)], ConstraintOp::Le, r(10));
        lp
    };
    let (_, basis) = build(1).solve_warm(None).unwrap();
    let loose = build(-30); // flips the row normalisation: hint may not fit
    let (warm, _) = loose.solve_warm(basis.as_ref()).unwrap();
    assert_eq!(warm, loose.solve().unwrap());
}

proptest! {
    // Random small LPs: both engines must return bitwise-identical
    // outcomes (objective, primal and duals), and optimal certificates
    // must pass the full audit — primal feasibility, dual feasibility,
    // sign conventions and strong duality.
    #[test]
    fn prop_engines_agree_bitwise_on_random_lps(
        objective in collection::vec(-3i128..4, 1..4),
        rows in collection::vec(
            (0usize..3, -6i128..10, collection::vec(-3i128..4, 1..5)),
            1..7,
        ),
    ) {
        let n = objective.len();
        let mut lp = LinearProgram::new(n);
        lp.set_objective(objective.iter().map(|&c| Rat::from_int(c)).collect());
        for (op, rhs, coeffs) in &rows {
            let op = match op {
                0 => ConstraintOp::Le,
                1 => ConstraintOp::Ge,
                _ => ConstraintOp::Eq,
            };
            let coeffs: Vec<(usize, Rat)> = coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| (i % n, Rat::from_int(c)))
                .collect();
            lp.add_constraint(coeffs, op, Rat::from_int(*rhs));
        }
        let dense = lp.solve_dense().unwrap();
        let revised = lp.solve().unwrap();
        prop_assert_eq!(&dense, &revised);
        if let LpOutcome::Optimal(s) = revised {
            let violations = s.certificate_violations(&lp);
            prop_assert!(violations.is_empty(), "bad certificate: {violations:?}");
        }
    }

    // Warm-starting from a random compatible basis hint never changes the
    // optimal objective value.
    #[test]
    fn prop_warm_start_preserves_the_objective(
        objective in collection::vec(-3i128..4, 2..4),
        second_objective in collection::vec(-3i128..4, 2..4),
        rows in collection::vec(
            (0usize..2, 0i128..10, collection::vec(-2i128..4, 1..5)),
            1..6,
        ),
    ) {
        let n = objective.len().min(second_objective.len());
        let build = |obj: &[i128]| {
            let mut lp = LinearProgram::new(n);
            lp.set_objective(obj.iter().take(n).map(|&c| Rat::from_int(c)).collect());
            for (op, rhs, coeffs) in &rows {
                let op = if *op == 0 { ConstraintOp::Le } else { ConstraintOp::Ge };
                let coeffs: Vec<(usize, Rat)> = coeffs
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (i % n, Rat::from_int(c)))
                    .collect();
                lp.add_constraint(coeffs, op, Rat::from_int(*rhs));
            }
            lp
        };
        let first = build(&objective);
        let (_, basis) = first.solve_warm(None).unwrap();
        let second = build(&second_objective);
        let (warm, _) = second.solve_warm(basis.as_ref()).unwrap();
        let cold = second.solve().unwrap();
        match (warm, cold) {
            (LpOutcome::Optimal(w), LpOutcome::Optimal(c)) => {
                prop_assert_eq!(w.objective, c.objective);
                prop_assert!(w.certificate_violations(&second).is_empty());
            }
            (w, c) => prop_assert_eq!(w, c),
        }
    }
}
