//! The sparse revised simplex method over exact rationals.
//!
//! This engine solves the same standard form as the dense tableau in
//! [`crate::simplex`] and follows the *identical* pivot rules — the same
//! two-phase structure, the same Dantzig pricing with the same switch to
//! Bland's rule, the same ratio-test tie-breaking, the same
//! artificial-elimination pass between the phases.  Because every pivot
//! decision is made on exact rational quantities that both engines compute
//! identically, the two visit the same sequence of bases and return
//! bit-for-bit identical optima and duals; the dense tableau is kept as the
//! auditable reference implementation (see
//! [`LinearProgram::solve_dense`](crate::LinearProgram::solve_dense)).
//!
//! What changes is the representation, and with it the per-pivot cost:
//!
//! * the constraint matrix is stored as **sparse columns**
//!   (`Vec<(row, Rat)>`) and never modified — the polymatroid LPs this
//!   workspace produces have 2–4 nonzeros per row, so `nnz(A) ≈ 4m` while
//!   the dense tableau is `m × (n + m)`,
//! * the basis inverse is kept in **product form**: a dense snapshot
//!   `B₀⁻¹` from the last refactorisation plus one sparse *eta* vector per
//!   pivot since, applied by [`BasisInverse::ftran`]/[`BasisInverse::btran`],
//! * pricing computes the duals `y = c_B B⁻¹` with one BTRAN and then one
//!   sparse dot product per column, instead of updating a dense
//!   reduced-cost row against a dense pivot row,
//! * the basic solution `x_B = B⁻¹ b` is updated incrementally per pivot.
//!
//! The eta file is periodically collapsed ([`BasisInverse::refactor`]) by
//! exactly inverting the current basis matrix with Gauss–Jordan
//! elimination, which bounds the FTRAN/BTRAN cost and keeps the rational
//! entries at tableau-entry magnitudes (quotients of basis subdeterminants).

// panda-lint: allow-file(P1) -- revised-simplex kernel: basis, eta and
// column indices are invariants of the pivoting automaton (every index
// is minted by the same iteration that sized its vector), and the
// overflow-guard expects are the crate's loud-abort policy.

use panda_rational::Rat;

use crate::budget::PivotBudget;
use crate::problem::{Basis, LinearProgram};
use crate::simplex::{Phase, RowInfo, StandardForm, ITERATION_LIMIT};
use crate::solution::{LpOutcome, Solution};
use crate::LpError;

/// Collapse the eta file into a fresh dense `B⁻¹` snapshot after this many
/// pivots.  Tuned for the workspace's polymatroid LPs (~100 rows): long
/// enough that the `O(m³)` refactorisation amortises away, short enough
/// that FTRAN/BTRAN stay proportional to `m`.
const REFACTOR_EVERY: usize = 64;

/// One pivot's eta vector.  If `w = B_old⁻¹ a_entering` and the pivot row
/// is `r`, then `B_new = B_old · E` with `E = I + (w − e_r) e_rᵀ`, and
/// `E⁻¹` is applied in `O(nnz(w))`.
struct Eta {
    /// The pivot row `r`.
    row: usize,
    /// Non-zero entries of `w`, including the pivot element `(r, w_r)`.
    entries: Vec<(usize, Rat)>,
    /// The pivot element `w_r`, cached.
    pivot: Rat,
}

/// Product-form representation of the basis inverse:
/// `B⁻¹ = E_k⁻¹ ⋯ E_1⁻¹ B₀⁻¹`.
struct BasisInverse {
    m: usize,
    /// Dense `B₀⁻¹` from the last refactorisation; `None` means identity
    /// (the initial all-slack/artificial basis).
    base: Option<Vec<Vec<Rat>>>,
    etas: Vec<Eta>,
}

impl BasisInverse {
    fn identity(m: usize) -> Self {
        BasisInverse { m, base: None, etas: Vec::new() }
    }

    /// FTRAN: `v ← B⁻¹ v`, skipping etas whose pivot-row entry is zero.
    fn ftran(&self, v: &mut [Rat]) {
        if let Some(base) = &self.base {
            let mut out = vec![Rat::ZERO; self.m];
            for (j, &vj) in v.iter().enumerate() {
                if vj.is_zero() {
                    continue;
                }
                for (i, out_i) in out.iter_mut().enumerate() {
                    let b = base[i][j];
                    if !b.is_zero() {
                        *out_i += b * vj;
                    }
                }
            }
            v.copy_from_slice(&out);
        }
        for eta in &self.etas {
            let vr = v[eta.row];
            if vr.is_zero() {
                continue;
            }
            let t = vr / eta.pivot;
            for &(i, w) in &eta.entries {
                if i == eta.row {
                    v[i] = t;
                } else {
                    v[i] -= w * t;
                }
            }
        }
    }

    /// BTRAN: `y ← y B⁻¹` (etas applied newest-first, then the snapshot).
    fn btran(&self, y: &mut [Rat]) {
        for eta in self.etas.iter().rev() {
            let mut acc = Rat::ZERO;
            for &(i, w) in &eta.entries {
                if i != eta.row && !y[i].is_zero() {
                    acc += y[i] * w;
                }
            }
            y[eta.row] = (y[eta.row] - acc) / eta.pivot;
        }
        if let Some(base) = &self.base {
            let mut out = vec![Rat::ZERO; self.m];
            for (i, &yi) in y.iter().enumerate() {
                if yi.is_zero() {
                    continue;
                }
                for (j, out_j) in out.iter_mut().enumerate() {
                    let b = base[i][j];
                    if !b.is_zero() {
                        *out_j += yi * b;
                    }
                }
            }
            y.copy_from_slice(&out);
        }
    }

    /// Collapses the eta file: exactly inverts the current basis matrix
    /// (given by sparse columns) with Gauss–Jordan elimination and installs
    /// the result as the new snapshot.  Returns `false` (leaving the state
    /// untouched) if the columns are singular, which can only happen for a
    /// caller-supplied warm-start basis — pivoting preserves nonsingularity.
    fn refactor(&mut self, basis_columns: &[&[(usize, Rat)]]) -> bool {
        let m = self.m;
        let mut a = vec![vec![Rat::ZERO; m]; m];
        for (col, entries) in basis_columns.iter().enumerate() {
            for &(row, v) in *entries {
                a[row][col] = v;
            }
        }
        let mut inv: Vec<Vec<Rat>> = (0..m)
            .map(|i| {
                let mut row = vec![Rat::ZERO; m];
                row[i] = Rat::ONE;
                row
            })
            .collect();
        for col in 0..m {
            let Some(p) = (col..m).find(|&r| !a[r][col].is_zero()) else {
                return false;
            };
            a.swap(col, p);
            inv.swap(col, p);
            let d = a[col][col].recip();
            if d != Rat::ONE {
                for v in &mut a[col] {
                    if !v.is_zero() {
                        *v *= d;
                    }
                }
                for v in &mut inv[col] {
                    if !v.is_zero() {
                        *v *= d;
                    }
                }
            }
            // The pivot row is final at this point; clone it once per
            // column, not once per eliminated row.
            let (pivot_row_a, pivot_row_inv) = (a[col].clone(), inv[col].clone());
            for r in 0..m {
                if r == col {
                    continue;
                }
                let factor = a[r][col];
                if factor.is_zero() {
                    continue;
                }
                for (j, &pv) in pivot_row_a.iter().enumerate() {
                    if !pv.is_zero() {
                        a[r][j] -= factor * pv;
                    }
                }
                for (j, &pv) in pivot_row_inv.iter().enumerate() {
                    if !pv.is_zero() {
                        inv[r][j] -= factor * pv;
                    }
                }
            }
        }
        self.base = Some(inv);
        self.etas.clear();
        true
    }
}

/// The working state of a revised-simplex solve.
pub(crate) struct RevisedSimplex<'a> {
    lp: &'a LinearProgram,
    /// Sparse columns of the standard-form matrix, `num_cols` of them.
    cols: Vec<Vec<(usize, Rat)>>,
    /// Normalised (non-negative) right-hand side `b`.
    rhs: Vec<Rat>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// `in_basis[j]` iff column `j` is currently basic.
    in_basis: Vec<bool>,
    /// Current basic values `x_B = B⁻¹ b`, maintained incrementally.
    x_b: Vec<Rat>,
    inv: BasisInverse,
    num_cols: usize,
    num_structural: usize,
    /// `is_artificial[j]` iff column `j` is an artificial variable.
    is_artificial: Vec<bool>,
    has_artificials: bool,
    row_info: Vec<RowInfo>,
}

impl<'a> RevisedSimplex<'a> {
    pub(crate) fn new(lp: &'a LinearProgram) -> Self {
        // Both engines are built from the one shared normalisation, so
        // their column layouts — and hence their pivot paths — cannot
        // drift apart.
        let form = StandardForm::new(lp);
        let m = lp.num_constraints();
        let mut is_artificial = vec![false; form.num_cols];
        for &a in &form.artificial_cols {
            is_artificial[a] = true;
        }
        let mut in_basis = vec![false; form.num_cols];
        for &b in &form.basis {
            in_basis[b] = true;
        }
        RevisedSimplex {
            lp,
            cols: form.cols,
            x_b: form.rhs.clone(),
            rhs: form.rhs,
            basis: form.basis,
            in_basis,
            inv: BasisInverse::identity(m),
            num_cols: form.num_cols,
            num_structural: lp.num_vars(),
            has_artificials: !form.artificial_cols.is_empty(),
            is_artificial,
            row_info: form.row_info,
        }
    }

    pub(crate) fn run(self) -> Result<LpOutcome, LpError> {
        self.run_warm(None).map(|(outcome, _)| outcome)
    }

    pub(crate) fn run_warm(
        self,
        hint: Option<&Basis>,
    ) -> Result<(LpOutcome, Option<Basis>), LpError> {
        self.run_warm_budgeted(hint, None)
    }

    /// Like [`RevisedSimplex::run`], but optionally starting phase 2
    /// directly from a carried-over basis (see
    /// [`LinearProgram::solve_warm`]), and returning the final basis for
    /// the next solve in the family.
    ///
    /// When a [`PivotBudget`] is supplied, every pivot of both phases
    /// consumes one unit and the solve aborts with
    /// [`LpError::PivotBudgetExhausted`] once the budget runs out.  The
    /// post-phase-1 artificial-elimination pass is bookkeeping (at most one
    /// degenerate pivot per redundant row, `O(m)` in total) and is not
    /// charged, so budgeted and unbudgeted solves that finish visit the
    /// identical basis sequence.
    pub(crate) fn run_warm_budgeted(
        mut self,
        hint: Option<&Basis>,
        mut budget: Option<&mut PivotBudget>,
    ) -> Result<(LpOutcome, Option<Basis>), LpError> {
        let warm = hint.is_some_and(|h| self.try_install_basis(h));
        if !warm {
            if let Some(outcome) = self.phase_one(budget.as_deref_mut())? {
                return Ok((outcome, None));
            }
        }

        // Phase 2: optimise the real objective.
        let mut cost = vec![Rat::ZERO; self.num_cols];
        cost[..self.num_structural].copy_from_slice(self.lp.objective());
        match self.optimize(&cost, /*bar_artificials=*/ true, budget)? {
            Phase::Unbounded => Ok((LpOutcome::Unbounded, None)),
            Phase::Optimal => {
                let objective = self.current_objective(&cost);
                let primal = self.extract_primal();
                let duals = self.extract_duals(&cost);
                let basis = Basis { cols: self.basis.clone(), num_cols: self.num_cols };
                Ok((LpOutcome::Optimal(Solution { objective, primal, duals }), Some(basis)))
            }
        }
    }

    /// Attempts to install a warm-start basis: the hint must have the same
    /// standard-form shape, name each row a distinct *non-artificial*
    /// column, be nonsingular, and be exactly feasible (`B⁻¹b ≥ 0`).
    /// Returns `false` — leaving the initial all-slack/artificial state
    /// intact — on any mismatch.
    ///
    /// Hints containing artificial columns are rejected outright: a hint's
    /// basic artificial sat at zero on a *redundant* row of the program it
    /// came from, but the same row of this program may be independent, and
    /// phase 2 (which skips the phase-1 machinery on a warm start) could
    /// then legally pivot the artificial to a positive value — i.e. report
    /// an infeasible point as optimal.  Artificial-free feasible bases
    /// cannot reach artificials later (they are barred from entering), so
    /// feasibility of the original rows is preserved pivot by pivot.
    fn try_install_basis(&mut self, hint: &Basis) -> bool {
        let m = self.basis.len();
        if hint.num_cols != self.num_cols || hint.cols.len() != m {
            return false;
        }
        let mut seen = vec![false; self.num_cols];
        for &col in &hint.cols {
            if col >= self.num_cols || seen[col] || self.is_artificial[col] {
                return false;
            }
            seen[col] = true;
        }
        let basis_columns: Vec<&[(usize, Rat)]> =
            hint.cols.iter().map(|&b| self.cols[b].as_slice()).collect();
        let mut inv = BasisInverse::identity(m);
        if !inv.refactor(&basis_columns) {
            return false;
        }
        let mut x_b = self.rhs.clone();
        inv.ftran(&mut x_b);
        if x_b.iter().any(Rat::is_negative) {
            return false;
        }
        self.inv = inv;
        self.x_b = x_b;
        self.in_basis = vec![false; self.num_cols];
        for &col in &hint.cols {
            self.in_basis[col] = true;
        }
        self.basis = hint.cols.clone();
        true
    }

    /// Runs phase 1 (when artificials exist), returning `Some(Infeasible)`
    /// to short-circuit or `None` to proceed to phase 2.
    fn phase_one(
        &mut self,
        budget: Option<&mut PivotBudget>,
    ) -> Result<Option<LpOutcome>, LpError> {
        if self.has_artificials {
            let mut phase1_cost = vec![Rat::ZERO; self.num_cols];
            for (j, cost) in phase1_cost.iter_mut().enumerate() {
                if self.is_artificial[j] {
                    *cost = -Rat::ONE;
                }
            }
            let outcome = self.optimize(&phase1_cost, /*bar_artificials=*/ false, budget)?;
            debug_assert!(
                !matches!(outcome, Phase::Unbounded),
                "phase 1 objective is bounded above by zero"
            );
            let phase1_value = self.current_objective(&phase1_cost);
            if phase1_value.is_negative() {
                return Ok(Some(LpOutcome::Infeasible));
            }
            self.pivot_out_basic_artificials();
        }
        Ok(None)
    }

    /// Runs the simplex iterations for the given cost vector, charging one
    /// unit of `budget` (when one is supplied) per pivot applied.
    fn optimize(
        &mut self,
        cost: &[Rat],
        bar_artificials: bool,
        mut budget: Option<&mut PivotBudget>,
    ) -> Result<Phase, LpError> {
        let m = self.basis.len();
        let bland_threshold = 4 * (m + self.num_cols) + 64;
        for iteration in 0..ITERATION_LIMIT {
            let use_bland = iteration >= bland_threshold;
            let y = self.duals_vector(cost);
            let entering = self.choose_entering(cost, &y, bar_artificials, use_bland);
            let Some(entering) = entering else {
                return Ok(Phase::Optimal);
            };
            let w = self.transformed_column(entering);
            let Some(leaving_row) = self.choose_leaving(&w) else {
                return Ok(Phase::Unbounded);
            };
            if let Some(b) = budget.as_deref_mut() {
                if b.is_cancelled() {
                    return Err(LpError::Cancelled);
                }
                if !b.consume() {
                    return Err(LpError::PivotBudgetExhausted { limit: b.limit() });
                }
            }
            self.pivot(leaving_row, entering, &w);
        }
        Err(LpError::IterationLimit(ITERATION_LIMIT))
    }

    /// The simplex multipliers `y = c_B B⁻¹` (one BTRAN).
    fn duals_vector(&self, cost: &[Rat]) -> Vec<Rat> {
        let mut y: Vec<Rat> = self.basis.iter().map(|&b| cost[b]).collect();
        self.inv.btran(&mut y);
        y
    }

    /// The reduced cost `d_j = c_j − y · a_j` of one column (sparse dot).
    fn reduced_cost(&self, cost: &[Rat], y: &[Rat], j: usize) -> Rat {
        let mut d = cost[j];
        for &(i, v) in &self.cols[j] {
            if !y[i].is_zero() {
                d -= y[i] * v;
            }
        }
        d
    }

    /// Entering-column choice, mirroring the dense engine: Dantzig's
    /// largest-reduced-cost rule (first index on ties) with a switch to
    /// Bland's smallest-index rule.  Basic columns are skipped outright —
    /// their reduced cost is identically zero, never positive.
    fn choose_entering(
        &self,
        cost: &[Rat],
        y: &[Rat],
        bar_artificials: bool,
        use_bland: bool,
    ) -> Option<usize> {
        let mut best: Option<(usize, Rat)> = None;
        for j in 0..self.num_cols {
            if self.in_basis[j] || (bar_artificials && self.is_artificial[j]) {
                continue;
            }
            let d = self.reduced_cost(cost, y, j);
            if !d.is_positive() {
                continue;
            }
            if use_bland {
                return Some(j);
            }
            match &best {
                Some((_, v)) if *v >= d => {}
                _ => best = Some((j, d)),
            }
        }
        best.map(|(j, _)| j)
    }

    /// Ratio test over `w = B⁻¹ a_entering`, with the dense engine's
    /// tie-break: smallest ratio, then smallest basic-variable index.
    fn choose_leaving(&self, w: &[Rat]) -> Option<usize> {
        let mut best: Option<(usize, Rat)> = None;
        for (i, coeff) in w.iter().enumerate() {
            if coeff.is_positive() {
                let ratio = self.x_b[i] / *coeff;
                let better = match &best {
                    None => true,
                    Some((row, r)) => {
                        ratio < *r || (ratio == *r && self.basis[i] < self.basis[*row])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// `B⁻¹ a_j` (one FTRAN of the sparse column scattered dense).
    fn transformed_column(&self, j: usize) -> Vec<Rat> {
        let mut w = vec![Rat::ZERO; self.basis.len()];
        for &(i, v) in &self.cols[j] {
            w[i] = v;
        }
        self.inv.ftran(&mut w);
        w
    }

    /// Applies one pivot: updates `x_B`, the basis, and the eta file, and
    /// refactorises when the file grows past [`REFACTOR_EVERY`].
    fn pivot(&mut self, row: usize, col: usize, w: &[Rat]) {
        let pivot = w[row];
        debug_assert!(!pivot.is_zero(), "pivot element must be non-zero");
        let t = self.x_b[row] / pivot;
        for (i, wi) in w.iter().enumerate() {
            if i == row {
                self.x_b[i] = t;
            } else if !wi.is_zero() && !t.is_zero() {
                self.x_b[i] -= *wi * t;
            }
        }
        let entries: Vec<(usize, Rat)> =
            w.iter().enumerate().filter(|(_, v)| !v.is_zero()).map(|(i, v)| (i, *v)).collect();
        self.inv.etas.push(Eta { row, entries, pivot });
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        if self.inv.etas.len() >= REFACTOR_EVERY {
            let basis_columns: Vec<&[(usize, Rat)]> =
                self.basis.iter().map(|&b| self.cols[b].as_slice()).collect();
            self.inv.refactor(&basis_columns);
            debug_assert_eq!(self.x_b, {
                let mut v = self.rhs.clone();
                self.inv.ftran(&mut v);
                v
            });
        }
    }

    /// Removes artificial variables from the basis after phase 1, mirroring
    /// the dense engine: for each such row, pivot on the first non-artificial
    /// column with a non-zero entry in the row (read off via one BTRAN of
    /// the row's unit vector).  Rows whose artificial cannot be pivoted out
    /// are redundant and keep the artificial basic at value zero.
    fn pivot_out_basic_artificials(&mut self) {
        let m = self.basis.len();
        for row in 0..m {
            if !self.is_artificial[self.basis[row]] {
                continue;
            }
            let mut rho = vec![Rat::ZERO; m];
            rho[row] = Rat::ONE;
            self.inv.btran(&mut rho);
            let col = (0..self.num_cols).find(|&j| {
                if self.is_artificial[j] {
                    return false;
                }
                let mut entry = Rat::ZERO;
                for &(i, v) in &self.cols[j] {
                    if !rho[i].is_zero() {
                        entry += rho[i] * v;
                    }
                }
                !entry.is_zero()
            });
            if let Some(col) = col {
                let w = self.transformed_column(col);
                self.pivot(row, col, &w);
            }
        }
    }

    fn current_objective(&self, cost: &[Rat]) -> Rat {
        self.basis
            .iter()
            .zip(&self.x_b)
            .filter(|(&b, _)| !cost[b].is_zero())
            .map(|(&b, x)| cost[b] * *x)
            .sum()
    }

    fn extract_primal(&self) -> Vec<Rat> {
        let mut primal = vec![Rat::ZERO; self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                primal[b] = self.x_b[i];
            }
        }
        primal
    }

    /// Recovers the dual values `y = c_B B⁻¹` directly from one BTRAN; the
    /// sign is flipped back for rows that were normalised by −1.
    fn extract_duals(&self, cost: &[Rat]) -> Vec<Rat> {
        let y = self.duals_vector(cost);
        self.row_info
            .iter()
            .enumerate()
            .map(|(i, info)| if info.flipped { -y[i] } else { y[i] })
            .collect()
    }
}
