//! An exact linear-programming solver for `panda-rs`.
//!
//! Every width notion in the paper — the polymatroid bound (Theorem 4.1),
//! the fractional hypertree width (Eq. 22), the submodular width (Eq. 41)
//! and the ω-submodular width (Sec. 9.3) — is a small linear program over
//! the polymatroid cone Γ_n.  Their *dual* optimal solutions are the
//! Shannon-flow inequalities (Lemma 6.1) from which PANDA derives its query
//! plans, so the duals must be exact rational numbers, not floats.
//!
//! This crate implements a two-phase primal simplex method over
//! [`panda_rational::Rat`]:
//!
//! * maximisation problems with non-negative variables,
//! * `≤`, `≥` and `=` constraints with arbitrary right-hand sides,
//! * Dantzig pricing with an automatic switch to Bland's rule so the many
//!   degenerate rows of polymatroid LPs cannot cause cycling,
//! * exact dual values recovered by solving `Bᵀy = c_B` over the final
//!   basis, with the sign conventions documented on [`Solution::duals`].
//!
//! Two interchangeable engines implement the method (see
//! [`SimplexEngine`]):
//!
//! * the default **sparse revised simplex** stores the constraint matrix as
//!   sparse columns and maintains a product-form basis inverse (dense
//!   snapshot + eta file) updated per pivot, so per-iteration work scales
//!   with the matrix nonzeros — the polymatroid LPs of `subw` on
//!   5+-variable queries have 2–4 nonzeros per row, which is where the
//!   speedup over the tableau comes from;
//! * the **dense tableau** rewrites the full `m × (n + m)` tableau per
//!   pivot and is kept as the simple, auditable reference.
//!
//! Both engines follow identical pivot rules on exact rational data, so
//! they visit the same bases and return bit-for-bit identical optima *and*
//! duals; the test suite checks this differentially on the paper's LP
//! corpus and on random programs.
//!
//! # Example
//!
//! ```
//! use panda_lp::{ConstraintOp, LinearProgram, LpOutcome};
//! use panda_rational::Rat;
//!
//! // maximise 3x + 5y  subject to  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(vec![Rat::from_int(3), Rat::from_int(5)]);
//! lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, Rat::from_int(4));
//! lp.add_constraint(vec![(1, Rat::from_int(2))], ConstraintOp::Le, Rat::from_int(12));
//! lp.add_constraint(
//!     vec![(0, Rat::from_int(3)), (1, Rat::from_int(2))],
//!     ConstraintOp::Le,
//!     Rat::from_int(18),
//! );
//! let solution = match lp.solve().unwrap() {
//!     LpOutcome::Optimal(s) => s,
//!     other => panic!("unexpected outcome: {other:?}"),
//! };
//! assert_eq!(solution.objective, Rat::from_int(36));
//! assert_eq!(solution.primal[0], Rat::from_int(2));
//! assert_eq!(solution.primal[1], Rat::from_int(6));
//! ```

// Every public item in this crate must be documented; broken or missing
// docs fail CI via the `cargo doc` job (RUSTDOCFLAGS="-D warnings").
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod problem;
mod revised;
mod simplex;
mod solution;

pub use budget::{CancelToken, PivotBudget};
pub use problem::{Basis, Constraint, ConstraintOp, LinearProgram, SimplexEngine};
pub use solution::{LpOutcome, Solution};

// Compile-time thread-safety guarantee for the parallel selector/bag LP
// chains in `panda-entropy`: whole `LinearProgram`s are built on pool
// workers and `Basis`/`Solution` values are carried between warm-started
// solves inside a worker, so every solver artifact must be `Send + Sync`
// (plain owned rational data, no interior mutability).  A regression that
// introduced e.g. an `Rc` into these types would break parallel width
// computation at a distance — this pins it at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LinearProgram>();
    assert_send_sync::<Basis>();
    assert_send_sync::<Solution>();
    assert_send_sync::<LpOutcome>();
    assert_send_sync::<LpError>();
    assert_send_sync::<PivotBudget>();
    assert_send_sync::<CancelToken>();
};

/// Errors reported by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The objective vector length does not match the number of variables.
    ObjectiveDimensionMismatch {
        /// Number of variables declared in the program.
        expected: usize,
        /// Length of the supplied objective vector.
        got: usize,
    },
    /// A constraint references a variable index outside the program.
    VariableOutOfRange {
        /// The offending variable index.
        index: usize,
        /// Number of variables declared in the program.
        num_vars: usize,
    },
    /// The simplex iteration limit was exceeded (should not happen with
    /// Bland's rule; indicates a bug or a pathological input).
    IterationLimit(usize),
    /// A caller-supplied [`PivotBudget`] ran out before the solve reached
    /// optimality.  Unlike [`LpError::IterationLimit`] this is an expected,
    /// recoverable outcome: the caller asked for bounded work and should
    /// fall back to a cheaper plan.
    PivotBudgetExhausted {
        /// The budget's total pivot allowance.
        limit: u64,
    },
    /// A [`CancelToken`] attached to the solve's [`PivotBudget`] was
    /// cancelled.  Like [`LpError::PivotBudgetExhausted`] this is expected
    /// and recoverable — but it must never be absorbed into a fail-soft
    /// fallback: the caller asked for the work to *stop*, not to be
    /// replaced by cheaper work.
    Cancelled,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::ObjectiveDimensionMismatch { expected, got } => write!(
                f,
                "objective has {got} coefficients but the program has {expected} variables"
            ),
            LpError::VariableOutOfRange { index, num_vars } => {
                write!(f, "variable index {index} out of range (program has {num_vars} variables)")
            }
            LpError::IterationLimit(limit) => {
                write!(f, "simplex exceeded the iteration limit of {limit}")
            }
            LpError::PivotBudgetExhausted { limit } => {
                write!(f, "pivot budget of {limit} exhausted before reaching optimality")
            }
            LpError::Cancelled => {
                write!(f, "the solve was cancelled before reaching optimality")
            }
        }
    }
}

impl std::error::Error for LpError {}
