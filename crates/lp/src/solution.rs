//! Solver outcomes and optimality certificates.

use panda_rational::Rat;

use crate::problem::{ConstraintOp, LinearProgram};

/// The result of solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(Solution),
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Returns the contained solution, panicking otherwise.  Convenient in
    /// code paths where infeasibility/unboundedness indicates a bug (e.g.
    /// polymatroid LPs, which are always feasible).
    #[must_use]
    #[track_caller]
    pub fn expect_optimal(self, context: &str) -> Solution {
        match self {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => panic!("{context}: LP unexpectedly infeasible"),
            LpOutcome::Unbounded => panic!("{context}: LP unexpectedly unbounded"),
        }
    }

    /// Returns the contained solution if optimal.
    #[must_use]
    pub fn optimal(self) -> Option<Solution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// An optimal primal/dual pair.
///
/// # Dual sign conventions
///
/// `duals[i]` is the multiplier of constraint `i` *as it was stated* in the
/// [`LinearProgram`], satisfying:
///
/// 1. **strong duality** — `Σ_i duals[i] · rhs_i == objective`,
/// 2. **dual feasibility** — for every variable `j`,
///    `Σ_i duals[i] · a_ij ≥ c_j`,
/// 3. **signs** — `≤` constraints have `duals[i] ≥ 0`, `≥` constraints have
///    `duals[i] ≤ 0`, `=` constraints are unrestricted.
///
/// These are exactly the properties the entropy crate needs to read off a
/// Shannon-flow inequality (Lemma 6.1 of the paper) from the submodular
/// width LP.
///
/// # Example
///
/// ```
/// use panda_lp::{ConstraintOp, LinearProgram};
/// use panda_rational::Rat;
///
/// // maximise x  subject to  x ≤ 3, x + y ≥ 1
/// let mut lp = LinearProgram::new(2);
/// lp.set_objective(vec![Rat::ONE, Rat::ZERO]);
/// lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, Rat::from_int(3));
/// lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Ge, Rat::ONE);
/// let solution = lp.solve().unwrap().expect_optimal("example");
/// assert_eq!(solution.objective, Rat::from_int(3));
/// // Strong duality: Σ duals[i] · rhs_i == objective, with the binding
/// // `≤` constraint carrying multiplier 1 and the slack `≥` carrying 0.
/// assert_eq!(solution.duals, vec![Rat::ONE, Rat::ZERO]);
/// assert!(solution.certificate_violations(&lp).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: Rat,
    /// Optimal values of the structural variables.
    pub primal: Vec<Rat>,
    /// Dual values, one per constraint, with the conventions above.
    pub duals: Vec<Rat>,
}

impl Solution {
    /// Audits the solution against the program it came from: primal
    /// feasibility, dual feasibility, sign conventions and strong duality.
    /// Returns a list of human-readable violations (empty when the
    /// certificate is valid).  Intended for tests and debug assertions.
    #[must_use]
    pub fn certificate_violations(&self, lp: &LinearProgram) -> Vec<String> {
        let mut violations = Vec::new();
        if !lp.is_feasible(&self.primal) {
            violations.push("primal point is infeasible".to_string());
        }
        if lp.objective_at(&self.primal) != self.objective {
            violations.push("objective value does not match the primal point".to_string());
        }
        if self.duals.len() != lp.num_constraints() {
            violations.push("dual vector length mismatch".to_string());
            return violations;
        }
        // Strong duality.
        let dual_value: Rat =
            self.duals.iter().zip(lp.constraints()).map(|(d, c)| *d * c.rhs).sum();
        if dual_value != self.objective {
            violations.push(format!(
                "strong duality violated: dual value {dual_value} != objective {}",
                self.objective
            ));
        }
        // Sign conventions.
        for (i, (d, c)) in self.duals.iter().zip(lp.constraints()).enumerate() {
            let ok = match c.op {
                ConstraintOp::Le => !d.is_negative(),
                ConstraintOp::Ge => !d.is_positive(),
                ConstraintOp::Eq => true,
            };
            if !ok {
                violations.push(format!("dual {i} has the wrong sign: {d}"));
            }
        }
        // Dual feasibility per variable.
        let mut column_totals = vec![Rat::ZERO; lp.num_vars()];
        for (d, c) in self.duals.iter().zip(lp.constraints()) {
            for (j, coeff) in &c.coeffs {
                // panda-lint: allow(P1) -- constraint coefficients are
                // validated against `num_vars` at LP construction, and
                // `column_totals` has exactly `num_vars` entries.
                column_totals[*j] += *d * *coeff;
            }
        }
        for (j, (total, obj)) in column_totals.iter().zip(lp.objective()).enumerate() {
            if *total < *obj {
                violations
                    .push(format!("dual feasibility violated on variable {j}: {total} < {obj}"));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintOp, LinearProgram};

    fn solve(lp: &LinearProgram) -> Solution {
        lp.solve().unwrap().expect_optimal("test")
    }

    #[test]
    fn textbook_maximisation_with_known_duals() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![Rat::from_int(3), Rat::from_int(5)]);
        lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, Rat::from_int(4));
        lp.add_constraint(vec![(1, Rat::from_int(2))], ConstraintOp::Le, Rat::from_int(12));
        lp.add_constraint(
            vec![(0, Rat::from_int(3)), (1, Rat::from_int(2))],
            ConstraintOp::Le,
            Rat::from_int(18),
        );
        let s = solve(&lp);
        assert_eq!(s.objective, Rat::from_int(36));
        assert_eq!(s.primal, vec![Rat::from_int(2), Rat::from_int(6)]);
        assert_eq!(s.duals, vec![Rat::ZERO, Rat::new(3, 2), Rat::ONE]);
        assert!(s.certificate_violations(&lp).is_empty());
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the origin; Bland's rule must
        // prevent cycling.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(vec![Rat::ONE, Rat::ONE, Rat::ONE]);
        for a in 0..3usize {
            for b in 0..3usize {
                if a != b {
                    lp.add_constraint(
                        vec![(a, Rat::ONE), (b, -Rat::ONE)],
                        ConstraintOp::Le,
                        Rat::ZERO,
                    );
                }
            }
        }
        lp.add_constraint(
            vec![(0, Rat::ONE), (1, Rat::ONE), (2, Rat::ONE)],
            ConstraintOp::Le,
            Rat::from_int(9),
        );
        let s = solve(&lp);
        assert_eq!(s.objective, Rat::from_int(9));
        assert!(s.certificate_violations(&lp).is_empty());
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![Rat::ONE, Rat::ZERO]);
        lp.add_constraint(vec![(1, Rat::ONE)], ConstraintOp::Le, Rat::from_int(3));
        assert_eq!(lp.solve().unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![Rat::ONE]);
        lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, Rat::from_int(1));
        lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Ge, Rat::from_int(2));
        assert_eq!(lp.solve().unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // max x + y s.t. x + y ≤ 10, x ≥ 2, x + 2y = 8  ⇒  x = 8, y = 0.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![Rat::ONE, Rat::ONE]);
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Le, Rat::from_int(10));
        lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Ge, Rat::from_int(2));
        lp.add_constraint(
            vec![(0, Rat::ONE), (1, Rat::from_int(2))],
            ConstraintOp::Eq,
            Rat::from_int(8),
        );
        let s = solve(&lp);
        assert_eq!(s.objective, Rat::from_int(8));
        assert_eq!(s.primal, vec![Rat::from_int(8), Rat::ZERO]);
        assert!(s.certificate_violations(&lp).is_empty());
    }

    #[test]
    fn negative_rhs_handled_by_normalisation() {
        // max x s.t. -x ≤ -3 (i.e. x ≥ 3), x ≤ 5.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![Rat::ONE]);
        lp.add_constraint(vec![(0, -Rat::ONE)], ConstraintOp::Le, Rat::from_int(-3));
        lp.add_constraint(vec![(0, Rat::ONE)], ConstraintOp::Le, Rat::from_int(5));
        let s = solve(&lp);
        assert_eq!(s.objective, Rat::from_int(5));
        assert!(s.certificate_violations(&lp).is_empty());
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // max t s.t. t ≤ x, t ≤ y, x + y ≤ 3  ⇒  t = 3/2.
        let mut lp = LinearProgram::new(3);
        lp.set_objective(vec![Rat::ONE, Rat::ZERO, Rat::ZERO]);
        lp.add_constraint(vec![(0, Rat::ONE), (1, -Rat::ONE)], ConstraintOp::Le, Rat::ZERO);
        lp.add_constraint(vec![(0, Rat::ONE), (2, -Rat::ONE)], ConstraintOp::Le, Rat::ZERO);
        lp.add_constraint(vec![(1, Rat::ONE), (2, Rat::ONE)], ConstraintOp::Le, Rat::from_int(3));
        let s = solve(&lp);
        assert_eq!(s.objective, Rat::new(3, 2));
        assert!(s.certificate_violations(&lp).is_empty());
    }

    #[test]
    fn zero_objective_is_fine() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Le, Rat::from_int(4));
        let s = solve(&lp);
        assert_eq!(s.objective, Rat::ZERO);
        assert!(s.certificate_violations(&lp).is_empty());
    }
}
