//! Linear-program construction.

use panda_rational::Rat;

use crate::simplex::Simplex;
use crate::solution::LpOutcome;
use crate::LpError;

/// The relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `a · x ≤ b`
    Le,
    /// `a · x ≥ b`
    Ge,
    /// `a · x = b`
    Eq,
}

/// A single linear constraint `a · x {≤,≥,=} b` stored sparsely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Sparse coefficient list `(variable index, coefficient)`.
    pub coeffs: Vec<(usize, Rat)>,
    /// The relational operator.
    pub op: ConstraintOp,
    /// The right-hand side.
    pub rhs: Rat,
}

impl Constraint {
    /// Evaluates the left-hand side on a point.
    #[must_use]
    pub fn lhs_at(&self, point: &[Rat]) -> Rat {
        self.coeffs.iter().map(|(j, c)| *c * point.get(*j).copied().unwrap_or(Rat::ZERO)).sum()
    }

    /// Returns `true` iff the point satisfies the constraint exactly.
    #[must_use]
    pub fn is_satisfied_by(&self, point: &[Rat]) -> bool {
        let lhs = self.lhs_at(point);
        match self.op {
            ConstraintOp::Le => lhs <= self.rhs,
            ConstraintOp::Ge => lhs >= self.rhs,
            ConstraintOp::Eq => lhs == self.rhs,
        }
    }
}

/// A linear program `maximise c · x  subject to  constraints, x ≥ 0`.
///
/// All variables are implicitly non-negative, which matches every LP built
/// by the entropy crate (entropy values and the auxiliary `t` variable of
/// the submodular-width LP are non-negative).
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<Rat>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a program with `num_vars` non-negative variables and a zero
    /// objective.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        LinearProgram { num_vars, objective: vec![Rat::ZERO; num_vars], constraints: Vec::new() }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints added so far.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The dense objective vector.
    #[must_use]
    pub fn objective(&self) -> &[Rat] {
        &self.objective
    }

    /// Sets the (maximisation) objective from a dense coefficient vector.
    ///
    /// Returns an error if the length does not match the variable count,
    /// but leaves the previous objective untouched in that case.
    pub fn set_objective(&mut self, coeffs: Vec<Rat>) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "objective has {} coefficients but the program has {} variables",
            coeffs.len(),
            self.num_vars
        );
        self.objective = coeffs;
        self
    }

    /// Sets a single objective coefficient.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: Rat) -> &mut Self {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.objective[var] = coeff;
        self
    }

    /// Adds a constraint given sparsely as `(variable, coefficient)` pairs.
    /// Duplicate variable entries are summed.  Returns the constraint index,
    /// which identifies the constraint's dual value in [`crate::Solution`].
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, Rat)>,
        op: ConstraintOp,
        rhs: Rat,
    ) -> usize {
        for (j, _) in &coeffs {
            assert!(
                *j < self.num_vars,
                "constraint references variable {j} but the program has {} variables",
                self.num_vars
            );
        }
        // Merge duplicates so the dense tableau rows stay canonical.
        let mut merged: Vec<(usize, Rat)> = Vec::with_capacity(coeffs.len());
        for (j, c) in coeffs {
            if let Some(entry) = merged.iter_mut().find(|(k, _)| *k == j) {
                entry.1 += c;
            } else {
                merged.push((j, c));
            }
        }
        merged.retain(|(_, c)| !c.is_zero());
        self.constraints.push(Constraint { coeffs: merged, op, rhs });
        self.constraints.len() - 1
    }

    /// Validates internal consistency; called by [`LinearProgram::solve`].
    fn validate(&self) -> Result<(), LpError> {
        if self.objective.len() != self.num_vars {
            return Err(LpError::ObjectiveDimensionMismatch {
                expected: self.num_vars,
                got: self.objective.len(),
            });
        }
        for constraint in &self.constraints {
            for (j, _) in &constraint.coeffs {
                if *j >= self.num_vars {
                    return Err(LpError::VariableOutOfRange { index: *j, num_vars: self.num_vars });
                }
            }
        }
        Ok(())
    }

    /// Solves the program with the two-phase simplex method.
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        self.validate()?;
        Simplex::new(self).run()
    }

    /// Checks whether a point is feasible (satisfies every constraint and
    /// non-negativity).  Useful in tests and for auditing LP certificates.
    #[must_use]
    pub fn is_feasible(&self, point: &[Rat]) -> bool {
        point.len() == self.num_vars
            && point.iter().all(|v| !v.is_negative())
            && self.constraints.iter().all(|c| c.is_satisfied_by(point))
    }

    /// Evaluates the objective at a point.
    #[must_use]
    pub fn objective_at(&self, point: &[Rat]) -> Rat {
        self.objective.iter().zip(point.iter()).map(|(c, x)| *c * *x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicate_coefficients() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(
            vec![(0, Rat::ONE), (0, Rat::ONE), (1, Rat::from_int(2))],
            ConstraintOp::Le,
            Rat::from_int(5),
        );
        let c = &lp.constraints()[0];
        assert_eq!(c.coeffs.len(), 2);
        assert!(c.coeffs.contains(&(0, Rat::from_int(2))));
    }

    #[test]
    fn drops_zero_coefficients() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(
            vec![(0, Rat::ONE), (0, -Rat::ONE), (1, Rat::ONE)],
            ConstraintOp::Le,
            Rat::from_int(5),
        );
        assert_eq!(lp.constraints()[0].coeffs, vec![(1, Rat::ONE)]);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![Rat::ONE, Rat::ONE]);
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Le, Rat::from_int(3));
        assert!(lp.is_feasible(&[Rat::ONE, Rat::ONE]));
        assert!(!lp.is_feasible(&[Rat::from_int(2), Rat::from_int(2)]));
        assert!(!lp.is_feasible(&[-Rat::ONE, Rat::ZERO]));
        assert_eq!(lp.objective_at(&[Rat::ONE, Rat::from_int(2)]), Rat::from_int(3));
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn out_of_range_variable_panics() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(vec![(3, Rat::ONE)], ConstraintOp::Le, Rat::ONE);
    }
}
