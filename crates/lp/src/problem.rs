//! Linear-program construction.

use panda_rational::Rat;

use crate::revised::RevisedSimplex;
use crate::simplex::Simplex;
use crate::solution::LpOutcome;
use crate::LpError;

/// An opaque warm-start token: the optimal basis of a completed
/// revised-simplex solve, returned by [`LinearProgram::solve_warm`].
///
/// Feeding it back into `solve_warm` on a *structurally compatible*
/// program (same variable count, same constraint kinds in the same order —
/// e.g. the Γ_n LPs of two bag selectors with equally many target rows)
/// lets the solver skip phase 1 entirely when the carried basis is still
/// feasible.  Compatibility and exact feasibility are verified before use;
/// an unusable hint silently falls back to the ordinary two-phase solve,
/// so a stale token can cost time but never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    pub(crate) cols: Vec<usize>,
    pub(crate) num_cols: usize,
}

/// Which simplex implementation [`LinearProgram::solve_with`] runs.
///
/// Both engines implement the identical two-phase method with identical
/// pivot rules over exact rationals, so they visit the same bases and
/// return bit-for-bit identical outcomes — including the dual values.  The
/// dense tableau is kept as the simple, auditable reference; the revised
/// engine is the fast default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplexEngine {
    /// Sparse revised simplex with a product-form basis inverse (the
    /// default): per-pivot work proportional to the matrix nonzeros.
    #[default]
    Revised,
    /// Dense-tableau simplex: rewrites the full `m × (n + m)` tableau per
    /// pivot.  Simple enough to audit by hand; used as the differential
    /// reference in tests.
    DenseTableau,
}

/// The relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `a · x ≤ b`
    Le,
    /// `a · x ≥ b`
    Ge,
    /// `a · x = b`
    Eq,
}

/// A single linear constraint `a · x {≤,≥,=} b` stored sparsely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Sparse coefficient list `(variable index, coefficient)`.
    pub coeffs: Vec<(usize, Rat)>,
    /// The relational operator.
    pub op: ConstraintOp,
    /// The right-hand side.
    pub rhs: Rat,
}

impl Constraint {
    /// Evaluates the left-hand side on a point.
    #[must_use]
    pub fn lhs_at(&self, point: &[Rat]) -> Rat {
        self.coeffs.iter().map(|(j, c)| *c * point.get(*j).copied().unwrap_or(Rat::ZERO)).sum()
    }

    /// Returns `true` iff the point satisfies the constraint exactly.
    #[must_use]
    pub fn is_satisfied_by(&self, point: &[Rat]) -> bool {
        let lhs = self.lhs_at(point);
        match self.op {
            ConstraintOp::Le => lhs <= self.rhs,
            ConstraintOp::Ge => lhs >= self.rhs,
            ConstraintOp::Eq => lhs == self.rhs,
        }
    }
}

/// A linear program `maximise c · x  subject to  constraints, x ≥ 0`.
///
/// All variables are implicitly non-negative, which matches every LP built
/// by the entropy crate (entropy values and the auxiliary `t` variable of
/// the submodular-width LP are non-negative).
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<Rat>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a program with `num_vars` non-negative variables and a zero
    /// objective.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        LinearProgram { num_vars, objective: vec![Rat::ZERO; num_vars], constraints: Vec::new() }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints added so far.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The dense objective vector.
    #[must_use]
    pub fn objective(&self) -> &[Rat] {
        &self.objective
    }

    /// Sets the (maximisation) objective from a dense coefficient vector.
    ///
    /// Returns an error if the length does not match the variable count,
    /// but leaves the previous objective untouched in that case.
    pub fn set_objective(&mut self, coeffs: Vec<Rat>) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "objective has {} coefficients but the program has {} variables",
            coeffs.len(),
            self.num_vars
        );
        self.objective = coeffs;
        self
    }

    /// Sets a single objective coefficient.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: Rat) -> &mut Self {
        assert!(var < self.num_vars, "variable {var} out of range");
        // panda-lint: allow(P1) -- in range by the assert directly above.
        self.objective[var] = coeff;
        self
    }

    /// Adds a constraint given sparsely as `(variable, coefficient)` pairs.
    /// Duplicate variable entries are summed.  Returns the constraint index,
    /// which identifies the constraint's dual value in [`crate::Solution`].
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, Rat)>,
        op: ConstraintOp,
        rhs: Rat,
    ) -> usize {
        for (j, _) in &coeffs {
            assert!(
                *j < self.num_vars,
                "constraint references variable {j} but the program has {} variables",
                self.num_vars
            );
        }
        // Merge duplicates so the dense tableau rows stay canonical.
        let mut merged: Vec<(usize, Rat)> = Vec::with_capacity(coeffs.len());
        for (j, c) in coeffs {
            if let Some(entry) = merged.iter_mut().find(|(k, _)| *k == j) {
                entry.1 += c;
            } else {
                merged.push((j, c));
            }
        }
        merged.retain(|(_, c)| !c.is_zero());
        self.constraints.push(Constraint { coeffs: merged, op, rhs });
        self.constraints.len() - 1
    }

    /// Validates internal consistency; called by [`LinearProgram::solve`].
    fn validate(&self) -> Result<(), LpError> {
        if self.objective.len() != self.num_vars {
            return Err(LpError::ObjectiveDimensionMismatch {
                expected: self.num_vars,
                got: self.objective.len(),
            });
        }
        for constraint in &self.constraints {
            for (j, _) in &constraint.coeffs {
                if *j >= self.num_vars {
                    return Err(LpError::VariableOutOfRange { index: *j, num_vars: self.num_vars });
                }
            }
        }
        Ok(())
    }

    /// Solves the program with the two-phase simplex method (the sparse
    /// revised engine, [`SimplexEngine::Revised`]).
    ///
    /// ```
    /// use panda_lp::{ConstraintOp, LinearProgram, LpOutcome};
    /// use panda_rational::Rat;
    ///
    /// // maximise x + y  subject to  2x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0
    /// let mut lp = LinearProgram::new(2);
    /// lp.set_objective(vec![Rat::ONE, Rat::ONE]);
    /// lp.add_constraint(
    ///     vec![(0, Rat::from_int(2)), (1, Rat::ONE)],
    ///     ConstraintOp::Le,
    ///     Rat::from_int(4),
    /// );
    /// lp.add_constraint(
    ///     vec![(0, Rat::ONE), (1, Rat::from_int(3))],
    ///     ConstraintOp::Le,
    ///     Rat::from_int(6),
    /// );
    /// let solution = lp.solve().unwrap().expect_optimal("doc");
    /// assert_eq!(solution.objective, Rat::new(14, 5));
    /// assert!(solution.certificate_violations(&lp).is_empty());
    /// ```
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        self.solve_with(SimplexEngine::Revised)
    }

    /// Solves the program with the dense-tableau reference engine
    /// ([`SimplexEngine::DenseTableau`]).  Returns bit-for-bit the same
    /// outcome as [`LinearProgram::solve`]; useful for differential tests
    /// and for auditing the revised engine.
    pub fn solve_dense(&self) -> Result<LpOutcome, LpError> {
        self.solve_with(SimplexEngine::DenseTableau)
    }

    /// Solves the program with an explicitly chosen engine.
    pub fn solve_with(&self, engine: SimplexEngine) -> Result<LpOutcome, LpError> {
        self.validate()?;
        match engine {
            SimplexEngine::Revised => RevisedSimplex::new(self).run(),
            SimplexEngine::DenseTableau => Simplex::new(self).run(),
        }
    }

    /// Solves with the revised engine, optionally warm-starting from the
    /// final [`Basis`] of a previous solve, and returns the outcome
    /// together with this solve's final basis (when one exists) for
    /// chaining across a family of related programs.
    ///
    /// The hint is used only if it is structurally compatible with this
    /// program and still *exactly* feasible (checked over the rationals);
    /// otherwise the ordinary two-phase solve runs.  Note that a
    /// warm-started solve may reach a different optimal basis than a cold
    /// one when the optimum is degenerate, so the dual certificate can
    /// legitimately differ; the objective value cannot.
    pub fn solve_warm(&self, hint: Option<&Basis>) -> Result<(LpOutcome, Option<Basis>), LpError> {
        self.validate()?;
        RevisedSimplex::new(self).run_warm(hint)
    }

    /// Like [`LinearProgram::solve_warm`], but charging every pivot to a
    /// caller-supplied [`crate::PivotBudget`] shared across a chain of
    /// solves.  Aborts with
    /// [`LpError::PivotBudgetExhausted`](crate::LpError::PivotBudgetExhausted)
    /// once the budget runs out; a solve that completes within budget is
    /// bit-for-bit identical to its unbudgeted counterpart (the budget only
    /// counts, it never alters a pivot decision).  Only the revised engine
    /// is budgeted — the dense tableau is the auditable reference and stays
    /// parameter-free.
    pub fn solve_warm_budgeted(
        &self,
        hint: Option<&Basis>,
        budget: &mut crate::PivotBudget,
    ) -> Result<(LpOutcome, Option<Basis>), LpError> {
        self.validate()?;
        RevisedSimplex::new(self).run_warm_budgeted(hint, Some(budget))
    }

    /// Checks whether a point is feasible (satisfies every constraint and
    /// non-negativity).  Useful in tests and for auditing LP certificates.
    #[must_use]
    pub fn is_feasible(&self, point: &[Rat]) -> bool {
        point.len() == self.num_vars
            && point.iter().all(|v| !v.is_negative())
            && self.constraints.iter().all(|c| c.is_satisfied_by(point))
    }

    /// Evaluates the objective at a point.
    #[must_use]
    pub fn objective_at(&self, point: &[Rat]) -> Rat {
        self.objective.iter().zip(point.iter()).map(|(c, x)| *c * *x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicate_coefficients() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(
            vec![(0, Rat::ONE), (0, Rat::ONE), (1, Rat::from_int(2))],
            ConstraintOp::Le,
            Rat::from_int(5),
        );
        let c = &lp.constraints()[0];
        assert_eq!(c.coeffs.len(), 2);
        assert!(c.coeffs.contains(&(0, Rat::from_int(2))));
    }

    #[test]
    fn drops_zero_coefficients() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(
            vec![(0, Rat::ONE), (0, -Rat::ONE), (1, Rat::ONE)],
            ConstraintOp::Le,
            Rat::from_int(5),
        );
        assert_eq!(lp.constraints()[0].coeffs, vec![(1, Rat::ONE)]);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![Rat::ONE, Rat::ONE]);
        lp.add_constraint(vec![(0, Rat::ONE), (1, Rat::ONE)], ConstraintOp::Le, Rat::from_int(3));
        assert!(lp.is_feasible(&[Rat::ONE, Rat::ONE]));
        assert!(!lp.is_feasible(&[Rat::from_int(2), Rat::from_int(2)]));
        assert!(!lp.is_feasible(&[-Rat::ONE, Rat::ZERO]));
        assert_eq!(lp.objective_at(&[Rat::ONE, Rat::from_int(2)]), Rat::from_int(3));
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn out_of_range_variable_panics() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(vec![(3, Rat::ONE)], ConstraintOp::Le, Rat::ONE);
    }
}
