//! The two-phase dense-tableau simplex method over exact rationals.

// panda-lint: allow-file(P1) -- dense tableau kernel: every row/column
// index is bounded by the tableau dimensions fixed at construction;
// Option-threading each access would bury the pivoting arithmetic.

use panda_rational::Rat;

use crate::problem::{ConstraintOp, LinearProgram};
use crate::solution::{LpOutcome, Solution};
use crate::LpError;

/// Hard cap on simplex pivots; far larger than anything the paper's LPs
/// need.  Both engines return [`LpError::IterationLimit`] (they never
/// panic) if a bug or a pathological input exhausts it.
pub(crate) const ITERATION_LIMIT: usize = 200_000;

/// Per-row bookkeeping connecting standard-form rows back to the user's
/// constraints.  Shared with the revised engine so both solvers normalise
/// rows — and therefore recover duals — identically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowInfo {
    /// `true` if the row was multiplied by −1 to make its right-hand side
    /// non-negative.
    pub(crate) flipped: bool,
    /// Column index of the variable that is basic in this row in the
    /// *initial* tableau (a slack or an artificial).  Reading this column of
    /// the final tableau yields the corresponding column of `B⁻¹`, which is
    /// how dual values are recovered.
    pub(crate) initial_basic_col: usize,
}

/// The shared standard-form normalisation both engines are built from —
/// the single source of truth for row flipping, the column layout
/// (structural variables first, then slacks/surpluses in row order, then
/// artificials in row order) and the initial all-slack/artificial basis.
///
/// The engines' bit-for-bit equivalence (identical bases, optima and
/// duals) requires them to see the *same* standard form; constructing it
/// once here means a future change to the normalisation cannot silently
/// apply to one engine and not the other.
pub(crate) struct StandardForm {
    /// Sparse sign-adjusted columns, `num_cols` of them.
    pub(crate) cols: Vec<Vec<(usize, Rat)>>,
    /// Normalised (non-negative) right-hand side.
    pub(crate) rhs: Vec<Rat>,
    /// Initial basic column of each row (its slack or artificial).
    pub(crate) basis: Vec<usize>,
    /// Total number of structural + slack/surplus + artificial columns.
    pub(crate) num_cols: usize,
    /// Columns that are artificial variables (barred from entering in
    /// phase 2).
    pub(crate) artificial_cols: Vec<usize>,
    pub(crate) row_info: Vec<RowInfo>,
}

impl StandardForm {
    pub(crate) fn new(lp: &LinearProgram) -> Self {
        let m = lp.num_constraints();
        let n = lp.num_vars();

        // First pass: count how many slack/surplus and artificial columns
        // are needed so column indexes can be assigned up front.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for c in lp.constraints() {
            let flipped = c.rhs.is_negative();
            let op = effective_op(c.op, flipped);
            match op {
                ConstraintOp::Le => num_slack += 1,
                ConstraintOp::Ge => {
                    num_slack += 1; // surplus
                    num_artificial += 1;
                }
                ConstraintOp::Eq => num_artificial += 1,
            }
        }

        let num_cols = n + num_slack + num_artificial;
        let mut cols: Vec<Vec<(usize, Rat)>> = vec![Vec::new(); num_cols];
        let mut rhs = vec![Rat::ZERO; m];
        let mut basis = vec![0usize; m];
        let mut row_info = Vec::with_capacity(m);
        let mut artificial_cols = Vec::with_capacity(num_artificial);

        let mut next_slack = n;
        let mut next_artificial = n + num_slack;

        for (i, c) in lp.constraints().iter().enumerate() {
            let flipped = c.rhs.is_negative();
            let sign = if flipped { -Rat::ONE } else { Rat::ONE };
            for (j, coeff) in &c.coeffs {
                cols[*j].push((i, *coeff * sign));
            }
            rhs[i] = c.rhs * sign;
            let op = effective_op(c.op, flipped);
            let initial_basic_col = match op {
                ConstraintOp::Le => {
                    let col = next_slack;
                    next_slack += 1;
                    cols[col].push((i, Rat::ONE));
                    basis[i] = col;
                    col
                }
                ConstraintOp::Ge => {
                    let surplus = next_slack;
                    next_slack += 1;
                    cols[surplus].push((i, -Rat::ONE));
                    let art = next_artificial;
                    next_artificial += 1;
                    cols[art].push((i, Rat::ONE));
                    artificial_cols.push(art);
                    basis[i] = art;
                    art
                }
                ConstraintOp::Eq => {
                    let art = next_artificial;
                    next_artificial += 1;
                    cols[art].push((i, Rat::ONE));
                    artificial_cols.push(art);
                    basis[i] = art;
                    art
                }
            };
            row_info.push(RowInfo { flipped, initial_basic_col });
        }

        StandardForm { cols, rhs, basis, num_cols, artificial_cols, row_info }
    }
}

/// The working state of a simplex solve.
pub(crate) struct Simplex<'a> {
    lp: &'a LinearProgram,
    /// Dense tableau: `rows × (num_cols + 1)`, last column is the RHS.
    tableau: Vec<Vec<Rat>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of structural + slack/surplus + artificial columns.
    num_cols: usize,
    /// Number of structural (user) variables.
    num_structural: usize,
    /// Columns that are artificial variables (barred from entering in
    /// phase 2).
    artificial_cols: Vec<usize>,
    row_info: Vec<RowInfo>,
}

impl<'a> Simplex<'a> {
    pub(crate) fn new(lp: &'a LinearProgram) -> Self {
        let form = StandardForm::new(lp);
        let m = lp.num_constraints();
        let mut tableau = vec![vec![Rat::ZERO; form.num_cols + 1]; m];
        for (j, col) in form.cols.iter().enumerate() {
            for &(i, v) in col {
                tableau[i][j] = v;
            }
        }
        for (i, &b) in form.rhs.iter().enumerate() {
            tableau[i][form.num_cols] = b;
        }
        Simplex {
            lp,
            tableau,
            basis: form.basis,
            num_cols: form.num_cols,
            num_structural: lp.num_vars(),
            artificial_cols: form.artificial_cols,
            row_info: form.row_info,
        }
    }

    pub(crate) fn run(mut self) -> Result<LpOutcome, LpError> {
        // Phase 1: drive the artificial variables to zero.
        if !self.artificial_cols.is_empty() {
            let mut phase1_cost = vec![Rat::ZERO; self.num_cols];
            for &a in &self.artificial_cols {
                phase1_cost[a] = -Rat::ONE;
            }
            let outcome = self.optimize(&phase1_cost, /*bar_artificials=*/ false)?;
            debug_assert!(
                !matches!(outcome, Phase::Unbounded),
                "phase 1 objective is bounded above by zero"
            );
            let phase1_value = self.current_objective(&phase1_cost);
            if phase1_value.is_negative() {
                return Ok(LpOutcome::Infeasible);
            }
            self.pivot_out_basic_artificials();
        }

        // Phase 2: optimise the real objective.
        let mut cost = vec![Rat::ZERO; self.num_cols];
        cost[..self.num_structural].copy_from_slice(self.lp.objective());
        match self.optimize(&cost, /*bar_artificials=*/ true)? {
            Phase::Unbounded => Ok(LpOutcome::Unbounded),
            Phase::Optimal => {
                let objective = self.current_objective(&cost);
                let primal = self.extract_primal();
                let duals = self.extract_duals(&cost);
                Ok(LpOutcome::Optimal(Solution { objective, primal, duals }))
            }
        }
    }

    /// Runs the simplex iterations for the given cost vector.
    fn optimize(&mut self, cost: &[Rat], bar_artificials: bool) -> Result<Phase, LpError> {
        // Reduced-cost row: c_j − c_B · B⁻¹ A_j, maintained incrementally.
        let mut reduced = cost.to_vec();
        for (i, &b) in self.basis.iter().enumerate() {
            if !cost[b].is_zero() {
                let scale = cost[b];
                // The zip excludes the tableau's trailing RHS column.
                for (r, &t) in reduced.iter_mut().zip(&self.tableau[i]) {
                    *r -= scale * t;
                }
            }
        }

        let bland_threshold = 4 * (self.tableau.len() + self.num_cols) + 64;
        for iteration in 0..ITERATION_LIMIT {
            let use_bland = iteration >= bland_threshold;
            let entering = self.choose_entering(&reduced, bar_artificials, use_bland);
            let Some(entering) = entering else {
                return Ok(Phase::Optimal);
            };
            let Some(leaving_row) = self.choose_leaving(entering) else {
                return Ok(Phase::Unbounded);
            };
            self.pivot(leaving_row, entering);
            // Update the reduced-cost row with the pivoted row.
            let scale = reduced[entering];
            if !scale.is_zero() {
                for (r, &t) in reduced.iter_mut().zip(&self.tableau[leaving_row]) {
                    *r -= scale * t;
                }
            }
            reduced[entering] = Rat::ZERO;
        }
        Err(LpError::IterationLimit(ITERATION_LIMIT))
    }

    fn choose_entering(
        &self,
        reduced: &[Rat],
        bar_artificials: bool,
        use_bland: bool,
    ) -> Option<usize> {
        let is_candidate = |j: usize, r: &Rat| -> bool {
            if bar_artificials && self.artificial_cols.contains(&j) {
                return false;
            }
            r.is_positive()
        };
        let candidates =
            reduced.iter().enumerate().take(self.num_cols).filter(|&(j, r)| is_candidate(j, r));
        if use_bland {
            candidates.map(|(j, _)| j).next()
        } else {
            // Dantzig: the largest reduced cost, first index on ties.
            let mut best: Option<(usize, Rat)> = None;
            for (j, &r) in candidates {
                match &best {
                    Some((_, v)) if *v >= r => {}
                    _ => best = Some((j, r)),
                }
            }
            best.map(|(j, _)| j)
        }
    }

    fn choose_leaving(&self, entering: usize) -> Option<usize> {
        let rhs_col = self.num_cols;
        let mut best: Option<(usize, Rat)> = None;
        for i in 0..self.tableau.len() {
            let coeff = self.tableau[i][entering];
            if coeff.is_positive() {
                let ratio = self.tableau[i][rhs_col] / coeff;
                let better = match &best {
                    None => true,
                    Some((row, r)) => {
                        ratio < *r || (ratio == *r && self.basis[i] < self.basis[*row])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.tableau[row][col];
        debug_assert!(!pivot.is_zero(), "pivot element must be non-zero");
        let inv = pivot.recip();
        for value in self.tableau[row].iter_mut() {
            *value *= inv;
        }
        for i in 0..self.tableau.len() {
            if i == row {
                continue;
            }
            let factor = self.tableau[i][col];
            if factor.is_zero() {
                continue;
            }
            for j in 0..=self.num_cols {
                let delta = factor * self.tableau[row][j];
                self.tableau[i][j] -= delta;
            }
        }
        self.basis[row] = col;
    }

    /// Removes artificial variables from the basis after phase 1 whenever a
    /// structural or slack column with a non-zero entry exists in the row.
    /// Rows whose artificial cannot be pivoted out are redundant and remain
    /// with the artificial basic at value zero.
    fn pivot_out_basic_artificials(&mut self) {
        for row in 0..self.tableau.len() {
            if !self.artificial_cols.contains(&self.basis[row]) {
                continue;
            }
            let col = (0..self.num_cols)
                .find(|&j| !self.artificial_cols.contains(&j) && !self.tableau[row][j].is_zero());
            if let Some(col) = col {
                self.pivot(row, col);
            }
        }
    }

    fn current_objective(&self, cost: &[Rat]) -> Rat {
        let rhs_col = self.num_cols;
        self.basis.iter().enumerate().map(|(i, &b)| cost[b] * self.tableau[i][rhs_col]).sum()
    }

    fn extract_primal(&self) -> Vec<Rat> {
        let rhs_col = self.num_cols;
        let mut primal = vec![Rat::ZERO; self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                primal[b] = self.tableau[i][rhs_col];
            }
        }
        primal
    }

    /// Recovers the dual values `y = c_B · B⁻¹` by reading, for each row,
    /// the tableau column of the variable that was basic in that row in the
    /// initial tableau (those columns formed an identity, so the final
    /// tableau stores the corresponding columns of `B⁻¹`).
    fn extract_duals(&self, cost: &[Rat]) -> Vec<Rat> {
        let m = self.tableau.len();
        let mut duals = vec![Rat::ZERO; m];
        for (i, info) in self.row_info.iter().enumerate() {
            let mut y = Rat::ZERO;
            for (r, &b) in self.basis.iter().enumerate() {
                if !cost[b].is_zero() {
                    y += cost[b] * self.tableau[r][info.initial_basic_col];
                }
            }
            duals[i] = if info.flipped { -y } else { y };
        }
        duals
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Optimal,
    Unbounded,
}

pub(crate) fn effective_op(op: ConstraintOp, flipped: bool) -> ConstraintOp {
    if !flipped {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}
