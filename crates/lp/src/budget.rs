//! Deterministic pivot-count budgets.
//!
//! PANDA's planner solves *chains* of polymatroid LPs (one per tree
//! decomposition, bag or bag selector), and on adversarial queries the
//! number of selectors — and hence the total simplex work — can blow up.
//! A budget bounds that work so callers can downgrade to a cheaper plan
//! instead of stalling.
//!
//! The unit is **pivots, never wall-clock time**: the pivot sequence of the
//! exact-rational simplex is a pure function of the program, so a budget of
//! `k` pivots aborts at exactly the same point on every machine, at every
//! thread count, on every run.  (A wall-clock budget would reintroduce the
//! nondeterminism the workspace's D3 lint exists to keep out of library
//! code.)
//!
//! A single [`PivotBudget`] is threaded by `&mut` through a whole chain of
//! [`solve_warm_budgeted`](crate::LinearProgram::solve_warm_budgeted)
//! calls, so the budget bounds the *total* work of the chain, not each
//! solve separately.
//!
//! The budget counters double as the library's **cancellation points**: a
//! [`CancelToken`] attached with [`PivotBudget::with_cancel_token`] is
//! polled wherever a pivot would be consumed — never a wall clock, so the
//! serving layer's cooperative cancellation rides the same deterministic
//! counters as the budgets themselves.

// panda-lint: allow(D2) -- the one-way cooperative cancel flag below:
// observing it can only *abort* a solve with a structured error, never
// change a completed result, so scheduling order cannot reach an output.
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, one-way cooperative cancellation flag.
///
/// A token starts un-cancelled; [`CancelToken::cancel`] flips it, forever.
/// Attached to a [`PivotBudget`] via [`PivotBudget::with_cancel_token`],
/// the flag is polled at the budget's own counting points (every pivot of
/// a budgeted solve), so a cancelled token makes the solve abort with
/// [`LpError::Cancelled`](crate::LpError::Cancelled) at the next pivot.
///
/// Cancellation is **cooperative and best-effort**: a solve that finishes
/// before the next poll completes normally, and the completed result is
/// identical to an uncancelled run (the flag can only abort work, never
/// alter it).  That property is what keeps the flag deterministic-safe:
/// outputs remain bit-reproducible functions of the inputs; the only
/// scheduling-dependent observable is *whether* a run its owner asked to
/// stop did stop early — exactly the observable the owner requested.
///
/// ```
/// use panda_lp::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// let shared = token.clone(); // clones observe the same flag
/// shared.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    // panda-lint: allow(D2) -- see the module-level justification above:
    // the flag is one-way and can only abort, never reorder or rewrite.
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.  One-way: there is no `uncancel`.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on this token
    /// or any clone of it.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A deterministic budget on simplex pivots, shared across a chain of
/// solves.
///
/// Each pivot of a budgeted solve consumes one unit; when the budget runs
/// out the solve aborts with
/// [`LpError::PivotBudgetExhausted`](crate::LpError::PivotBudgetExhausted)
/// instead of continuing to optimality.  [`PivotBudget::used`] reports how
/// many pivots the chain has consumed so far, which callers surface for
/// observability.
///
/// A [`CancelToken`] may be attached with
/// [`PivotBudget::with_cancel_token`]: the budget then doubles as the
/// solve's cancellation point — the token is polled at every pivot, and a
/// cancelled token aborts the solve with
/// [`LpError::Cancelled`](crate::LpError::Cancelled) *without* consuming
/// the pivot.  Polling costs no budget, so a token that is never
/// cancelled leaves the pivot sequence — and hence the result — exactly
/// as if no token were attached.
///
/// Equality compares the deterministic counters (`limit`, `used`) only;
/// an attached cancel token is runtime plumbing, not budget state.
///
/// ```
/// use panda_lp::PivotBudget;
///
/// let budget = PivotBudget::new(1_000);
/// assert_eq!(budget.limit(), 1_000);
/// assert_eq!(budget.used(), 0);
/// assert_eq!(budget.remaining(), 1_000);
/// assert!(!budget.is_exhausted());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PivotBudget {
    limit: u64,
    used: u64,
    cancel: Option<CancelToken>,
}

impl PartialEq for PivotBudget {
    fn eq(&self, other: &Self) -> bool {
        self.limit == other.limit && self.used == other.used
    }
}

impl Eq for PivotBudget {}

impl PivotBudget {
    /// Creates a budget allowing `limit` pivots in total.
    #[must_use]
    pub fn new(limit: u64) -> Self {
        PivotBudget { limit, used: 0, cancel: None }
    }

    /// Attaches a cooperative [`CancelToken`], polled at every pivot.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` iff an attached [`CancelToken`] has been cancelled.  Always
    /// `false` when no token is attached.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The total number of pivots this budget allows.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Pivots consumed so far across every solve this budget was passed to.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Pivots still available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used)
    }

    /// `true` once every pivot has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.used >= self.limit
    }

    /// Consumes one pivot; returns `false` (consuming nothing) when the
    /// budget is already exhausted.
    pub(crate) fn consume(&mut self) -> bool {
        if self.used >= self.limit {
            return false;
        }
        self.used += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_down_and_refuses_past_the_limit() {
        let mut b = PivotBudget::new(2);
        assert!(b.consume());
        assert!(b.consume());
        assert!(!b.consume());
        assert!(b.is_exhausted());
        assert_eq!(b.used(), 2);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn zero_budget_is_exhausted_immediately() {
        let mut b = PivotBudget::new(0);
        assert!(b.is_exhausted());
        assert!(!b.consume());
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn cancel_tokens_are_shared_and_one_way() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled() && clone.is_cancelled());
    }

    #[test]
    fn budget_polls_its_token_without_consuming_pivots() {
        let token = CancelToken::new();
        let mut b = PivotBudget::new(10).with_cancel_token(token.clone());
        assert!(!b.is_cancelled());
        assert!(b.consume());
        token.cancel();
        assert!(b.is_cancelled());
        // Polling the token never consumed a pivot.
        assert_eq!(b.used(), 1);
        // Equality ignores the attached token: only the counters matter.
        assert_eq!(b, PivotBudget { limit: 10, used: 1, cancel: None });
    }
}
