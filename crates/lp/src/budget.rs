//! Deterministic pivot-count budgets.
//!
//! PANDA's planner solves *chains* of polymatroid LPs (one per tree
//! decomposition, bag or bag selector), and on adversarial queries the
//! number of selectors — and hence the total simplex work — can blow up.
//! A budget bounds that work so callers can downgrade to a cheaper plan
//! instead of stalling.
//!
//! The unit is **pivots, never wall-clock time**: the pivot sequence of the
//! exact-rational simplex is a pure function of the program, so a budget of
//! `k` pivots aborts at exactly the same point on every machine, at every
//! thread count, on every run.  (A wall-clock budget would reintroduce the
//! nondeterminism the workspace's D3 lint exists to keep out of library
//! code.)
//!
//! A single [`PivotBudget`] is threaded by `&mut` through a whole chain of
//! [`solve_warm_budgeted`](crate::LinearProgram::solve_warm_budgeted)
//! calls, so the budget bounds the *total* work of the chain, not each
//! solve separately.

/// A deterministic budget on simplex pivots, shared across a chain of
/// solves.
///
/// Each pivot of a budgeted solve consumes one unit; when the budget runs
/// out the solve aborts with
/// [`LpError::PivotBudgetExhausted`](crate::LpError::PivotBudgetExhausted)
/// instead of continuing to optimality.  [`PivotBudget::used`] reports how
/// many pivots the chain has consumed so far, which callers surface for
/// observability.
///
/// ```
/// use panda_lp::PivotBudget;
///
/// let budget = PivotBudget::new(1_000);
/// assert_eq!(budget.limit(), 1_000);
/// assert_eq!(budget.used(), 0);
/// assert_eq!(budget.remaining(), 1_000);
/// assert!(!budget.is_exhausted());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PivotBudget {
    limit: u64,
    used: u64,
}

impl PivotBudget {
    /// Creates a budget allowing `limit` pivots in total.
    #[must_use]
    pub fn new(limit: u64) -> Self {
        PivotBudget { limit, used: 0 }
    }

    /// The total number of pivots this budget allows.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Pivots consumed so far across every solve this budget was passed to.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Pivots still available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used)
    }

    /// `true` once every pivot has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.used >= self.limit
    }

    /// Consumes one pivot; returns `false` (consuming nothing) when the
    /// budget is already exhausted.
    pub(crate) fn consume(&mut self) -> bool {
        if self.used >= self.limit {
            return false;
        }
        self.used += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_down_and_refuses_past_the_limit() {
        let mut b = PivotBudget::new(2);
        assert!(b.consume());
        assert!(b.consume());
        assert!(!b.consume());
        assert!(b.is_exhausted());
        assert_eq!(b.used(), 2);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn zero_budget_is_exhausted_immediately() {
        let mut b = PivotBudget::new(0);
        assert!(b.is_exhausted());
        assert!(!b.consume());
        assert_eq!(b.used(), 0);
    }
}
