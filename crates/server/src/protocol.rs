//! The wire protocol: request parsing and response framing.
//!
//! The protocol is line-oriented and human-typable.  Every request is one
//! line — an optional `#<id>` tag followed by a command — and every
//! response is a header line, optionally followed by a body whose exact
//! length the header announces in a `lines=<n>` field:
//!
//! ```text
//! -> QUERY Q(X,Y) :- R(X,Y), S(Y,Z)
//! <- OK rows n=2 vars=X,Y lines=2
//! <- 1 2
//! <- 4 5
//! -> BOGUS
//! <- ERR unknown_command unknown command `BOGUS`
//! ```
//!
//! Headers start with `OK` or `ERR`; `ERR` responses are always a single
//! line carrying a stable machine-readable [`ErrorCode`] followed by a
//! human-readable message.  The framing rule — *no body unless the header
//! says `lines=<n>`* — is what lets a client (or the fuzz suite) read
//! responses without heuristics; [`body_lines`] implements it.

use panda_core::EvaluationStrategy;

/// Hard cap on the length of a request line, in bytes.  Longer lines are
/// rejected with [`ErrorCode::LineTooLong`] before any parsing happens, so
/// a misbehaving client cannot make the server buffer unbounded input.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Stable machine-readable error codes, mirroring the library's structured
/// errors ([`panda_core::StrategyError`], [`panda_entropy::BoundError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The first token is not a known command.
    UnknownCommand,
    /// The command is known but its arguments do not parse.
    MalformedRequest,
    /// The query text does not parse ([`panda_query::ParseError`]).
    ParseError,
    /// A LOAD block failed (bad arity, non-numeric data).
    LoadError,
    /// Yannakakis was requested for a cyclic query.
    CyclicYannakakis,
    /// No tree decomposition could be costed for the requested strategy.
    TdUnavailable,
    /// A configured budget was exceeded under an explicit strategy.
    BudgetExceeded,
    /// The request was cancelled.
    Cancelled,
    /// The LP solver failed (a bug, not an expected outcome).
    SolverError,
    /// The request line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
}

impl ErrorCode {
    /// The stable wire spelling.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::UnknownCommand => "unknown_command",
            ErrorCode::MalformedRequest => "malformed_request",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::LoadError => "load_error",
            ErrorCode::CyclicYannakakis => "cyclic_yannakakis",
            ErrorCode::TdUnavailable => "td_unavailable",
            ErrorCode::BudgetExceeded => "budget_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::SolverError => "solver_error",
            ErrorCode::LineTooLong => "line_too_long",
        }
    }
}

/// A structured wire error: a stable [`ErrorCode`] plus a human-readable
/// message, rendered as the single response line `ERR <code> <message>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The machine-readable code.
    pub code: ErrorCode,
    /// The human-readable message (single line; newlines are collapsed).
    pub message: String,
}

impl WireError {
    /// Builds an error, collapsing any newlines in the message so the
    /// single-line framing invariant cannot be broken by an error text.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        let message = message.into().replace(['\n', '\r'], " ");
        WireError { code, message }
    }

    /// The response line for this error.
    #[must_use]
    pub fn render(&self) -> String {
        format!("ERR {} {}", self.code.code(), self.message)
    }
}

/// One field of a `BUDGET` request: absent fields keep their current
/// value, `none` clears a budget, a number sets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetPatch {
    /// New LP pivot budget, when the `pivots=` field was given.
    pub pivots: Option<Option<u64>>,
    /// New branch budget, when the `branches=` field was given.
    pub branches: Option<Option<usize>>,
    /// New memory rows budget, when the `rows=` field was given.
    pub rows: Option<Option<u64>>,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Liveness check; answers `OK pong`.
    Ping,
    /// Opens a data block for a relation; subsequent lines are rows of
    /// whitespace-separated integers until a bare `END`.
    Load {
        /// The relation name.
        relation: String,
        /// The number of columns per row.
        arity: usize,
    },
    /// Terminates a `LOAD` block.
    End,
    /// Drops every relation in the session database.
    Clear,
    /// Parses, plans and evaluates a conjunctive query.
    Query {
        /// The query text (datalog syntax).
        text: String,
    },
    /// Plans a query and returns the byte-stable EXPLAIN rendering.
    Explain {
        /// The query text (datalog syntax).
        text: String,
    },
    /// Sets (or, with no argument, reports) the session strategy.
    Strategy {
        /// The strategy name, when one was given.
        name: Option<String>,
    },
    /// Patches the session [`panda_core::Budgets`]; always echoes the full
    /// resulting budget state.
    Budget(BudgetPatch),
    /// Session-local plan-cache counters; `STATS GLOBAL` reads the
    /// process-wide counters instead.
    Stats {
        /// `true` for `STATS GLOBAL`.
        global: bool,
    },
    /// Cancels the tagged request `#<id>`, wherever it currently is.
    Cancel {
        /// The tag of the request to cancel.
        id: u64,
    },
    /// Ends the session; answers `OK bye` and closes the connection.
    Quit,
}

/// A request line: an optional `#<id>` tag plus a [`Command`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request tag, when the line started with `#<id>`.
    pub id: Option<u64>,
    /// The command.
    pub command: Command,
}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::MalformedRequest, message)
}

/// Splits off the first whitespace-delimited token.
fn split_token(text: &str) -> (&str, &str) {
    let text = text.trim_start();
    match text.find(char::is_whitespace) {
        Some(i) => {
            let (head, tail) = text.split_at(i);
            (head, tail.trim_start())
        }
        None => (text, ""),
    }
}

/// Parses the strategy names used on the wire — exactly the stable
/// [`EvaluationStrategy::name`] spellings.
#[must_use]
pub fn strategy_from_name(name: &str) -> Option<EvaluationStrategy> {
    [
        EvaluationStrategy::Auto,
        EvaluationStrategy::Yannakakis,
        EvaluationStrategy::StaticTd,
        EvaluationStrategy::Adaptive,
        EvaluationStrategy::GenericJoin,
        EvaluationStrategy::BinaryJoin,
    ]
    .into_iter()
    .find(|strategy| strategy.name() == name)
}

fn parse_budget_patch(args: &str) -> Result<BudgetPatch, WireError> {
    let mut patch = BudgetPatch { pivots: None, branches: None, rows: None };
    for field in args.split_whitespace() {
        let Some((key, value)) = field.split_once('=') else {
            return Err(malformed(format!("budget field `{field}` is not key=value")));
        };
        let parsed_u64 = if value == "none" {
            None
        } else {
            match value.parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    return Err(malformed(format!(
                        "budget value `{value}` is neither an integer nor `none`"
                    )))
                }
            }
        };
        match key {
            "pivots" => patch.pivots = Some(parsed_u64),
            "rows" => patch.rows = Some(parsed_u64),
            "branches" => {
                patch.branches = Some(match parsed_u64 {
                    Some(n) => match usize::try_from(n) {
                        Ok(n) => Some(n),
                        Err(_) => return Err(malformed("branch budget out of range")),
                    },
                    None => None,
                });
            }
            other => return Err(malformed(format!("unknown budget field `{other}`"))),
        }
    }
    Ok(patch)
}

/// Parses one request line (already stripped of its trailing newline).
///
/// Blank lines are the caller's concern ([`crate::session::Session`] skips
/// them); everything else either parses into a [`Request`] or yields a
/// structured [`WireError`] that renders as the response.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let line = line.trim();
    let (id, rest) = match line.strip_prefix('#') {
        Some(tagged) => {
            let (tag, rest) = split_token(tagged);
            match tag.parse::<u64>() {
                Ok(id) => (Some(id), rest),
                Err(_) => return Err(malformed(format!("request tag `#{tag}` is not an integer"))),
            }
        }
        None => (None, line),
    };
    let (keyword, args) = split_token(rest);
    let command = match keyword {
        "PING" => Command::Ping,
        "LOAD" => {
            let (relation, arity_text) = split_token(args);
            if relation.is_empty() || !relation.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(malformed(format!("invalid relation name `{relation}`")));
            }
            let arity = match arity_text.parse::<usize>() {
                Ok(a) if (1..=32).contains(&a) => a,
                _ => return Err(malformed(format!("invalid arity `{arity_text}` (want 1..=32)"))),
            };
            Command::Load { relation: relation.to_string(), arity }
        }
        "END" => Command::End,
        "CLEAR" => Command::Clear,
        "QUERY" => {
            if args.is_empty() {
                return Err(malformed("QUERY needs a query text"));
            }
            Command::Query { text: args.to_string() }
        }
        "EXPLAIN" => {
            if args.is_empty() {
                return Err(malformed("EXPLAIN needs a query text"));
            }
            Command::Explain { text: args.to_string() }
        }
        "STRATEGY" => Command::Strategy { name: (!args.is_empty()).then(|| args.to_string()) },
        "BUDGET" => Command::Budget(parse_budget_patch(args)?),
        "STATS" => match args {
            "" => Command::Stats { global: false },
            "GLOBAL" => Command::Stats { global: true },
            other => return Err(malformed(format!("unknown STATS argument `{other}`"))),
        },
        "CANCEL" => match args.parse::<u64>() {
            Ok(id) => Command::Cancel { id },
            Err(_) => return Err(malformed(format!("CANCEL needs an integer id, got `{args}`"))),
        },
        "QUIT" => Command::Quit,
        other => {
            return Err(WireError::new(
                ErrorCode::UnknownCommand,
                format!("unknown command `{other}`"),
            ))
        }
    };
    Ok(Request { id, command })
}

/// The number of body lines a response header announces: `lines=<n>` on an
/// `OK` header, zero otherwise (including every `ERR` response).  This is
/// the whole framing contract — clients never need look-ahead.
#[must_use]
pub fn body_lines(header: &str) -> usize {
    if !header.starts_with("OK") {
        return 0;
    }
    for field in header.split_whitespace() {
        if let Some(n) = field.strip_prefix("lines=") {
            return n.parse::<usize>().unwrap_or(0);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_commands_parse() {
        let req = parse_request("#42 QUERY Q(X) :- R(X,Y)").unwrap();
        assert_eq!(req.id, Some(42));
        assert_eq!(req.command, Command::Query { text: "Q(X) :- R(X,Y)".to_string() });
        assert_eq!(parse_request("PING").unwrap().command, Command::Ping);
        assert_eq!(parse_request("  QUIT  ").unwrap().command, Command::Quit);
    }

    #[test]
    fn budgets_parse_numbers_and_none() {
        let Command::Budget(patch) =
            parse_request("BUDGET pivots=100 branches=none").unwrap().command
        else {
            panic!("budget command");
        };
        assert_eq!(patch.pivots, Some(Some(100)));
        assert_eq!(patch.branches, Some(None));
        assert_eq!(patch.rows, None);
    }

    #[test]
    fn structured_errors_have_stable_codes() {
        let err = parse_request("FROBNICATE now").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownCommand);
        assert_eq!(err.render(), "ERR unknown_command unknown command `FROBNICATE`");
        assert_eq!(parse_request("#x PING").unwrap_err().code, ErrorCode::MalformedRequest);
        assert_eq!(parse_request("LOAD R 0").unwrap_err().code, ErrorCode::MalformedRequest);
        assert_eq!(parse_request("CANCEL soon").unwrap_err().code, ErrorCode::MalformedRequest);
    }

    #[test]
    fn framing_is_driven_by_the_header() {
        assert_eq!(body_lines("OK rows n=2 vars=X,Y lines=2"), 2);
        assert_eq!(body_lines("OK pong"), 0);
        assert_eq!(body_lines("ERR parse_error lines=9 is data here"), 0);
    }

    #[test]
    fn strategy_names_round_trip() {
        for name in ["auto", "yannakakis", "static-td", "adaptive", "generic-join", "binary-join"] {
            let strategy = strategy_from_name(name).unwrap();
            assert_eq!(strategy.name(), name);
        }
        assert!(strategy_from_name("quantum").is_none());
    }
}
