//! One serving session: a database, a strategy, budgets, and the
//! deterministic request → response state machine.
//!
//! [`Session::handle_line`] is the **single implementation** of the
//! protocol semantics.  The concurrent TCP server ([`mod@crate::serve`]), the
//! stdio mode, the embedded `panda-shell` REPL and the in-process
//! conformance tests all drive this same function, which is what makes
//! their transcripts byte-identical: the serving layer adds transport and
//! scheduling around the session, never behaviour.
//!
//! Responses are pure functions of the session history (the sequence of
//! lines handled so far) plus the two documented exceptions: `STATS
//! GLOBAL` reads process-wide cache counters, and a request whose
//! [`CancelToken`] fires mid-flight answers `ERR cancelled` instead of its
//! normal response.  Everything else — row order, EXPLAIN bytes, error
//! texts — is bit-stable across engines, thread counts and runs.

use std::collections::BTreeSet;

use panda_core::{
    plan_cache_stats, Budgets, CancelToken, EvaluationStrategy, Panda, ReasonCode, StrategyError,
};
use panda_entropy::BoundError;
use panda_query::{parse_query, Var};
use panda_relation::{Database, Relation, Value};

use crate::protocol::{parse_request, BudgetPatch, Command, ErrorCode, WireError, MAX_LINE_BYTES};

/// The response to one request line: zero or more response lines (header
/// first, then exactly the body the header's `lines=` field announces),
/// plus whether the session asked to end.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Reply {
    /// The response lines, in order.  Empty for blank input lines.
    pub lines: Vec<String>,
    /// `true` after `QUIT`: the transport should close after writing.
    pub quit: bool,
}

impl Reply {
    fn none() -> Reply {
        Reply::default()
    }

    fn line(text: String) -> Reply {
        Reply { lines: vec![text], quit: false }
    }

    fn error(err: WireError) -> Reply {
        Reply::line(err.render())
    }
}

/// Session-local plan-cache counters, accumulated from the cache events of
/// this session's own requests (so they are deterministic per session,
/// unlike the process-wide [`plan_cache_stats`] shared by every session).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCacheStats {
    /// Requests whose plan came from the cross-query plan cache.
    pub hits: u64,
    /// Requests that planned cold and populated the cache.
    pub misses: u64,
    /// Inserts by this session that evicted an entry.
    pub evictions: u64,
    /// Requests that bypassed the cache (`PANDA_PLAN_CACHE=off`).
    pub bypasses: u64,
}

impl SessionCacheStats {
    fn absorb(&mut self, events: &[ReasonCode]) {
        for event in events {
            match event {
                ReasonCode::PlanCacheHit => self.hits += 1,
                ReasonCode::PlanCacheMiss => self.misses += 1,
                ReasonCode::PlanCacheEvict => self.evictions += 1,
                ReasonCode::PlanCacheBypass => self.bypasses += 1,
                _ => {}
            }
        }
    }
}

/// An open `LOAD` block: rows accumulate until `END`; the first bad data
/// line poisons the block (remaining lines are still consumed so the
/// stream stays in sync) and `END` then reports the error and discards.
#[derive(Debug, Clone)]
struct LoadState {
    relation: String,
    arity: usize,
    rows: Vec<Vec<Value>>,
    error: Option<WireError>,
}

/// A serving session.  See the module docs for the determinism contract.
#[derive(Debug, Default)]
pub struct Session {
    db: Database,
    strategy: Option<EvaluationStrategy>,
    budgets: Budgets,
    load: Option<LoadState>,
    /// Tags cancelled before their request arrived: the request, when it
    /// does arrive, answers `ERR cancelled` deterministically.
    pending_cancels: BTreeSet<u64>,
    /// Tags whose request has already been answered.
    done: BTreeSet<u64>,
    stats: SessionCacheStats,
}

impl Session {
    /// A fresh session: empty database, `auto` strategy, unlimited budgets.
    #[must_use]
    pub fn new() -> Session {
        Session::default()
    }

    /// The session's plan-cache counters (the `STATS` response data).
    #[must_use]
    pub fn cache_stats(&self) -> SessionCacheStats {
        self.stats
    }

    fn strategy(&self) -> EvaluationStrategy {
        self.strategy.unwrap_or(EvaluationStrategy::Auto)
    }

    /// Handles one request line with no external cancellation attached.
    pub fn handle_line(&mut self, raw: &str) -> Reply {
        self.handle_line_with(raw, None)
    }

    /// Handles one request line.  `cancel`, when supplied by a concurrent
    /// transport, is attached to the request's planner so an out-of-band
    /// `CANCEL` can abort it mid-flight.
    pub fn handle_line_with(&mut self, raw: &str, cancel: Option<&CancelToken>) -> Reply {
        if raw.len() > MAX_LINE_BYTES {
            return Reply::error(WireError::new(
                ErrorCode::LineTooLong,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
        let line = raw.trim_end_matches(['\r', '\n']);
        if self.load.is_some() && !is_cancel_line(line) {
            return self.handle_load_line(line);
        }
        if line.trim().is_empty() {
            return Reply::none();
        }
        let request = match parse_request(line) {
            Ok(request) => request,
            Err(err) => return Reply::error(err),
        };
        if let Command::Cancel { id } = request.command {
            return self.handle_cancel(id);
        }
        // A tag cancelled before its request arrived aborts deterministically.
        if let Some(id) = request.id {
            if self.pending_cancels.remove(&id) {
                self.done.insert(id);
                return Reply::error(WireError::new(
                    ErrorCode::Cancelled,
                    format!("request #{id} was cancelled before it started"),
                ));
            }
        }
        let reply = match request.command {
            Command::Ping => Reply::line("OK pong".to_string()),
            Command::Load { relation, arity } => {
                self.load = Some(LoadState { relation, arity, rows: Vec::new(), error: None });
                Reply::none()
            }
            Command::End => Reply::error(WireError::new(
                ErrorCode::MalformedRequest,
                "END outside a LOAD block",
            )),
            Command::Clear => {
                self.db = Database::new();
                Reply::line("OK cleared".to_string())
            }
            Command::Query { text } => self.run_query(&text, cancel),
            Command::Explain { text } => self.run_explain(&text, cancel),
            Command::Strategy { name } => self.set_strategy(name.as_deref()),
            Command::Budget(patch) => self.patch_budgets(patch),
            Command::Stats { global } => self.render_stats(global),
            Command::Cancel { .. } => Reply::none(), // handled above
            Command::Quit => Reply { lines: vec!["OK bye".to_string()], quit: true },
        };
        if let Some(id) = request.id {
            self.done.insert(id);
        }
        reply
    }

    fn handle_load_line(&mut self, line: &str) -> Reply {
        let trimmed = line.trim();
        if trimmed == "END" {
            let Some(load) = self.load.take() else {
                return Reply::none(); // unreachable: guarded by the caller
            };
            if let Some(err) = load.error {
                return Reply::error(err);
            }
            let relation = Relation::from_rows(load.arity, load.rows).deduped();
            let rows = relation.len();
            self.db.insert(&load.relation, relation);
            return Reply::line(format!("OK loaded rel={} rows={rows}", load.relation));
        }
        let Some(load) = self.load.as_mut() else {
            return Reply::none(); // unreachable: guarded by the caller
        };
        if load.error.is_some() || trimmed.is_empty() {
            return Reply::none();
        }
        let mut row: Vec<Value> = Vec::with_capacity(load.arity);
        for token in trimmed.split_whitespace() {
            match token.parse::<Value>() {
                Ok(v) => row.push(v),
                Err(_) => {
                    load.error = Some(WireError::new(
                        ErrorCode::LoadError,
                        format!("non-integer value `{token}` in LOAD {}", load.relation),
                    ));
                    return Reply::none();
                }
            }
        }
        if row.len() != load.arity {
            load.error = Some(WireError::new(
                ErrorCode::LoadError,
                format!(
                    "row has {} values but LOAD {} declared arity {}",
                    row.len(),
                    load.relation,
                    load.arity
                ),
            ));
            return Reply::none();
        }
        load.rows.push(row);
        Reply::none()
    }

    fn handle_cancel(&mut self, id: u64) -> Reply {
        let state = if self.done.contains(&id) {
            "done"
        } else {
            self.pending_cancels.insert(id);
            "pending"
        };
        Reply::line(format!("OK cancel id={id} state={state}"))
    }

    fn panda_for(&self, text: &str, cancel: Option<&CancelToken>) -> Result<Panda, WireError> {
        let query =
            parse_query(text).map_err(|e| WireError::new(ErrorCode::ParseError, e.to_string()))?;
        let mut panda = Panda::new(query).with_budgets(self.budgets);
        if let Some(token) = cancel {
            panda = panda.with_cancel_token(token.clone());
        }
        Ok(panda)
    }

    fn run_query(&mut self, text: &str, cancel: Option<&CancelToken>) -> Reply {
        let panda = match self.panda_for(text, cancel) {
            Ok(panda) => panda,
            Err(err) => return Reply::error(err),
        };
        match panda.try_evaluate_with_events(&self.db, self.strategy()) {
            Ok((result, events)) => {
                self.stats.absorb(&events);
                let query = panda.query();
                if query.is_boolean() {
                    let truth = if result.is_empty() { "false" } else { "true" };
                    return Reply {
                        lines: vec![
                            format!("OK rows n={} vars=() lines=1", result.len()),
                            truth.to_string(),
                        ],
                        quit: false,
                    };
                }
                let order: Vec<Var> = query.free_vars().to_vec();
                let names: Vec<&str> = order
                    .iter()
                    .map(|v| query.var_names().get(v.0 as usize).map_or("?", String::as_str))
                    .collect();
                let rows = result.canonical_rows_ordered(&order);
                let mut lines = Vec::with_capacity(rows.len() + 1);
                lines.push(format!(
                    "OK rows n={} vars={} lines={}",
                    rows.len(),
                    names.join(","),
                    rows.len()
                ));
                for row in rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    lines.push(cells.join(" "));
                }
                Reply { lines, quit: false }
            }
            Err(err) => Reply::error(wire_strategy_error(&err)),
        }
    }

    fn run_explain(&mut self, text: &str, cancel: Option<&CancelToken>) -> Reply {
        let panda = match self.panda_for(text, cancel) {
            Ok(panda) => panda,
            Err(err) => return Reply::error(err),
        };
        match panda.explain_with(&self.db, self.strategy()) {
            Ok(explain) => {
                self.stats.absorb(&explain.report.cache_events);
                let text = explain.to_string();
                let body: Vec<String> = text.lines().map(str::to_string).collect();
                let mut lines = Vec::with_capacity(body.len() + 1);
                lines.push(format!("OK explain lines={}", body.len()));
                lines.extend(body);
                Reply { lines, quit: false }
            }
            Err(err) => Reply::error(wire_bound_error(&err)),
        }
    }

    fn set_strategy(&mut self, name: Option<&str>) -> Reply {
        if let Some(name) = name {
            match crate::protocol::strategy_from_name(name) {
                Some(strategy) => self.strategy = Some(strategy),
                None => {
                    return Reply::error(WireError::new(
                        ErrorCode::MalformedRequest,
                        format!("unknown strategy `{name}`"),
                    ))
                }
            }
        }
        Reply::line(format!("OK strategy={}", self.strategy().name()))
    }

    fn patch_budgets(&mut self, patch: BudgetPatch) -> Reply {
        if let Some(pivots) = patch.pivots {
            self.budgets.lp_pivot_budget = pivots;
        }
        if let Some(branches) = patch.branches {
            self.budgets.branch_budget = branches;
        }
        if let Some(rows) = patch.rows {
            self.budgets.memory_rows_budget = rows;
        }
        Reply::line(format!(
            "OK budgets pivots={} branches={} rows={}",
            fmt_opt(self.budgets.lp_pivot_budget),
            fmt_opt(self.budgets.branch_budget.map(|b| b as u64)),
            fmt_opt(self.budgets.memory_rows_budget),
        ))
    }

    fn render_stats(&self, global: bool) -> Reply {
        if global {
            let s = plan_cache_stats();
            return Reply::line(format!(
                "OK stats-global hits={} misses={} evictions={} entries={}",
                s.hits, s.misses, s.evictions, s.entries
            ));
        }
        let s = self.stats;
        Reply::line(format!(
            "OK stats hits={} misses={} evictions={} bypasses={}",
            s.hits, s.misses, s.evictions, s.bypasses
        ))
    }
}

/// `true` when a line is a `CANCEL` command — the one command that stays a
/// command even inside a `LOAD` data block (its keyword cannot be numeric
/// data, so reserving it costs nothing).
fn is_cancel_line(line: &str) -> bool {
    matches!(parse_request(line), Ok(req) if matches!(req.command, Command::Cancel { .. }))
}

fn fmt_opt(value: Option<u64>) -> String {
    value.map_or_else(|| "none".to_string(), |n| n.to_string())
}

fn wire_strategy_error(err: &StrategyError) -> WireError {
    match err {
        StrategyError::CyclicYannakakis => {
            WireError::new(ErrorCode::CyclicYannakakis, err.to_string())
        }
        StrategyError::TdUnavailable { source: BoundError::Solver(_), .. } => {
            WireError::new(ErrorCode::SolverError, err.to_string())
        }
        StrategyError::TdUnavailable { .. } => {
            WireError::new(ErrorCode::TdUnavailable, err.to_string())
        }
        StrategyError::BudgetExceeded { reason, .. } => {
            WireError::new(ErrorCode::BudgetExceeded, format!("reason={} {err}", reason.code()))
        }
        StrategyError::Cancelled { .. } => WireError::new(ErrorCode::Cancelled, err.to_string()),
    }
}

fn wire_bound_error(err: &BoundError) -> WireError {
    match err {
        BoundError::Cancelled => WireError::new(ErrorCode::Cancelled, err.to_string()),
        BoundError::PivotBudgetExhausted => {
            WireError::new(ErrorCode::BudgetExceeded, format!("reason=lp_budget_exhausted {err}"))
        }
        BoundError::Solver(_) => WireError::new(ErrorCode::SolverError, err.to_string()),
        BoundError::Unbounded => WireError::new(ErrorCode::TdUnavailable, err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(session: &mut Session, lines: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        for line in lines {
            out.extend(session.handle_line(line).lines);
        }
        out
    }

    #[test]
    fn a_session_loads_queries_and_explains() {
        let mut session = Session::new();
        let out = feed(
            &mut session,
            &[
                "PING",
                "LOAD R 2",
                "1 2",
                "2 3",
                "1 2",
                "END",
                "LOAD S 2",
                "2 4",
                "3 5",
                "END",
                "QUERY Q(A,C) :- R(A,B), S(B,C)",
            ],
        );
        assert_eq!(
            out,
            vec![
                "OK pong",
                "OK loaded rel=R rows=2",
                "OK loaded rel=S rows=2",
                "OK rows n=2 vars=A,C lines=2",
                "1 4",
                "2 5",
            ]
        );
        let explain = session.handle_line("EXPLAIN Q(A,B) :- R(A,B), S(B,C)");
        let header = explain.lines.first().cloned().unwrap_or_default();
        assert!(header.starts_with("OK explain lines="), "{header}");
        assert_eq!(crate::protocol::body_lines(&header), explain.lines.len() - 1);
        assert!(explain.lines.iter().any(|l| l == "strategy: yannakakis"));
    }

    #[test]
    fn boolean_queries_answer_true_or_false() {
        let mut session = Session::new();
        feed(&mut session, &["LOAD E 2", "1 2", "2 3", "1 3", "END"]);
        let yes = session.handle_line("QUERY Tri() :- E(A,B), E(B,C), E(A,C)");
        assert_eq!(yes.lines, vec!["OK rows n=1 vars=() lines=1", "true"]);
        let no = session.handle_line("QUERY Q() :- E(A,A)");
        assert_eq!(no.lines, vec!["OK rows n=0 vars=() lines=1", "false"]);
    }

    #[test]
    fn load_errors_poison_the_block_and_leave_the_session_usable() {
        let mut session = Session::new();
        let out = feed(&mut session, &["LOAD R 2", "1 2", "1 nope", "3 4", "END"]);
        assert_eq!(out.len(), 1);
        assert!(out.iter().all(|l| l.starts_with("ERR load_error")), "{out:?}");
        // The bad block was discarded; a clean reload works.
        let out = feed(&mut session, &["LOAD R 2", "7 8", "END", "QUERY Q(A,B) :- R(A,B)"]);
        assert_eq!(out, vec!["OK loaded rel=R rows=1", "OK rows n=1 vars=A,B lines=1", "7 8"]);
    }

    #[test]
    fn cancel_before_start_is_deterministic() {
        let mut session = Session::new();
        feed(&mut session, &["LOAD R 2", "1 2", "END"]);
        let ack = session.handle_line("CANCEL 7");
        assert_eq!(ack.lines, vec!["OK cancel id=7 state=pending"]);
        let reply = session.handle_line("#7 QUERY Q(A,B) :- R(A,B)");
        assert_eq!(reply.lines.len(), 1);
        assert!(reply.lines.iter().all(|l| l.starts_with("ERR cancelled")), "{reply:?}");
        // The tag is now done; cancelling again reports that, and the
        // session still answers queries.
        let ack = session.handle_line("CANCEL 7");
        assert_eq!(ack.lines, vec!["OK cancel id=7 state=done"]);
        let reply = session.handle_line("#8 QUERY Q(A,B) :- R(A,B)");
        assert_eq!(reply.lines, vec!["OK rows n=1 vars=A,B lines=1", "1 2"]);
    }

    #[test]
    fn a_fired_token_cancels_the_request_but_not_the_session() {
        let mut session = Session::new();
        feed(&mut session, &["LOAD R 2", "1 2", "END"]);
        let token = CancelToken::new();
        token.cancel();
        let reply = session.handle_line_with("QUERY Q(A,B) :- R(A,B)", Some(&token));
        assert!(reply.lines.iter().all(|l| l.starts_with("ERR cancelled")), "{reply:?}");
        let reply = session.handle_line("QUERY Q(A,B) :- R(A,B)");
        assert_eq!(reply.lines, vec!["OK rows n=1 vars=A,B lines=1", "1 2"]);
    }

    #[test]
    fn strategy_budget_and_stats_round_trip() {
        let mut session = Session::new();
        assert_eq!(session.handle_line("STRATEGY").lines, vec!["OK strategy=auto"]);
        assert_eq!(
            session.handle_line("STRATEGY generic-join").lines,
            vec!["OK strategy=generic-join"]
        );
        assert_eq!(
            session.handle_line("STRATEGY warp-drive").lines,
            vec!["ERR malformed_request unknown strategy `warp-drive`"]
        );
        assert_eq!(
            session.handle_line("BUDGET pivots=100 rows=50").lines,
            vec!["OK budgets pivots=100 branches=none rows=50"]
        );
        assert_eq!(
            session.handle_line("BUDGET pivots=none").lines,
            vec!["OK budgets pivots=none branches=none rows=50"]
        );
        let stats = session.handle_line("STATS");
        assert_eq!(stats.lines, vec!["OK stats hits=0 misses=0 evictions=0 bypasses=0"]);
        let global = session.handle_line("STATS GLOBAL");
        assert_eq!(global.lines.len(), 1);
        assert!(global.lines.iter().all(|l| l.starts_with("OK stats-global hits=")));
    }

    #[test]
    fn quit_sets_the_quit_flag() {
        let mut session = Session::new();
        let reply = session.handle_line("QUIT");
        assert_eq!(reply.lines, vec!["OK bye"]);
        assert!(reply.quit);
    }

    #[test]
    fn explain_matches_the_library_rendering_byte_for_byte() {
        let mut session = Session::new();
        feed(
            &mut session,
            &[
                "LOAD R 2", "1 2", "2 3", "END", "LOAD S 2", "2 3", "3 4", "END", "LOAD T 2",
                "3 4", "END", "LOAD U 2", "4 1", "END",
            ],
        );
        let text = "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)";
        let reply = session.handle_line(&format!("EXPLAIN {text}"));
        let via_wire = reply.lines.get(1..).map(<[String]>::to_vec).unwrap_or_default();

        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 3], [3, 4]]));
        db.insert("T", Relation::from_rows(2, vec![[3, 4]]));
        db.insert("U", Relation::from_rows(2, vec![[4, 1]]));
        let library = Panda::new(parse_query(text).unwrap()).explain(&db).unwrap().to_string();
        let library_lines: Vec<String> = library.lines().map(str::to_string).collect();
        assert_eq!(via_wire, library_lines);
    }
}
