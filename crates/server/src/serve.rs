//! Transports: the concurrent TCP serve loop and the sequential stdio loop.
//!
//! Each TCP connection gets its own [`Session`] plus two threads: a
//! *reader* that parses lines off the socket and a *worker* that drains
//! them through [`Session::handle_line_with`] in arrival order.  The
//! hand-off queue is **bounded**: a full queue blocks the reader (and,
//! through TCP flow control, the client) instead of dropping or reordering
//! requests, so backpressure never changes the response stream — each
//! client's responses are the same bytes it would get from an unloaded
//! server, just later.
//!
//! The one deliberately racy command is `CANCEL <id>`: the reader handles
//! it out-of-band so it can reach a request that is already executing.  A
//! queued or in-flight target has its [`CancelToken`] fired and the ack is
//! written immediately (it may interleave *between* whole responses —
//! never inside one); an unknown id falls through to the session, whose
//! pending/done answer is deterministic.  Scripted conformance transcripts
//! therefore avoid out-of-band `CANCEL`; everything else on a single
//! connection is bit-reproducible.

// panda-lint: allow-file(D2) -- this file IS the serving layer's
// scheduler: the mutex/condvar pair implements the bounded FIFO hand-off
// between the reader and the worker, and per-request CancelTokens are
// one-way abort flags.  Requests are executed strictly in arrival order by
// a single worker per connection, so scheduling can delay responses but
// never reorder or rewrite them; the determinism contract is pinned by
// tests/server_concurrency.rs.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

use panda_core::CancelToken;

use crate::protocol::{parse_request, Command, ErrorCode, WireError, MAX_LINE_BYTES};
use crate::session::{Reply, Session};

/// How many parsed requests may wait between the reader and the worker of
/// one connection before the reader stops reading (backpressure).
pub const QUEUE_CAP: usize = 64;

/// Options for [`serve`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Serve a single connection, then return (used by tests and CI).
    pub once: bool,
}

struct Job {
    line: String,
    id: Option<u64>,
    cancel: CancelToken,
}

#[derive(Default)]
struct ConnState {
    queue: VecDeque<Job>,
    inflight: Option<(Option<u64>, CancelToken)>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<ConnState>,
    ready: Condvar,
    space: Condvar,
}

/// Locks a mutex, recovering the guard from a poisoned lock (a panicking
/// peer thread must not wedge the connection).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_reply(writer: &Mutex<BufWriter<TcpStream>>, lines: &[String]) -> io::Result<()> {
    let mut w = lock(writer);
    for line in lines {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// The reader half: reads request lines, answers oversized lines and
/// out-of-band cancels directly, and enqueues everything else for the
/// worker, blocking while the queue is full.
fn reader_loop(
    stream: TcpStream,
    shared: &Shared,
    writer: &Mutex<BufWriter<TcpStream>>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // take() bounds how much one line can buffer; a line that hits the
        // cap without a newline is answered and the remainder drained.
        let mut limited = io::Read::take(&mut reader, (MAX_LINE_BYTES + 2) as u64);
        let n = limited.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        if line.len() > MAX_LINE_BYTES {
            // Drain the rest of the oversized line so framing resyncs at
            // the next newline.
            if !line.ends_with('\n') {
                let mut rest = Vec::new();
                reader.read_until(b'\n', &mut rest)?;
            }
            let err = WireError::new(
                ErrorCode::LineTooLong,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            );
            write_reply(writer, &[err.render()])?;
            continue;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        // Out-of-band cancellation: reach queued and in-flight requests.
        if let Ok(req) = parse_request(trimmed) {
            if let Command::Cancel { id } = req.command {
                let state = {
                    let st = lock(&shared.state);
                    if let Some(job) = st.queue.iter().find(|j| j.id == Some(id)) {
                        job.cancel.cancel();
                        Some("queued")
                    } else if let Some((Some(inflight), token)) = st.inflight.as_ref() {
                        if *inflight == id {
                            token.cancel();
                            Some("inflight")
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                };
                if let Some(state) = state {
                    write_reply(writer, &[format!("OK cancel id={id} state={state}")])?;
                    continue;
                }
                // Unknown here: the session answers pending/done in order.
            }
        }
        let id = parse_request(trimmed).ok().and_then(|r| r.id);
        let job = Job { line: trimmed.to_string(), id, cancel: CancelToken::new() };
        let mut st = lock(&shared.state);
        while st.queue.len() >= QUEUE_CAP && !st.shutdown {
            st = shared.space.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.shutdown {
            break;
        }
        st.queue.push_back(job);
        shared.ready.notify_all();
    }
    // EOF: let the worker drain the queue, then stop.
    let mut st = lock(&shared.state);
    st.shutdown = true;
    shared.ready.notify_all();
    Ok(())
}

/// The worker half: executes requests strictly in arrival order through
/// the shared [`Session`] semantics and writes whole responses.
fn worker_loop(
    stream: &TcpStream,
    shared: &Shared,
    writer: &Mutex<BufWriter<TcpStream>>,
) -> io::Result<()> {
    let mut session = Session::new();
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    shared.space.notify_all();
                    st.inflight = Some((job.id, job.cancel.clone()));
                    break job;
                }
                if st.shutdown {
                    return Ok(());
                }
                st = shared.ready.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let reply: Reply = session.handle_line_with(&job.line, Some(&job.cancel));
        write_reply(writer, &reply.lines)?;
        {
            let mut st = lock(&shared.state);
            st.inflight = None;
            if reply.quit {
                st.shutdown = true;
            }
            shared.ready.notify_all();
            shared.space.notify_all();
        }
        if reply.quit {
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(());
        }
    }
}

/// Serves one accepted connection to completion (QUIT or EOF).
pub fn serve_connection(stream: TcpStream) -> io::Result<()> {
    let writer = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let shared = Arc::new(Shared {
        state: Mutex::new(ConnState::default()),
        ready: Condvar::new(),
        space: Condvar::new(),
    });
    let read_stream = stream.try_clone()?;
    let reader = {
        let shared = Arc::clone(&shared);
        let writer = Arc::clone(&writer);
        // panda-lint: allow(D2) -- one reader thread per connection; see
        // the file header for why this cannot affect response content.
        thread::spawn(move || {
            let _ = reader_loop(read_stream, &shared, &writer);
        })
    };
    let worker_result = worker_loop(&stream, &shared, &writer);
    // Unblock and join the reader: close the socket (stops a blocked read)
    // and wake any wait on the queue.
    let _ = stream.shutdown(Shutdown::Both);
    {
        let mut st = lock(&shared.state);
        st.shutdown = true;
        shared.ready.notify_all();
        shared.space.notify_all();
    }
    let _ = reader.join();
    worker_result
}

/// Accepts and serves connections on `listener`.  Each connection runs its
/// own session concurrently; with [`ServeOptions::once`] the first
/// connection is served to completion and the function returns.
pub fn serve(listener: &TcpListener, options: ServeOptions) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        if options.once {
            return serve_connection(stream);
        }
        // panda-lint: allow(D2) -- one handler thread per connection;
        // sessions share no mutable state (the plan cache is already
        // internally synchronised and order-insensitive by construction).
        thread::spawn(move || {
            let _ = serve_connection(stream);
        });
    }
    Ok(())
}

/// Serves a single session over stdin/stdout, strictly sequentially: the
/// deterministic reference transport (no threads, no out-of-band cancel).
pub fn serve_stdio() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let mut session = Session::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = stdin.lock().read_line(&mut line)?;
        if n == 0 {
            return out.flush();
        }
        let reply = session.handle_line(&line);
        for l in &reply.lines {
            out.write_all(l.as_bytes())?;
            out.write_all(b"\n")?;
        }
        out.flush()?;
        if reply.quit {
            return Ok(());
        }
    }
}
