//! `panda-server`: a long-lived serving front-end for the PANDA engine.
//!
//! The server exposes the [`panda_core::Panda`] facade through a
//! line-oriented, human-typable protocol over TCP or stdio (dependency
//! free: `std` networking only).  Each connection owns a [`session::Session`]
//! — a private [`panda_relation::Database`], an evaluation strategy and
//! per-request [`panda_core::Budgets`] — and drives the same
//! parse → bind → plan → execute pipeline as the library:
//!
//! ```text
//! LOAD R 2          -- open a data block (rows until END)
//! 1 2
//! 2 3
//! END               -- OK loaded rel=R rows=2
//! QUERY Q(A,B) :- R(A,B)
//!                   -- OK rows n=2 vars=A,B lines=2   (+ 2 row lines)
//! EXPLAIN Q(A,B) :- R(A,B)
//!                   -- OK explain lines=<n>  (+ byte-stable EXPLAIN text)
//! ```
//!
//! Design invariants, shared with the rest of the workspace:
//!
//! * **Determinism** — responses are pure functions of the session's
//!   request history.  Rows arrive in canonical order, EXPLAIN bodies are
//!   byte-identical to [`panda_core::Panda::explain`], and transcripts are
//!   stable across engines, thread counts, runs and transports
//!   (`tests/server_protocol.rs`, `tests/server_concurrency.rs`).
//! * **Cooperative, counter-based cancellation** — `CANCEL <id>` fires a
//!   [`panda_core::CancelToken`] polled at the planner's deterministic
//!   pivot counters, never a wall clock (the D3 lint's contract).  A
//!   cancelled request answers `ERR cancelled`; the session survives.
//! * **Backpressure, not load shedding** — the per-connection request
//!   queue is bounded and a full queue blocks the reader, so an overloaded
//!   server delays responses but never drops, reorders or rewrites them.
//! * **Structured errors** — every failure is `ERR <code> <message>` with
//!   a stable [`protocol::ErrorCode`] mirroring the library's
//!   [`panda_core::StrategyError`] and reason codes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod serve;
pub mod session;

pub use protocol::{body_lines, parse_request, Command, ErrorCode, Request, WireError};
pub use serve::{serve, serve_connection, serve_stdio, ServeOptions, QUEUE_CAP};
pub use session::{Reply, Session, SessionCacheStats};
