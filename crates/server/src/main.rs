//! The `panda-server` binary: serve the PANDA engine over TCP or stdio.
//!
//! ```text
//! panda-server --listen 127.0.0.1:4860   # TCP; prints `listening on <addr>`
//! panda-server --listen 127.0.0.1:0      # pick a free port (printed)
//! panda-server --stdio                   # one sequential session on stdio
//! panda-server --listen ... --once       # serve one connection, then exit
//! ```

#![forbid(unsafe_code)]

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;

use panda_server::serve::{serve, serve_stdio, ServeOptions};

const USAGE: &str = "usage: panda-server [--listen <addr>] [--stdio] [--once]";

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut stdio = false;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr),
                None => {
                    eprintln!("--listen needs an address\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--stdio" => stdio = true,
            "--once" => once = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if stdio {
        return match serve_stdio() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("panda-server: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let addr = listen.unwrap_or_else(|| "127.0.0.1:0".to_string());
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("panda-server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(local) => {
            // Announce the bound address (port 0 resolves here) so scripts
            // can connect; flush so readers see it before the first accept.
            println!("listening on {local}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("panda-server: {e}");
            return ExitCode::FAILURE;
        }
    }
    match serve(&listener, ServeOptions { once }) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("panda-server: {e}");
            ExitCode::FAILURE
        }
    }
}
