//! E9 — worst-case-optimal join vs binary joins on the triangle query
//! (the AGM-bound experiment of Section 2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{BinaryJoinPlan, GenericJoin};
use panda_workloads::{erdos_renyi_db, triangle_query, zipf_graph_db};
use std::time::Duration;

fn bench_triangle(c: &mut Criterion) {
    let query = triangle_query();
    let instances = [
        ("erdos_renyi", erdos_renyi_db(&["R", "S", "T"], 400, 4000, 1)),
        ("zipf_skew", zipf_graph_db(&["R", "S", "T"], 400, 4000, 1.1, 2)),
    ];
    let mut group = c.benchmark_group("triangle_join");
    for (label, db) in &instances {
        group.bench_with_input(BenchmarkId::new("wcoj", label), db, |b, db| {
            b.iter(|| GenericJoin::evaluate(&query, db).len());
        });
        group.bench_with_input(BenchmarkId::new("binary", label), db, |b, db| {
            b.iter(|| BinaryJoinPlan::new().evaluate(&query, db).len());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! { name = benches; config = config(); targets = bench_triangle }
criterion_main!(benches);
