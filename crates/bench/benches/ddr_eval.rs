//! E7 — benchmarks the evaluation of the disjunctive datalog rule of
//! Eq. (38) on the fhtw-hard double-star instance (Table 2's heavy/light
//! partitioning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::DdrEvaluator;
use panda_entropy::StatisticsSet;
use panda_query::{BagSelector, DisjunctiveRule, Var, VarSet};
use panda_workloads::{double_star_db, four_cycle_projected};
use std::time::Duration;

fn bench_ddr(c: &mut Criterion) {
    let query = four_cycle_projected();
    let selector = BagSelector::new(vec![
        VarSet::from_iter([Var(0), Var(1), Var(2)]),
        VarSet::from_iter([Var(1), Var(2), Var(3)]),
    ]);
    let rule = DisjunctiveRule::for_bag_selector(&query, &selector);
    let mut group = c.benchmark_group("ddr_eq38_double_star");
    for half in [128u64, 512] {
        let db = double_star_db(half);
        let stats = StatisticsSet::measure(&query, &db);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        group.bench_with_input(BenchmarkId::new("N", half * 2), &db, |b, db| {
            b.iter(|| evaluator.evaluate(db).max_target_size());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench_ddr }
criterion_main!(benches);
