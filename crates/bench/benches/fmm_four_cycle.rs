//! E12 — Boolean 4-cycle detection: matrix-product strategy vs the
//! combinatorial hash-join strategy (Section 9.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_fmm::{detect_four_cycle_fmm, detect_four_cycle_join};
use panda_workloads::erdos_renyi_db;
use std::time::Duration;

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("boolean_four_cycle_detection");
    for n in [300u64, 900] {
        let db = erdos_renyi_db(&["R", "S", "T", "U"], n, (3 * n) as usize, 4);
        group.bench_with_input(BenchmarkId::new("matrix_products", n), &db, |b, db| {
            b.iter(|| detect_four_cycle_fmm(db));
        });
        group.bench_with_input(BenchmarkId::new("hash_joins", n), &db, |b, db| {
            b.iter(|| detect_four_cycle_join(db));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! { name = benches; config = config(); targets = bench_detection }
criterion_main!(benches);
