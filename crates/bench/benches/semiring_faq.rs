//! E10 — FAQ aggregates over different semirings (Section 9.1): counting
//! and minimum-weight on acyclic and cyclic bodies.

use criterion::{criterion_group, criterion_main, Criterion};
use panda_core::faq;
use panda_query::parse_query;
use panda_workloads::{erdos_renyi_db, four_cycle_boolean, path_instance};
use std::time::Duration;

fn bench_faq(c: &mut Criterion) {
    let path = parse_query("P() :- R(A,B), S(B,C), T(C,D)").unwrap();
    let path_db = path_instance(4000, 4, 5);
    let cycle = four_cycle_boolean();
    let cycle_db = erdos_renyi_db(&["R", "S", "T", "U"], 60, 700, 9);
    let mut group = c.benchmark_group("faq_semirings");
    group.bench_function("count_acyclic_path", |b| {
        b.iter(|| faq::count_assignments(&path, &path_db));
    });
    group.bench_function("min_weight_acyclic_path", |b| {
        b.iter(|| faq::min_weight(&path, &path_db, &|_, row| (row[0] + row[1]) as i64));
    });
    group.bench_function("count_cyclic_four_cycle", |b| {
        b.iter(|| faq::count_assignments(&cycle, &cycle_db));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! { name = benches; config = config(); targets = bench_faq }
criterion_main!(benches);
