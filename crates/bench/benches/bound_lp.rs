//! E2 — benchmarks the polymatroid-bound LP (Theorem 4.1) for the paper's
//! full 4-cycle query under the statistics S_full of Eq. (16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_entropy::polymatroid_bound;
use panda_workloads::{four_cycle_full, s_full_statistics};
use std::time::Duration;

fn bench_bound_lp(c: &mut Criterion) {
    let query = four_cycle_full();
    let mut group = c.benchmark_group("polymatroid_bound_qfull");
    for c_exp in [0u32, 10, 20] {
        let stats = s_full_statistics(1 << 20, 1 << c_exp);
        group.bench_with_input(BenchmarkId::new("C=2^", c_exp), &stats, |b, stats| {
            b.iter(|| {
                polymatroid_bound(query.all_vars(), query.all_vars(), stats).unwrap().log_bound
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench_bound_lp }
criterion_main!(benches);
