//! E2 — benchmarks the polymatroid-bound LP (Theorem 4.1) for the paper's
//! full 4-cycle query under the statistics S_full of Eq. (16), plus the
//! 5-variable configuration (the full 5-cycle bound over Γ₅).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_bench::{lp_bench_config, lp_bench_config_5var};
use panda_entropy::polymatroid_bound;
use panda_workloads::{
    five_cycle_projected, four_cycle_full, s_full_statistics, s_pentagon_statistics,
};

fn bench_bound_lp(c: &mut Criterion) {
    let query = four_cycle_full();
    let mut group = c.benchmark_group("polymatroid_bound_qfull");
    for c_exp in [0u32, 10, 20] {
        let stats = s_full_statistics(1 << 20, 1 << c_exp);
        group.bench_with_input(BenchmarkId::new("C=2^", c_exp), &stats, |b, stats| {
            b.iter(|| {
                polymatroid_bound(query.all_vars(), query.all_vars(), stats).unwrap().log_bound
            });
        });
    }
    group.finish();
}

/// The 5-variable polymatroid bound `max h(ABCDE)` over Γ₅ under identical
/// cardinalities — a single large LP (31 entropy variables, ~100 rows).
fn bench_bound_lp_five(c: &mut Criterion) {
    let query = five_cycle_projected();
    let stats = s_pentagon_statistics(1 << 20);
    let mut group = c.benchmark_group("polymatroid_bound_5cycle");
    group.bench_function("full_target", |b| {
        b.iter(|| polymatroid_bound(query.all_vars(), query.all_vars(), &stats).unwrap().log_bound)
    });
    group.finish();
}

fn config() -> Criterion {
    lp_bench_config()
}

fn config5() -> Criterion {
    lp_bench_config_5var()
}

criterion_group! { name = benches; config = config(); targets = bench_bound_lp }
criterion_group! { name = benches5; config = config5(); targets = bench_bound_lp_five }
criterion_main!(benches, benches5);
