//! Sequential-vs-parallel A/B for the parallel execution layer: every
//! group benchmarks the *same* computation under `Engine::Sequential` and
//! `Engine::Parallel(4)` back to back (interleaved in one process, so the
//! pair shares cache warm-up and machine state).  Outputs are bit-identical
//! by construction — the `parallel_determinism` suite pins that — so the
//! rows differ in wall-clock time only.
//!
//! Covered fan-outs: the generic join's top-level candidate split, the
//! adaptive plan's degree branches (E8), DDR branch evaluation (E7), the
//! sharded probe-side `par_join`, and the 5-cycle selector LP chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::config::{Engine, Parallelism};
use panda_core::{DdrEvaluator, GenericJoin, PandaEvaluator};
use panda_entropy::{subw_with_tds, subw_with_tds_parallel, StatisticsSet};
use panda_query::{BagSelector, DisjunctiveRule, TreeDecomposition, Var, VarSet};
use panda_relation::{operators, Relation};
use panda_workloads::{
    double_star_db, erdos_renyi_db, five_cycle_projected, four_cycle_full, four_cycle_projected,
    s_pentagon_statistics, s_square_statistics, triangle_query,
};
use std::time::Duration;

/// The thread count of the parallel column, matching the CI matrix.
const PAR_THREADS: usize = 4;

fn par_engine() -> Engine {
    Engine::Parallel(Parallelism::threads(PAR_THREADS))
}

/// The generic join's top-level candidate split on output-heavy instances.
fn bench_wcoj(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_wcoj");
    let triangle = triangle_query();
    let tri_db = erdos_renyi_db(&["R", "S", "T"], 700, 16000, 1);
    let full = four_cycle_full();
    let cyc_db = erdos_renyi_db(&["R", "S", "T", "U"], 300, 9000, 2);
    for (label, query, db) in
        [("triangle", &triangle, &tri_db), ("four_cycle_full", &full, &cyc_db)]
    {
        group.bench_with_input(BenchmarkId::new(label, "seq"), db, |b, db| {
            b.iter(|| GenericJoin::evaluate_with_engine(query, db, Engine::Sequential).len());
        });
        group.bench_with_input(BenchmarkId::new(label, "par4"), db, |b, db| {
            b.iter(|| GenericJoin::evaluate_with_engine(query, db, par_engine()).len());
        });
    }
    group.finish();
}

/// The adaptive plan's degree branches on the fhtw-hard double star (E8).
fn bench_adaptive(c: &mut Criterion) {
    let query = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let evaluator = PandaEvaluator::plan(&query, &stats).unwrap();
    let mut group = c.benchmark_group("parallel_adaptive_double_star");
    for half in [256u64, 512] {
        let db = double_star_db(half);
        group.bench_with_input(BenchmarkId::new("seq", half * 2), &db, |b, db| {
            b.iter(|| evaluator.evaluate_with_engine(&query, db, Engine::Sequential).len());
        });
        group.bench_with_input(BenchmarkId::new("par4", half * 2), &db, |b, db| {
            b.iter(|| evaluator.evaluate_with_engine(&query, db, par_engine()).len());
        });
    }
    group.finish();
}

/// DDR branch evaluation (E7, Eq. 38) on the double star.
fn bench_ddr(c: &mut Criterion) {
    let query = four_cycle_projected();
    let selector = BagSelector::new(vec![
        VarSet::from_iter([Var(0), Var(1), Var(2)]),
        VarSet::from_iter([Var(1), Var(2), Var(3)]),
    ]);
    let rule = DisjunctiveRule::for_bag_selector(&query, &selector);
    let mut group = c.benchmark_group("parallel_ddr_double_star");
    for half in [256u64, 512] {
        let db = double_star_db(half);
        let stats = StatisticsSet::measure(&query, &db);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        group.bench_with_input(BenchmarkId::new("seq", half * 2), &db, |b, db| {
            b.iter(|| evaluator.evaluate_with_engine(db, Engine::Sequential).max_target_size());
        });
        group.bench_with_input(BenchmarkId::new("par4", half * 2), &db, |b, db| {
            b.iter(|| evaluator.evaluate_with_engine(db, par_engine()).max_target_size());
        });
    }
    group.finish();
}

/// The sharded probe-side hash join on a skew-free bulk workload.
fn bench_par_join(c: &mut Criterion) {
    let n: u64 = 1 << 17;
    let left = Relation::from_rows(2, (0..n).map(|i| [i, i % 4096]));
    let right = Relation::from_rows(2, (0..n).map(|i| [i % 4096, i]));
    // Pre-build the shared build-side index so both columns measure pure
    // probe work, like a warmed engine would.
    let _ = left.index_for(&[1]);
    let mut group = c.benchmark_group("parallel_operator_join");
    group.bench_function("seq", |b| b.iter(|| operators::join(&left, &right, &[(1, 0)]).len()));
    group.bench_function("par4", |b| {
        b.iter(|| operators::par_join(&left, &right, &[(1, 0)], PAR_THREADS).len())
    });
    group.finish();
}

/// The 5-cycle selector LP chains: a representative slice of the 197
/// bag-selector Γ₅ LPs behind `subw`, chained warm sequentially vs split
/// over 4 workers (per-thread scaffold memo).
fn bench_selector_chains(c: &mut Criterion) {
    let query = five_cycle_projected();
    let stats = s_pentagon_statistics(1 << 20);
    let tds = TreeDecomposition::enumerate(&query);
    // The full 197-selector enumeration takes ~30 s per solve chain; the
    // bag-selector cross product of a 2-TD slice keeps one bench sample
    // near a second while preserving the chain shape (selectors of equal
    // structure warm-start each other).
    let slice: Vec<TreeDecomposition> = tds.into_iter().take(2).collect();
    let mut group = c.benchmark_group("parallel_subw_selectors");
    group
        .bench_function("seq", |b| b.iter(|| subw_with_tds(&query, &slice, &stats).unwrap().value));
    group.bench_function("par4", |b| {
        b.iter(|| subw_with_tds_parallel(&query, &slice, &stats, PAR_THREADS).unwrap().value)
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

fn config_lp() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_wcoj, bench_adaptive, bench_ddr, bench_par_join
}
criterion_group! { name = benches_lp; config = config_lp(); targets = bench_selector_chains }
criterion_main!(benches, benches_lp);
