//! E13 — Yannakakis on free-connex acyclic queries: the runtime should grow
//! linearly in N + OUT (Section 3.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{BinaryJoinPlan, EvaluationStrategy, Panda};
use panda_query::parse_query;
use panda_workloads::path_instance;
use std::time::Duration;

fn bench_yannakakis(c: &mut Criterion) {
    let query = parse_query("P(A,B,C,D) :- R(A,B), S(B,C), T(C,D)").unwrap();
    let panda = Panda::new(query.clone());
    let mut group = c.benchmark_group("yannakakis_path");
    for n in [4_000u64, 16_000] {
        let db = path_instance(n, 4, 3);
        group.bench_with_input(BenchmarkId::new("yannakakis", n), &db, |b, db| {
            b.iter(|| panda.evaluate_with(db, EvaluationStrategy::Yannakakis).len());
        });
        group.bench_with_input(BenchmarkId::new("binary_join", n), &db, |b, db| {
            b.iter(|| BinaryJoinPlan::new().evaluate(&query, db).len());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! { name = benches; config = config(); targets = bench_yannakakis }
criterion_main!(benches);
