//! E8 — the headline experiment: adaptive (submodular-width) evaluation vs
//! the best single tree decomposition vs binary joins on the double-star
//! instance where fhtw-based plans need Ω(N²) work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{BinaryJoinPlan, PandaEvaluator, StaticTdPlan};
use panda_workloads::{double_star_db, four_cycle_projected, s_square_statistics};
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let query = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let adaptive = PandaEvaluator::plan(&query, &stats).unwrap();
    let static_plan = StaticTdPlan::best_for(&query, &stats).unwrap();
    let binary = BinaryJoinPlan::new();
    let mut group = c.benchmark_group("four_cycle_double_star");
    for half in [256u64, 1024] {
        let db = double_star_db(half);
        let n = half * 2;
        group.bench_with_input(BenchmarkId::new("adaptive", n), &db, |b, db| {
            b.iter(|| adaptive.evaluate(&query, db).len());
        });
        group.bench_with_input(BenchmarkId::new("static_td", n), &db, |b, db| {
            b.iter(|| static_plan.evaluate(&query, db).len());
        });
        group.bench_with_input(BenchmarkId::new("binary_join", n), &db, |b, db| {
            b.iter(|| binary.evaluate(&query, db).len());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! { name = benches; config = config(); targets = bench_scaling }
criterion_main!(benches);
