//! Row-major vs columnar A/B — the storage-layout experiment behind the
//! `Layout` knob (`PANDA_LAYOUT=columnar`).
//!
//! Every pair benchmarks the *same operator on the same rows*: the `row`
//! arm is a plain row-major relation, the `col` arm carries an attached
//! column store (the state the columnar layout produces at insert time),
//! which routes the operator through the vectorised batch kernels.  The
//! value columns are low-cardinality so the store dictionary-encodes them
//! — the layout the kernels' per-code fast paths are built for.  Outputs
//! are bit-identical by the differential suites; this measures the
//! constant factors only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{DdrEvaluator, GenericJoin};
use panda_entropy::StatisticsSet;
use panda_query::{BagSelector, DisjunctiveRule, Var, VarSet};
use panda_relation::{operators, Database, Relation};
use panda_workloads::{double_star_db, erdos_renyi_db, four_cycle_projected, triangle_query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A deep copy of `rel` with its column store attached (what
/// `PANDA_LAYOUT=columnar` produces at insert time).  A deep copy because
/// clones share the index cache — attaching to a clone would turn the
/// row-major arm columnar too.
fn columnar(rel: &Relation) -> Relation {
    let copy = Relation::from_rows(rel.arity(), rel.iter());
    let _ = copy.column_store();
    copy
}

fn columnar_db(db: &Database) -> Database {
    let mut out = Database::new();
    for (name, rel) in db.iter() {
        out.insert(name, columnar(rel));
    }
    out
}

/// Pairs whose first column is near-unique (stays `Plain`) and whose
/// second is low-cardinality (dictionary-encoded).
fn mixed_pairs(rows: usize, dict_values: u64, seed: u64) -> Vec<[u64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows).map(|_| [rng.gen_range(0..1_000_000), rng.gen_range(0..dict_values)]).collect()
}

fn bench_selection_projection(c: &mut Criterion) {
    let rows = mixed_pairs(60_000, 64, 1);
    let row = Relation::from_rows(2, rows.iter());
    let col = columnar(&row);

    let mut group = c.benchmark_group("columnar_select_project");
    // Selection on the dictionary column: row scan vs binary-searched
    // code comparison over the contiguous code buffer.
    group.bench_function(BenchmarkId::new("select_eq", "row"), |b| {
        b.iter(|| operators::select_eq(&row, 1, 7).len());
    });
    group.bench_function(BenchmarkId::new("select_eq", "col"), |b| {
        b.iter(|| operators::select_eq(&col, 1, 7).len());
    });
    // Distinct projection to the dictionary column: per-row tuple
    // hashing vs a seen-bitmap over dictionary codes.
    group.bench_function(BenchmarkId::new("project_dict", "row"), |b| {
        b.iter(|| operators::project(&row, &[1]).len());
    });
    group.bench_function(BenchmarkId::new("project_dict", "col"), |b| {
        b.iter(|| operators::project(&col, &[1]).len());
    });
    group.finish();
}

fn bench_join_and_semijoin(c: &mut Criterion) {
    // Join on the low-cardinality column: the probe kernel resolves each
    // dictionary code against the build index once instead of per row.
    let lrows = mixed_pairs(30_000, 256, 2);
    let rrows = mixed_pairs(30_000, 256, 3);
    let lrow = Relation::from_rows(2, lrows.iter());
    let rrow = Relation::from_rows(2, rrows.iter());
    let lcol = columnar(&lrow);
    let rcol = columnar(&rrow);
    let on = [(1usize, 1usize)];

    let mut group = c.benchmark_group("columnar_join_semijoin");
    group.bench_function(BenchmarkId::new("semijoin", "row"), |b| {
        b.iter(|| operators::semijoin(&lrow, &rrow, &on).len());
    });
    group.bench_function(BenchmarkId::new("semijoin", "col"), |b| {
        b.iter(|| operators::semijoin(&lcol, &rcol, &on).len());
    });
    group.bench_function(BenchmarkId::new("antijoin", "row"), |b| {
        b.iter(|| operators::antijoin(&lrow, &rrow, &on).len());
    });
    group.bench_function(BenchmarkId::new("antijoin", "col"), |b| {
        b.iter(|| operators::antijoin(&lcol, &rcol, &on).len());
    });
    // A key-selective join (near-unique keys): measures the probe loop
    // itself with warm indexes on both arms.
    let jlrows = mixed_pairs(30_000, 30_000, 4);
    let jrrows = mixed_pairs(30_000, 30_000, 5);
    let jlrow = Relation::from_rows(2, jlrows.iter());
    let jrrow = Relation::from_rows(2, jrrows.iter());
    let jlcol = columnar(&jlrow);
    let jrcol = columnar(&jrrow);
    let jon = [(1usize, 1usize)];
    group.bench_function(BenchmarkId::new("join_warm", "row"), |b| {
        b.iter(|| operators::join(&jlrow, &jrrow, &jon).len());
    });
    group.bench_function(BenchmarkId::new("join_warm", "col"), |b| {
        b.iter(|| operators::join(&jlcol, &jrcol, &jon).len());
    });
    group.finish();
}

fn bench_statistics(c: &mut Criterion) {
    // Degree/distinct measurement, cold each iteration (the stats cache
    // would otherwise absorb the second read): the columnar arm pays the
    // one-off store build and still reads column-contiguous data.
    let rows = mixed_pairs(60_000, 64, 6);

    let mut group = c.benchmark_group("columnar_statistics");
    group.bench_function(BenchmarkId::new("distinct_dict", "row"), |b| {
        b.iter(|| {
            let r = Relation::from_rows(2, rows.iter());
            panda_relation::stats::distinct_count(&r, &[1])
        });
    });
    group.bench_function(BenchmarkId::new("distinct_dict", "col"), |b| {
        b.iter(|| {
            let r = Relation::from_rows(2, rows.iter());
            let _ = r.column_store();
            panda_relation::stats::distinct_count(&r, &[1])
        });
    });
    group.bench_function(BenchmarkId::new("max_degree", "row"), |b| {
        b.iter(|| {
            let r = Relation::from_rows(2, rows.iter());
            panda_relation::stats::max_degree(&r, &[1], &[0])
        });
    });
    group.bench_function(BenchmarkId::new("max_degree", "col"), |b| {
        b.iter(|| {
            let r = Relation::from_rows(2, rows.iter());
            let _ = r.column_store();
            panda_relation::stats::max_degree(&r, &[1], &[0])
        });
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    // End-to-end: the wcoj (E9 triangle) and DDR (E7 double star)
    // workloads on a row-major vs columnar-activated database.
    let triangle = triangle_query();
    let tri_row = erdos_renyi_db(&["R", "S", "T"], 400, 4000, 1);
    let tri_col = columnar_db(&tri_row);

    let mut group = c.benchmark_group("columnar_engines");
    group.bench_function(BenchmarkId::new("wcoj_triangle", "row"), |b| {
        b.iter(|| GenericJoin::evaluate(&triangle, &tri_row).len());
    });
    group.bench_function(BenchmarkId::new("wcoj_triangle", "col"), |b| {
        b.iter(|| GenericJoin::evaluate(&triangle, &tri_col).len());
    });

    let query = four_cycle_projected();
    let selector = BagSelector::new(vec![
        VarSet::from_iter([Var(0), Var(1), Var(2)]),
        VarSet::from_iter([Var(1), Var(2), Var(3)]),
    ]);
    let rule = DisjunctiveRule::for_bag_selector(&query, &selector);
    let ddr_row = double_star_db(256);
    let ddr_col = columnar_db(&ddr_row);
    let stats = StatisticsSet::measure(&query, &ddr_row);
    let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
    group.bench_function(BenchmarkId::new("ddr_double_star", "row"), |b| {
        b.iter(|| evaluator.evaluate(&ddr_row).max_target_size());
    });
    group.bench_function(BenchmarkId::new("ddr_double_star", "col"), |b| {
        b.iter(|| evaluator.evaluate(&ddr_col).max_target_size());
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_selection_projection, bench_join_and_semijoin, bench_statistics, bench_engines
}
criterion_main!(benches);
