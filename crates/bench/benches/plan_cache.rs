//! Plan-cache A/B: cold planning (cache cleared before every iteration)
//! versus warm serving (every iteration hits), on repeated and
//! structurally-isomorphic query workloads.
//!
//! The cold/warm gap *is* the planning cost — on cyclic queries the
//! fhtw/subw LP chains dominate end-to-end time, so a warm run that
//! skips them is an order of magnitude faster (recorded in
//! `EXPERIMENTS.md`).  The harness additionally prints the hit/miss
//! counter deltas of each group so the A/B can be read directly from the
//! bench output, and finishes with a one-shot cold-vs-warm measurement
//! of the LP-heaviest workload in the workspace (the projected 5-cycle,
//! whose `subw` enumerates 197 bag-selector Γ₅ LPs) — too slow to loop
//! under Criterion, but the headline number for what a hit saves.

use criterion::{criterion_group, Criterion};
use panda_bench::{lp_bench_config, time_it};
use panda_core::{plan_cache_clear, plan_cache_stats, Panda};
use panda_query::{parse_query, ConjunctiveQuery};
use panda_relation::Database;
use panda_workloads::{erdos_renyi_db, five_cycle_projected, four_cycle_projected};

fn four_cycle_db() -> Database {
    erdos_renyi_db(&["R", "S", "T", "U"], 30, 120, 7)
}

/// The repeated-query workload: the same projected 4-cycle, evaluated
/// end-to-end (plan + execute), cold vs warm.
fn bench_repeated(c: &mut Criterion) {
    let query = four_cycle_projected();
    let db = four_cycle_db();
    let mut group = c.benchmark_group("plan_cache_four_cycle");
    group.bench_function("cold", |b| {
        b.iter(|| {
            plan_cache_clear();
            Panda::new(query.clone()).evaluate(&db).len()
        })
    });
    plan_cache_clear();
    let before = plan_cache_stats();
    let _ = Panda::new(query.clone()).evaluate(&db);
    group.bench_function("warm", |b| b.iter(|| Panda::new(query.clone()).evaluate(&db).len()));
    group.finish();
    let after = plan_cache_stats();
    println!(
        "plan_cache_four_cycle/warm counters: +{} hits, +{} misses",
        after.hits - before.hits,
        after.misses - before.misses,
    );
}

/// The isomorphic workload: renamed-variable and atom-permuted variants
/// of the 4-cycle, all served from one cache slot populated by the base
/// query.
fn bench_isomorphic(c: &mut Criterion) {
    let variants: Vec<ConjunctiveQuery> = [
        "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)",
        "P(A,B) :- R(A,B), S(B,C), T(C,D), U(D,A)",
        "Q(X,Y) :- R(X,Y), S(Y,Z), U(W,X), T(Z,W)",
        "Q2(N0,N1) :- R(N0,N1), S(N1,N2), T(N2,N3), U(N3,N0)",
    ]
    .iter()
    .map(|q| parse_query(q).expect("valid query"))
    .collect();
    let db = four_cycle_db();
    plan_cache_clear();
    let _ = Panda::new(variants[0].clone()).evaluate(&db);
    let before = plan_cache_stats();
    let mut group = c.benchmark_group("plan_cache_isomorphic");
    group.bench_function("warm_variants", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % variants.len();
            Panda::new(variants[i].clone()).evaluate(&db).len()
        })
    });
    group.finish();
    let after = plan_cache_stats();
    println!(
        "plan_cache_isomorphic counters: +{} hits, +{} misses (all variants share one slot)",
        after.hits - before.hits,
        after.misses - before.misses,
    );
}

/// One-shot: the projected 5-cycle, where `subw` planning alone is tens
/// of seconds of LP work and execution is a fraction of a second.
fn five_cycle_one_shot() {
    let query = five_cycle_projected();
    let db = erdos_renyi_db(&["R", "S", "T", "U", "V"], 30, 120, 7);
    plan_cache_clear();
    let panda = Panda::new(query);
    let (rows, cold) = time_it(|| panda.evaluate(&db).len());
    let (_, warm) = time_it(|| panda.evaluate(&db).len());
    println!(
        "plan_cache_five_cycle one-shot: cold {cold:.3} s, warm {warm:.3} s \
         ({:.0}x, {rows} rows)",
        cold / warm
    );
}

fn config() -> Criterion {
    lp_bench_config()
}

criterion_group! { name = benches; config = config(); targets = bench_repeated, bench_isomorphic }

fn main() {
    benches();
    five_cycle_one_shot();
}
