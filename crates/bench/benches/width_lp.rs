//! E3/E4 — benchmarks the fhtw and subw computations (Eq. 22 and Eq. 41)
//! for the paper's 4-cycle query, including TD enumeration, the bag-selector
//! cross product and all the LPs, plus the 5-variable `subw` configurations
//! (the 5-cycle's per-selector Γ₅ LPs) that size the LP solver itself.

use criterion::{criterion_group, criterion_main, Criterion};
use panda_bench::{lp_bench_config, lp_bench_config_5var};
use panda_entropy::{ddr_polymatroid_bound, fhtw, subw};
use panda_query::{BagSelector, TreeDecomposition};
use panda_rational::Rat;
use panda_workloads::{
    five_cycle_projected, four_cycle_projected, s_pentagon_statistics, s_square_statistics,
};

fn bench_widths(c: &mut Criterion) {
    let query = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let mut group = c.benchmark_group("width_lps_four_cycle");
    group.bench_function("fhtw", |b| b.iter(|| fhtw(&query, &stats).unwrap().value));
    group.bench_function("subw", |b| b.iter(|| subw(&query, &stats).unwrap().value));
    group.finish();
}

/// The 5-variable `subw` configurations: the full 5-cycle enumeration has
/// 197 bag selectors, so the bench solves a representative spread of three
/// selector LPs (first, middle, last of the enumeration) — the exact unit
/// of work `subw` repeats per selector.
fn bench_subw_five_cycle(c: &mut Criterion) {
    let query = five_cycle_projected();
    let stats = s_pentagon_statistics(1 << 20);
    let universe = query.all_vars();
    let tds = TreeDecomposition::enumerate(&query);
    let selectors = BagSelector::enumerate(&tds);
    let picks = [0, selectors.len() / 2, selectors.len() - 1];
    let mut group = c.benchmark_group("subw5_five_cycle");
    group.bench_function("selector_lps_x3", |b| {
        b.iter(|| {
            let mut worst = Rat::ZERO;
            for &i in &picks {
                let report = ddr_polymatroid_bound(selectors[i].bags(), universe, &stats).unwrap();
                worst = worst.max(report.log_bound);
            }
            worst
        })
    });
    group.finish();
}

fn config() -> Criterion {
    lp_bench_config()
}

fn config5() -> Criterion {
    lp_bench_config_5var()
}

criterion_group! { name = benches; config = config(); targets = bench_widths }
criterion_group! { name = benches5; config = config5(); targets = bench_subw_five_cycle }
criterion_main!(benches, benches5);
