//! E3/E4 — benchmarks the fhtw and subw computations (Eq. 22 and Eq. 41)
//! for the paper's 4-cycle query, including TD enumeration, the bag-selector
//! cross product and all the LPs.

use criterion::{criterion_group, criterion_main, Criterion};
use panda_entropy::{fhtw, subw};
use panda_workloads::{four_cycle_projected, s_square_statistics};
use std::time::Duration;

fn bench_widths(c: &mut Criterion) {
    let query = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let mut group = c.benchmark_group("width_lps_four_cycle");
    group.bench_function("fhtw", |b| b.iter(|| fhtw(&query, &stats).unwrap().value));
    group.bench_function("subw", |b| b.iter(|| subw(&query, &stats).unwrap().value));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench_widths }
criterion_main!(benches);
