//! Micro-benchmarks of the relational operator layer: cached vs fresh hash
//! indexes, hash vs sort-merge joins, and cached degree measurements — the
//! constant factors the adaptive plans pay per partition (ROADMAP "Hot
//! paths").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_relation::{operators, stats, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_pairs(n: u64, rows: usize, seed: u64) -> Vec<[u64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]).collect()
}

fn bench_join_paths(c: &mut Criterion) {
    // A nearly key-unique workload: the output stays around |L| rows, so
    // the timings expose index construction rather than output writing.
    let lrows = random_pairs(30_000, 30_000, 1);
    let rrows = random_pairs(30_000, 30_000, 2);
    let left = Relation::from_rows(2, lrows.iter()).deduped();
    let right = Relation::from_rows(2, rrows.iter()).deduped();
    let on = [(1usize, 0usize)];

    let mut group = c.benchmark_group("operator_join");
    // Cold: fresh relations each iteration, so every join builds its index.
    group.bench_function(BenchmarkId::new("hash", "cold_index"), |b| {
        b.iter(|| {
            let l = Relation::from_rows(2, lrows.iter());
            let r = Relation::from_rows(2, rrows.iter());
            operators::join(&l, &r, &on).len()
        });
    });
    // Warm: the shared relations carry their cached index after the first
    // iteration — the steady state of repeated joins in the evaluators.
    group.bench_function(BenchmarkId::new("hash", "warm_index"), |b| {
        b.iter(|| operators::join(&left, &right, &on).len());
    });
    // Sort-merge: both sides carry an aligned recorded sort order.
    let lsorted = left.sorted_by_columns(&[1, 0]);
    let rsorted = right.sorted_by_columns(&[0, 1]);
    group.bench_function(BenchmarkId::new("merge", "presorted"), |b| {
        b.iter(|| operators::join(&lsorted, &rsorted, &on).len());
    });
    group.finish();
}

fn bench_semijoin_and_degrees(c: &mut Criterion) {
    let lrows = random_pairs(400, 30_000, 3);
    let rrows = random_pairs(400, 30_000, 4);
    let left = Relation::from_rows(2, lrows.iter()).deduped();
    let right = Relation::from_rows(2, rrows.iter()).deduped();

    let mut group = c.benchmark_group("operator_semijoin_stats");
    group.bench_function(BenchmarkId::new("semijoin", "cold_index"), |b| {
        b.iter(|| {
            let r = Relation::from_rows(2, rrows.iter());
            operators::semijoin(&left, &r, &[(1, 0)]).len()
        });
    });
    group.bench_function(BenchmarkId::new("semijoin", "warm_index"), |b| {
        b.iter(|| operators::semijoin(&left, &right, &[(1, 0)]).len());
    });
    group.bench_function(BenchmarkId::new("degrees", "cold"), |b| {
        b.iter(|| {
            let r = Relation::from_rows(2, lrows.iter());
            stats::max_degree(&r, &[0], &[1])
        });
    });
    group.bench_function(BenchmarkId::new("degrees", "warm"), |b| {
        b.iter(|| stats::max_degree(&left, &[0], &[1]));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! { name = benches; config = config(); targets = bench_join_paths, bench_semijoin_and_degrees }
criterion_main!(benches);
