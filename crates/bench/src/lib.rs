//! Measurement substrate for the paper's experiments (Sections 4–9).
//!
//! This crate carries no algorithms of its own; it is the workspace's
//! instrumentation layer:
//!
//! * the **`experiments` binary** (`src/bin/experiments.rs`) regenerates
//!   the paper's tables and figures (experiment index E1–E15), from the
//!   Figure 2 worked example through the width computations, DDR
//!   evaluation, adaptive-vs-static scaling and the FMM comparison of
//!   Section 9.3,
//! * the **Criterion benches** (`benches/`, 9 targets) time the individual
//!   hot paths: the polymatroid-bound and width LPs (E2–E4, including the
//!   5-variable `subw` configurations that size the LP solver), WCOJ
//!   joins, Yannakakis, DDR evaluation, semiring FAQ, the 4-cycle
//!   scaling study, and the relational operator layer (cached vs fresh
//!   indexes, hash vs sort-merge joins),
//! * this library holds the shared helpers: [`time_it`], the power-law
//!   slope fit [`log_log_slope`] used to check `N^{3/2}` vs `N²` scaling
//!   (E8), and the [`render_table`] text-table renderer.
//!
//! Recorded baseline numbers live in `EXPERIMENTS.md` at the workspace
//! root, together with the methodology notes for the vendored
//! median-of-samples bench harness.

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

use criterion::Criterion;

/// The standard Criterion configuration for the LP-bound benches: 10
/// samples inside a ~0.9 s measurement budget.
#[must_use]
pub fn lp_bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

/// The configuration for the near-second-scale 5-variable LP configs
/// (`subw5_five_cycle`, `polymatroid_bound_5cycle`): a tight warm-up and
/// measurement budget so each sample runs a single iteration and the
/// whole bench suite stays bounded.  `sample_size` stays at 10 — the real
/// `criterion` crate rejects anything below 10 at configuration time, and
/// the ROADMAP plans a drop-in shim-to-registry swap.
#[must_use]
pub fn lp_bench_config_5var() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(600))
}

/// Times a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Fits the slope of `log(y)` against `log(x)` by least squares — the
/// empirical exponent of a power law `y ≈ c · x^slope`.  Used to check that
/// runtimes scale like `N^{3/2}` vs `N^2` (experiment E8).
#[must_use]
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// Renders a simple aligned text table (used by the `experiments` binary to
/// print paper-style tables).
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_a_perfect_power_law() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, 3.0 * x.powf(1.5))
            })
            .collect();
        let slope = log_log_slope(&pts);
        assert!((slope - 1.5).abs() < 1e-9, "slope {slope}");
        assert_eq!(log_log_slope(&[]), 0.0);
        assert_eq!(log_log_slope(&[(2.0, 4.0)]), 0.0);
    }

    #[test]
    fn timing_returns_result_and_elapsed() {
        let (v, secs) = time_it(|| (0..1000u64).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("bbbb"));
        assert_eq!(t.lines().count(), 4);
    }
}
