//! The experiment harness: regenerates every table and figure of the paper
//! (experiment index E1–E15; EXPERIMENTS.md at the workspace root holds
//! the recorded results, and PAPER.md's design summary maps the pipeline
//! the experiments exercise).
//!
//! ```text
//! cargo run --release -p panda-bench --bin experiments            # all experiments
//! cargo run --release -p panda-bench --bin experiments -- e4 e8   # a subset
//! ```

use panda_bench::{log_log_slope, render_table, time_it};
use panda_core::{
    faq, BinaryJoinPlan, DdrEvaluator, EvaluationStrategy, GenericJoin, Panda, PandaEvaluator,
    StaticTdPlan,
};
use panda_entropy::{
    agm_bound, ddr_polymatroid_bound, fhtw, omega_subw_square, polymatroid_bound, subw,
    StatisticsSet, MATRIX_MULT_OMEGA,
};
use panda_fmm::{detect_four_cycle_fmm, detect_four_cycle_join};
use panda_proof::{reset_drop_source, ProofSequence, TermIdentity};
use panda_query::{BagSelector, DisjunctiveRule, TreeDecomposition, Var, VarSet};
use panda_rational::Rat;
use panda_workloads::{
    double_star_db, erdos_renyi_db, figure2_db, four_cycle_boolean, four_cycle_full,
    four_cycle_projected, path_instance, s_full_statistics, s_square_statistics, triangle_query,
    zipf_graph_db,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let run = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("panda-rs experiment harness — reproducing the paper's tables and figures\n");
    if run("e1") {
        e1_figure2();
    }
    if run("e14") {
        e14_figure1();
    }
    if run("e2") {
        e2_polymatroid_bound_full();
    }
    if run("e3") {
        e3_fhtw();
    }
    if run("e4") {
        e4_subw();
    }
    if run("e5") {
        e5_shannon_flow();
    }
    if run("e6") {
        e6_proof_sequence();
    }
    if run("e15") {
        e15_reset_lemma();
    }
    if run("e7") {
        e7_ddr_evaluation();
    }
    if run("e8") {
        e8_four_cycle_scaling();
    }
    if run("e9") {
        e9_agm_wcoj();
    }
    if run("e10") {
        e10_semirings();
    }
    if run("e11") {
        e11_lp_norms();
    }
    if run("e12") {
        e12_omega_subw();
    }
    if run("e13") {
        e13_yannakakis();
    }
}

fn header(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// E1 — Figure 2: the example instance and the output of Q□^full.
fn e1_figure2() {
    header("E1", "Figure 2 — example instance and the output of Qfull");
    let db = figure2_db();
    let q = four_cycle_full();
    let out = GenericJoin::evaluate(&q, &db);
    let mut rows = Vec::new();
    for row in out.rel.canonical_rows() {
        rows.push(vec![
            row[0].to_string(),
            row[1].to_string(),
            row[2].to_string(),
            row[3].to_string(),
        ]);
    }
    println!("{}", render_table(&["X", "Y", "Z", "W"], &rows));
    println!(
        "output size = {} (paper: 3 tuples; letters p,q,i,j,k encoded as 101,102,201,202,203)\n",
        out.len()
    );
}

/// E14 — Figure 1: TD(Q□) consists of exactly the two decompositions T1, T2.
fn e14_figure1() {
    header("E14", "Figure 1 — the free-connex tree decompositions of Q□");
    let q = four_cycle_projected();
    let tds = TreeDecomposition::enumerate(&q);
    let rows: Vec<Vec<String>> = tds
        .iter()
        .enumerate()
        .map(|(i, td)| vec![format!("T{}", i + 1), td.display_with(&q)])
        .collect();
    println!("{}", render_table(&["TD", "bags"], &rows));
    println!("number of non-redundant free-connex TDs = {} (paper: 2)\n", tds.len());
}

/// E2 — Eq. (16)/(19): the polymatroid bound of Qfull under S_full.
fn e2_polymatroid_bound_full() {
    header("E2", "Eq. (19) — polymatroid bound of Qfull under S_full = {N, FD, deg ≤ C}");
    let q = four_cycle_full();
    let n: u64 = 1 << 20;
    let mut rows = Vec::new();
    for c_exp in [0u32, 5, 10, 15, 20] {
        let c = 1u64 << c_exp;
        let stats = s_full_statistics(n, c);
        let report = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        let paper_exponent = 1.5 + 0.5 * (c_exp as f64) / 20.0; // 3/2 + ½·log_N C
        rows.push(vec![
            format!("2^{c_exp}"),
            format!("{}", report.log_bound),
            format!("{:.4}", report.log_bound.to_f64()),
            format!("{paper_exponent:.4}"),
            format!("{:.3e}", report.tuple_bound()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["C", "LP bound (exact)", "LP bound", "paper ineq. (3/2 + ½log_N C)", "tuples"],
            &rows
        )
    );
    println!("The LP bound is never above the paper's Shannon inequality (20), and both\ncoincide with the AGM bound 2 once C reaches N.\n");
}

/// E3 — Section 4.3: cost(T1) = cost(T2) = 2 and fhtw(Q□, S□) = 2.
fn e3_fhtw() {
    header("E3", "Section 4.3 — static plan costs and fhtw(Q□, S□)");
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let report = fhtw(&q, &stats).unwrap();
    let mut rows = Vec::new();
    for (td, cost, per_bag) in &report.per_td {
        let bags: Vec<String> = per_bag
            .iter()
            .map(|(b, c)| format!("{}:{}", b.display_with(q.var_names()), c))
            .collect();
        rows.push(vec![td.display_with(&q), cost.to_string(), bags.join("  ")]);
    }
    println!("{}", render_table(&["TD", "cost", "per-bag polymatroid bounds"], &rows));
    println!("fhtw(Q□, S□) = {} (paper: 2)\n", report.value);
}

/// E4 — Eq. (44)/(45): the four bag-selector LPs and subw(Q□, S□) = 3/2.
fn e4_subw() {
    header("E4", "Eq. (44) — the four bag-selector DDR bounds and subw(Q□, S□)");
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let report = subw(&q, &stats).unwrap();
    let mut rows = Vec::new();
    for sel in &report.per_selector {
        let bags: Vec<String> =
            sel.selector.bags().iter().map(|b| b.display_with(q.var_names())).collect();
        rows.push(vec![bags.join(" ∨ "), sel.report.log_bound.to_string()]);
    }
    println!("{}", render_table(&["bag selector (DDR head)", "max_h min_B h(B)"], &rows));
    println!(
        "subw(Q□, S□) = {} (paper: 3/2);  fhtw = {}\n",
        report.value,
        fhtw(&q, &stats).unwrap().value
    );
}

/// E5 — Eq. (55): the Shannon-flow inequality behind the 3/2 bound.
fn e5_shannon_flow() {
    header("E5", "Eq. (55) — the Shannon-flow dual certificate of the DDR bound");
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let xyz = VarSet::from_iter([Var(0), Var(1), Var(2)]);
    let yzw = VarSet::from_iter([Var(1), Var(2), Var(3)]);
    let report = ddr_polymatroid_bound(&[xyz, yzw], q.all_vars(), &stats).unwrap();
    let flow = &report.flow;
    println!("inequality: {}", flow.display_with(q.var_names()));
    println!(
        "λ-total = {}   Σw·log_N N_c = {}   verified: {:?}",
        flow.lambda_total(),
        flow.log_bound(),
        flow.verify_identity().is_ok()
    );
    let mut rows = Vec::new();
    for (stat, w) in &flow.sources {
        rows.push(vec![stat.label.clone(), w.to_string()]);
    }
    println!("{}", render_table(&["statistic", "weight w"], &rows));
    println!("(paper: λ1 = λ2 = 1/2, w = (1/2, 1/2, 1/2, 0))\n");
}

/// E6 — Table 1: the proof sequence of Eq. (62)/(63).
fn e6_proof_sequence() {
    header("E6", "Table 1 — proof sequence for h(XYZ) + h(YZW) ≤ h(XY) + h(YZ) + h(ZW)");
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let xyz = VarSet::from_iter([Var(0), Var(1), Var(2)]);
    let yzw = VarSet::from_iter([Var(1), Var(2), Var(3)]);
    let report = ddr_polymatroid_bound(&[xyz, yzw], q.all_vars(), &stats).unwrap();
    let integral = report.flow.to_integral().unwrap();
    let identity = TermIdentity::from_flow(&integral);
    let seq = ProofSequence::derive(&identity).unwrap();
    println!("{}", seq.display_with(q.var_names()));
    let (d, c, m, s) = seq.step_counts();
    println!(
        "\n{} steps: {d} decomposition(s), {c} composition(s), {m} monotonicity(ies), {s} submodularity(ies); replay check: {:?}\n",
        seq.len(),
        seq.verify().is_ok()
    );
}

/// E15 — Section 7.2: the Reset Lemma example.
fn e15_reset_lemma() {
    header("E15", "Section 7.2 — Reset Lemma: dropping h(XY) from Eq. (62)");
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let xyz = VarSet::from_iter([Var(0), Var(1), Var(2)]);
    let yzw = VarSet::from_iter([Var(1), Var(2), Var(3)]);
    let report = ddr_polymatroid_bound(&[xyz, yzw], q.all_vars(), &stats).unwrap();
    let identity = TermIdentity::from_flow(&report.flow.to_integral().unwrap());
    for drop in
        identity.sources.keys().filter(|t| t.is_unconditional()).map(|t| t.subj).collect::<Vec<_>>()
    {
        let outcome = reset_drop_source(&identity, drop).unwrap();
        println!(
            "drop h{}  ⇒  lost target: {}   remaining identity valid: {:?}",
            drop.display_with(q.var_names()),
            outcome
                .lost_target
                .map_or("none".to_string(), |t| format!("h{}", t.display_with(q.var_names()))),
            outcome.identity.verify().is_ok()
        );
    }
    println!("(paper: dropping h(XY) loses only h(XYZ), never both targets)\n");
}

/// E7 — Eq. (61) / Table 2: DDR evaluation with heavy/light partitioning.
fn e7_ddr_evaluation() {
    header("E7", "Eq. (61)/Table 2 — evaluating the DDR A11(X,Y,Z) ∨ A21(Y,Z,W)");
    let q = four_cycle_projected();
    let selector = BagSelector::new(vec![
        VarSet::from_iter([Var(0), Var(1), Var(2)]),
        VarSet::from_iter([Var(1), Var(2), Var(3)]),
    ]);
    let rule = DisjunctiveRule::for_bag_selector(&q, &selector);
    let mut rows = Vec::new();
    for half in [64u64, 128, 256, 512] {
        let db = double_star_db(half);
        let n = db.relation("R").unwrap().len() as f64;
        let stats = StatisticsSet::measure(&q, &db);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        let (model, secs) = time_it(|| evaluator.evaluate(&db));
        rows.push(vec![
            format!("{}", n as u64),
            format!("{}", model.max_target_size()),
            format!("{:.0}", n.powf(1.5)),
            format!("{:.0}", n * n / 4.0),
            format!("{secs:.4}s"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["N = |R|", "max target size", "N^1.5", "single-TD worst case ~N²/4", "time"],
            &rows
        )
    );
    println!("The model size tracks N^1.5, far below the quadratic single-decomposition cost.\n");
}

/// E8 — Sections 5.1/8.2: runtime scaling of adaptive vs static vs binary
/// plans on the fhtw-hard instance.
fn e8_four_cycle_scaling() {
    header("E8", "Sections 5.1/8.2 — adaptive O(N^1.5) vs single-TD Ω(N²) on the double star");
    let q = four_cycle_projected();
    let stats = s_square_statistics(1 << 20);
    let adaptive = PandaEvaluator::plan(&q, &stats).unwrap();
    let static_plan = StaticTdPlan::best_for(&q, &stats).unwrap();
    let binary = BinaryJoinPlan::new();
    let mut adaptive_pts = Vec::new();
    let mut static_pts = Vec::new();
    let mut binary_pts = Vec::new();
    let mut rows = Vec::new();
    for half in [128u64, 256, 512, 1024, 2048] {
        let db = double_star_db(half);
        let n = db.relation("R").unwrap().len() as f64;
        let (out_a, ta) = time_it(|| adaptive.evaluate(&q, &db));
        let (out_s, ts) = time_it(|| static_plan.evaluate(&q, &db));
        let (out_b, tb) = time_it(|| binary.evaluate(&q, &db));
        assert_eq!(out_a.rel.canonical_rows(), out_s.rel.canonical_rows());
        assert_eq!(out_a.rel.canonical_rows(), out_b.rel.canonical_rows());
        adaptive_pts.push((n, ta));
        static_pts.push((n, ts));
        binary_pts.push((n, tb));
        rows.push(vec![
            format!("{}", n as u64),
            format!("{}", out_a.len()),
            format!("{ta:.4}"),
            format!("{ts:.4}"),
            format!("{tb:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["N", "|output|", "adaptive (s)", "static fhtw-TD (s)", "binary joins (s)"],
            &rows
        )
    );
    println!(
        "fitted log-log slopes:  adaptive ≈ {:.2}   static ≈ {:.2}   binary ≈ {:.2}",
        log_log_slope(&adaptive_pts),
        log_log_slope(&static_pts),
        log_log_slope(&binary_pts)
    );
    println!("(paper: the adaptive plan runs in ~N^1.5, single-TD plans in ~N².)\n");
}

/// E9 — Section 2.1: AGM bound + worst-case-optimal joins on the triangle.
fn e9_agm_wcoj() {
    header("E9", "Section 2.1 — AGM bound and worst-case-optimal join (triangle query)");
    let q = triangle_query();
    let mut rows = Vec::new();
    for (label, db) in [
        ("Erdős–Rényi n=300", erdos_renyi_db(&["R", "S", "T"], 300, 3000, 1)),
        ("Erdős–Rényi n=150", erdos_renyi_db(&["R", "S", "T"], 150, 3000, 2)),
        ("Zipf-skewed", zipf_graph_db(&["R", "S", "T"], 300, 3000, 1.1, 3)),
    ] {
        let n = db.relation("R").unwrap().len() as u64;
        let report = agm_bound(&q, &[("R", n), ("S", n), ("T", n)], n).unwrap();
        let (out, secs) = time_it(|| GenericJoin::evaluate(&q, &db));
        let (_, secs_binary) = time_it(|| BinaryJoinPlan::new().evaluate(&q, &db));
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            format!("{}", out.len()),
            format!("{:.0}", report.tuple_bound()),
            format!("{secs:.4}"),
            format!("{secs_binary:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["instance", "N", "|triangles|", "AGM bound N^1.5", "WCOJ (s)", "binary (s)"],
            &rows
        )
    );
    println!("The output never exceeds the AGM bound and the WCOJ never enumerates more\nthan that many partial assignments.\n");
}

/// E10 — Section 9.1: FAQ / semiring aggregates.
fn e10_semirings() {
    header("E10", "Section 9.1 — FAQ aggregates over semirings");
    let boolean = four_cycle_boolean();
    let db = erdos_renyi_db(&["R", "S", "T", "U"], 60, 700, 7);
    let count = faq::count_assignments(&boolean, &db);
    let sat = faq::is_satisfiable(&boolean, &db);
    let min_w = faq::min_weight(&boolean, &db, &|_, row| (row[0] + row[1]) as i64);
    println!(
        "Boolean 4-cycle on an Erdős–Rényi instance (N ≈ {}):",
        db.relation("R").unwrap().len()
    );
    println!("  #CQ  (counting semiring, ℕ,+,×)   = {count}");
    println!("  SAT  (Boolean semiring, ∨,∧)      = {sat}");
    println!("  min-weight cycle (min,+ semiring) = {min_w:?}");
    let path = panda_query::parse_query("P() :- R(A,B), S(B,C), T(C,D)").unwrap();
    let path_db = path_instance(2000, 4, 11);
    let (cnt, secs) = time_it(|| faq::count_assignments(&path, &path_db));
    println!(
        "acyclic 3-path #CQ over N = {}: {} assignments in {:.4}s (join-tree DP)",
        path_db.total_tuples(),
        cnt,
        secs
    );
    println!("(Counting uses a non-idempotent semiring, so it runs on a single TD — the\npaper's open problem is whether subw time is achievable for #CQ.)\n");
}

/// E11 — Section 9.2: ℓ_k-norm constraints tighten the bound.
fn e11_lp_norms() {
    header("E11", "Section 9.2 — ℓ2-norm degree-sequence constraints");
    let q = panda_query::parse_query("P(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
    let n: u64 = 1 << 20;
    let x = q.var_by_name("X").unwrap();
    let y = q.var_by_name("Y").unwrap();
    let z = q.var_by_name("Z").unwrap();
    let mut rows = Vec::new();
    for l2_exp in [20u32, 15, 10, 5] {
        let l2 = 1u64 << l2_exp;
        let mut stats = StatisticsSet::identical_cardinalities(&q, n);
        stats.add_lp_norm("R", VarSet::singleton(y), VarSet::singleton(x), 2, l2);
        stats.add_lp_norm("S", VarSet::singleton(y), VarSet::singleton(z), 2, l2);
        let bound = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        rows.push(vec![
            format!("2^{l2_exp}"),
            bound.log_bound.to_string(),
            format!("{:.3}", bound.log_bound.to_f64()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["ℓ2 bound on deg(·|Y)", "output exponent (exact)", "output exponent"],
            &rows
        )
    );
    println!("With only cardinalities the bound is N²; Cauchy–Schwarz-style ℓ2 constraints\npull it down towards N (exponent 1).\n");
}

/// E12 — Section 9.3: the ω-submodular width and FMM-based detection.
fn e12_omega_subw() {
    header("E12", "Section 9.3 — ω-submodular width of the Boolean 4-cycle and FMM detection");
    let mut rows = Vec::new();
    for (label, omega) in [
        ("ω = 3 (naive)", Rat::from_int(3)),
        ("ω = 2.807 (Strassen)", Rat::new(2807, 1000)),
        ("ω = 2.371552 (paper)", MATRIX_MULT_OMEGA),
        ("ω = 2 (lower limit)", Rat::from_int(2)),
    ] {
        let w = omega_subw_square(omega);
        rows.push(vec![label.to_string(), w.to_string(), format!("{:.5}", w.to_f64())]);
    }
    println!(
        "{}",
        render_table(&["matrix-multiplication exponent", "ω-subw(Q□^bool) exact", "value"], &rows)
    );
    println!("combinatorial subw = 3/2; the crossover is at ω = 5/2 (Section 9.3).");
    let mut rows = Vec::new();
    for n in [200u64, 400, 800] {
        let db = erdos_renyi_db(&["R", "S", "T", "U"], n, (n * 4) as usize, 13);
        let (via_fmm, t_fmm) = time_it(|| detect_four_cycle_fmm(&db));
        let (via_join, t_join) = time_it(|| detect_four_cycle_join(&db));
        assert_eq!(via_fmm, via_join);
        rows.push(vec![
            db.relation("R").unwrap().len().to_string(),
            via_fmm.to_string(),
            format!("{t_fmm:.4}"),
            format!("{t_join:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["N", "cycle found", "matrix-product detection (s)", "hash-join detection (s)"],
            &rows
        )
    );
    println!();
}

/// E13 — Yannakakis O(N + OUT) on a free-connex acyclic query.
fn e13_yannakakis() {
    header("E13", "Section 3.4 — Yannakakis runs in O(N + OUT) on acyclic queries");
    let q = panda_query::parse_query("P(A,B,C,D) :- R(A,B), S(B,C), T(C,D)").unwrap();
    let panda = Panda::new(q.clone());
    let mut rows = Vec::new();
    let mut pts = Vec::new();
    for n in [2_000u64, 4_000, 8_000, 16_000] {
        let db = path_instance(n, 4, 3);
        let (out, secs) = time_it(|| panda.evaluate_with(&db, EvaluationStrategy::Yannakakis));
        let total = db.total_tuples() + out.len();
        pts.push((total as f64, secs));
        rows.push(vec![db.total_tuples().to_string(), out.len().to_string(), format!("{secs:.4}")]);
    }
    println!("{}", render_table(&["N (input tuples)", "OUT", "Yannakakis (s)"], &rows));
    println!("fitted slope of time vs (N + OUT) ≈ {:.2} (linear ⇒ ≈ 1.0)\n", log_log_slope(&pts));
}
