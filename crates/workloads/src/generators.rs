//! Random and parametric instance generators.

// panda-lint: allow(D3) -- generators are seeded explicitly (`StdRng::
// seed_from_u64(seed)` below): every instance is reproducible from its seed.
use rand::rngs::StdRng;
// panda-lint: allow(D3) -- same seeded RNG; no entropy source is ever used.
use rand::{Rng, SeedableRng};

use panda_relation::{Database, Relation};

/// An Erdős–Rényi-style random graph instance: each of the relation symbols
/// receives `edges` random edges over a domain of `n` vertices (duplicates
/// removed, so the actual size can be slightly smaller).
#[must_use]
pub fn erdos_renyi_db(names: &[&str], n: u64, edges: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for name in names {
        let rel =
            Relation::from_rows(2, (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]))
                .deduped();
        db.insert(*name, rel);
    }
    db
}

/// A skewed random graph: source vertices are drawn from a Zipf-like
/// distribution (`P(v) ∝ 1/(v+1)^exponent`), destinations uniformly.  This
/// produces the heavy/light degree profiles that make adaptive plans shine.
#[must_use]
pub fn zipf_graph_db(names: &[&str], n: u64, edges: usize, exponent: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute the cumulative distribution.
    let weights: Vec<f64> = (0..n).map(|v| 1.0 / ((v + 1) as f64).powf(exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(n as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let sample = |rng: &mut StdRng| -> u64 {
        let x: f64 = rng.gen();
        match cumulative.binary_search_by(|c| c.partial_cmp(&x).expect("finite")) {
            Ok(i) | Err(i) => (i as u64).min(n - 1),
        }
    };
    let mut db = Database::new();
    for name in names {
        let rel =
            Relation::from_rows(2, (0..edges).map(|_| [sample(&mut rng), rng.gen_range(0..n)]))
                .deduped();
        db.insert(*name, rel);
    }
    db
}

/// An instance satisfying the paper's `S_full` statistics (Eq. 16) for the
/// full 4-cycle query: all four relations have (about) `n` tuples, `U`
/// satisfies the functional dependency `W → X`, and `deg_U(W|X) ≤ c`.
#[must_use]
pub fn fd_instance(n: u64, c: u64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = c.max(1);
    let mut db = Database::new();
    // U(W, X): W ranges over [n]; X = W / c, so each X has ≤ c W-values and
    // each W exactly one X.
    let mut u = Relation::new(2);
    for w in 0..n {
        u.push_row(&[w, w / c]);
    }
    db.insert("U", u);
    // R, S, T: random binary relations over compatible domains.
    let x_domain = (n / c).max(1);
    let mut r = Relation::new(2);
    let mut s = Relation::new(2);
    let mut t = Relation::new(2);
    for _ in 0..n {
        let x = rng.gen_range(0..x_domain);
        let y = rng.gen_range(0..n);
        let z = rng.gen_range(0..n);
        let w = rng.gen_range(0..n);
        r.push_row(&[x, y]);
        s.push_row(&[y, z]);
        t.push_row(&[z, w]);
    }
    db.insert("R", r.deduped());
    db.insert("S", s.deduped());
    db.insert("T", t.deduped());
    db
}

/// A 3-relation path instance `R(A,B), S(B,C), T(C,D)` with `n` tuples per
/// relation and an output size controlled by `fanout`: every `B` (resp.
/// `C`) value has about `fanout` successors, so `|Q| ≈ n · fanout²` for the
/// full path query.  Used by the Yannakakis `O(N + OUT)` experiment (E13).
#[must_use]
pub fn path_instance(n: u64, fanout: u64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let fanout = fanout.max(1);
    let groups = (n / fanout).max(1);
    let mut db = Database::new();
    let mut r = Relation::new(2);
    let mut s = Relation::new(2);
    let mut t = Relation::new(2);
    for i in 0..n {
        r.push_row(&[i, i % groups]);
        s.push_row(&[i % groups, rng.gen_range(0..groups)]);
        t.push_row(&[i % groups, i]);
    }
    db.insert("R", r.deduped());
    db.insert("S", s.deduped());
    db.insert("T", t.deduped());
    db
}

/// A star instance `R(A,B), S(A,C), T(A,D)` with `n` tuples per relation
/// over `centers` distinct center values.
#[must_use]
pub fn star_instance(n: u64, centers: u64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = centers.max(1);
    let mut db = Database::new();
    for name in ["R", "S", "T"] {
        let rel = Relation::from_rows(
            2,
            (0..n).map(|_| [rng.gen_range(0..centers), rng.gen_range(0..n)]),
        )
        .deduped();
        db.insert(name, rel);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_relation::stats::{degree_sequence, max_degree};

    #[test]
    fn erdos_renyi_is_reproducible_and_bounded() {
        let a = erdos_renyi_db(&["R", "S"], 50, 200, 7);
        let b = erdos_renyi_db(&["R", "S"], 50, 200, 7);
        assert_eq!(
            a.relation("R").unwrap().canonical_rows(),
            b.relation("R").unwrap().canonical_rows()
        );
        assert!(a.relation("R").unwrap().len() <= 200);
        assert_eq!(a.num_relations(), 2);
    }

    #[test]
    fn zipf_graph_is_skewed() {
        let db = zipf_graph_db(&["R"], 200, 2000, 1.2, 3);
        let r = db.relation("R").unwrap();
        let seq = degree_sequence(r, &[0], &[1]);
        // The most popular source should have far more than the median degree.
        let max = seq[0];
        let median = seq[seq.len() / 2];
        assert!(max >= 4 * median.max(1), "max {max}, median {median}");
    }

    #[test]
    fn fd_instance_satisfies_its_statistics() {
        let db = fd_instance(500, 10, 1);
        let u = db.relation("U").unwrap();
        assert_eq!(u.len(), 500);
        // FD W → X: each W has exactly one X.
        assert_eq!(max_degree(u, &[0], &[1]), 1);
        // deg_U(W | X) ≤ 10.
        assert!(max_degree(u, &[1], &[0]) <= 10);
        for name in ["R", "S", "T"] {
            assert!(db.relation(name).unwrap().len() <= 500);
        }
    }

    #[test]
    fn path_instance_output_grows_with_fanout() {
        let small = path_instance(300, 1, 2);
        let big = path_instance(300, 10, 2);
        // More fanout ⇒ fewer groups ⇒ denser join.
        let small_groups =
            panda_relation::stats::distinct_count(small.relation("R").unwrap(), &[1]);
        let big_groups = panda_relation::stats::distinct_count(big.relation("R").unwrap(), &[1]);
        assert!(big_groups < small_groups);
    }

    #[test]
    fn star_instance_has_requested_center_count() {
        let db = star_instance(400, 8, 5);
        for name in ["R", "S", "T"] {
            let centers = panda_relation::stats::distinct_count(db.relation(name).unwrap(), &[0]);
            assert!(centers <= 8);
        }
    }
}
