//! Workload and instance generators for the experiments.
//!
//! * [`paper`] — the exact example instance of Figure 2, the paper's
//!   queries (the 4-cycle in its full/projected/Boolean variants, the
//!   triangle, paths), the `S_full` statistics of Eq. (16) and the
//!   fhtw-hard "double star" instance of Section 5.1,
//! * [`generators`] — Erdős–Rényi and Zipf-skewed random graphs,
//!   FD-respecting instances for `S_full`, and path/star instances with a
//!   controllable output size for the Yannakakis experiment.

#![forbid(unsafe_code)]
pub mod generators;
pub mod paper;

pub use generators::{erdos_renyi_db, fd_instance, path_instance, star_instance, zipf_graph_db};
pub use paper::{
    double_star_db, figure2_db, five_cycle_projected, four_cycle_boolean, four_cycle_full,
    four_cycle_projected, s_full_statistics, s_pentagon_statistics, s_square_statistics,
    triangle_query, two_path_projected,
};
