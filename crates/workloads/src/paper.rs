//! The paper's own queries, instances and statistics.

use panda_entropy::StatisticsSet;
use panda_query::{parse_query, ConjunctiveQuery, VarSet};
use panda_relation::{Database, Relation};

/// The projected 4-cycle query `Q□(X,Y)` of Eq. (2).
#[must_use]
pub fn four_cycle_projected() -> ConjunctiveQuery {
    parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").expect("valid query")
}

/// The full 4-cycle query `Q□^full(X,Y,Z,W)` of Eq. (1).
#[must_use]
pub fn four_cycle_full() -> ConjunctiveQuery {
    parse_query("Qfull(X,Y,Z,W) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").expect("valid query")
}

/// The Boolean 4-cycle query `Q□^bool()` of Eq. (76).
#[must_use]
pub fn four_cycle_boolean() -> ConjunctiveQuery {
    parse_query("Qbool() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").expect("valid query")
}

/// The triangle query used throughout Section 2 (AGM bound, worst-case
/// optimal joins).
#[must_use]
pub fn triangle_query() -> ConjunctiveQuery {
    parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").expect("valid query")
}

/// The projected 5-cycle query `Q⬠(A,B)` — the natural next instance in the
/// cycle family of Eq. (2).  With five variables its polymatroid LPs have
/// `2⁵ − 1 = 31` entropy variables and ~100 elemental rows, an order of
/// magnitude past the 4-cycle, which makes it the workspace's reference
/// workload for LP-solver performance (`subw` enumerates 197 bag selectors,
/// each one a Γ₅ LP).
#[must_use]
pub fn five_cycle_projected() -> ConjunctiveQuery {
    parse_query("Q(A,B) :- R(A,B), S(B,C), T(C,D), U(D,E), V(E,A)").expect("valid query")
}

/// The identical-cardinality statistics for the 5-cycle (the `S□` analogue
/// of Eq. (23) with five relations of size `n`).
#[must_use]
pub fn s_pentagon_statistics(n: u64) -> StatisticsSet {
    StatisticsSet::identical_cardinalities(&five_cycle_projected(), n)
}

/// The non-free-connex 2-path projection `Q(X,Y) :- R(X,Z), S(Z,Y)`
/// (Section 3.4's contrast case).
#[must_use]
pub fn two_path_projected() -> ConjunctiveQuery {
    parse_query("Q(X,Y) :- R(X,Z), S(Z,Y)").expect("valid query")
}

/// The example database instance of Figure 2 (page 8):
///
/// ```text
/// R = {(1,p),(1,q),(2,p)}   S = {(p,3),(q,4),(q,5)}
/// T = {(3,i),(5,i),(5,j)}   U = {(i,1),(j,1),(k,2)}
/// ```
///
/// Letters are encoded as `p,q = 101,102`, `i,j,k = 201,202,203`.  The
/// output of `Q□^full` on this instance is exactly the three tuples shown
/// in the figure: `(1,p,3,i)`, `(1,q,5,i)`, `(1,q,5,j)`.
#[must_use]
pub fn figure2_db() -> Database {
    let (p, q) = (101u64, 102u64);
    let (i, j, k) = (201u64, 202u64, 203u64);
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(2, vec![[1, p], [1, q], [2, p]]));
    db.insert("S", Relation::from_rows(2, vec![[p, 3], [q, 4], [q, 5]]));
    db.insert("T", Relation::from_rows(2, vec![[3, i], [5, i], [5, j]]));
    db.insert("U", Relation::from_rows(2, vec![[i, 1], [j, 1], [k, 2]]));
    db
}

/// The expected output of `Q□^full` on [`figure2_db`] (Figure 2, right).
#[must_use]
pub fn figure2_expected_output() -> Vec<Vec<u64>> {
    let (p, q) = (101u64, 102u64);
    let (i, j) = (201u64, 202u64);
    let mut rows = vec![vec![1, p, 3, i], vec![1, q, 5, i], vec![1, q, 5, j]];
    rows.sort();
    rows
}

/// The identical-cardinality statistics `S□` of Eq. (23) for a 4-cycle
/// query whose four relations all have size `n`.
#[must_use]
pub fn s_square_statistics(n: u64) -> StatisticsSet {
    StatisticsSet::identical_cardinalities(&four_cycle_projected(), n)
}

/// The statistics `S□^full` of Eq. (16): all four relations have size `n`,
/// `U` has the functional dependency `W → X`, and `deg_U(W|X) ≤ c`.
#[must_use]
pub fn s_full_statistics(n: u64, c: u64) -> StatisticsSet {
    let q = four_cycle_full();
    let x = q.var_by_name("X").expect("X");
    let w = q.var_by_name("W").expect("W");
    let mut stats = StatisticsSet::identical_cardinalities(&q, n);
    stats.add_functional_dependency("U", VarSet::singleton(w), VarSet::singleton(x));
    stats.add_degree("U", VarSet::singleton(x), VarSet::singleton(w), c);
    stats
}

/// The fhtw-hard "double star" instance of Section 5.1:
/// `R = S = T = U = ([n/2] × {1}) ∪ ({1} × [n/2])`.
///
/// On this instance every single-TD plan materialises an intermediate of
/// size Ω(n²/4), while the adaptive plan (and the DDR of Eq. 38) needs only
/// `O(n^{3/2})`.
#[must_use]
pub fn double_star_db(half: u64) -> Database {
    let mut rel = Relation::new(2);
    for i in 0..half {
        rel.push_row(&[i + 2, 1]);
        rel.push_row(&[1, i + 2]);
    }
    let rel = rel.deduped();
    let mut db = Database::new();
    for name in ["R", "S", "T", "U"] {
        db.insert(name, rel.clone());
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_instance_has_the_papers_shape() {
        let db = figure2_db();
        assert_eq!(db.num_relations(), 4);
        for name in ["R", "S", "T", "U"] {
            assert_eq!(db.relation(name).unwrap().len(), 3, "|{name}| = 3 in Figure 2");
        }
        assert_eq!(db.total_tuples(), 12);
        assert_eq!(figure2_expected_output().len(), 3);
    }

    #[test]
    fn paper_queries_have_the_documented_shapes() {
        assert!(four_cycle_full().is_full());
        assert!(four_cycle_boolean().is_boolean());
        let q = four_cycle_projected();
        assert_eq!(q.free_vars().len(), 2);
        assert_eq!(q.atoms().len(), 4);
        assert_eq!(triangle_query().num_vars(), 3);
        assert!(!two_path_projected().is_full());
    }

    #[test]
    fn s_full_statistics_encode_eq16() {
        let stats = s_full_statistics(10_000, 100);
        assert_eq!(stats.len(), 6);
        assert_eq!(stats.base(), 10_000);
        // the FD has log value 0 and the degree bound 100 = √N has ½.
        assert!(stats.stats().iter().any(|s| s.count == 1));
        assert!(stats
            .stats()
            .iter()
            .any(|s| s.count == 100 && s.log_value == panda_rational::Rat::new(1, 2)));
    }

    #[test]
    fn double_star_is_symmetric_and_skewed() {
        let db = double_star_db(10);
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 20);
        // vertex 1 has out-degree 10 and in-degree 10; everyone else degree 1.
        let deg1 = panda_relation::stats::max_degree(r, &[0], &[1]);
        assert_eq!(deg1, 10);
    }
}
