//! Degree constraints, ℓ_k-norm constraints, and statistics sets.

use std::collections::BTreeMap;

use panda_query::{ConjunctiveQuery, VarSet};
use panda_rational::Rat;
use panda_relation::{stats as rstats, Database};

/// The kind of a statistic (Section 3.2 and 9.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatKind {
    /// A degree constraint `deg(subj | cond) ≤ count` on the guard
    /// relation.  With `cond = ∅` this is a cardinality constraint; with
    /// `count = 1` it is a functional dependency `cond → subj`.
    Degree {
        /// The conditioning variables `X`.
        cond: VarSet,
        /// The subject variables `Y`.
        subj: VarSet,
    },
    /// An ℓ_k-norm constraint on the degree sequence
    /// `‖(deg(subj | cond = x))_x‖_k ≤ count` (Eq. 72), contributing the LP
    /// row `(1/k)·h(cond) + h(subj|cond) ≤ log count` (Eq. 73).
    LpNorm {
        /// The conditioning variables `X`.
        cond: VarSet,
        /// The subject variables `Y`.
        subj: VarSet,
        /// The norm index `k ≥ 1`.
        k: u32,
    },
}

impl StatKind {
    /// The conditioning variable set.
    #[must_use]
    pub fn cond(&self) -> VarSet {
        match self {
            StatKind::Degree { cond, .. } | StatKind::LpNorm { cond, .. } => *cond,
        }
    }

    /// The subject variable set.
    #[must_use]
    pub fn subj(&self) -> VarSet {
        match self {
            StatKind::Degree { subj, .. } | StatKind::LpNorm { subj, .. } => *subj,
        }
    }

    /// All variables mentioned by the constraint.
    #[must_use]
    pub fn vars(&self) -> VarSet {
        self.cond().union(self.subj())
    }
}

/// One input statistic: a constraint kind, the guard relation it was
/// asserted on (if any), the numeric bound and its exact logarithm in the
/// base of the enclosing [`StatisticsSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statistic {
    /// Human-readable label used in reports.
    pub label: String,
    /// The constraint kind.
    pub kind: StatKind,
    /// The relation symbol guarding the constraint, when known.  PANDA uses
    /// the guard to know which relation to partition when a proof-sequence
    /// decomposition step applies to this statistic.
    pub guard: Option<String>,
    /// The numeric bound `N_{Y|X}` (or the ℓ_k-norm bound).
    pub count: u64,
    /// `log_N(count)` where `N` is the statistics set's base, as an exact
    /// rational whenever possible.
    pub log_value: Rat,
}

/// Computes `log_base(count)` exactly as a rational `l/m` whenever
/// `count^m == base^l` for small `m`, and falls back to a close rational
/// approximation of the floating-point logarithm otherwise.
///
/// Exactness matters because the widths reported in the paper (e.g. `3/2`)
/// and the Shannon-flow dual coefficients must be exact to be convertible
/// into integral proof sequences.
#[must_use]
pub fn exact_log(base: u64, count: u64) -> Rat {
    assert!(base >= 2, "statistics base must be at least 2");
    if count <= 1 {
        return Rat::ZERO;
    }
    // Try exponents l/m with small denominator m: count^m == base^l.
    for m in 1u32..=6 {
        if let Some(cm) = (count as u128).checked_pow(m) {
            // find l such that base^l == cm
            let mut power: u128 = 1;
            let mut l = 0u32;
            loop {
                match power.cmp(&cm) {
                    std::cmp::Ordering::Equal => return Rat::new(i128::from(l), i128::from(m)),
                    std::cmp::Ordering::Greater => break,
                    std::cmp::Ordering::Less => {
                        power = match power.checked_mul(base as u128) {
                            Some(p) => p,
                            None => break,
                        };
                        l += 1;
                        if l > 512 {
                            break;
                        }
                    }
                }
            }
        }
    }
    // Fallback: rational approximation with denominator 10^6.
    let approx = (count as f64).ln() / (base as f64).ln();
    Rat::new((approx * 1_000_000.0).round() as i128, 1_000_000)
}

/// A set of statistics `S` about a database instance, all expressed in the
/// same logarithmic base `N` (the paper takes `N = ‖D‖`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatisticsSet {
    base: u64,
    stats: Vec<Statistic>,
}

impl StatisticsSet {
    /// Creates an empty statistics set with logarithm base `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        assert!(base >= 2, "statistics base must be at least 2");
        StatisticsSet { base, stats: Vec::new() }
    }

    /// The logarithm base `N`.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The statistics.
    #[must_use]
    pub fn stats(&self) -> &[Statistic] {
        &self.stats
    }

    /// Number of statistics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// `true` iff no statistics have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Adds a raw statistic.
    pub fn push(&mut self, stat: Statistic) -> &mut Self {
        self.stats.push(stat);
        self
    }

    /// Adds a cardinality constraint `|guard| ≤ count` over the variables
    /// `vars`.
    pub fn add_cardinality(
        &mut self,
        guard: impl Into<String>,
        vars: VarSet,
        count: u64,
    ) -> &mut Self {
        let guard = guard.into();
        let stat = Statistic {
            label: format!("|{guard}| ≤ {count}"),
            kind: StatKind::Degree { cond: VarSet::EMPTY, subj: vars },
            guard: Some(guard),
            count,
            log_value: exact_log(self.base, count),
        };
        self.stats.push(stat);
        self
    }

    /// Adds a degree constraint `deg_guard(subj | cond) ≤ count`.
    pub fn add_degree(
        &mut self,
        guard: impl Into<String>,
        cond: VarSet,
        subj: VarSet,
        count: u64,
    ) -> &mut Self {
        let guard = guard.into();
        let stat = Statistic {
            label: format!("deg_{guard}({subj:?}|{cond:?}) ≤ {count}"),
            kind: StatKind::Degree { cond, subj },
            guard: Some(guard),
            count,
            log_value: exact_log(self.base, count),
        };
        self.stats.push(stat);
        self
    }

    /// Adds a functional dependency `cond → subj` on the guard relation
    /// (a degree constraint with bound 1).
    pub fn add_functional_dependency(
        &mut self,
        guard: impl Into<String>,
        cond: VarSet,
        subj: VarSet,
    ) -> &mut Self {
        self.add_degree(guard, cond, subj, 1)
    }

    /// Adds an ℓ_k-norm constraint on the degree sequence of `subj` given
    /// `cond` (Eq. 72/73).
    pub fn add_lp_norm(
        &mut self,
        guard: impl Into<String>,
        cond: VarSet,
        subj: VarSet,
        k: u32,
        count: u64,
    ) -> &mut Self {
        assert!(k >= 1, "ℓ_k norms require k ≥ 1 (use a degree constraint for ℓ_∞)");
        let guard = guard.into();
        let stat = Statistic {
            label: format!("ℓ{k}-norm_{guard}({subj:?}|{cond:?}) ≤ {count}"),
            kind: StatKind::LpNorm { cond, subj, k },
            guard: Some(guard),
            count,
            log_value: exact_log(self.base, count),
        };
        self.stats.push(stat);
        self
    }

    /// Adds a degree constraint with an explicitly chosen exact log value
    /// (useful when the bound is symbolic, e.g. `√N` exactly).
    pub fn add_degree_with_log(
        &mut self,
        guard: impl Into<String>,
        cond: VarSet,
        subj: VarSet,
        count: u64,
        log_value: Rat,
    ) -> &mut Self {
        let guard = guard.into();
        self.stats.push(Statistic {
            label: format!("deg_{guard}({subj:?}|{cond:?}) ≤ {count}"),
            kind: StatKind::Degree { cond, subj },
            guard: Some(guard),
            count,
            log_value,
        });
        self
    }

    /// The paper's *identical cardinality constraints* `S`: every atom of
    /// the query is bounded by the same size `n` (Section 3.2).
    #[must_use]
    pub fn identical_cardinalities(query: &ConjunctiveQuery, n: u64) -> Self {
        let mut s = StatisticsSet::new(n.max(2));
        for atom in query.atoms() {
            s.add_cardinality(atom.relation.clone(), atom.var_set(), n);
        }
        s
    }

    /// Measures statistics from a concrete database instance: for every
    /// atom, its cardinality, plus the degree constraints conditioned on
    /// each single variable and each (arity−1)-subset of its variables.
    /// The base is `‖D‖` (total tuple count), as in the paper.
    ///
    /// Atoms whose relation is missing from the database are treated as
    /// empty (cardinality 0 is clamped to 1 so logarithms stay defined).
    #[must_use]
    pub fn measure(query: &ConjunctiveQuery, db: &Database) -> Self {
        let base = db.total_tuples().max(2) as u64;
        let mut s = StatisticsSet::new(base);
        for atom in query.atoms() {
            let vars = atom.var_set();
            let (card, degree_subsets) = match db.relation(&atom.relation) {
                Some(rel) => {
                    let mut degrees: BTreeMap<VarSet, u64> = BTreeMap::new();
                    for cond_size in [1usize, atom.arity().saturating_sub(1)] {
                        if cond_size == 0 || cond_size >= atom.arity() {
                            continue;
                        }
                        for cond in VarSet::subsets_of(vars) {
                            if cond.len() != cond_size {
                                continue;
                            }
                            let cond_cols: Vec<usize> = atom
                                .vars
                                .iter()
                                .enumerate()
                                .filter(|(_, v)| cond.contains(**v))
                                .map(|(i, _)| i)
                                .collect();
                            let subj_cols: Vec<usize> = atom
                                .vars
                                .iter()
                                .enumerate()
                                .filter(|(_, v)| !cond.contains(**v))
                                .map(|(i, _)| i)
                                .collect();
                            let d = rstats::max_degree(rel, &cond_cols, &subj_cols) as u64;
                            degrees.insert(cond, d.max(1));
                        }
                    }
                    (rel.distinct_count() as u64, degrees)
                }
                None => (0, BTreeMap::new()),
            };
            s.add_cardinality(atom.relation.clone(), vars, card.max(1));
            for (cond, d) in degree_subsets {
                s.add_degree(atom.relation.clone(), cond, vars.difference(cond), d);
            }
        }
        s
    }

    /// Returns the statistics whose guard is the given relation symbol.
    #[must_use]
    pub fn for_guard(&self, guard: &str) -> Vec<&Statistic> {
        self.stats.iter().filter(|s| s.guard.as_deref() == Some(guard)).collect()
    }

    /// The total size bound implied by summing all cardinality constraints
    /// (an upper bound on `‖D‖`); mainly for reporting.
    #[must_use]
    pub fn sum_of_cardinalities(&self) -> u64 {
        self.stats
            .iter()
            .filter(|s| matches!(s.kind, StatKind::Degree { cond, .. } if cond.is_empty()))
            .map(|s| s.count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::{parse_query, Var};
    use panda_relation::Relation;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    #[test]
    fn exact_log_recovers_integer_and_fractional_exponents() {
        assert_eq!(exact_log(10, 1), Rat::ZERO);
        assert_eq!(exact_log(10, 10), Rat::ONE);
        assert_eq!(exact_log(10, 100), Rat::from_int(2));
        assert_eq!(exact_log(100, 10), Rat::new(1, 2));
        assert_eq!(exact_log(8, 2), Rat::new(1, 3));
        assert_eq!(exact_log(4, 8), Rat::new(3, 2));
        assert_eq!(exact_log(1024, 32), Rat::new(1, 2));
    }

    #[test]
    fn exact_log_falls_back_to_approximation() {
        let v = exact_log(10, 3);
        let expected = 3f64.ln() / 10f64.ln();
        assert!((v.to_f64() - expected).abs() < 1e-5);
    }

    #[test]
    fn building_the_papers_s_full_statistics() {
        // S_full from Eq. (16): all four relations of size N, an FD W → X
        // in U, and deg_U(W|X) ≤ C.
        let n = 10_000u64;
        let c = 100u64;
        let (x, y, z, w) = (Var(0), Var(1), Var(2), Var(3));
        let mut s = StatisticsSet::new(n);
        s.add_cardinality("R", vs(&[0, 1]), n)
            .add_cardinality("S", vs(&[1, 2]), n)
            .add_cardinality("T", vs(&[2, 3]), n)
            .add_cardinality("U", vs(&[3, 0]), n)
            .add_functional_dependency("U", VarSet::singleton(w), VarSet::singleton(x))
            .add_degree("U", VarSet::singleton(x), VarSet::singleton(w), c);
        assert_eq!(s.len(), 6);
        assert_eq!(s.base(), n);
        assert_eq!(s.stats()[0].log_value, Rat::ONE);
        assert_eq!(s.stats()[4].log_value, Rat::ZERO); // FD
        assert_eq!(s.stats()[5].log_value, Rat::new(1, 2)); // C = √N
        assert_eq!(s.for_guard("U").len(), 3);
        assert_eq!(s.sum_of_cardinalities(), 4 * n);
        let _ = (x, y, z);
    }

    #[test]
    fn identical_cardinalities_covers_every_atom() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let s = StatisticsSet::identical_cardinalities(&q, 1000);
        assert_eq!(s.len(), 4);
        assert!(s.stats().iter().all(|st| st.log_value == Rat::ONE));
        assert!(s
            .stats()
            .iter()
            .all(|st| matches!(st.kind, StatKind::Degree { cond, .. } if cond.is_empty())));
    }

    #[test]
    fn measuring_statistics_from_data() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 10], [2, 10], [3, 20]]));
        db.insert("S", Relation::from_rows(2, vec![[10, 5], [10, 6], [10, 7], [20, 5]]));
        let s = StatisticsSet::measure(&q, &db);
        assert_eq!(s.base(), 7);
        // cardinalities for R and S present
        assert!(s.stats().iter().any(|st| st.label.contains("|R| ≤ 3")));
        assert!(s.stats().iter().any(|st| st.label.contains("|S| ≤ 4")));
        // deg_S(Z|Y) = 3 measured
        let y = q.var_by_name("Y").unwrap();
        let z = q.var_by_name("Z").unwrap();
        let found = s.stats().iter().any(|st| {
            st.guard.as_deref() == Some("S")
                && st.kind
                    == StatKind::Degree { cond: VarSet::singleton(y), subj: VarSet::singleton(z) }
                && st.count == 3
        });
        assert!(found, "expected deg_S(Z|Y) = 3 in {:#?}", s.stats());
    }

    #[test]
    fn measure_handles_missing_relations() {
        let q = parse_query("Q(X) :- R(X,Y)").unwrap();
        let db = Database::new();
        let s = StatisticsSet::measure(&q, &db);
        assert!(!s.is_empty());
        assert!(s.stats().iter().all(|st| st.count >= 1));
    }

    #[test]
    fn lp_norm_constraints_record_k() {
        let mut s = StatisticsSet::new(100);
        s.add_lp_norm("R", vs(&[0]), vs(&[1]), 2, 10);
        match &s.stats()[0].kind {
            StatKind::LpNorm { k, .. } => assert_eq!(*k, 2),
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(s.stats()[0].log_value, Rat::new(1, 2));
        assert_eq!(s.stats()[0].kind.vars(), vs(&[0, 1]));
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn lp_norm_with_k_zero_panics() {
        let mut s = StatisticsSet::new(100);
        s.add_lp_norm("R", vs(&[0]), vs(&[1]), 0, 10);
    }
}
