//! Information-theoretic cardinality bounds and width measures.
//!
//! This crate implements the "optimizer brain" of the PANDA framework
//! (Sections 3–6 and 9 of the paper):
//!
//! * [`Statistic`] / [`StatisticsSet`] — degree constraints
//!   `deg_R(Y|X) ≤ N_{Y|X}` (cardinality constraints and functional
//!   dependencies as special cases) and ℓ_k-norm constraints on degree
//!   sequences (Section 9.2), together with helpers that *measure* them on a
//!   concrete database instance,
//! * [`Elemental`] — the elemental Shannon inequalities generating the
//!   polymatroid cone Γ_n,
//! * [`polymatroid_bound`] — the polymatroid bound of a conjunctive query
//!   (Theorem 4.1), with the AGM bound as the all-cardinalities special
//!   case ([`agm_bound`]),
//! * [`ddr_polymatroid_bound`] — the polymatroid bound of a disjunctive
//!   datalog rule (Theorem 5.1),
//! * [`fhtw`] / [`subw`] — the fractional hypertree width (Eq. 22) and the
//!   submodular width (Eq. 41) generalized to arbitrary statistics and
//!   arbitrary (non-Boolean) CQs,
//! * [`ShannonFlow`] — the dual certificate of each bound: a Shannon-flow
//!   inequality (Lemma 6.1) together with an explicit witness as a
//!   non-negative combination of elemental inequalities, which
//!   `panda-proof` turns into a proof sequence and `panda-core` turns into
//!   a query plan,
//! * [`mm`] — the information-theoretic matrix-multiplication cost term
//!   `MM(X;Y;Z)` and the ω-submodular width of the 4-cycle (Section 9.3).
//!
//! Everything is computed exactly over rationals; the LP solver is
//! `panda-lp`.
//!
//! `docs/NOTATION.md` at the workspace root maps the paper's notation
//! (Γ_n, subw, fhtw, DDR bounds, ℓ_k-norms) onto the items of this
//! crate; `docs/ARCHITECTURE.md` places it in the execution flow.

// Every public item in this crate must be documented; broken or missing
// docs fail CI via the `cargo doc` job (RUSTDOCFLAGS="-D warnings").
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod constraints;
pub mod elemental;
pub mod mm;
pub mod shannon;
pub mod varspace;

pub use bounds::{
    agm_bound, ddr_polymatroid_bound, ddr_polymatroid_bound_budgeted, fhtw, fhtw_with_tds,
    fhtw_with_tds_budgeted, fhtw_with_tds_parallel, polymatroid_bound, polymatroid_bound_budgeted,
    subw, subw_with_tds, subw_with_tds_budgeted, subw_with_tds_parallel, BoundError, BoundReport,
    FhtwReport, SelectorBound, SubwReport,
};
pub use constraints::{exact_log, StatKind, Statistic, StatisticsSet};
pub use elemental::Elemental;
// Planning budgets live in `panda-lp` (the pivot loop is what they bound);
// re-exported here so `panda-core` and callers above it need no direct
// solver dependency to use budgeted width computations.
pub use mm::{mm_cost_log, omega_subw_square, MATRIX_MULT_OMEGA};
pub use panda_lp::{CancelToken, PivotBudget};
pub use shannon::{CondTerm, IntegralShannonFlow, ShannonFlow};
pub use varspace::EntropyVarSpace;
