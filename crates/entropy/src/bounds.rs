//! The polymatroid bound, the DDR bound, and the width measures.
//!
//! All of these are linear programs over the polymatroid cone constrained
//! by the input statistics (`h ⊨ S, Γ_n` in the paper's notation):
//!
//! * [`polymatroid_bound`] — `max h(F)` (Theorem 4.1, right-most term),
//! * [`ddr_polymatroid_bound`] — `max min_B h(B)` (Theorem 5.1),
//! * [`fhtw`] — `min_T max_{B ∈ bags(T)} max_h h(B)` (Eq. 22),
//! * [`subw`] — `max_{B ∈ BS(Q)} max_h min_{B ∈ B} h(B)` (Eq. 41),
//! * [`agm_bound`] — the all-cardinalities special case of the polymatroid
//!   bound (the AGM bound / fractional edge cover).
//!
//! Every bound comes back as a [`BoundReport`] carrying the optimal value
//! *and* the dual certificate as a verified [`ShannonFlow`].

// panda-lint: allow-file(P1) -- LP variable ids are minted by the
// Γ-LP builder in this module, so objective/constraint lookups are
// in range by construction; pool-build expects have no fallible path.

// panda-lint: allow(D2) -- the import feeds the Γ-scaffold memo below:
// pure memoisation of deterministic LP scaffolds, never observable in
// results (see the cache's own justification).
use std::sync::{Arc, Mutex};

use panda_lp::{Basis, ConstraintOp, LinearProgram, LpError, LpOutcome, PivotBudget};
use panda_query::{BagSelector, ConjunctiveQuery, TreeDecomposition, VarSet};
use panda_rational::Rat;

use crate::constraints::{StatKind, Statistic, StatisticsSet};
use crate::elemental::Elemental;
use crate::shannon::ShannonFlow;
use crate::varspace::EntropyVarSpace;

/// Errors produced by the bound computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundError {
    /// The statistics do not bound the target: the LP is unbounded, i.e.
    /// the worst-case output size is infinite (e.g. a variable not covered
    /// by any constraint).
    Unbounded,
    /// The underlying LP solver failed (iteration limit); indicates a bug.
    Solver(String),
    /// The caller-supplied [`PivotBudget`] ran out before the bound (or the
    /// chain of bounds) was computed.  Unlike [`BoundError::Solver`] this is
    /// an expected, recoverable outcome: the caller asked for bounded
    /// planning work and should fall back to a cheaper plan.
    PivotBudgetExhausted,
    /// A [`CancelToken`](panda_lp::CancelToken) attached to the supplied
    /// [`PivotBudget`] was cancelled mid-computation.  Expected and
    /// recoverable, but — unlike [`BoundError::PivotBudgetExhausted`] —
    /// never absorbed into a fail-soft fallback: the caller asked for the
    /// work to stop, not for a cheaper substitute.
    Cancelled,
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::Unbounded => write!(
                f,
                "the statistics do not bound the target (the polymatroid LP is unbounded)"
            ),
            BoundError::Solver(msg) => write!(f, "LP solver failure: {msg}"),
            BoundError::PivotBudgetExhausted => {
                write!(f, "the LP pivot budget was exhausted before the bound was computed")
            }
            BoundError::Cancelled => {
                write!(f, "the computation was cancelled before the bound was computed")
            }
        }
    }
}

impl std::error::Error for BoundError {}

/// The result of one bound computation: the optimal log-scale value and the
/// Shannon-flow certificate extracted from the LP dual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundReport {
    /// The bound in `log_N` scale (the exponent of `N`), e.g. `3/2`.
    pub log_bound: Rat,
    /// The dual certificate.
    pub flow: ShannonFlow,
}

impl BoundReport {
    /// The bound in tuples: `Π_c N_c^{w_c}` (Theorem 6.2).
    #[must_use]
    pub fn tuple_bound(&self) -> f64 {
        self.flow.tuple_bound()
    }
}

/// One tree decomposition's cost inside a [`FhtwReport`]:
/// `(decomposition, cost, per-bag bounds)`.
pub type TdCost = (TreeDecomposition, Rat, Vec<(VarSet, Rat)>);

/// The fractional-hypertree-width report (Eq. 22).
#[derive(Debug, Clone)]
pub struct FhtwReport {
    /// `fhtw(Q, S)`.
    pub value: Rat,
    /// Index (into `per_td`) of a decomposition achieving the minimum.
    pub best: usize,
    /// Per-TD costs.
    pub per_td: Vec<TdCost>,
}

impl FhtwReport {
    /// The optimal (single-TD) decomposition.
    #[must_use]
    pub fn best_td(&self) -> &TreeDecomposition {
        &self.per_td[self.best].0
    }
}

/// The bound of one bag selector inside a [`SubwReport`].
#[derive(Debug, Clone)]
pub struct SelectorBound {
    /// The bag selector.
    pub selector: BagSelector,
    /// The DDR bound report for this selector.
    pub report: BoundReport,
}

/// The submodular-width report (Eq. 41).
#[derive(Debug, Clone)]
pub struct SubwReport {
    /// `subw(Q, S)`.
    pub value: Rat,
    /// The tree decompositions used (`TD(Q)`).
    pub tds: Vec<TreeDecomposition>,
    /// One DDR bound per bag selector in `BS(Q)`.
    pub per_selector: Vec<SelectorBound>,
}

impl SubwReport {
    /// The selector attaining the maximum (the "hardest" DDR).
    #[must_use]
    pub fn hardest(&self) -> &SelectorBound {
        self.per_selector
            .iter()
            .max_by(|a, b| a.report.log_bound.cmp(&b.report.log_bound))
            .expect("a submodular width report always has at least one selector")
    }
}

/// The target-independent part of a Γ_n LP: the entropy variable space,
/// the statistics rows and the elemental Shannon rows with their sparse
/// coefficients, all pre-derived so that instantiating a concrete LP is a
/// matter of replaying stored rows instead of re-enumerating the
/// `O(n² · 2ⁿ)` elemental inequalities.
///
/// `subw` solves one LP per bag selector — 197 of them for the 5-cycle —
/// and `fhtw` one per bag, all over the same `(universe, statistics)`
/// scaffold, which is why scaffolds are memoised in a small
/// process-shared cache keyed by exactly that pair (see `scaffold_for`):
/// all pool workers and repeated queries against unchanged statistics
/// reuse one scaffold build.
struct GammaScaffold {
    space: EntropyVarSpace,
    /// Per-statistic `(sparse coefficients, rhs)` of the `≤` rows.
    stat_rows: Vec<(Vec<(usize, Rat)>, Rat)>,
    /// Elemental inequalities with their sparse `≥ 0` coefficients.
    elementals: Vec<(Elemental, Vec<(usize, Rat)>)>,
}

impl GammaScaffold {
    fn build(universe: VarSet, stats: &StatisticsSet) -> Self {
        let space = EntropyVarSpace::new(universe);

        // Statistics rows (h ⊨ S), Eq. (8) and Eq. (73).
        let mut stat_rows = Vec::with_capacity(stats.len());
        for stat in stats.stats() {
            let mut coeffs: Vec<(usize, Rat)> = Vec::with_capacity(3);
            match stat.kind {
                StatKind::Degree { cond, subj } => {
                    space.add_conditional_term(&mut coeffs, cond, subj, Rat::ONE);
                }
                StatKind::LpNorm { cond, subj, k } => {
                    // (1/k)·h(X) + h(XY) − h(X) ≤ log value.
                    let joint = cond.union(subj);
                    if !joint.is_empty() {
                        coeffs.push((space.index_of(joint), Rat::ONE));
                    }
                    if !cond.is_empty() {
                        coeffs.push((space.index_of(cond), Rat::new(1, i128::from(k)) - Rat::ONE));
                    }
                }
            }
            stat_rows.push((coeffs, stat.log_value));
        }

        // Elemental Shannon inequalities `expr_e(h) ≥ 0`.
        let elementals = Elemental::enumerate(universe)
            .into_iter()
            .map(|elemental| {
                let coeffs: Vec<(usize, Rat)> = elemental
                    .coefficients()
                    .into_iter()
                    .map(|(s, c)| (space.index_of(s), Rat::from_int(i128::from(c))))
                    .collect();
                (elemental, coeffs)
            })
            .collect();

        GammaScaffold { space, stat_rows, elementals }
    }
}

/// How many `(universe, statistics)` scaffolds the shared cache keeps.
/// One width computation alternates between at most two scaffolds (one per
/// statistics set in play), but the cache is now process-shared across pool
/// workers and repeated queries, so the cap leaves room for several
/// concurrent statistics sets while still bounding memory when a caller
/// streams many distinct ones (e.g. per-branch re-costing in the adaptive
/// evaluator).
const SCAFFOLD_CACHE_CAP: usize = 16;

/// A cache slot: the `(universe, statistics)` key and its scaffold.
type ScaffoldEntry = ((VarSet, StatisticsSet), Arc<GammaScaffold>);

/// Process-shared LRU cache of memoised scaffolds, most recently used
/// last.  Eviction is positional (least recently used first) — determinism
/// comes from counting uses, never from clocks.
//
// panda-lint: allow(D2) -- memoisation only: a scaffold is a pure function
// of its (universe, statistics) key, so whichever thread populates a slot,
// every reader observes an identical value; eviction affects only cost,
// never results.
static SCAFFOLD_CACHE: Mutex<Vec<ScaffoldEntry>> = Mutex::new(Vec::new());

/// Returns the memoised scaffold for `(universe, stats)`, building and
/// caching it on a miss.  Shared across threads: parallel width chains and
/// repeated queries against unchanged statistics all reuse one build.
fn scaffold_for(universe: VarSet, stats: &StatisticsSet) -> Arc<GammaScaffold> {
    // panda-lint: allow(D2) -- see SCAFFOLD_CACHE: pure memoisation.
    let mut cache = SCAFFOLD_CACHE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(pos) = cache.iter().position(|((u, s), _)| *u == universe && s == stats) {
        let entry = cache.remove(pos);
        let scaffold = Arc::clone(&entry.1);
        cache.push(entry);
        return scaffold;
    }
    let scaffold = Arc::new(GammaScaffold::build(universe, stats));
    if cache.len() >= SCAFFOLD_CACHE_CAP {
        cache.remove(0);
    }
    cache.push(((universe, stats.clone()), Arc::clone(&scaffold)));
    scaffold
}

/// Internal: the Γ_n-plus-statistics LP with bookkeeping for dual
/// extraction.
struct GammaLp {
    space: EntropyVarSpace,
    lp: LinearProgram,
    stat_rows: Vec<usize>,
    elemental_rows: Vec<(usize, Elemental)>,
    /// `(row, bag)` rows of the form `t − h(B) ≤ 0` (empty when a single
    /// target is maximised directly).
    target_rows: Vec<(usize, VarSet)>,
    /// Index of the auxiliary `t` variable, if any.
    t_var: Option<usize>,
}

impl GammaLp {
    /// Builds the LP `max h(target)` (single target) or `max t` with
    /// `t ≤ h(B)` for every target (DDR form), subject to `h ⊨ S, Γ_n`,
    /// instantiated from the memoised scaffold.  The row order — statistics,
    /// targets, elementals — matches the scaffold-free construction the
    /// seed shipped with, so *cold* solves follow the same pivot paths and
    /// extract the same dual certificates as before the refactor.
    /// Warm-started solves ([`GammaLp::solve_warm`] with a hint) may reach
    /// a different optimal basis when the optimum is degenerate — Γ_n LPs
    /// routinely are — so their certificates can legitimately differ; every
    /// certificate is still verified by `ShannonFlow::verify_identity`
    /// before it is returned, and the optimal *value* never changes.
    fn build(universe: VarSet, stats: &StatisticsSet, targets: &[VarSet]) -> Self {
        assert!(!targets.is_empty(), "at least one target set is required");
        for t in targets {
            assert!(
                t.is_subset_of(universe),
                "target {t:?} is not contained in the universe {universe:?}"
            );
            assert!(!t.is_empty(), "target sets must be non-empty");
        }
        let scaffold = scaffold_for(universe, stats);
        let space = scaffold.space.clone();
        let use_t = targets.len() > 1;
        let num_vars = space.num_lp_vars() + usize::from(use_t);
        let t_var = use_t.then_some(space.num_lp_vars());
        let mut lp = LinearProgram::new(num_vars);

        // Objective.
        if let Some(t) = t_var {
            lp.set_objective_coeff(t, Rat::ONE);
        } else {
            lp.set_objective_coeff(space.index_of(targets[0]), Rat::ONE);
        }

        // Statistics rows, replayed from the scaffold.
        let mut stat_rows = Vec::with_capacity(scaffold.stat_rows.len());
        for (coeffs, rhs) in &scaffold.stat_rows {
            let row = lp.add_constraint(coeffs.clone(), ConstraintOp::Le, *rhs);
            stat_rows.push(row);
        }

        // Target rows `t − h(B) ≤ 0`.
        let mut target_rows = Vec::new();
        if let Some(t) = t_var {
            for &bag in targets {
                let row = lp.add_constraint(
                    vec![(t, Rat::ONE), (space.index_of(bag), -Rat::ONE)],
                    ConstraintOp::Le,
                    Rat::ZERO,
                );
                target_rows.push((row, bag));
            }
        }

        // Elemental rows, replayed from the scaffold.
        let mut elemental_rows = Vec::with_capacity(scaffold.elementals.len());
        for (elemental, coeffs) in &scaffold.elementals {
            let row = lp.add_constraint(coeffs.clone(), ConstraintOp::Ge, Rat::ZERO);
            elemental_rows.push((row, *elemental));
        }

        GammaLp { space, lp, stat_rows, elemental_rows, target_rows, t_var }
    }

    /// Solves the LP and converts the dual into a verified [`ShannonFlow`].
    fn solve(&self, stats: &StatisticsSet, targets: &[VarSet]) -> Result<BoundReport, BoundError> {
        self.solve_warm(stats, targets, None, None).map(|(report, _)| report)
    }

    /// Like [`GammaLp::solve`], but optionally warm-starting from the final
    /// basis of a structurally compatible previous solve (same universe and
    /// statistics, same number of target rows) and returning this solve's
    /// basis for the next LP in the family.  `subw` chains selector LPs
    /// this way and `fhtw` chains per-bag LPs (whose constraints are
    /// *identical* — only the objective moves), skipping phase 1 whenever
    /// the carried basis is still exactly feasible.
    ///
    /// When a [`PivotBudget`] is supplied, every simplex pivot is charged
    /// to it and the solve aborts with
    /// [`BoundError::PivotBudgetExhausted`] once it runs out.
    fn solve_warm(
        &self,
        stats: &StatisticsSet,
        targets: &[VarSet],
        hint: Option<&Basis>,
        budget: Option<&mut PivotBudget>,
    ) -> Result<(BoundReport, Option<Basis>), BoundError> {
        let solved = match budget {
            Some(b) => self.lp.solve_warm_budgeted(hint, b),
            None => self.lp.solve_warm(hint),
        };
        let (outcome, basis) = solved.map_err(|e| match e {
            LpError::PivotBudgetExhausted { .. } => BoundError::PivotBudgetExhausted,
            LpError::Cancelled => BoundError::Cancelled,
            other => BoundError::Solver(other.to_string()),
        })?;
        let solution =
            match outcome {
                LpOutcome::Optimal(s) => s,
                LpOutcome::Unbounded => return Err(BoundError::Unbounded),
                LpOutcome::Infeasible => return Err(BoundError::Solver(
                    "polymatroid LP reported infeasible, which is impossible (h = 0 is feasible)"
                        .to_string(),
                )),
            };

        // λ: multipliers of the target rows (or 1 on the single target).
        let targets_with_lambda: Vec<(VarSet, Rat)> = if self.t_var.is_some() {
            self.target_rows
                .iter()
                .map(|(row, bag)| (*bag, solution.duals[*row]))
                .filter(|(_, l)| !l.is_zero())
                .collect()
        } else {
            vec![(targets[0], Rat::ONE)]
        };

        // w: multipliers of the statistics rows.
        let sources: Vec<(Statistic, Rat)> = self
            .stat_rows
            .iter()
            .zip(stats.stats())
            .map(|(row, stat)| (stat.clone(), solution.duals[*row]))
            .filter(|(_, w)| !w.is_zero())
            .collect();

        // μ: multipliers of the elemental rows (`≥` rows have non-positive
        // duals under the solver's sign convention, so negate).
        let witness: Vec<(Elemental, Rat)> = self
            .elemental_rows
            .iter()
            .map(|(row, e)| (*e, -solution.duals[*row]))
            .filter(|(_, mu)| !mu.is_zero())
            .collect();

        // Residuals: per-subset slack of the dual-feasibility rows, which
        // corresponds to unused `h(S) ≥ 0` capacity.
        let mut flow = ShannonFlow {
            universe: self.space.universe(),
            targets: targets_with_lambda,
            sources,
            witness,
            residuals: Vec::new(),
        };
        flow.residuals = residuals_for(&flow, &self.space);
        if let Err(e) = flow.verify_identity() {
            return Err(BoundError::Solver(format!(
                "extracted Shannon flow failed verification: {e}"
            )));
        }

        Ok((BoundReport { log_bound: solution.objective, flow }, basis))
    }
}

/// Computes the per-subset residuals `r_S ≥ 0` that close the identity
/// `Σ w_c h(Y_c|X_c) = Σ λ_B h(B) + Σ μ_e expr_e + Σ r_S h(S)`.
fn residuals_for(flow: &ShannonFlow, space: &EntropyVarSpace) -> Vec<(VarSet, Rat)> {
    let mut residuals = Vec::new();
    for s in space.subsets() {
        let mut lhs = Rat::ZERO;
        for (stat, w) in &flow.sources {
            match stat.kind {
                StatKind::Degree { cond, subj } => {
                    if cond.union(subj) == s {
                        lhs += *w;
                    }
                    if cond == s {
                        lhs -= *w;
                    }
                }
                StatKind::LpNorm { cond, subj, k } => {
                    if cond.union(subj) == s {
                        lhs += *w;
                    }
                    if cond == s {
                        lhs += *w * (Rat::new(1, i128::from(k)) - Rat::ONE);
                    }
                }
            }
        }
        let mut rhs = Rat::ZERO;
        for (b, l) in &flow.targets {
            if *b == s {
                rhs += *l;
            }
        }
        for (e, mu) in &flow.witness {
            for (set, c) in e.coefficients() {
                if set == s {
                    rhs += *mu * Rat::from_int(i128::from(c));
                }
            }
        }
        let r = lhs - rhs;
        if !r.is_zero() {
            residuals.push((s, r));
        }
    }
    residuals
}

/// The polymatroid bound of a conjunctive-query output (Theorem 4.1):
/// `max { h(target) : h ⊨ S, Γ_n }` over the given variable universe.
///
/// # Example
///
/// The triangle query under cardinality constraints recovers the AGM
/// exponent `3/2` (Section 4.3):
///
/// ```
/// use panda_entropy::{polymatroid_bound, StatisticsSet};
/// use panda_query::parse_query;
/// use panda_rational::Rat;
///
/// let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
/// let stats = StatisticsSet::identical_cardinalities(&q, 10_000);
/// let report = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
/// assert_eq!(report.log_bound, Rat::new(3, 2));
/// // The dual certificate is a machine-verified Shannon-flow inequality.
/// report.flow.verify_identity().unwrap();
/// ```
pub fn polymatroid_bound(
    target: VarSet,
    universe: VarSet,
    stats: &StatisticsSet,
) -> Result<BoundReport, BoundError> {
    let lp = GammaLp::build(universe, stats, &[target]);
    lp.solve(stats, &[target])
}

/// [`polymatroid_bound`] with every simplex pivot charged to a shared
/// [`PivotBudget`]; aborts with [`BoundError::PivotBudgetExhausted`] once
/// the budget runs out.  A solve that completes within budget returns
/// bit-for-bit the same report as the unbudgeted one.
pub fn polymatroid_bound_budgeted(
    target: VarSet,
    universe: VarSet,
    stats: &StatisticsSet,
    budget: &mut PivotBudget,
) -> Result<BoundReport, BoundError> {
    let lp = GammaLp::build(universe, stats, &[target]);
    lp.solve_warm(stats, &[target], None, Some(budget)).map(|(report, _)| report)
}

/// The polymatroid bound of a disjunctive datalog rule (Theorem 5.1):
/// `max { min_B h(B) : h ⊨ S, Γ_n }`.
///
/// # Example
///
/// The DDR of Eq. (38) — the 4-cycle split into two triangle bags — has
/// the bound `3/2` under identical cardinalities (Eq. 45):
///
/// ```
/// use panda_entropy::{ddr_polymatroid_bound, StatisticsSet};
/// use panda_query::parse_query;
/// use panda_rational::Rat;
///
/// let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
/// let stats = StatisticsSet::identical_cardinalities(&q, 1000);
/// let xyz = q.atoms()[0].var_set().union(q.atoms()[1].var_set());
/// let yzw = q.atoms()[1].var_set().union(q.atoms()[2].var_set());
/// let report = ddr_polymatroid_bound(&[xyz, yzw], q.all_vars(), &stats).unwrap();
/// assert_eq!(report.log_bound, Rat::new(3, 2));
/// ```
pub fn ddr_polymatroid_bound(
    targets: &[VarSet],
    universe: VarSet,
    stats: &StatisticsSet,
) -> Result<BoundReport, BoundError> {
    let lp = GammaLp::build(universe, stats, targets);
    lp.solve(stats, targets)
}

/// [`ddr_polymatroid_bound`] with every simplex pivot charged to a shared
/// [`PivotBudget`]; aborts with [`BoundError::PivotBudgetExhausted`] once
/// the budget runs out.
pub fn ddr_polymatroid_bound_budgeted(
    targets: &[VarSet],
    universe: VarSet,
    stats: &StatisticsSet,
    budget: &mut PivotBudget,
) -> Result<BoundReport, BoundError> {
    let lp = GammaLp::build(universe, stats, targets);
    lp.solve_warm(stats, targets, None, Some(budget)).map(|(report, _)| report)
}

/// The AGM bound of a query under per-relation cardinalities: the
/// polymatroid bound with only cardinality constraints, which the paper
/// notes collapses to the fractional edge cover bound and is tight.
///
/// `sizes` maps relation symbols to their cardinalities; atoms missing from
/// the map are given size `base`.  The target is the full variable set.
///
/// # Example
///
/// ```
/// use panda_entropy::agm_bound;
/// use panda_query::parse_query;
/// use panda_rational::Rat;
///
/// let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
/// let report = agm_bound(&q, &[], 10_000).unwrap();
/// assert_eq!(report.log_bound, Rat::new(3, 2)); // |output| ≤ N^{3/2}
/// ```
pub fn agm_bound(
    query: &ConjunctiveQuery,
    sizes: &[(&str, u64)],
    base: u64,
) -> Result<BoundReport, BoundError> {
    let mut stats = StatisticsSet::new(base.max(2));
    for atom in query.atoms() {
        let size = sizes.iter().find(|(name, _)| *name == atom.relation).map_or(base, |(_, s)| *s);
        stats.add_cardinality(atom.relation.clone(), atom.var_set(), size);
    }
    polymatroid_bound(query.all_vars(), query.all_vars(), &stats)
}

/// The fractional hypertree width of a query under statistics (Eq. 22),
/// using the query's enumerated free-connex tree decompositions.
///
/// # Example
///
/// Section 4.3: `fhtw(Q□, S□) = 2` for the 4-cycle, while its submodular
/// width ([`subw`]) is only `3/2` — the gap PANDA's adaptive plans exploit:
///
/// ```
/// use panda_entropy::{fhtw, subw, StatisticsSet};
/// use panda_query::parse_query;
/// use panda_rational::Rat;
///
/// let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
/// let stats = StatisticsSet::identical_cardinalities(&q, 1 << 20);
/// assert_eq!(fhtw(&q, &stats).unwrap().value, Rat::from_int(2));
/// assert_eq!(subw(&q, &stats).unwrap().value, Rat::new(3, 2));
/// ```
pub fn fhtw(query: &ConjunctiveQuery, stats: &StatisticsSet) -> Result<FhtwReport, BoundError> {
    let tds = TreeDecomposition::enumerate(query);
    fhtw_with_tds(query, &tds, stats)
}

/// Splits `items` into at most `threads` balanced contiguous chunks — the
/// unit of work of the parallel width computations: each chunk is one
/// warm-started LP chain on one pool worker.
fn chunked<T>(items: &[T], threads: usize) -> Vec<&[T]> {
    let k = threads.min(items.len()).max(1);
    let chunks: Vec<&[T]> =
        (0..k).map(|i| &items[items.len() * i / k..items.len() * (i + 1) / k]).collect();
    // The chunks must tile the input in order — flattening chunk results
    // in chunk order is what keeps parallel width chains bit-identical to
    // the sequential ones.
    debug_assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), items.len());
    chunks
}

/// Flattens per-chunk results in chunk order, surfacing the error of the
/// earliest failing item so parallel runs fail deterministically.
fn flatten_chunks<T>(chunks: Vec<Result<Vec<T>, BoundError>>) -> Result<Vec<T>, BoundError> {
    let mut out = Vec::new();
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

/// [`fhtw`] over an explicit set of tree decompositions.
pub fn fhtw_with_tds(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
) -> Result<FhtwReport, BoundError> {
    fhtw_chain(query, tds, stats, None)
}

/// [`fhtw_with_tds`] with every simplex pivot of the per-bag LP chain
/// charged to a shared [`PivotBudget`]; aborts with
/// [`BoundError::PivotBudgetExhausted`] once the budget runs out.  A chain
/// that completes within budget returns bit-for-bit the same report as the
/// unbudgeted sequential chain (the budget counts pivots, it never alters
/// one).
pub fn fhtw_with_tds_budgeted(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
    budget: &mut PivotBudget,
) -> Result<FhtwReport, BoundError> {
    fhtw_chain(query, tds, stats, Some(budget))
}

/// The shared sequential per-bag LP chain behind [`fhtw_with_tds`] and
/// [`fhtw_with_tds_budgeted`].
fn fhtw_chain(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
    mut budget: Option<&mut PivotBudget>,
) -> Result<FhtwReport, BoundError> {
    assert!(!tds.is_empty(), "fhtw requires at least one tree decomposition");
    let universe = query.all_vars();
    let mut per_td = Vec::with_capacity(tds.len());
    // Per-bag LPs share every constraint (only the objective moves), so
    // each solve warm-starts from the previous bag's optimal basis.
    let mut carried: Option<Basis> = None;
    for td in tds {
        let mut worst = Rat::ZERO;
        let mut per_bag = Vec::with_capacity(td.num_bags());
        for &bag in td.bags() {
            let lp = GammaLp::build(universe, stats, &[bag]);
            let (report, basis) =
                lp.solve_warm(stats, &[bag], carried.as_ref(), budget.as_deref_mut())?;
            // An Ok solve is always Optimal here, and Optimal always
            // carries a basis.
            carried = basis;
            worst = worst.max(report.log_bound);
            per_bag.push((bag, report.log_bound));
        }
        per_td.push((td.clone(), worst, per_bag));
    }
    let best = per_td
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok(FhtwReport { value: per_td[best].1, best, per_td })
}

/// [`fhtw_with_tds`] with the per-TD bag-LP chains distributed over up to
/// `threads` pool workers.
///
/// The decompositions are split into contiguous chunks; each worker runs
/// the warm-started per-bag chain for its chunk, all sharing one Γ_n
/// scaffold through the process-wide memo (see `scaffold_for`), so the
/// scaffold is built at most once.  Optimal LP values are unique, so the
/// reported widths and per-bag bounds are **identical** to the sequential
/// chain at any thread count; only wall-clock time changes.  With
/// `threads <= 1` this is exactly [`fhtw_with_tds`].
pub fn fhtw_with_tds_parallel(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
    threads: usize,
) -> Result<FhtwReport, BoundError> {
    assert!(!tds.is_empty(), "fhtw requires at least one tree decomposition");
    if threads <= 1 || tds.len() < 2 {
        return fhtw_with_tds(query, tds, stats);
    }
    let universe = query.all_vars();
    let chunks = chunked(tds, threads);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction is infallible");
    let per_chunk: Vec<Result<Vec<TdCost>, BoundError>> = pool.install(|| {
        use rayon::prelude::*;
        chunks
            .par_iter()
            .map(|chunk| {
                let mut carried: Option<Basis> = None;
                let mut per_td = Vec::with_capacity(chunk.len());
                for td in *chunk {
                    let mut worst = Rat::ZERO;
                    let mut per_bag = Vec::with_capacity(td.num_bags());
                    for &bag in td.bags() {
                        let lp = GammaLp::build(universe, stats, &[bag]);
                        let (report, basis) =
                            lp.solve_warm(stats, &[bag], carried.as_ref(), None)?;
                        carried = basis;
                        worst = worst.max(report.log_bound);
                        per_bag.push((bag, report.log_bound));
                    }
                    per_td.push((td.clone(), worst, per_bag));
                }
                Ok(per_td)
            })
            .collect()
    });
    let per_td = flatten_chunks(per_chunk)?;
    // One result per decomposition, in input order — the argmin below must
    // see the same sequence the sequential chain would produce.
    debug_assert_eq!(per_td.len(), tds.len());
    let best = per_td
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok(FhtwReport { value: per_td[best].1, best, per_td })
}

/// The submodular width of a query under statistics (Eq. 41), using the
/// query's enumerated free-connex tree decompositions.
pub fn subw(query: &ConjunctiveQuery, stats: &StatisticsSet) -> Result<SubwReport, BoundError> {
    let tds = TreeDecomposition::enumerate(query);
    subw_with_tds(query, &tds, stats)
}

/// [`subw`] over an explicit set of tree decompositions.
pub fn subw_with_tds(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
) -> Result<SubwReport, BoundError> {
    subw_chain(query, tds, stats, None)
}

/// [`subw_with_tds`] with every simplex pivot of the selector LP chain
/// charged to a shared [`PivotBudget`]; aborts with
/// [`BoundError::PivotBudgetExhausted`] once the budget runs out.  A chain
/// that completes within budget returns bit-for-bit the same report as the
/// unbudgeted sequential chain.
pub fn subw_with_tds_budgeted(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
    budget: &mut PivotBudget,
) -> Result<SubwReport, BoundError> {
    subw_chain(query, tds, stats, Some(budget))
}

/// The shared sequential selector LP chain behind [`subw_with_tds`] and
/// [`subw_with_tds_budgeted`].
fn subw_chain(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
    mut budget: Option<&mut PivotBudget>,
) -> Result<SubwReport, BoundError> {
    assert!(!tds.is_empty(), "subw requires at least one tree decomposition");
    let universe = query.all_vars();
    let selectors = BagSelector::enumerate(tds);
    let mut per_selector = Vec::with_capacity(selectors.len());
    let mut value = Rat::ZERO;
    // Selector LPs share the Γ_n scaffold and differ only in their target
    // rows; consecutive selectors with equally many bags are structurally
    // compatible, so the optimal basis carries over and phase 1 is skipped
    // whenever it is still feasible.
    let mut carried: Option<Basis> = None;
    for selector in selectors {
        let lp = GammaLp::build(universe, stats, selector.bags());
        let (report, basis) =
            lp.solve_warm(stats, selector.bags(), carried.as_ref(), budget.as_deref_mut())?;
        // An Ok solve is always Optimal here, and Optimal always carries a
        // basis.
        carried = basis;
        value = value.max(report.log_bound);
        per_selector.push(SelectorBound { selector, report });
    }
    Ok(SubwReport { value, tds: tds.to_vec(), per_selector })
}

/// [`subw_with_tds`] with the selector LP chains distributed over up to
/// `threads` pool workers — the dominant cost of `subw` on larger queries
/// (the 5-cycle enumerates 197 bag selectors, each one Γ₅ LP).
///
/// The selectors are split into contiguous chunks; each worker runs a
/// warm-started chain over its chunk, all sharing the process-wide Γ_n
/// scaffold memo, exactly like the sequential chain does globally.  The
/// submodular width and every per-selector bound are **identical** to the
/// sequential computation (optimal LP values are unique); the dual
/// *certificates* of warm-started solves may differ across chain shapes,
/// as already documented on the warm-start API, and every certificate is
/// verified before it is returned.  With `threads <= 1` this is exactly
/// [`subw_with_tds`].
pub fn subw_with_tds_parallel(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
    threads: usize,
) -> Result<SubwReport, BoundError> {
    assert!(!tds.is_empty(), "subw requires at least one tree decomposition");
    // Bail out before the (combinatorial) selector enumeration: the
    // sequential fallback re-enumerates, and the default engine is
    // sequential.
    if threads <= 1 {
        return subw_with_tds(query, tds, stats);
    }
    let universe = query.all_vars();
    let selectors = BagSelector::enumerate(tds);
    if selectors.len() < 2 {
        return subw_with_tds(query, tds, stats);
    }
    let chunks = chunked(&selectors, threads);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction is infallible");
    let per_chunk: Vec<Result<Vec<SelectorBound>, BoundError>> = pool.install(|| {
        use rayon::prelude::*;
        chunks
            .par_iter()
            .map(|chunk| {
                let mut carried: Option<Basis> = None;
                let mut bounds = Vec::with_capacity(chunk.len());
                for selector in *chunk {
                    let lp = GammaLp::build(universe, stats, selector.bags());
                    let (report, basis) =
                        lp.solve_warm(stats, selector.bags(), carried.as_ref(), None)?;
                    carried = basis;
                    bounds.push(SelectorBound { selector: selector.clone(), report });
                }
                Ok(bounds)
            })
            .collect()
    });
    let per_selector = flatten_chunks(per_chunk)?;
    // One bound per selector, in enumeration order — the report must list
    // selectors exactly as the sequential chain would.
    debug_assert_eq!(per_selector.len(), selectors.len());
    let value = per_selector
        .iter()
        .map(|sel| sel.report.log_bound)
        .fold(Rat::ZERO, |acc, bound| acc.max(bound));
    Ok(SubwReport { value, tds: tds.to_vec(), per_selector })
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::{parse_query, Var};

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn four_cycle() -> ConjunctiveQuery {
        parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap()
    }

    fn s_square(n: u64) -> StatisticsSet {
        StatisticsSet::identical_cardinalities(&four_cycle(), n)
    }

    #[test]
    fn triangle_agm_bound_is_three_halves() {
        let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
        let n = 10_000;
        let report = agm_bound(&q, &[("R", n), ("S", n), ("T", n)], n).unwrap();
        assert_eq!(report.log_bound, Rat::new(3, 2));
        let expected = (n as f64).powf(1.5);
        assert!((report.tuple_bound() - expected).abs() / expected < 1e-6);
        report.flow.verify_identity().unwrap();
        assert_eq!(report.flow.lambda_total(), Rat::ONE);
    }

    #[test]
    fn four_cycle_agm_bound_is_two() {
        let q = four_cycle().with_free(vs(&[0, 1, 2, 3]));
        let report = agm_bound(&q, &[], 1000).unwrap();
        assert_eq!(report.log_bound, Rat::from_int(2));
        report.flow.verify_identity().unwrap();
    }

    #[test]
    fn single_bag_bounds_of_the_four_cycle_are_two() {
        // Section 4.3: max h(XYZ) = max h(ZWX) = 2 under S□.
        let stats = s_square(1000);
        let universe = vs(&[0, 1, 2, 3]);
        for bag in [vs(&[0, 1, 2]), vs(&[0, 2, 3]), vs(&[1, 2, 3]), vs(&[0, 1, 3])] {
            let report = polymatroid_bound(bag, universe, &stats).unwrap();
            assert_eq!(report.log_bound, Rat::from_int(2), "bag {bag:?}");
            report.flow.verify_identity().unwrap();
        }
    }

    #[test]
    fn fhtw_of_the_four_cycle_is_two() {
        // Section 4.3: fhtw(Q□, S□) = 2.
        let q = four_cycle();
        let stats = s_square(1000);
        let report = fhtw(&q, &stats).unwrap();
        assert_eq!(report.value, Rat::from_int(2));
        assert_eq!(report.per_td.len(), 2);
        for (_, cost, _) in &report.per_td {
            assert_eq!(*cost, Rat::from_int(2));
        }
        assert_eq!(report.best_td().num_bags(), 2);
    }

    #[test]
    fn ddr_bound_of_eq38_is_three_halves() {
        // Eq. (45)/(61): max min(h(XYZ), h(YZW)) = 3/2 under S□.
        let stats = s_square(1000);
        let universe = vs(&[0, 1, 2, 3]);
        let report =
            ddr_polymatroid_bound(&[vs(&[0, 1, 2]), vs(&[1, 2, 3])], universe, &stats).unwrap();
        assert_eq!(report.log_bound, Rat::new(3, 2));
        let flow = &report.flow;
        flow.verify_identity().unwrap();
        assert_eq!(flow.lambda_total(), Rat::ONE);
        // Eq. (55): λ = (1/2, 1/2); Σ w = 3/2 with the U-relation unused.
        assert_eq!(flow.targets.len(), 2);
        assert!(flow.targets.iter().all(|(_, l)| *l == Rat::new(1, 2)));
        let total_w: Rat = flow.sources.iter().map(|(_, w)| *w).sum();
        assert_eq!(total_w, Rat::new(3, 2));
        assert_eq!(flow.weight_of("|U| ≤ 1000"), Rat::ZERO);
        // The bound in tuples is N^{3/2} (Eq. 61).
        let expected = 1000f64.powf(1.5);
        assert!((report.tuple_bound() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn subw_of_the_four_cycle_is_three_halves() {
        // Eq. (44): subw(Q□, S□) = 3/2, attained by all four bag selectors.
        let q = four_cycle();
        let stats = s_square(1000);
        let report = subw(&q, &stats).unwrap();
        assert_eq!(report.value, Rat::new(3, 2));
        assert_eq!(report.per_selector.len(), 4);
        for sel in &report.per_selector {
            assert_eq!(sel.report.log_bound, Rat::new(3, 2));
            sel.report.flow.verify_identity().unwrap();
        }
        assert_eq!(report.hardest().report.log_bound, Rat::new(3, 2));
        // subw ≤ fhtw (Section 6).
        let f = fhtw(&q, &stats).unwrap();
        assert!(report.value <= f.value);
    }

    #[test]
    fn boolean_four_cycle_has_the_same_widths() {
        let q = parse_query("Q() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 20);
        assert_eq!(subw(&q, &stats).unwrap().value, Rat::new(3, 2));
        assert_eq!(fhtw(&q, &stats).unwrap().value, Rat::from_int(2));
    }

    #[test]
    fn functional_dependencies_tighten_the_full_four_cycle_bound() {
        // S_full of Eq. (16) with C = 1 (a hard FD both ways): the paper's
        // Shannon inequality (20) gives h(XYZW) ≤ 3/2.
        let q = four_cycle().with_free(vs(&[0, 1, 2, 3]));
        let n: u64 = 1 << 20;
        let (x, w) = (Var(0), Var(3));
        let mut stats = StatisticsSet::identical_cardinalities(&q, n);
        stats.add_functional_dependency("U", VarSet::singleton(w), VarSet::singleton(x));
        stats.add_functional_dependency("U", VarSet::singleton(x), VarSet::singleton(w));
        let report = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        assert_eq!(report.log_bound, Rat::new(3, 2));
        report.flow.verify_identity().unwrap();
        // Without the FDs the bound is the AGM bound 2.
        let plain = polymatroid_bound(
            q.all_vars(),
            q.all_vars(),
            &StatisticsSet::identical_cardinalities(&q, n),
        )
        .unwrap();
        assert_eq!(plain.log_bound, Rat::from_int(2));
    }

    #[test]
    fn lp_norm_constraints_tighten_bounds() {
        // Section 9.2 / Cauchy–Schwarz: for the 2-path join R(X,Y) ⋈ S(Y,Z)
        // with ℓ2-norm bounds √N on the degree sequences of the *join*
        // variable — ‖deg_R(X|Y=y)‖₂ ≤ √N and ‖deg_S(Z|Y=y)‖₂ ≤ √N — the
        // output bound drops from the AGM value N² to N, because
        // h(XYZ) ≤ ½h(Y)+h(X|Y) + ½h(Y)+h(Z|Y) ≤ 1.
        let q = parse_query("P(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
        let n: u64 = 1 << 20;
        let x = q.var_by_name("X").unwrap();
        let y = q.var_by_name("Y").unwrap();
        let z = q.var_by_name("Z").unwrap();
        let mut stats = StatisticsSet::identical_cardinalities(&q, n);
        let plain = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        assert_eq!(plain.log_bound, Rat::from_int(2));
        stats.add_lp_norm("R", VarSet::singleton(y), VarSet::singleton(x), 2, 1 << 10);
        stats.add_lp_norm("S", VarSet::singleton(y), VarSet::singleton(z), 2, 1 << 10);
        let tightened = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        assert_eq!(tightened.log_bound, Rat::ONE);
        tightened.flow.verify_identity().unwrap();
    }

    #[test]
    fn unbounded_when_a_variable_is_unconstrained() {
        let q = parse_query("Q(X,Y) :- R(X), S(Y)").unwrap();
        let mut stats = StatisticsSet::new(100);
        stats.add_cardinality("R", VarSet::singleton(Var(0)), 100);
        // S's variable Y is unconstrained ⇒ the output can be arbitrarily large.
        let err = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap_err();
        assert_eq!(err, BoundError::Unbounded);
    }

    #[test]
    fn acyclic_query_fhtw_is_one() {
        let q = parse_query("P(A,B,C) :- R(A,B), S(B,C)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 4096);
        let report = fhtw(&q, &stats).unwrap();
        assert_eq!(report.value, Rat::ONE);
        let s = subw(&q, &stats).unwrap();
        assert_eq!(s.value, Rat::ONE);
    }

    #[test]
    fn revised_and_dense_engines_agree_bitwise_on_the_gamma_corpus() {
        // The acceptance bar for the revised engine: bit-for-bit identical
        // rational optima *and duals* to the dense reference on every
        // Γ_n LP the paper's queries produce — the duals are what the
        // Shannon-flow extraction reads, so "close" is not good enough.
        let four = four_cycle();
        let universe4 = vs(&[0, 1, 2, 3]);
        let mut cases: Vec<(VarSet, StatisticsSet, Vec<VarSet>)> = Vec::new();
        // Single-bag polymatroid bounds under S□.
        for bag in [vs(&[0, 1, 2]), vs(&[0, 2, 3]), vs(&[1, 2, 3]), vs(&[0, 1, 2, 3])] {
            cases.push((universe4, s_square(1000), vec![bag]));
        }
        // The DDR of Eq. (38) and a three-target variant.
        cases.push((universe4, s_square(1000), vec![vs(&[0, 1, 2]), vs(&[1, 2, 3])]));
        cases.push((
            universe4,
            s_square(1000),
            vec![vs(&[0, 1, 2]), vs(&[1, 2, 3]), vs(&[0, 2, 3])],
        ));
        // S_full of Eq. (16): functional dependencies and a √N degree.
        let mut s_full = StatisticsSet::identical_cardinalities(&four, 1 << 20);
        s_full.add_functional_dependency("U", VarSet::singleton(Var(3)), VarSet::singleton(Var(0)));
        s_full.add_degree("U", VarSet::singleton(Var(0)), VarSet::singleton(Var(3)), 1 << 10);
        cases.push((universe4, s_full, vec![universe4]));
        // ℓ₂-norm statistics (Section 9.2) on the 2-path join.
        let two_path = parse_query("P(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
        let mut s_norm = StatisticsSet::identical_cardinalities(&two_path, 1 << 20);
        s_norm.add_lp_norm("R", VarSet::singleton(Var(1)), VarSet::singleton(Var(0)), 2, 1 << 10);
        s_norm.add_lp_norm("S", VarSet::singleton(Var(1)), VarSet::singleton(Var(2)), 2, 1 << 10);
        cases.push((two_path.all_vars(), s_norm, vec![two_path.all_vars()]));

        for (universe, stats, targets) in cases {
            let gamma = GammaLp::build(universe, &stats, &targets);
            let dense = gamma.lp.solve_dense().unwrap();
            let revised = gamma.lp.solve().unwrap();
            assert_eq!(dense, revised, "engines diverge on targets {targets:?}");
        }
    }

    #[test]
    fn scaffold_cache_reuses_and_evicts() {
        let q = four_cycle();
        let universe = vs(&[0, 1, 2, 3]);
        // A statistics set no other test uses, so concurrent test threads
        // sharing the process-wide cache cannot pre-populate or re-insert
        // this entry behind our back.
        let stats = StatisticsSet::identical_cardinalities(&q, 77_741);
        // Hold the first Arc across the flood so its allocation cannot be
        // recycled into the rebuilt scaffold's address.
        let first = scaffold_for(universe, &stats);
        assert_eq!(
            Arc::as_ptr(&first),
            Arc::as_ptr(&scaffold_for(universe, &stats)),
            "hit on same key"
        );
        // Flood the cache with distinct statistics sets to force eviction.
        // Concurrent inserts from other tests only evict *more*, never
        // re-create this key, so the assertion below stays valid.
        for n in 0..=SCAFFOLD_CACHE_CAP as u64 {
            let _ = scaffold_for(universe, &StatisticsSet::identical_cardinalities(&q, 100 + n));
        }
        let rebuilt = scaffold_for(universe, &stats);
        assert_ne!(Arc::as_ptr(&first), Arc::as_ptr(&rebuilt), "evicted entry is rebuilt fresh");
    }

    #[test]
    fn warm_started_selector_chain_matches_cold_bounds() {
        // subw threads a basis across selector LPs; the optimal values must
        // be identical to cold per-selector solves.
        let q = four_cycle();
        let stats = s_square(1000);
        let tds = TreeDecomposition::enumerate(&q);
        let report = subw_with_tds(&q, &tds, &stats).unwrap();
        for sel in &report.per_selector {
            let cold = ddr_polymatroid_bound(sel.selector.bags(), q.all_vars(), &stats).unwrap();
            assert_eq!(cold.log_bound, sel.report.log_bound);
            sel.report.flow.verify_identity().unwrap();
        }
    }

    #[test]
    fn parallel_width_chains_match_sequential_values() {
        let q = four_cycle();
        let stats = s_square(1000);
        let tds = TreeDecomposition::enumerate(&q);
        let seq_subw = subw_with_tds(&q, &tds, &stats).unwrap();
        let seq_fhtw = fhtw_with_tds(&q, &tds, &stats).unwrap();
        for threads in [1, 2, 8] {
            let par_subw = subw_with_tds_parallel(&q, &tds, &stats, threads).unwrap();
            assert_eq!(par_subw.value, seq_subw.value, "subw, threads = {threads}");
            assert_eq!(par_subw.per_selector.len(), seq_subw.per_selector.len());
            for (p, s) in par_subw.per_selector.iter().zip(&seq_subw.per_selector) {
                assert_eq!(p.selector, s.selector, "selector order must be preserved");
                assert_eq!(p.report.log_bound, s.report.log_bound);
                p.report.flow.verify_identity().unwrap();
            }
            let par_fhtw = fhtw_with_tds_parallel(&q, &tds, &stats, threads).unwrap();
            assert_eq!(par_fhtw.value, seq_fhtw.value, "fhtw, threads = {threads}");
            assert_eq!(par_fhtw.best, seq_fhtw.best);
            for (p, s) in par_fhtw.per_td.iter().zip(&seq_fhtw.per_td) {
                assert_eq!(p.1, s.1);
                assert_eq!(p.2, s.2, "per-bag bounds must be identical");
            }
        }
    }

    #[test]
    fn bound_report_flows_are_integralisable() {
        let stats = s_square(1000);
        let universe = vs(&[0, 1, 2, 3]);
        let report =
            ddr_polymatroid_bound(&[vs(&[0, 1, 2]), vs(&[1, 2, 3])], universe, &stats).unwrap();
        let integral = report.flow.to_integral().unwrap();
        integral.verify_identity().unwrap();
        assert!(integral.scale >= 1);
        assert_eq!(integral.num_target_occurrences() % integral.targets.len() as u64, 0);
    }
}
