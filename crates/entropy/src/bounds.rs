//! The polymatroid bound, the DDR bound, and the width measures.
//!
//! All of these are linear programs over the polymatroid cone constrained
//! by the input statistics (`h ⊨ S, Γ_n` in the paper's notation):
//!
//! * [`polymatroid_bound`] — `max h(F)` (Theorem 4.1, right-most term),
//! * [`ddr_polymatroid_bound`] — `max min_B h(B)` (Theorem 5.1),
//! * [`fhtw`] — `min_T max_{B ∈ bags(T)} max_h h(B)` (Eq. 22),
//! * [`subw`] — `max_{B ∈ BS(Q)} max_h min_{B ∈ B} h(B)` (Eq. 41),
//! * [`agm_bound`] — the all-cardinalities special case of the polymatroid
//!   bound (the AGM bound / fractional edge cover).
//!
//! Every bound comes back as a [`BoundReport`] carrying the optimal value
//! *and* the dual certificate as a verified [`ShannonFlow`].

use panda_lp::{ConstraintOp, LinearProgram, LpOutcome};
use panda_query::{BagSelector, ConjunctiveQuery, TreeDecomposition, VarSet};
use panda_rational::Rat;

use crate::constraints::{StatKind, Statistic, StatisticsSet};
use crate::elemental::Elemental;
use crate::shannon::ShannonFlow;
use crate::varspace::EntropyVarSpace;

/// Errors produced by the bound computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundError {
    /// The statistics do not bound the target: the LP is unbounded, i.e.
    /// the worst-case output size is infinite (e.g. a variable not covered
    /// by any constraint).
    Unbounded,
    /// The underlying LP solver failed (iteration limit); indicates a bug.
    Solver(String),
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::Unbounded => write!(
                f,
                "the statistics do not bound the target (the polymatroid LP is unbounded)"
            ),
            BoundError::Solver(msg) => write!(f, "LP solver failure: {msg}"),
        }
    }
}

impl std::error::Error for BoundError {}

/// The result of one bound computation: the optimal log-scale value and the
/// Shannon-flow certificate extracted from the LP dual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundReport {
    /// The bound in `log_N` scale (the exponent of `N`), e.g. `3/2`.
    pub log_bound: Rat,
    /// The dual certificate.
    pub flow: ShannonFlow,
}

impl BoundReport {
    /// The bound in tuples: `Π_c N_c^{w_c}` (Theorem 6.2).
    #[must_use]
    pub fn tuple_bound(&self) -> f64 {
        self.flow.tuple_bound()
    }
}

/// One tree decomposition's cost inside a [`FhtwReport`]:
/// `(decomposition, cost, per-bag bounds)`.
pub type TdCost = (TreeDecomposition, Rat, Vec<(VarSet, Rat)>);

/// The fractional-hypertree-width report (Eq. 22).
#[derive(Debug, Clone)]
pub struct FhtwReport {
    /// `fhtw(Q, S)`.
    pub value: Rat,
    /// Index (into `per_td`) of a decomposition achieving the minimum.
    pub best: usize,
    /// Per-TD costs.
    pub per_td: Vec<TdCost>,
}

impl FhtwReport {
    /// The optimal (single-TD) decomposition.
    #[must_use]
    pub fn best_td(&self) -> &TreeDecomposition {
        &self.per_td[self.best].0
    }
}

/// The bound of one bag selector inside a [`SubwReport`].
#[derive(Debug, Clone)]
pub struct SelectorBound {
    /// The bag selector.
    pub selector: BagSelector,
    /// The DDR bound report for this selector.
    pub report: BoundReport,
}

/// The submodular-width report (Eq. 41).
#[derive(Debug, Clone)]
pub struct SubwReport {
    /// `subw(Q, S)`.
    pub value: Rat,
    /// The tree decompositions used (`TD(Q)`).
    pub tds: Vec<TreeDecomposition>,
    /// One DDR bound per bag selector in `BS(Q)`.
    pub per_selector: Vec<SelectorBound>,
}

impl SubwReport {
    /// The selector attaining the maximum (the "hardest" DDR).
    #[must_use]
    pub fn hardest(&self) -> &SelectorBound {
        self.per_selector
            .iter()
            .max_by(|a, b| a.report.log_bound.cmp(&b.report.log_bound))
            .expect("a submodular width report always has at least one selector")
    }
}

/// Internal: the Γ_n-plus-statistics LP with bookkeeping for dual
/// extraction.
struct GammaLp {
    space: EntropyVarSpace,
    lp: LinearProgram,
    stat_rows: Vec<usize>,
    elemental_rows: Vec<(usize, Elemental)>,
    /// `(row, bag)` rows of the form `t − h(B) ≤ 0` (empty when a single
    /// target is maximised directly).
    target_rows: Vec<(usize, VarSet)>,
    /// Index of the auxiliary `t` variable, if any.
    t_var: Option<usize>,
}

impl GammaLp {
    /// Builds the LP `max h(target)` (single target) or `max t` with
    /// `t ≤ h(B)` for every target (DDR form), subject to `h ⊨ S, Γ_n`.
    fn build(universe: VarSet, stats: &StatisticsSet, targets: &[VarSet]) -> Self {
        assert!(!targets.is_empty(), "at least one target set is required");
        for t in targets {
            assert!(
                t.is_subset_of(universe),
                "target {t:?} is not contained in the universe {universe:?}"
            );
            assert!(!t.is_empty(), "target sets must be non-empty");
        }
        let space = EntropyVarSpace::new(universe);
        let use_t = targets.len() > 1;
        let num_vars = space.num_lp_vars() + usize::from(use_t);
        let t_var = use_t.then_some(space.num_lp_vars());
        let mut lp = LinearProgram::new(num_vars);

        // Objective.
        if let Some(t) = t_var {
            lp.set_objective_coeff(t, Rat::ONE);
        } else {
            lp.set_objective_coeff(space.index_of(targets[0]), Rat::ONE);
        }

        // Statistics rows (h ⊨ S), Eq. (8) and Eq. (73).
        let mut stat_rows = Vec::with_capacity(stats.len());
        for stat in stats.stats() {
            let mut coeffs: Vec<(usize, Rat)> = Vec::with_capacity(3);
            match stat.kind {
                StatKind::Degree { cond, subj } => {
                    space.add_conditional_term(&mut coeffs, cond, subj, Rat::ONE);
                }
                StatKind::LpNorm { cond, subj, k } => {
                    // (1/k)·h(X) + h(XY) − h(X) ≤ log value.
                    let joint = cond.union(subj);
                    if !joint.is_empty() {
                        coeffs.push((space.index_of(joint), Rat::ONE));
                    }
                    if !cond.is_empty() {
                        coeffs.push((space.index_of(cond), Rat::new(1, i128::from(k)) - Rat::ONE));
                    }
                }
            }
            let row = lp.add_constraint(coeffs, ConstraintOp::Le, stat.log_value);
            stat_rows.push(row);
        }

        // Target rows `t − h(B) ≤ 0`.
        let mut target_rows = Vec::new();
        if let Some(t) = t_var {
            for &bag in targets {
                let row = lp.add_constraint(
                    vec![(t, Rat::ONE), (space.index_of(bag), -Rat::ONE)],
                    ConstraintOp::Le,
                    Rat::ZERO,
                );
                target_rows.push((row, bag));
            }
        }

        // Elemental Shannon inequalities `expr_e(h) ≥ 0`.
        let mut elemental_rows = Vec::new();
        for elemental in Elemental::enumerate(universe) {
            let coeffs: Vec<(usize, Rat)> = elemental
                .coefficients()
                .into_iter()
                .map(|(s, c)| (space.index_of(s), Rat::from_int(i128::from(c))))
                .collect();
            let row = lp.add_constraint(coeffs, ConstraintOp::Ge, Rat::ZERO);
            elemental_rows.push((row, elemental));
        }

        GammaLp { space, lp, stat_rows, elemental_rows, target_rows, t_var }
    }

    /// Solves the LP and converts the dual into a verified [`ShannonFlow`].
    fn solve(&self, stats: &StatisticsSet, targets: &[VarSet]) -> Result<BoundReport, BoundError> {
        let outcome = self.lp.solve().map_err(|e| BoundError::Solver(e.to_string()))?;
        let solution =
            match outcome {
                LpOutcome::Optimal(s) => s,
                LpOutcome::Unbounded => return Err(BoundError::Unbounded),
                LpOutcome::Infeasible => return Err(BoundError::Solver(
                    "polymatroid LP reported infeasible, which is impossible (h = 0 is feasible)"
                        .to_string(),
                )),
            };

        // λ: multipliers of the target rows (or 1 on the single target).
        let targets_with_lambda: Vec<(VarSet, Rat)> = if self.t_var.is_some() {
            self.target_rows
                .iter()
                .map(|(row, bag)| (*bag, solution.duals[*row]))
                .filter(|(_, l)| !l.is_zero())
                .collect()
        } else {
            vec![(targets[0], Rat::ONE)]
        };

        // w: multipliers of the statistics rows.
        let sources: Vec<(Statistic, Rat)> = self
            .stat_rows
            .iter()
            .zip(stats.stats())
            .map(|(row, stat)| (stat.clone(), solution.duals[*row]))
            .filter(|(_, w)| !w.is_zero())
            .collect();

        // μ: multipliers of the elemental rows (`≥` rows have non-positive
        // duals under the solver's sign convention, so negate).
        let witness: Vec<(Elemental, Rat)> = self
            .elemental_rows
            .iter()
            .map(|(row, e)| (*e, -solution.duals[*row]))
            .filter(|(_, mu)| !mu.is_zero())
            .collect();

        // Residuals: per-subset slack of the dual-feasibility rows, which
        // corresponds to unused `h(S) ≥ 0` capacity.
        let mut flow = ShannonFlow {
            universe: self.space.universe(),
            targets: targets_with_lambda,
            sources,
            witness,
            residuals: Vec::new(),
        };
        flow.residuals = residuals_for(&flow, &self.space);
        if let Err(e) = flow.verify_identity() {
            return Err(BoundError::Solver(format!(
                "extracted Shannon flow failed verification: {e}"
            )));
        }

        Ok(BoundReport { log_bound: solution.objective, flow })
    }
}

/// Computes the per-subset residuals `r_S ≥ 0` that close the identity
/// `Σ w_c h(Y_c|X_c) = Σ λ_B h(B) + Σ μ_e expr_e + Σ r_S h(S)`.
fn residuals_for(flow: &ShannonFlow, space: &EntropyVarSpace) -> Vec<(VarSet, Rat)> {
    let mut residuals = Vec::new();
    for s in space.subsets() {
        let mut lhs = Rat::ZERO;
        for (stat, w) in &flow.sources {
            match stat.kind {
                StatKind::Degree { cond, subj } => {
                    if cond.union(subj) == s {
                        lhs += *w;
                    }
                    if cond == s {
                        lhs -= *w;
                    }
                }
                StatKind::LpNorm { cond, subj, k } => {
                    if cond.union(subj) == s {
                        lhs += *w;
                    }
                    if cond == s {
                        lhs += *w * (Rat::new(1, i128::from(k)) - Rat::ONE);
                    }
                }
            }
        }
        let mut rhs = Rat::ZERO;
        for (b, l) in &flow.targets {
            if *b == s {
                rhs += *l;
            }
        }
        for (e, mu) in &flow.witness {
            for (set, c) in e.coefficients() {
                if set == s {
                    rhs += *mu * Rat::from_int(i128::from(c));
                }
            }
        }
        let r = lhs - rhs;
        if !r.is_zero() {
            residuals.push((s, r));
        }
    }
    residuals
}

/// The polymatroid bound of a conjunctive-query output (Theorem 4.1):
/// `max { h(target) : h ⊨ S, Γ_n }` over the given variable universe.
pub fn polymatroid_bound(
    target: VarSet,
    universe: VarSet,
    stats: &StatisticsSet,
) -> Result<BoundReport, BoundError> {
    let lp = GammaLp::build(universe, stats, &[target]);
    lp.solve(stats, &[target])
}

/// The polymatroid bound of a disjunctive datalog rule (Theorem 5.1):
/// `max { min_B h(B) : h ⊨ S, Γ_n }`.
pub fn ddr_polymatroid_bound(
    targets: &[VarSet],
    universe: VarSet,
    stats: &StatisticsSet,
) -> Result<BoundReport, BoundError> {
    let lp = GammaLp::build(universe, stats, targets);
    lp.solve(stats, targets)
}

/// The AGM bound of a query under per-relation cardinalities: the
/// polymatroid bound with only cardinality constraints, which the paper
/// notes collapses to the fractional edge cover bound and is tight.
///
/// `sizes` maps relation symbols to their cardinalities; atoms missing from
/// the map are given size `base`.  The target is the full variable set.
pub fn agm_bound(
    query: &ConjunctiveQuery,
    sizes: &[(&str, u64)],
    base: u64,
) -> Result<BoundReport, BoundError> {
    let mut stats = StatisticsSet::new(base.max(2));
    for atom in query.atoms() {
        let size = sizes.iter().find(|(name, _)| *name == atom.relation).map_or(base, |(_, s)| *s);
        stats.add_cardinality(atom.relation.clone(), atom.var_set(), size);
    }
    polymatroid_bound(query.all_vars(), query.all_vars(), &stats)
}

/// The fractional hypertree width of a query under statistics (Eq. 22),
/// using the query's enumerated free-connex tree decompositions.
pub fn fhtw(query: &ConjunctiveQuery, stats: &StatisticsSet) -> Result<FhtwReport, BoundError> {
    let tds = TreeDecomposition::enumerate(query);
    fhtw_with_tds(query, &tds, stats)
}

/// [`fhtw`] over an explicit set of tree decompositions.
pub fn fhtw_with_tds(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
) -> Result<FhtwReport, BoundError> {
    assert!(!tds.is_empty(), "fhtw requires at least one tree decomposition");
    let universe = query.all_vars();
    let mut per_td = Vec::with_capacity(tds.len());
    for td in tds {
        let mut worst = Rat::ZERO;
        let mut per_bag = Vec::with_capacity(td.num_bags());
        for &bag in td.bags() {
            let report = polymatroid_bound(bag, universe, stats)?;
            worst = worst.max(report.log_bound);
            per_bag.push((bag, report.log_bound));
        }
        per_td.push((td.clone(), worst, per_bag));
    }
    let best = per_td
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok(FhtwReport { value: per_td[best].1, best, per_td })
}

/// The submodular width of a query under statistics (Eq. 41), using the
/// query's enumerated free-connex tree decompositions.
pub fn subw(query: &ConjunctiveQuery, stats: &StatisticsSet) -> Result<SubwReport, BoundError> {
    let tds = TreeDecomposition::enumerate(query);
    subw_with_tds(query, &tds, stats)
}

/// [`subw`] over an explicit set of tree decompositions.
pub fn subw_with_tds(
    query: &ConjunctiveQuery,
    tds: &[TreeDecomposition],
    stats: &StatisticsSet,
) -> Result<SubwReport, BoundError> {
    assert!(!tds.is_empty(), "subw requires at least one tree decomposition");
    let universe = query.all_vars();
    let selectors = BagSelector::enumerate(tds);
    let mut per_selector = Vec::with_capacity(selectors.len());
    let mut value = Rat::ZERO;
    for selector in selectors {
        let report = ddr_polymatroid_bound(selector.bags(), universe, stats)?;
        value = value.max(report.log_bound);
        per_selector.push(SelectorBound { selector, report });
    }
    Ok(SubwReport { value, tds: tds.to_vec(), per_selector })
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::{parse_query, Var};

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn four_cycle() -> ConjunctiveQuery {
        parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap()
    }

    fn s_square(n: u64) -> StatisticsSet {
        StatisticsSet::identical_cardinalities(&four_cycle(), n)
    }

    #[test]
    fn triangle_agm_bound_is_three_halves() {
        let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
        let n = 10_000;
        let report = agm_bound(&q, &[("R", n), ("S", n), ("T", n)], n).unwrap();
        assert_eq!(report.log_bound, Rat::new(3, 2));
        let expected = (n as f64).powf(1.5);
        assert!((report.tuple_bound() - expected).abs() / expected < 1e-6);
        report.flow.verify_identity().unwrap();
        assert_eq!(report.flow.lambda_total(), Rat::ONE);
    }

    #[test]
    fn four_cycle_agm_bound_is_two() {
        let q = four_cycle().with_free(vs(&[0, 1, 2, 3]));
        let report = agm_bound(&q, &[], 1000).unwrap();
        assert_eq!(report.log_bound, Rat::from_int(2));
        report.flow.verify_identity().unwrap();
    }

    #[test]
    fn single_bag_bounds_of_the_four_cycle_are_two() {
        // Section 4.3: max h(XYZ) = max h(ZWX) = 2 under S□.
        let stats = s_square(1000);
        let universe = vs(&[0, 1, 2, 3]);
        for bag in [vs(&[0, 1, 2]), vs(&[0, 2, 3]), vs(&[1, 2, 3]), vs(&[0, 1, 3])] {
            let report = polymatroid_bound(bag, universe, &stats).unwrap();
            assert_eq!(report.log_bound, Rat::from_int(2), "bag {bag:?}");
            report.flow.verify_identity().unwrap();
        }
    }

    #[test]
    fn fhtw_of_the_four_cycle_is_two() {
        // Section 4.3: fhtw(Q□, S□) = 2.
        let q = four_cycle();
        let stats = s_square(1000);
        let report = fhtw(&q, &stats).unwrap();
        assert_eq!(report.value, Rat::from_int(2));
        assert_eq!(report.per_td.len(), 2);
        for (_, cost, _) in &report.per_td {
            assert_eq!(*cost, Rat::from_int(2));
        }
        assert_eq!(report.best_td().num_bags(), 2);
    }

    #[test]
    fn ddr_bound_of_eq38_is_three_halves() {
        // Eq. (45)/(61): max min(h(XYZ), h(YZW)) = 3/2 under S□.
        let stats = s_square(1000);
        let universe = vs(&[0, 1, 2, 3]);
        let report =
            ddr_polymatroid_bound(&[vs(&[0, 1, 2]), vs(&[1, 2, 3])], universe, &stats).unwrap();
        assert_eq!(report.log_bound, Rat::new(3, 2));
        let flow = &report.flow;
        flow.verify_identity().unwrap();
        assert_eq!(flow.lambda_total(), Rat::ONE);
        // Eq. (55): λ = (1/2, 1/2); Σ w = 3/2 with the U-relation unused.
        assert_eq!(flow.targets.len(), 2);
        assert!(flow.targets.iter().all(|(_, l)| *l == Rat::new(1, 2)));
        let total_w: Rat = flow.sources.iter().map(|(_, w)| *w).sum();
        assert_eq!(total_w, Rat::new(3, 2));
        assert_eq!(flow.weight_of("|U| ≤ 1000"), Rat::ZERO);
        // The bound in tuples is N^{3/2} (Eq. 61).
        let expected = 1000f64.powf(1.5);
        assert!((report.tuple_bound() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn subw_of_the_four_cycle_is_three_halves() {
        // Eq. (44): subw(Q□, S□) = 3/2, attained by all four bag selectors.
        let q = four_cycle();
        let stats = s_square(1000);
        let report = subw(&q, &stats).unwrap();
        assert_eq!(report.value, Rat::new(3, 2));
        assert_eq!(report.per_selector.len(), 4);
        for sel in &report.per_selector {
            assert_eq!(sel.report.log_bound, Rat::new(3, 2));
            sel.report.flow.verify_identity().unwrap();
        }
        assert_eq!(report.hardest().report.log_bound, Rat::new(3, 2));
        // subw ≤ fhtw (Section 6).
        let f = fhtw(&q, &stats).unwrap();
        assert!(report.value <= f.value);
    }

    #[test]
    fn boolean_four_cycle_has_the_same_widths() {
        let q = parse_query("Q() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 20);
        assert_eq!(subw(&q, &stats).unwrap().value, Rat::new(3, 2));
        assert_eq!(fhtw(&q, &stats).unwrap().value, Rat::from_int(2));
    }

    #[test]
    fn functional_dependencies_tighten_the_full_four_cycle_bound() {
        // S_full of Eq. (16) with C = 1 (a hard FD both ways): the paper's
        // Shannon inequality (20) gives h(XYZW) ≤ 3/2.
        let q = four_cycle().with_free(vs(&[0, 1, 2, 3]));
        let n: u64 = 1 << 20;
        let (x, w) = (Var(0), Var(3));
        let mut stats = StatisticsSet::identical_cardinalities(&q, n);
        stats.add_functional_dependency("U", VarSet::singleton(w), VarSet::singleton(x));
        stats.add_functional_dependency("U", VarSet::singleton(x), VarSet::singleton(w));
        let report = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        assert_eq!(report.log_bound, Rat::new(3, 2));
        report.flow.verify_identity().unwrap();
        // Without the FDs the bound is the AGM bound 2.
        let plain = polymatroid_bound(
            q.all_vars(),
            q.all_vars(),
            &StatisticsSet::identical_cardinalities(&q, n),
        )
        .unwrap();
        assert_eq!(plain.log_bound, Rat::from_int(2));
    }

    #[test]
    fn lp_norm_constraints_tighten_bounds() {
        // Section 9.2 / Cauchy–Schwarz: for the 2-path join R(X,Y) ⋈ S(Y,Z)
        // with ℓ2-norm bounds √N on the degree sequences of the *join*
        // variable — ‖deg_R(X|Y=y)‖₂ ≤ √N and ‖deg_S(Z|Y=y)‖₂ ≤ √N — the
        // output bound drops from the AGM value N² to N, because
        // h(XYZ) ≤ ½h(Y)+h(X|Y) + ½h(Y)+h(Z|Y) ≤ 1.
        let q = parse_query("P(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
        let n: u64 = 1 << 20;
        let x = q.var_by_name("X").unwrap();
        let y = q.var_by_name("Y").unwrap();
        let z = q.var_by_name("Z").unwrap();
        let mut stats = StatisticsSet::identical_cardinalities(&q, n);
        let plain = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        assert_eq!(plain.log_bound, Rat::from_int(2));
        stats.add_lp_norm("R", VarSet::singleton(y), VarSet::singleton(x), 2, 1 << 10);
        stats.add_lp_norm("S", VarSet::singleton(y), VarSet::singleton(z), 2, 1 << 10);
        let tightened = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap();
        assert_eq!(tightened.log_bound, Rat::ONE);
        tightened.flow.verify_identity().unwrap();
    }

    #[test]
    fn unbounded_when_a_variable_is_unconstrained() {
        let q = parse_query("Q(X,Y) :- R(X), S(Y)").unwrap();
        let mut stats = StatisticsSet::new(100);
        stats.add_cardinality("R", VarSet::singleton(Var(0)), 100);
        // S's variable Y is unconstrained ⇒ the output can be arbitrarily large.
        let err = polymatroid_bound(q.all_vars(), q.all_vars(), &stats).unwrap_err();
        assert_eq!(err, BoundError::Unbounded);
    }

    #[test]
    fn acyclic_query_fhtw_is_one() {
        let q = parse_query("P(A,B,C) :- R(A,B), S(B,C)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 4096);
        let report = fhtw(&q, &stats).unwrap();
        assert_eq!(report.value, Rat::ONE);
        let s = subw(&q, &stats).unwrap();
        assert_eq!(s.value, Rat::ONE);
    }

    #[test]
    fn bound_report_flows_are_integralisable() {
        let stats = s_square(1000);
        let universe = vs(&[0, 1, 2, 3]);
        let report =
            ddr_polymatroid_bound(&[vs(&[0, 1, 2]), vs(&[1, 2, 3])], universe, &stats).unwrap();
        let integral = report.flow.to_integral().unwrap();
        integral.verify_identity().unwrap();
        assert!(integral.scale >= 1);
        assert_eq!(integral.num_target_occurrences() % integral.targets.len() as u64, 0);
    }
}
