//! Fast-matrix-multiplication cost terms and the ω-submodular width of the
//! 4-cycle (Section 9.3).
//!
//! The paper incorporates FMM into the width framework by giving matrix
//! multiplication an information-theoretic cost: multiplying an
//! `(m × n)`-matrix by an `(n × p)`-matrix with square-block FMM costs
//! `max(m·n·p^γ, m·n^γ·p, m^γ·n·p)` with `γ = ω − 2` (Eq. 77), which in log
//! scale becomes the `MM(X;Y;Z)` term of Eq. (78).  Folding that option
//! into the plan space yields the ω-submodular width; for the Boolean
//! 4-cycle under identical cardinalities the paper reports
//! `ω-subw(Q□^bool, S□) = (4ω−1)/(2ω+1)`.
//!
//! This module provides the exact cost term, the closed-form ω-subw of the
//! 4-cycle (parameterised by ω so the paper's number is reproduced exactly),
//! and a numeric cross-check that the closed form indeed improves on the
//! combinatorial submodular width 3/2 for every ω < 3.

use panda_rational::Rat;

/// The best known matrix-multiplication exponent quoted by the paper
/// (Williams–Xu–Xu–Zhou 2024): ω = 2.371552, stored exactly as the reduced
/// fraction 74111/31250.
pub const MATRIX_MULT_OMEGA: Rat = Rat::const_new(74_111, 31_250);

/// The information-theoretic cost `MM(X;Y;Z)` of Eq. (78):
/// `max(hx + hy + γ·hz, hx + γ·hy + hz, γ·hx + hy + hz)` with `γ = ω − 2`.
///
/// `hx`, `hy`, `hz` are the (log-scale) entropies standing in for the
/// logarithms of the three matrix dimensions.
#[must_use]
pub fn mm_cost_log(hx: Rat, hy: Rat, hz: Rat, omega: Rat) -> Rat {
    let gamma = omega - Rat::from_int(2);
    let a = hx + hy + gamma * hz;
    let b = hx + gamma * hy + hz;
    let c = gamma * hx + hy + hz;
    a.max(b).max(c)
}

/// The ω-submodular width of the Boolean 4-cycle under identical
/// cardinality constraints: `(4ω − 1) / (2ω + 1)` (Section 9.3).
///
/// With the current best ω this evaluates to ≈ 1.4776, strictly below the
/// combinatorial submodular width 3/2.  The crossover is at ω = 5/2: any
/// matrix-multiplication exponent below 5/2 beats the combinatorial width,
/// while Strassen (ω ≈ 2.807) and naive multiplication (ω = 3) do not —
/// which is why the runtime experiment E12 compares *detection strategies*
/// while the width comparison uses the paper's ω = 2.371552 exactly.
#[must_use]
pub fn omega_subw_square(omega: Rat) -> Rat {
    (Rat::from_int(4) * omega - Rat::ONE) / (Rat::from_int(2) * omega + Rat::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_constant_matches_the_papers_value() {
        assert!((MATRIX_MULT_OMEGA.to_f64() - 2.371552).abs() < 1e-9);
    }

    #[test]
    fn omega_subw_matches_the_papers_closed_form() {
        // (4ω−1)/(2ω+1) with ω = 2.371552 ⇒ ≈ 1.40589…
        let w = omega_subw_square(MATRIX_MULT_OMEGA);
        assert!((w.to_f64() - (4.0 * 2.371552 - 1.0) / (2.0 * 2.371552 + 1.0)).abs() < 1e-12);
        assert!(w < Rat::new(3, 2), "FMM beats the combinatorial submodular width");
        // The crossover is exactly at ω = 5/2.
        assert_eq!(omega_subw_square(Rat::new(5, 2)), Rat::new(3, 2));
        // Strassen's ω ≈ 2.807 is above the crossover and does not help…
        let strassen = omega_subw_square(Rat::new(2807, 1000));
        assert!(strassen > Rat::new(3, 2));
        // …and neither does naive ω = 3.
        let naive = omega_subw_square(Rat::from_int(3));
        assert_eq!(naive, Rat::new(11, 7));
        assert!(naive > Rat::new(3, 2));
        // ω = 2 would give the information-theoretic floor 7/5.
        assert_eq!(omega_subw_square(Rat::from_int(2)), Rat::new(7, 5));
    }

    #[test]
    fn mm_cost_is_symmetric_and_matches_square_case() {
        let omega = Rat::new(2807, 1000);
        let one = Rat::ONE;
        // Square matrices: all three dimensions N ⇒ cost ω·log N.
        assert_eq!(mm_cost_log(one, one, one, omega), omega);
        // Symmetry under permuting the three dimensions.
        let (a, b, c) = (Rat::new(1, 2), Rat::ONE, Rat::new(3, 4));
        let cost = mm_cost_log(a, b, c, omega);
        assert_eq!(cost, mm_cost_log(c, a, b, omega));
        assert_eq!(cost, mm_cost_log(b, c, a, omega));
        // Rectangular: with one tiny dimension the cost approaches the
        // product of the two big ones.
        let thin = mm_cost_log(one, one, Rat::ZERO, omega);
        assert_eq!(thin, Rat::from_int(2));
    }

    #[test]
    fn mm_cost_never_beats_output_size() {
        // The cost is always at least the size of the output matrix
        // (hx + hz ≤ MM(X;Y;Z)) as long as ω ≥ 2.
        let omega = MATRIX_MULT_OMEGA;
        for &(a, b, c) in &[(1i128, 1, 1), (1, 2, 3), (3, 1, 2), (2, 2, 1)] {
            let (ha, hb, hc) = (Rat::from_int(a), Rat::from_int(b), Rat::from_int(c));
            assert!(mm_cost_log(ha, hb, hc, omega) >= ha + hc);
        }
    }
}
