//! Mapping between variable subsets and LP variables.

use panda_query::{Var, VarSet};

/// The variable space of an entropy LP: a fixed universe `V` of query
/// variables, and a dense numbering of the `2^|V| − 1` non-empty subsets of
/// `V` (the LP variables `h(S)`).
///
/// The universe need not be a contiguous range of [`Var`] indices; subsets
/// are re-encoded into a dense bitset internally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntropyVarSpace {
    universe: VarSet,
    /// `positions[i]` is the dense position of the i-th lowest variable of
    /// the universe.
    members: Vec<Var>,
}

impl EntropyVarSpace {
    /// Creates the space for a universe of variables.
    ///
    /// # Panics
    ///
    /// Panics if the universe has more than 16 variables: the LP would have
    /// at least `2^16` variables, far past the point where the exact dense
    /// simplex solver is appropriate (the paper's examples use 4–6).
    #[must_use]
    pub fn new(universe: VarSet) -> Self {
        assert!(
            universe.len() <= 16,
            "entropy LPs over more than 16 variables are not supported (got {})",
            universe.len()
        );
        EntropyVarSpace { universe, members: universe.to_vec() }
    }

    /// The universe `V`.
    #[must_use]
    pub fn universe(&self) -> VarSet {
        self.universe
    }

    /// The number of variables in the universe.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.members.len()
    }

    /// The number of LP variables, `2^n − 1`.
    #[must_use]
    pub fn num_lp_vars(&self) -> usize {
        (1usize << self.members.len()) - 1
    }

    /// Converts a subset of the universe into its dense bit representation.
    fn dense_bits(&self, set: VarSet) -> u32 {
        debug_assert!(
            set.is_subset_of(self.universe),
            "{set:?} is not a subset of the universe {:?}",
            self.universe
        );
        let mut bits = 0u32;
        for (pos, v) in self.members.iter().enumerate() {
            if set.contains(*v) {
                bits |= 1 << pos;
            }
        }
        bits
    }

    /// The LP variable index of `h(set)`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty (the LP has no variable for `h(∅) = 0`) or
    /// not a subset of the universe.
    #[must_use]
    pub fn index_of(&self, set: VarSet) -> usize {
        assert!(!set.is_empty(), "h(∅) is identically zero and has no LP variable");
        assert!(
            set.is_subset_of(self.universe),
            "{set:?} is not a subset of the universe {:?}",
            self.universe
        );
        self.dense_bits(set) as usize - 1
    }

    /// The subset corresponding to an LP variable index (inverse of
    /// [`EntropyVarSpace::index_of`]).
    #[must_use]
    pub fn set_of(&self, index: usize) -> VarSet {
        let bits = (index + 1) as u32;
        let mut set = VarSet::EMPTY;
        for (pos, v) in self.members.iter().enumerate() {
            if bits & (1 << pos) != 0 {
                set = set.with(*v);
            }
        }
        set
    }

    /// Iterates over every non-empty subset of the universe in LP-variable
    /// order.
    pub fn subsets(&self) -> impl Iterator<Item = VarSet> + '_ {
        (0..self.num_lp_vars()).map(|i| self.set_of(i))
    }

    /// Adds the coefficients of the conditional term `h(subj | cond)` —
    /// i.e. `+1 · h(cond ∪ subj) − 1 · h(cond)` — to a sparse coefficient
    /// list, skipping `h(∅)`.
    pub fn add_conditional_term(
        &self,
        coeffs: &mut Vec<(usize, panda_rational::Rat)>,
        cond: VarSet,
        subj: VarSet,
        scale: panda_rational::Rat,
    ) {
        let joint = cond.union(subj);
        if !joint.is_empty() {
            coeffs.push((self.index_of(joint), scale));
        }
        if !cond.is_empty() {
            coeffs.push((self.index_of(cond), -scale));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_rational::Rat;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    #[test]
    fn contiguous_universe_round_trips() {
        let space = EntropyVarSpace::new(vs(&[0, 1, 2, 3]));
        assert_eq!(space.num_vars(), 4);
        assert_eq!(space.num_lp_vars(), 15);
        for i in 0..space.num_lp_vars() {
            assert_eq!(space.index_of(space.set_of(i)), i);
        }
        assert_eq!(space.index_of(vs(&[0])), 0);
        assert_eq!(space.index_of(vs(&[0, 1, 2, 3])), 14);
    }

    #[test]
    fn non_contiguous_universe_round_trips() {
        let space = EntropyVarSpace::new(vs(&[2, 5, 9]));
        assert_eq!(space.num_lp_vars(), 7);
        for i in 0..space.num_lp_vars() {
            let s = space.set_of(i);
            assert!(s.is_subset_of(space.universe()));
            assert_eq!(space.index_of(s), i);
        }
    }

    #[test]
    fn subsets_enumerates_everything_once() {
        let space = EntropyVarSpace::new(vs(&[0, 1, 2]));
        let all: Vec<VarSet> = space.subsets().collect();
        assert_eq!(all.len(), 7);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 7);
    }

    #[test]
    fn conditional_term_coefficients() {
        let space = EntropyVarSpace::new(vs(&[0, 1, 2]));
        let mut coeffs = Vec::new();
        space.add_conditional_term(&mut coeffs, vs(&[0]), vs(&[1]), Rat::ONE);
        assert_eq!(coeffs.len(), 2);
        assert!(coeffs.contains(&(space.index_of(vs(&[0, 1])), Rat::ONE)));
        assert!(coeffs.contains(&(space.index_of(vs(&[0])), -Rat::ONE)));
        // unconditional term only adds the joint entry
        let mut coeffs = Vec::new();
        space.add_conditional_term(&mut coeffs, VarSet::EMPTY, vs(&[2]), Rat::from_int(2));
        assert_eq!(coeffs, vec![(space.index_of(vs(&[2])), Rat::from_int(2))]);
    }

    #[test]
    #[should_panic(expected = "h(∅)")]
    fn empty_set_has_no_index() {
        let space = EntropyVarSpace::new(vs(&[0, 1]));
        let _ = space.index_of(VarSet::EMPTY);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn oversized_universe_rejected() {
        let universe: VarSet = (0..17).map(Var).collect();
        let _ = EntropyVarSpace::new(universe);
    }
}
