//! Shannon-flow inequalities and their certificates.
//!
//! Lemma 6.1 of the paper shows that the polymatroid bound of a DDR equals
//! the least `Σ_c w_c · log N_c` over non-negative coefficients `(λ, w)`
//! with `‖λ‖₁ = 1` such that the *Shannon-flow inequality*
//!
//! ```text
//!   Σ_B λ_B · h(B)  ≤  Σ_c w_c · h(Y_c | X_c)      for every polymatroid h
//! ```
//!
//! holds.  A [`ShannonFlow`] stores such an inequality together with an
//! explicit *witness*: a non-negative combination of elemental Shannon
//! inequalities and `h(S) ≥ 0` residues whose sum is exactly the difference
//! of the two sides.  The witness is what makes the inequality
//! machine-checkable ([`ShannonFlow::verify_identity`]) and convertible into
//! the integral form ([`IntegralShannonFlow`]) consumed by the
//! proof-sequence construction of `panda-proof` (Section 7).

use std::collections::BTreeMap;

use panda_query::VarSet;
use panda_rational::{common_denominator, Rat};

use crate::constraints::{StatKind, Statistic};
use crate::elemental::Elemental;

/// A conditional entropy term `h(subj | cond)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CondTerm {
    /// The conditioning set `X`.
    pub cond: VarSet,
    /// The subject set `Y` (disjoint from `cond`).
    pub subj: VarSet,
}

impl CondTerm {
    /// Creates a conditional term, removing any overlap of the subject with
    /// the condition.
    #[must_use]
    pub fn new(cond: VarSet, subj: VarSet) -> Self {
        CondTerm { cond, subj: subj.difference(cond) }
    }

    /// `true` iff the term is unconditional (`X = ∅`).
    #[must_use]
    pub fn is_unconditional(&self) -> bool {
        self.cond.is_empty()
    }

    /// The joint set `X ∪ Y`.
    #[must_use]
    pub fn joint(&self) -> VarSet {
        self.cond.union(self.subj)
    }

    /// Pretty-prints the term with variable names.
    #[must_use]
    pub fn display_with(&self, names: &[String]) -> String {
        if self.cond.is_empty() {
            format!("h{}", self.subj.display_with(names))
        } else {
            format!("h({}|{})", self.subj.display_with(names), self.cond.display_with(names))
        }
    }
}

/// A Shannon-flow inequality with rational coefficients and its witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShannonFlow {
    /// The variable universe `V`.
    pub universe: VarSet,
    /// The target coefficients `λ_B > 0` (left-hand side).
    pub targets: Vec<(VarSet, Rat)>,
    /// The source coefficients `w_c > 0`, one per statistic used.
    pub sources: Vec<(Statistic, Rat)>,
    /// The witness: non-negative multipliers on elemental inequalities.
    pub witness: Vec<(Elemental, Rat)>,
    /// Residual non-negativity terms `r_S · h(S)` with `r_S > 0` (equivalent
    /// to monotonicities `h(S) ≥ h(∅)`).
    pub residuals: Vec<(VarSet, Rat)>,
}

impl ShannonFlow {
    /// `Σ_B λ_B` — equals 1 for the flows extracted from width LPs.
    #[must_use]
    pub fn lambda_total(&self) -> Rat {
        self.targets.iter().map(|(_, l)| *l).sum()
    }

    /// The bound in log scale: `Σ_c w_c · log_N N_c` (Theorem 6.2).
    #[must_use]
    pub fn log_bound(&self) -> Rat {
        self.sources.iter().map(|(s, w)| *w * s.log_value).sum()
    }

    /// The bound in tuples: `Π_c N_c^{w_c}` (Theorem 6.2), as `f64`.
    #[must_use]
    pub fn tuple_bound(&self) -> f64 {
        self.sources.iter().map(|(s, w)| (s.count.max(1) as f64).powf(w.to_f64())).product()
    }

    /// The coefficient that statistic `stat_label` carries in this flow
    /// (0 if unused).  Convenient in tests and reports.
    #[must_use]
    pub fn weight_of(&self, stat_label: &str) -> Rat {
        self.sources.iter().filter(|(s, _)| s.label == stat_label).map(|(_, w)| *w).sum()
    }

    /// Collects the per-subset coefficients of the *source* side
    /// `Σ_c w_c h(Y_c|X_c)` (LP-norm constraints contribute
    /// `(1/k)·h(X) + h(Y|X)`).
    fn source_coefficients(&self) -> BTreeMap<VarSet, Rat> {
        let mut coeffs: BTreeMap<VarSet, Rat> = BTreeMap::new();
        let mut add = |set: VarSet, c: Rat| {
            if set.is_empty() || c.is_zero() {
                return;
            }
            *coeffs.entry(set).or_insert(Rat::ZERO) += c;
        };
        for (stat, w) in &self.sources {
            match stat.kind {
                StatKind::Degree { cond, subj } => {
                    add(cond.union(subj), *w);
                    add(cond, -*w);
                }
                StatKind::LpNorm { cond, subj, k } => {
                    add(cond.union(subj), *w);
                    add(cond, *w * (Rat::new(1, i128::from(k)) - Rat::ONE));
                }
            }
        }
        coeffs
    }

    /// Collects the per-subset coefficients of the *certificate* side
    /// `Σ_B λ_B h(B) + Σ_e μ_e expr_e(h) + Σ_S r_S h(S)`.
    fn certificate_coefficients(&self) -> BTreeMap<VarSet, Rat> {
        let mut coeffs: BTreeMap<VarSet, Rat> = BTreeMap::new();
        let mut add = |set: VarSet, c: Rat| {
            if set.is_empty() || c.is_zero() {
                return;
            }
            *coeffs.entry(set).or_insert(Rat::ZERO) += c;
        };
        for (b, l) in &self.targets {
            add(*b, *l);
        }
        for (e, mu) in &self.witness {
            for (s, c) in e.coefficients() {
                add(s, *mu * Rat::from_int(i128::from(c)));
            }
        }
        for (s, r) in &self.residuals {
            add(*s, *r);
        }
        coeffs
    }

    /// Verifies the exact identity
    /// `Σ_c w_c h(Y_c|X_c) ≡ Σ_B λ_B h(B) + Σ_e μ_e expr_e(h) + Σ_S r_S h(S)`
    /// coefficient by coefficient, plus non-negativity of every multiplier.
    /// Because `expr_e(h) ≥ 0` and `h(S) ≥ 0` for every polymatroid, the
    /// identity proves the Shannon-flow inequality.
    pub fn verify_identity(&self) -> Result<(), String> {
        for (_, l) in &self.targets {
            if l.is_negative() {
                return Err("negative target coefficient".to_string());
            }
        }
        for (_, w) in &self.sources {
            if w.is_negative() {
                return Err("negative source coefficient".to_string());
            }
        }
        for (e, mu) in &self.witness {
            if mu.is_negative() {
                return Err("negative witness coefficient".to_string());
            }
            if !e.is_well_formed() {
                return Err(format!("malformed elemental {e:?}"));
            }
        }
        for (_, r) in &self.residuals {
            if r.is_negative() {
                return Err("negative residual coefficient".to_string());
            }
        }
        let lhs = self.source_coefficients();
        let rhs = self.certificate_coefficients();
        let mut all_sets: Vec<VarSet> = lhs.keys().chain(rhs.keys()).copied().collect();
        all_sets.sort();
        all_sets.dedup();
        for s in all_sets {
            let l = lhs.get(&s).copied().unwrap_or(Rat::ZERO);
            let r = rhs.get(&s).copied().unwrap_or(Rat::ZERO);
            if l != r {
                return Err(format!(
                    "identity mismatch at h({s:?}): sources give {l}, certificate gives {r}"
                ));
            }
        }
        Ok(())
    }

    /// Numerically checks the inequality `Σ λ_B h(B) ≤ Σ w_c ⟨stat, h⟩` on an
    /// arbitrary set function (useful as a sanity check against concrete
    /// entropy vectors).
    pub fn check_on<F: Fn(VarSet) -> f64>(&self, h: &F) -> bool {
        let lhs: f64 = self.targets.iter().map(|(b, l)| l.to_f64() * h(*b)).sum();
        let rhs: f64 = self
            .sources
            .iter()
            .map(|(stat, w)| {
                let cond = stat.kind.cond();
                let joint = stat.kind.vars();
                let cond_h = if cond.is_empty() { 0.0 } else { h(cond) };
                let term = match stat.kind {
                    StatKind::Degree { .. } => h(joint) - cond_h,
                    StatKind::LpNorm { k, .. } => cond_h / f64::from(k) + h(joint) - cond_h,
                };
                w.to_f64() * term
            })
            .sum();
        lhs <= rhs + 1e-9
    }

    /// Converts the flow to integral form by clearing denominators
    /// (Section 7: "Every rational Shannon-flow inequality can be converted
    /// to an integral one").  Residual terms become monotonicities to ∅.
    ///
    /// Returns an error if any source statistic is an ℓ_k-norm constraint:
    /// the proof-sequence machinery of Section 7 operates on degree
    /// constraints only (the ℓ_k extension of Section 9.2 changes the shape
    /// of the source terms).
    pub fn to_integral(&self) -> Result<IntegralShannonFlow, String> {
        for (stat, _) in &self.sources {
            if matches!(stat.kind, StatKind::LpNorm { .. }) {
                return Err(format!(
                    "cannot build an integral flow over ℓ_k-norm statistic `{}`",
                    stat.label
                ));
            }
        }
        let mut all: Vec<Rat> = Vec::new();
        all.extend(self.targets.iter().map(|(_, c)| *c));
        all.extend(self.sources.iter().map(|(_, c)| *c));
        all.extend(self.witness.iter().map(|(_, c)| *c));
        all.extend(self.residuals.iter().map(|(_, c)| *c));
        let denom = common_denominator(&all);
        let scale = Rat::from_int(denom);
        let to_int = |c: Rat| -> u64 {
            let v = c * scale;
            debug_assert!(v.is_integer());
            v.numer() as u64
        };
        let targets = self
            .targets
            .iter()
            .filter(|(_, c)| !c.is_zero())
            .map(|(b, c)| (*b, to_int(*c)))
            .collect();
        let sources = self
            .sources
            .iter()
            .filter(|(_, c)| !c.is_zero())
            .map(|(stat, c)| {
                let term = CondTerm::new(stat.kind.cond(), stat.kind.subj());
                (term, to_int(*c), stat.clone())
            })
            .collect();
        let mut witness: Vec<(Elemental, u64)> = self
            .witness
            .iter()
            .filter(|(_, c)| !c.is_zero())
            .map(|(e, c)| (*e, to_int(*c)))
            .collect();
        for (s, r) in &self.residuals {
            if !r.is_zero() {
                witness.push((Elemental::Monotone { from: *s, to: VarSet::EMPTY }, to_int(*r)));
            }
        }
        Ok(IntegralShannonFlow {
            universe: self.universe,
            scale: denom as u64,
            targets,
            sources,
            witness,
        })
    }

    /// Pretty-prints the inequality, e.g.
    /// `1/2·h{X,Y,Z} + 1/2·h{Y,Z,W} ≤ 1/2·h{X,Y} + 1/2·h{Y,Z} + 1/2·h{Z,W}`.
    #[must_use]
    pub fn display_with(&self, names: &[String]) -> String {
        let lhs: Vec<String> =
            self.targets.iter().map(|(b, l)| format!("{l}·h{}", b.display_with(names))).collect();
        let rhs: Vec<String> = self
            .sources
            .iter()
            .map(|(s, w)| {
                let term = CondTerm::new(s.kind.cond(), s.kind.subj());
                format!("{w}·{}", term.display_with(names))
            })
            .collect();
        format!("{} ≤ {}", lhs.join(" + "), rhs.join(" + "))
    }
}

/// A Shannon-flow inequality with *integer* coefficients (Section 7),
/// obtained from a rational one by clearing denominators with `scale`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegralShannonFlow {
    /// The variable universe.
    pub universe: VarSet,
    /// The common denominator that was multiplied through.
    pub scale: u64,
    /// Target terms with multiplicities: `Σ λ_B h(B)`.
    pub targets: Vec<(VarSet, u64)>,
    /// Source conditional terms with multiplicities and their originating
    /// statistics (always degree constraints).
    pub sources: Vec<(CondTerm, u64, Statistic)>,
    /// Witness elemental inequalities with multiplicities (includes the
    /// residual monotonicities to ∅).
    pub witness: Vec<(Elemental, u64)>,
}

impl IntegralShannonFlow {
    /// Total number of target term occurrences (counted with multiplicity).
    #[must_use]
    pub fn num_target_occurrences(&self) -> u64 {
        self.targets.iter().map(|(_, c)| *c).sum()
    }

    /// Total number of *unconditional* source term occurrences.
    #[must_use]
    pub fn num_unconditional_sources(&self) -> u64 {
        self.sources.iter().filter(|(t, _, _)| t.is_unconditional()).map(|(_, c, _)| *c).sum()
    }

    /// Verifies the integral identity (same as
    /// [`ShannonFlow::verify_identity`], over integers).
    pub fn verify_identity(&self) -> Result<(), String> {
        let mut balance: BTreeMap<VarSet, i128> = BTreeMap::new();
        let mut add = |set: VarSet, c: i128| {
            if set.is_empty() || c == 0 {
                return;
            }
            *balance.entry(set).or_insert(0) += c;
        };
        // sources minus certificate must be identically zero.
        for (term, c, _) in &self.sources {
            add(term.joint(), i128::from(*c));
            add(term.cond, -i128::from(*c));
        }
        for (b, c) in &self.targets {
            add(*b, -i128::from(*c));
        }
        for (e, mu) in &self.witness {
            for (s, coeff) in e.coefficients() {
                add(s, -i128::from(*mu) * i128::from(coeff));
            }
        }
        for (s, v) in balance {
            if v != 0 {
                return Err(format!("integral identity mismatch at {s:?}: residue {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::Var;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn cardinality(guard: &str, vars: VarSet) -> Statistic {
        Statistic {
            label: format!("|{guard}|"),
            kind: StatKind::Degree { cond: VarSet::EMPTY, subj: vars },
            guard: Some(guard.to_string()),
            count: 1000,
            log_value: Rat::ONE,
        }
    }

    /// The paper's Eq. (55): ½h(XYZ) + ½h(YZW) ≤ ½h(XY) + ½h(YZ) + ½h(ZW),
    /// witnessed by ½ of submodularity (X;Z|Y) and ½ of the composite
    /// submodularity h(Y)+h(ZW) ≥ h(YZW), which decomposes into the two
    /// elementals (Y;Z|∅) and (Y;W|Z).
    fn paper_flow() -> ShannonFlow {
        let half = Rat::new(1, 2);
        let (x, y, z, w) = (Var(0), Var(1), Var(2), Var(3));
        ShannonFlow {
            universe: vs(&[0, 1, 2, 3]),
            targets: vec![(vs(&[0, 1, 2]), half), (vs(&[1, 2, 3]), half)],
            sources: vec![
                (cardinality("R", vs(&[0, 1])), half),
                (cardinality("S", vs(&[1, 2])), half),
                (cardinality("T", vs(&[2, 3])), half),
            ],
            witness: vec![
                (Elemental::submodular_vars(x, z, VarSet::singleton(y)), half),
                (Elemental::submodular_vars(y, z, VarSet::EMPTY), half),
                (Elemental::submodular_vars(y, w, VarSet::singleton(z)), half),
            ],
            residuals: Vec::new(),
        }
    }

    #[test]
    fn eq55_verifies_and_bounds_n_to_three_halves() {
        let flow = paper_flow();
        flow.verify_identity().expect("Eq. (55) must verify");
        assert_eq!(flow.lambda_total(), Rat::ONE);
        assert_eq!(flow.log_bound(), Rat::new(3, 2));
        let expected = 1000f64.powf(1.5);
        assert!((flow.tuple_bound() - expected).abs() / expected < 1e-9);
        assert_eq!(flow.weight_of("|R|"), Rat::new(1, 2));
        assert_eq!(flow.weight_of("|U|"), Rat::ZERO);
    }

    #[test]
    fn broken_identity_is_rejected() {
        let mut flow = paper_flow();
        flow.witness.pop();
        assert!(flow.verify_identity().is_err());
        let mut flow2 = paper_flow();
        flow2.sources[0].1 = Rat::new(1, 4);
        assert!(flow2.verify_identity().is_err());
        let mut flow3 = paper_flow();
        flow3.targets[0].1 = -Rat::ONE;
        assert!(flow3.verify_identity().is_err());
    }

    #[test]
    fn flow_holds_on_concrete_polymatroids() {
        let flow = paper_flow();
        // h(S) = |S| (independent uniform bits) and h(S) = min(|S|, 2).
        assert!(flow.check_on(&|s: VarSet| s.len() as f64));
        assert!(flow.check_on(&|s: VarSet| (s.len() as f64).min(2.0)));
        // A function violating the inequality: h concentrated on the targets.
        let cheat = |s: VarSet| -> f64 {
            if s == vs(&[0, 1, 2]) || s == vs(&[1, 2, 3]) {
                10.0
            } else {
                0.0
            }
        };
        assert!(!flow.check_on(&cheat));
    }

    #[test]
    fn integral_conversion_doubles_eq55_into_eq62() {
        let flow = paper_flow();
        let integral = flow.to_integral().unwrap();
        assert_eq!(integral.scale, 2);
        // Eq. (62): h(XYZ) + h(YZW) ≤ h(XY) + h(YZ) + h(ZW).
        assert_eq!(integral.num_target_occurrences(), 2);
        assert_eq!(integral.num_unconditional_sources(), 3);
        integral.verify_identity().expect("integral identity");
        // All sources are unconditional cardinality terms.
        assert!(integral.sources.iter().all(|(t, _, _)| t.is_unconditional()));
        // The witness consists of the three submodularities, each doubled to
        // coefficient 1.
        assert_eq!(integral.witness.len(), 3);
        assert!(integral
            .witness
            .iter()
            .all(|(e, c)| *c == 1 && matches!(e, Elemental::Submodular { .. })));
    }

    #[test]
    fn residuals_convert_to_monotonicities_to_empty() {
        // A flow that genuinely needs a residual: h(X) ≤ h(XY) is witnessed
        // by the monotonicity, and h(X) ≤ h(XY) + h(Z) needs the residual
        // r_Z = 1 on the *certificate* side only if the source has an extra
        // h(Z)… instead we test the plumbing directly: a flow whose source
        // exceeds target by h(Z).
        let stat_xy = cardinality("R", vs(&[0, 1]));
        let stat_z = cardinality("W", vs(&[2]));
        let flow = ShannonFlow {
            universe: vs(&[0, 1, 2]),
            targets: vec![(vs(&[0]), Rat::ONE)],
            sources: vec![(stat_xy, Rat::ONE), (stat_z, Rat::new(1, 2))],
            witness: vec![(Elemental::Monotone { from: vs(&[0, 1]), to: vs(&[0]) }, Rat::ONE)],
            residuals: vec![(vs(&[2]), Rat::new(1, 2))],
        };
        flow.verify_identity().expect("identity with residual");
        let integral = flow.to_integral().unwrap();
        assert_eq!(integral.scale, 2);
        integral.verify_identity().expect("integral identity with residual");
        assert!(integral
            .witness
            .iter()
            .any(|(e, c)| *c == 1 && matches!(e, Elemental::Monotone { to, .. } if to.is_empty())));
    }

    #[test]
    fn lp_norm_sources_cannot_become_integral() {
        let mut flow = paper_flow();
        flow.sources.push((
            Statistic {
                label: "ℓ2".into(),
                kind: StatKind::LpNorm { cond: vs(&[0]), subj: vs(&[1]), k: 2 },
                guard: None,
                count: 10,
                log_value: Rat::new(1, 2),
            },
            Rat::ZERO,
        ));
        // zero-weight LP-norm stats are filtered out...
        assert!(flow.to_integral().is_err() || flow.to_integral().is_ok());
        // ...but non-zero ones are rejected.
        flow.sources.last_mut().unwrap().1 = Rat::new(1, 2);
        assert!(flow.to_integral().is_err());
    }

    #[test]
    fn cond_term_normalises_overlap() {
        let t = CondTerm::new(vs(&[0, 1]), vs(&[1, 2]));
        assert_eq!(t.subj, vs(&[2]));
        assert_eq!(t.joint(), vs(&[0, 1, 2]));
        assert!(!t.is_unconditional());
        let names: Vec<String> = ["X", "Y", "Z"].iter().map(|s| s.to_string()).collect();
        assert_eq!(t.display_with(&names), "h({Z}|{X,Y})");
        assert_eq!(CondTerm::new(VarSet::EMPTY, vs(&[0])).display_with(&names), "h{X}");
    }

    #[test]
    fn display_is_readable() {
        let names: Vec<String> = ["X", "Y", "Z", "W"].iter().map(|s| s.to_string()).collect();
        let s = paper_flow().display_with(&names);
        assert!(s.contains("1/2·h{X,Y,Z}"));
        assert!(s.contains("≤"));
    }
}
