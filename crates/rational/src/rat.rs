//! The [`Rat`] type: a reduced `i128 / i128` fraction.

// panda-lint: allow-file(P1) -- the checked_*/expect pairs are the
// crate's deliberate loud-overflow policy: exact rational arithmetic
// must abort rather than wrap into a wrong optimum.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::gcd;

/// An exact rational number stored as a reduced fraction with a strictly
/// positive denominator.
///
/// `Rat` implements the usual arithmetic operators, total ordering and
/// parsing from strings of the form `"3"`, `"-3/2"` or `"0.75"` is *not*
/// supported (decimal notation is ambiguous for our purposes); use
/// [`Rat::new`] or [`Rat::from_int`] instead.
///
/// # Examples
///
/// ```
/// use panda_rational::Rat;
///
/// let half = Rat::new(1, 2);
/// let third = Rat::new(1, 3);
/// assert_eq!(half + third, Rat::new(5, 6));
/// assert_eq!((half * Rat::from_int(3)).to_string(), "3/2");
/// assert!(half > third);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// The rational number zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates a new rational `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rat denominator must be non-zero");
        let mut num = num;
        let mut den = den;
        if den < 0 {
            num = -num;
            den = -den;
        }
        let g = gcd(num, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Rat { num, den }
    }

    /// Creates a rational from an integer.
    #[must_use]
    pub const fn from_int(v: i128) -> Self {
        Rat { num: v, den: 1 }
    }

    /// Creates a rational from an **already reduced** numerator/denominator
    /// pair with a strictly positive denominator, usable in `const`
    /// contexts.
    ///
    /// Equality and hashing on [`Rat`] assume lowest terms, so passing a
    /// non-reduced fraction here is a logic error; use [`Rat::new`] at
    /// runtime when in doubt.
    ///
    /// # Panics
    ///
    /// Panics (at compile time in const contexts) if `den <= 0`.
    #[must_use]
    pub const fn const_new(num: i128, den: i128) -> Self {
        assert!(den > 0, "Rat::const_new requires a positive denominator");
        Rat { num, den }
    }

    /// The (reduced) numerator; carries the sign of the value.
    #[must_use]
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The (reduced) denominator; always strictly positive.
    #[must_use]
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` iff the value is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` iff the value is strictly positive.
    #[must_use]
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` iff the value is strictly negative.
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` iff the value is an integer.
    #[must_use]
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The absolute value.
    #[must_use]
    pub fn abs(&self) -> Self {
        Rat { num: self.num.abs(), den: self.den }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        Rat::new(self.den, self.num)
    }

    /// Converts to `f64`.  Exact for small fractions; used only for
    /// reporting and plotting, never inside the LP pivoting.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Rounds towards negative infinity to an integer.
    #[must_use]
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Rounds towards positive infinity to an integer.
    #[must_use]
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// The smaller of two rationals.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Checked addition used internally; panics with context on overflow.
    fn add_impl(self, rhs: Self) -> Self {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d) keeps the
        // intermediates as small as possible.
        let g = gcd(self.den, rhs.den);
        let l = (self.den / g).checked_mul(rhs.den).expect("Rat addition overflow (denominator)");
        let lhs_scale = l / self.den;
        let rhs_scale = l / rhs.den;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| rhs.num.checked_mul(rhs_scale).and_then(|b| a.checked_add(b)))
            .expect("Rat addition overflow (numerator)");
        Rat::new(num, l)
    }

    fn mul_impl(self, rhs: Self) -> Self {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("Rat multiplication overflow (numerator)");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("Rat multiplication overflow (denominator)");
        Rat::new(num, den)
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Self {
        Rat::from_int(v)
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::from_int(v as i128)
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Self {
        Rat::from_int(v as i128)
    }
}

impl From<u32> for Rat {
    fn from(v: u32) -> Self {
        Rat::from_int(v as i128)
    }
}

impl From<usize> for Rat {
    fn from(v: usize) -> Self {
        Rat::from_int(v as i128)
    }
}

/// Error returned when parsing a [`Rat`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError {
    message: String,
}

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational: {}", self.message)
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (num_str, den_str) = match s.split_once('/') {
            Some((n, d)) => (n.trim(), Some(d.trim())),
            None => (s, None),
        };
        let num: i128 = num_str
            .parse()
            .map_err(|_| ParseRatError { message: format!("bad numerator in `{s}`") })?;
        let den: i128 = match den_str {
            Some(d) => d
                .parse()
                .map_err(|_| ParseRatError { message: format!("bad denominator in `{s}`") })?,
            None => 1,
        };
        if den == 0 {
            return Err(ParseRatError { message: format!("zero denominator in `{s}`") });
        }
        Ok(Rat::new(num, den))
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b and c/d via a*d vs c*b (denominators positive).
        let lhs = self.num.checked_mul(other.den).expect("Rat comparison overflow");
        let rhs = other.num.checked_mul(self.den).expect("Rat comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.add_impl(rhs)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self.add_impl(-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.mul_impl(rhs)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        self.mul_impl(rhs.recip())
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |acc, v| acc + v)
    }
}

impl<'a> Sum<&'a Rat> for Rat {
    fn sum<I: Iterator<Item = &'a Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |acc, v| acc + *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic_matches_hand_computed_values() {
        let a = Rat::new(3, 4);
        let b = Rat::new(5, 6);
        assert_eq!(a + b, Rat::new(19, 12));
        assert_eq!(a - b, Rat::new(-1, 12));
        assert_eq!(a * b, Rat::new(5, 8));
        assert_eq!(a / b, Rat::new(9, 10));
        assert_eq!(-a, Rat::new(-3, 4));
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Rat::new(1, 2) < Rat::new(2, 3));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::new(7, 7) == Rat::ONE);
        assert_eq!(Rat::new(5, 3).max(Rat::new(3, 2)), Rat::new(5, 3));
        assert_eq!(Rat::new(5, 3).min(Rat::new(3, 2)), Rat::new(3, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ["0", "5", "-5", "3/2", "-3/2", "7/3"] {
            let r: Rat = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert!("1/0".parse::<Rat>().is_err());
        assert!("abc".parse::<Rat>().is_err());
        assert_eq!("  4/6 ".parse::<Rat>().unwrap(), Rat::new(2, 3));
    }

    #[test]
    fn recip_and_integer_checks() {
        assert_eq!(Rat::new(3, 5).recip(), Rat::new(5, 3));
        assert!(Rat::from_int(4).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
        assert!(Rat::new(1, 2).is_positive());
        assert!(Rat::new(-1, 2).is_negative());
        assert!(Rat::ZERO.is_zero());
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![Rat::new(1, 2), Rat::new(1, 3), Rat::new(1, 6)];
        let total: Rat = v.iter().sum();
        assert_eq!(total, Rat::ONE);
        let total2: Rat = v.into_iter().sum();
        assert_eq!(total2, Rat::ONE);
    }

    #[test]
    fn to_f64_matches() {
        assert!((Rat::new(3, 2).to_f64() - 1.5).abs() < 1e-12);
        assert!((Rat::new(-1, 4).to_f64() + 0.25).abs() < 1e-12);
    }

    fn small_rat() -> impl Strategy<Value = Rat> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rat::new(n, d))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in small_rat(), b in small_rat()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in small_rat(), b in small_rat(), c in small_rat()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes_over_add(a in small_rat(), b in small_rat(), c in small_rat()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_then_add_round_trips(a in small_rat(), b in small_rat()) {
            prop_assert_eq!(a - b + b, a);
        }

        #[test]
        fn prop_div_then_mul_round_trips(a in small_rat(), b in small_rat()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!(a / b * b, a);
        }

        #[test]
        fn prop_ordering_consistent_with_f64(a in small_rat(), b in small_rat()) {
            if a < b {
                prop_assert!(a.to_f64() <= b.to_f64());
            }
        }

        #[test]
        fn prop_floor_le_value_le_ceil(a in small_rat()) {
            prop_assert!(Rat::from_int(a.floor()) <= a);
            prop_assert!(a <= Rat::from_int(a.ceil()));
        }
    }
}
