//! Exact rational arithmetic for `panda-rs`.
//!
//! The information-theoretic side of the PANDA framework (polymatroid
//! bounds, fractional hypertree width, submodular width, Shannon-flow
//! inequalities) produces values such as `3/2` or `(4ω−1)/(2ω+1)` and dual
//! certificates whose coefficients must be *exact* so they can be turned
//! into integral proof sequences (Section 7 of the paper).  Floating point
//! is not acceptable there, so every linear program in the workspace is
//! solved over [`Rat`], a reduced fraction of two `i128` integers.
//!
//! The arithmetic is widening-checked: intermediate products are computed
//! in `i128` and the crate panics (with a descriptive message) on overflow
//! rather than silently wrapping.  The query sizes in the paper (at most a
//! handful of variables, hence LPs with a few hundred rows) stay far away
//! from these limits.

// Every public item in this crate must be documented; broken or missing
// docs fail CI via the `cargo doc` job (RUSTDOCFLAGS="-D warnings").
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rat;

pub use rat::{ParseRatError, Rat};

/// Computes the greatest common divisor of two non-negative integers.
///
/// `gcd(0, 0)` is defined as `0` so that normalising the zero fraction is a
/// no-op.
#[must_use]
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Computes the least common multiple of two non-negative integers.
///
/// # Panics
///
/// Panics if the result overflows `i128`.
#[must_use]
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    // panda-lint: allow(P1) -- deliberate loud overflow guard: exact
    // rational arithmetic must abort on overflow, never wrap silently.
    (a / g).checked_mul(b).expect("lcm overflow").abs()
}

/// Returns the least common multiple of the denominators of a slice of
/// rationals.  Used to convert rational Shannon-flow inequalities into
/// integral ones (Section 7 of the paper).
#[must_use]
pub fn common_denominator(values: &[Rat]) -> i128 {
    values.iter().fold(1i128, |acc, v| lcm(acc, v.denom()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(7, 3), 21);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn common_denominator_of_halves_and_thirds() {
        let v = [Rat::new(1, 2), Rat::new(2, 3), Rat::from_int(4)];
        assert_eq!(common_denominator(&v), 6);
    }

    #[test]
    fn common_denominator_empty_is_one() {
        assert_eq!(common_denominator(&[]), 1);
    }
}
