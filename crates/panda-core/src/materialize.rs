//! Shared-subplan materialisation across degree branches.
//!
//! The adaptive evaluator and the DDR evaluator both fan a query out into
//! degree branches, and each branch materialises one relation per bag of
//! its chosen decomposition.  Branch databases differ only in the
//! *partitioned* relations — every other relation is the same `Arc`-shared
//! instance across all branches — so a bag whose atoms touch no
//! partitioned relation produces the **identical** join in every branch
//! that materialises it.
//!
//! The (crate-internal) `SubplanRegistry` detects this at execution time:
//! bags are keyed
//! by their variable set plus, per assigned atom, the relation symbol, the
//! atom's positional variables, and the [storage
//! identity](panda_relation::Relation::storage_id) of the relation
//! instance the branch would join.  Equal keys imply value-identical
//! inputs (same `Arc`, same view window), so the subjoin is computed once
//! and every later scan is served as a zero-copy clone of the shared
//! result — the `push_plan_for_materialization`/`num_scans` idea of
//! materialisation-aware executors, applied to PANDA's degree branches.
//!
//! Reuse never changes results: the served relation is the one the branch
//! would have computed (joins are deterministic functions of their
//! inputs), so outputs stay bit-identical to unshared evaluation at any
//! thread count.  Under a parallel engine two branches may race to compute
//! the same key; both compute the same value and the first insert wins, so
//! only wall-clock time (and the hit/miss split of the runtime counters —
//! which is why those counters never reach a
//! [`PlanReport`](crate::PlanReport)) depends on the interleaving.
//!
//! The *plan-time* view of the same sharing — which subplans will be
//! scanned how many times — is computed deterministically by
//! [`PandaEvaluator::materialization_plan`](crate::PandaEvaluator::materialization_plan)
//! and surfaced as [`MaterializedSubplan`] entries in the
//! [`PlanReport`](crate::PlanReport) and its EXPLAIN rendering.

use std::collections::HashMap;
// panda-lint: allow(D2) -- the import feeds the registry below: pure
// memoisation of deterministic subjoins (see the field justification).
use std::sync::{Mutex, PoisonError};

use panda_query::{Atom, VarSet};
use panda_relation::Database;

use crate::binding::VarRelation;

/// A subplan the plan will materialise once and scan several times: the
/// bag's variable set, the relation symbols joined to build it, and the
/// number of branch scans it serves.  Plan-derived and deterministic —
/// part of the [`PlanReport`](crate::PlanReport) bit-identity contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedSubplan {
    /// The bag (as a variable set) being materialised.
    pub bag: VarSet,
    /// The relation symbols of the atoms assigned to the bag, sorted.
    pub relations: Vec<String>,
    /// How many branch scans the single materialisation serves (≥ 2).
    pub num_scans: usize,
}

/// One atom's identity inside a [`SubplanKey`]: relation symbol,
/// positional variables, and the storage identity of the branch's
/// relation instance (`None` when the relation is absent from the
/// branch database).
pub(crate) type AtomIdentity = (String, Vec<u32>, Option<(usize, usize, usize)>);

/// The identity of one bag-materialisation job: equal keys imply
/// value-identical inputs and therefore value-identical outputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct SubplanKey {
    /// The bag's variable set (its bits).
    pub(crate) bag: u32,
    /// The identities of the atoms assigned to the bag, sorted.
    pub(crate) atoms: Vec<AtomIdentity>,
}

/// Builds the key for materialising `bag` from `atoms` against `db`.
pub(crate) fn subplan_key(bag: VarSet, atoms: &[&Atom], db: &Database) -> SubplanKey {
    let mut encoded: Vec<AtomIdentity> = atoms
        .iter()
        .map(|atom| {
            (
                atom.relation.clone(),
                atom.vars.iter().map(|v| v.0).collect(),
                db.relation(&atom.relation).map(panda_relation::Relation::storage_id),
            )
        })
        .collect();
    encoded.sort();
    SubplanKey { bag: bag.bits(), atoms: encoded }
}

struct RegistryState {
    done: HashMap<SubplanKey, VarRelation>,
    hits: u64,
    misses: u64,
}

/// A per-evaluation registry of materialised subplans, shared by all
/// branches of one adaptive or DDR evaluation (see the module docs).
pub(crate) struct SubplanRegistry {
    // panda-lint: allow(D2) -- memoisation only: a subplan is a pure
    // function of its key (equal keys imply value-identical inputs), so
    // whichever branch populates a slot, every reader observes an
    // identical value; the registry affects wall-clock time, never
    // results.
    state: Mutex<RegistryState>,
}

impl SubplanRegistry {
    /// An empty registry.
    pub(crate) fn new() -> Self {
        SubplanRegistry {
            // panda-lint: allow(D2) -- see the field: pure memoisation.
            state: Mutex::new(RegistryState { done: HashMap::new(), hits: 0, misses: 0 }),
        }
    }

    /// Serves the subplan for `key`, computing it with `compute` on the
    /// first scan.  Later scans get a zero-copy clone of the shared
    /// result.  Under a parallel engine, racing first scans may both
    /// compute; the first insert wins and both compute the same value, so
    /// results are interleaving-independent.
    pub(crate) fn get_or_materialize(
        &self,
        key: SubplanKey,
        compute: impl FnOnce() -> VarRelation,
    ) -> VarRelation {
        {
            // panda-lint: allow(D2) -- see the field: pure memoisation.
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(rel) = state.done.get(&key) {
                let rel = rel.clone();
                state.hits += 1;
                return rel;
            }
        }
        let rel = compute();
        // panda-lint: allow(D2) -- see the field: pure memoisation.
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.misses += 1;
        match state.done.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => slot.get().clone(),
            std::collections::hash_map::Entry::Vacant(slot) => slot.insert(rel).clone(),
        }
    }

    /// `(hits, misses)` — wall-clock observability for tests.  Under a
    /// parallel engine the split between the two may vary with the
    /// interleaving (racing first scans both count as misses); the sum is
    /// the total number of scans and is deterministic.
    #[cfg(test)]
    pub(crate) fn counters(&self) -> (u64, u64) {
        // panda-lint: allow(D2) -- see the field: pure memoisation.
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (state.hits, state.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::{parse_query, Var};
    use panda_relation::Relation;

    #[test]
    fn equal_storage_yields_equal_keys_and_one_materialisation() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 5], [3, 5]]));
        let branch = db.clone(); // shares storage
        let bag = VarSet::from_iter([Var(0), Var(1)]);
        let atoms: Vec<&Atom> = q.atoms().iter().filter(|a| a.relation == "R").collect();
        let k1 = subplan_key(bag, &atoms, &db);
        let k2 = subplan_key(bag, &atoms, &branch);
        assert_eq!(k1, k2);

        let registry = SubplanRegistry::new();
        let mut computed = 0;
        for key in [k1, k2] {
            let rel = registry.get_or_materialize(key, || {
                computed += 1;
                VarRelation::from_atom(atoms[0], &db)
            });
            assert_eq!(rel.len(), 2);
        }
        assert_eq!(computed, 1, "the second scan must be served from the registry");
        assert_eq!(registry.counters(), (1, 1));
    }

    #[test]
    fn different_storage_yields_different_keys() {
        let q = parse_query("Q(X,Y) :- R(X,Y)").unwrap();
        let mut a = Database::new();
        a.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        let mut b = Database::new();
        // Same contents, different storage: must not be conflated (the
        // registry key is an *identity*, not a value, so it can only ever
        // under-share, never wrongly share).
        b.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        let bag = VarSet::from_iter([Var(0), Var(1)]);
        let atoms: Vec<&Atom> = q.atoms().iter().collect();
        assert_ne!(subplan_key(bag, &atoms, &a), subplan_key(bag, &atoms, &b));
        // A missing relation is keyed as absent, not skipped.
        let empty = Database::new();
        assert_ne!(subplan_key(bag, &atoms, &a), subplan_key(bag, &atoms, &empty));
    }
}
