//! Functional aggregate queries over semirings (Section 9.1).
//!
//! A FAQ annotates every input tuple with an element of a commutative
//! semiring `(K, ⊕, ⊗)` and asks for `⊕_{assignments} ⊗_{atoms}
//! annotation(atom tuple)`.  Instantiating the semiring yields the Boolean
//! query (∨/∧), the counting query `#CQ` (+/×), minimum-weight matching
//! (min/+), and bottleneck matching (max/min).
//!
//! For acyclic queries the aggregate is computed by dynamic programming
//! over a join tree (the FAQ/variable-elimination algorithm); for cyclic
//! queries this module falls back to enumerating the full join with the
//! worst-case-optimal join — the paper's open problem (Section 10) is
//! precisely that non-idempotent semirings cannot simply reuse PANDA's
//! overlapping partitions.

// panda-lint: allow-file(P1) -- message slots are indexed by the TD's
// node ids and the take()/expect pairs pin the one-visit-per-node
// bottom-up order.

use std::collections::HashMap;

use panda_query::hypergraph::join_tree_of;
use panda_query::{ConjunctiveQuery, Var, VarSet};
use panda_relation::{AnnotatedRelation, Database, Semiring, Value};

use crate::binding::VarRelation;
use crate::generic_join::GenericJoin;

/// An annotation function: given the relation symbol and a tuple, returns
/// its semiring annotation.
pub type AnnotationFn<'a, S> = dyn Fn(&str, &[Value]) -> <S as Semiring>::Elem + 'a;

/// An annotated relation bound to query variables.
struct AnnotatedVarRelation<S: Semiring> {
    vars: Vec<Var>,
    rel: AnnotatedRelation<S>,
}

impl<S: Semiring> AnnotatedVarRelation<S> {
    fn from_atom(atom: &panda_query::Atom, db: &Database, annotate: &AnnotationFn<'_, S>) -> Self {
        let bound = VarRelation::from_atom(atom, db);
        let mut rel = AnnotatedRelation::new(bound.vars.len());
        // Annotations are looked up on the *original* tuple layout of the
        // atom, which may repeat variables; reconstruct it per row.
        for row in bound.rel.iter() {
            let original: Vec<Value> = atom
                .vars
                .iter()
                .map(|v| {
                    let col = bound.vars.iter().position(|w| w == v).expect("atom variable bound");
                    row[col]
                })
                .collect();
            rel.push(row.to_vec(), annotate(&atom.relation, &original));
        }
        AnnotatedVarRelation { vars: bound.vars, rel: rel.normalized() }
    }

    fn var_set(&self) -> VarSet {
        self.vars.iter().copied().collect()
    }

    fn column_of(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|w| *w == v)
    }

    fn join(&self, other: &Self) -> Self {
        let on: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.column_of(*v).map(|j| (i, j)))
            .collect();
        let joined = self.rel.join(&other.rel, &on);
        let mut vars = self.vars.clone();
        let joined_cols: Vec<usize> = on.iter().map(|&(_, j)| j).collect();
        for (j, v) in other.vars.iter().enumerate() {
            if !joined_cols.contains(&j) {
                vars.push(*v);
            }
        }
        AnnotatedVarRelation { vars, rel: joined }
    }

    fn aggregate_to(&self, keep: VarSet) -> Self {
        let kept: Vec<Var> = self.vars.iter().copied().filter(|v| keep.contains(*v)).collect();
        let cols: Vec<usize> =
            kept.iter().map(|v| self.column_of(*v).expect("kept variable bound")).collect();
        AnnotatedVarRelation { vars: kept, rel: self.rel.aggregate_onto(&cols) }
    }
}

/// Computes the total FAQ aggregate `⊕` over all assignments to *all*
/// variables of `⊗` over the atoms' annotations.
///
/// With [`panda_relation::CountingSemiring`] and the constant annotation 1
/// this is the number of homomorphisms (the `#CQ` answer for a Boolean
/// head); with [`panda_relation::MinPlusSemiring`] and per-tuple weights it
/// is the minimum total weight of any satisfying assignment.
pub fn faq_total<S: Semiring>(
    query: &ConjunctiveQuery,
    db: &Database,
    annotate: &AnnotationFn<'_, S>,
) -> S::Elem {
    let schemas: Vec<VarSet> = query.atoms().iter().map(panda_query::Atom::var_set).collect();
    if let Some(tree) = join_tree_of(&schemas) {
        // Acyclic: join-tree dynamic programming.
        let mut nodes: Vec<Option<AnnotatedVarRelation<S>>> = query
            .atoms()
            .iter()
            .map(|a| Some(AnnotatedVarRelation::from_atom(a, db, annotate)))
            .collect();
        let mut messages: Vec<Option<AnnotatedVarRelation<S>>> =
            (0..nodes.len()).map(|_| None).collect();
        for &node in &tree.bottom_up {
            let mut acc = nodes[node].take().expect("each node visited once");
            for &child in &tree.children[node] {
                let msg = messages[child].take().expect("children before parents");
                acc = acc.join(&msg);
            }
            let keep = match tree.parent[node] {
                Some(parent) => acc.var_set().intersect(schemas[parent]),
                None => VarSet::EMPTY,
            };
            messages[node] = Some(acc.aggregate_to(keep));
        }
        let root = messages[tree.root].take().expect("root message");
        root.rel.total()
    } else {
        // Cyclic: enumerate the full join and aggregate explicitly.
        let all = query.all_vars();
        let inputs = VarRelation::bind_all(query, db);
        let full = GenericJoin::new(all).join(&inputs, &all.to_vec());
        let var_order: Vec<Var> = all.to_vec();
        let mut total = S::zero();
        for row in full.rel.iter() {
            let assignment: HashMap<Var, Value> =
                var_order.iter().copied().zip(row.iter().copied()).collect();
            let mut product = S::one();
            for atom in query.atoms() {
                let tuple: Vec<Value> = atom.vars.iter().map(|v| assignment[v]).collect();
                product = S::mul(&product, &annotate(&atom.relation, &tuple));
            }
            total = S::add(&total, &product);
        }
        total
    }
}

/// Counts the satisfying assignments to all variables of the query body
/// (`#CQ` with a Boolean head), using the counting semiring.
#[must_use]
pub fn count_assignments(query: &ConjunctiveQuery, db: &Database) -> u64 {
    faq_total::<panda_relation::CountingSemiring>(query, db, &|_, _| 1)
}

/// The minimum total weight over satisfying assignments, where each atom
/// tuple's weight is given by `weight` (min-plus semiring);
/// `None` if the query is unsatisfiable.
pub fn min_weight(
    query: &ConjunctiveQuery,
    db: &Database,
    weight: &dyn Fn(&str, &[Value]) -> i64,
) -> Option<i64> {
    let total =
        faq_total::<panda_relation::MinPlusSemiring>(query, db, &|rel, row| weight(rel, row));
    if total >= panda_relation::semiring::MIN_PLUS_INFINITY {
        None
    } else {
        Some(total)
    }
}

/// Boolean satisfiability of the body (any satisfying assignment at all),
/// via the Boolean semiring.
#[must_use]
pub fn is_satisfiable(query: &ConjunctiveQuery, db: &Database) -> bool {
    faq_total::<panda_relation::BoolSemiring>(query, db, &|_, _| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::parse_query;
    use panda_relation::Relation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn path_db() -> Database {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [1, 3], [4, 3]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 5], [3, 5], [3, 6]]));
        db
    }

    #[test]
    fn counting_a_path_query() {
        // assignments: (1,2,5), (1,3,5), (1,3,6), (4,3,5), (4,3,6) = 5.
        let q = parse_query("Q() :- R(A,B), S(B,C)").unwrap();
        assert_eq!(count_assignments(&q, &path_db()), 5);
        assert!(is_satisfiable(&q, &path_db()));
    }

    #[test]
    fn counting_agrees_with_enumeration_on_cyclic_queries() {
        let q = parse_query("Q() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            db.insert(
                name,
                Relation::from_rows(
                    2,
                    (0..40).map(|_| [rng.gen_range(0..6u64), rng.gen_range(0..6u64)]),
                )
                .deduped(),
            );
        }
        let count = count_assignments(&q, &db);
        let full = GenericJoin::evaluate(&q.with_free(q.all_vars()), &db);
        assert_eq!(count, full.len() as u64);
    }

    #[test]
    fn counting_semiring_needs_multiplicity_not_idempotence() {
        // Two different B-paths from 1 to 5 must count as 2, not 1.
        let q = parse_query("Q() :- R(A,B), S(B,C)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [1, 3]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 5], [3, 5]]));
        assert_eq!(count_assignments(&q, &db), 2);
    }

    #[test]
    fn min_weight_path() {
        // Weight of an edge (a,b) is a+b; cheapest 2-path in path_db is
        // 1→2→5 with weight (1+2)+(2+5) = 10.
        let q = parse_query("Q() :- R(A,B), S(B,C)").unwrap();
        let w = |_: &str, row: &[Value]| (row[0] + row[1]) as i64;
        assert_eq!(min_weight(&q, &path_db(), &w), Some(10));
        // Unsatisfiable instance.
        let mut db = path_db();
        db.insert("S", Relation::from_rows(2, vec![[99, 1]]));
        assert_eq!(min_weight(&q, &db, &w), None);
        assert!(!is_satisfiable(&q, &db));
    }

    #[test]
    fn min_weight_four_cycle_matches_brute_force() {
        let q = parse_query("Q() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            db.insert(
                name,
                Relation::from_rows(
                    2,
                    (0..30).map(|_| [rng.gen_range(0..5u64), rng.gen_range(0..5u64)]),
                )
                .deduped(),
            );
        }
        let w = |_: &str, row: &[Value]| (2 * row[0] + 3 * row[1]) as i64;
        let fast = min_weight(&q, &db, &w);
        // Brute force over the full join.
        let full = GenericJoin::evaluate(&q.with_free(q.all_vars()), &db);
        let brute = full
            .rel
            .iter()
            .map(|row| {
                // row order: X,Y,Z,W
                let (x, y, z, wv) = (row[0], row[1], row[2], row[3]);
                w("R", &[x, y]) + w("S", &[y, z]) + w("T", &[z, wv]) + w("U", &[wv, x])
            })
            .min();
        assert_eq!(fast, brute);
    }

    #[test]
    fn empty_input_counts_zero() {
        let q = parse_query("Q() :- R(A,B), S(B,C)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::new(2));
        db.insert("S", Relation::new(2));
        assert_eq!(count_assignments(&q, &db), 0);
        assert!(!is_satisfiable(&q, &db));
    }
}
