//! Static (single-TD) and adaptive (multi-TD) query plans.
//!
//! * [`StaticTdPlan`] is the classical fractional-hypertree-width plan of
//!   Section 4: materialise one relation per bag of a single tree
//!   decomposition, then run Yannakakis over the bags.
//! * [`PandaEvaluator`] is the adaptive plan of Section 5/8: the
//!   decomposition steps of the Shannon-flow proof sequences determine
//!   which relation degrees to partition on; the data is split into
//!   power-of-two degree buckets; every bucket combination (branch) is
//!   re-costed from its own statistics and evaluated with the cheapest tree
//!   decomposition for that branch.  On degree-uniform branches the chosen
//!   decomposition's cost matches the submodular-width bound, which is how
//!   the `O(N^{subw} log N + OUT)` behaviour arises (one `log N` factor per
//!   partitioned degree).

// panda-lint: allow-file(P1) -- bag and atom positions come from the
// same tree decomposition the plan was built from; a miss would mean
// the TD enumeration itself produced an invalid cover.

use std::collections::{BTreeMap, BTreeSet};

use panda_entropy::{FhtwReport, PivotBudget, StatisticsSet, SubwReport};
use panda_proof::{ProofSequence, ProofStep, TermIdentity};
use panda_query::{Atom, ConjunctiveQuery, TreeDecomposition, Var, VarSet};
use panda_relation::{stats as rstats, Database, Relation};

use crate::binding::VarRelation;
use crate::config::Engine;
use crate::generic_join::GenericJoin;
use crate::materialize::{subplan_key, MaterializedSubplan, SubplanKey, SubplanRegistry};
use crate::yannakakis::{empty_result, yannakakis_free_connex};

/// A static query plan built from a single tree decomposition (Section 4.1).
#[derive(Debug, Clone)]
pub struct StaticTdPlan {
    /// The tree decomposition the plan is based on.
    pub td: TreeDecomposition,
}

impl StaticTdPlan {
    /// Creates the plan for a given decomposition.
    #[must_use]
    pub fn new(td: TreeDecomposition) -> Self {
        StaticTdPlan { td }
    }

    /// Picks the cheapest decomposition for a query according to the
    /// fractional hypertree width under the given statistics.
    pub fn best_for(
        query: &ConjunctiveQuery,
        stats: &StatisticsSet,
    ) -> Result<Self, panda_entropy::BoundError> {
        let report = panda_entropy::fhtw(query, stats)?;
        Ok(StaticTdPlan::new(report.best_td().clone()))
    }

    /// [`StaticTdPlan::best_for`] under an LP pivot budget: the `fhtw`
    /// chain charges every simplex pivot against `budget` and fails with
    /// [`BoundError::PivotBudgetExhausted`](panda_entropy::BoundError::PivotBudgetExhausted)
    /// when it runs out.  A solve that completes within budget picks the
    /// identical decomposition as [`StaticTdPlan::best_for`] (the budget
    /// only counts pivots; it never alters them).
    pub fn best_for_budgeted(
        query: &ConjunctiveQuery,
        stats: &StatisticsSet,
        budget: &mut PivotBudget,
    ) -> Result<Self, panda_entropy::BoundError> {
        let tds = TreeDecomposition::enumerate(query);
        let report = panda_entropy::fhtw_with_tds_budgeted(query, &tds, stats, budget)?;
        Ok(StaticTdPlan::new(report.best_td().clone()))
    }

    /// Evaluates the query: every bag is materialised by a worst-case
    /// optimal join of the atoms assigned to it (each atom is assigned to
    /// one bag containing it, Eq. 13), and the bag relations are combined
    /// with Yannakakis (Eq. 12).  Uses the engine selected by
    /// `PANDA_THREADS` ([`Engine::from_env`], sequential by default).
    #[must_use]
    pub fn evaluate(&self, query: &ConjunctiveQuery, db: &Database) -> VarRelation {
        self.evaluate_with_engine(query, db, Engine::from_env())
    }

    /// [`StaticTdPlan::evaluate`] under an explicit [`Engine`]: each bag's
    /// worst-case-optimal join fans its top-level branches out over the
    /// pool ([`GenericJoin::join_with_engine`]); the Yannakakis combination
    /// stays sequential (it is linear in its inputs).
    #[must_use]
    pub fn evaluate_with_engine(
        &self,
        query: &ConjunctiveQuery,
        db: &Database,
        engine: Engine,
    ) -> VarRelation {
        self.evaluate_with_engine_shared(query, db, engine, None)
    }

    /// [`StaticTdPlan::evaluate_with_engine`] with an optional shared
    /// [`SubplanRegistry`]: when the adaptive evaluator runs this plan once
    /// per degree branch, bags whose inputs are the identical `Arc`-shared
    /// relation instances across branches are materialised once and every
    /// later scan is served zero-copy (see [`crate::materialize`]).
    pub(crate) fn evaluate_with_engine_shared(
        &self,
        query: &ConjunctiveQuery,
        db: &Database,
        engine: Engine,
        registry: Option<&SubplanRegistry>,
    ) -> VarRelation {
        let bound = VarRelation::bind_all(query, db);
        if bound.iter().any(VarRelation::is_empty) {
            return empty_result(query.free_vars());
        }
        let assigned = self.assign_atoms(query);
        // Materialise each non-empty bag.
        let mut bag_relations: Vec<VarRelation> = Vec::new();
        for (bag_idx, atom_ids) in assigned.iter().enumerate() {
            if atom_ids.is_empty() {
                continue;
            }
            let inputs: Vec<VarRelation> = atom_ids.iter().map(|&i| bound[i].clone()).collect();
            let covered: VarSet =
                inputs.iter().fold(VarSet::EMPTY, |acc, r| acc.union(r.var_set()));
            let bag_vars = self.td.bags()[bag_idx].intersect(covered);
            let join = GenericJoin::new(covered);
            let bag_rel = match registry {
                Some(registry) => {
                    let atoms: Vec<&Atom> = atom_ids.iter().map(|&i| &query.atoms()[i]).collect();
                    registry.get_or_materialize(subplan_key(bag_vars, &atoms, db), || {
                        join.join_with_engine(&inputs, &bag_vars.to_vec(), engine)
                    })
                }
                None => join.join_with_engine(&inputs, &bag_vars.to_vec(), engine),
            };
            bag_relations.push(bag_rel);
        }
        // Combine the bags.  Their schemas are sub-sets of the TD bags and
        // are acyclic in all but pathological cases; fall back to a
        // sequential join with early projection otherwise.
        if let Some(result) = yannakakis_free_connex(&bag_relations, query.free_vars()) {
            return result;
        }
        sequential_join(&bag_relations, query.free_vars())
    }

    /// Assigns every atom to the first bag that contains it (Eq. 13) — the
    /// single source of truth shared by execution and the plan-time
    /// materialisation simulation.
    ///
    /// # Panics
    ///
    /// Panics if some atom fits no bag (the TD would be invalid for the
    /// query).
    fn assign_atoms(&self, query: &ConjunctiveQuery) -> Vec<Vec<usize>> {
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); self.td.num_bags()];
        for (i, atom) in query.atoms().iter().enumerate() {
            let vars = atom.var_set();
            let bag = self
                .td
                .bags()
                .iter()
                .position(|b| vars.is_subset_of(*b))
                .expect("a valid TD contains every atom in some bag");
            assigned[bag].push(i);
        }
        assigned
    }
}

/// Joins relations one by one, projecting after every join onto the free
/// variables plus the variables still needed by the remaining relations.
fn sequential_join(relations: &[VarRelation], free: VarSet) -> VarRelation {
    if relations.is_empty() {
        return VarRelation::boolean(true);
    }
    let mut remaining: Vec<VarRelation> = relations.to_vec();
    remaining.sort_by_key(VarRelation::len);
    let mut acc = remaining.remove(0);
    while !remaining.is_empty() {
        // Prefer a relation sharing variables with the accumulator.
        let pos = remaining
            .iter()
            .position(|r| !r.var_set().intersect(acc.var_set()).is_empty())
            .unwrap_or(0);
        let next = remaining.remove(pos);
        acc = acc.natural_join(&next);
        let needed: VarSet = remaining.iter().fold(free, |acc_set, r| acc_set.union(r.var_set()));
        acc = acc.project_to_set(acc.var_set().intersect(needed));
    }
    let order: Vec<Var> = free.to_vec();
    acc.project_onto(&order)
}

/// A degree-partitioning instruction extracted from a proof sequence's
/// decomposition step: partition `relation` by the degree of `value_vars`
/// given `group_vars`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PartitionSpec {
    /// The guard relation to partition.
    pub relation: String,
    /// The conditioning variables `X` of the decomposition `h(XY) → h(X) + h(Y|X)`.
    pub group_vars: Vec<Var>,
    /// The subject variables `Y`.
    pub value_vars: Vec<Var>,
}

/// The adaptive, multi-tree-decomposition evaluator (Sections 5 and 8).
#[derive(Debug, Clone)]
pub struct PandaEvaluator {
    /// The tree decompositions available to the plan (`TD(Q)`).
    pub tds: Vec<TreeDecomposition>,
    /// The degree partitions derived from the proof sequences.
    pub partitions: Vec<PartitionSpec>,
    /// Upper bound on the number of branches evaluated (cross product of
    /// degree buckets); prevents pathological blow-up when many partitions
    /// are requested.
    pub max_branches: usize,
}

impl PandaEvaluator {
    /// Plans the adaptive evaluation of `query` under `stats`: enumerates
    /// `TD(Q)`, computes the submodular-width LPs for every bag selector,
    /// converts their dual Shannon flows into proof sequences, and collects
    /// one [`PartitionSpec`] per decomposition step that applies to an
    /// input guard.
    ///
    /// In addition to the proof-sequence partitions, every binary atom is
    /// partitioned on both of its conditional degrees.  This is the
    /// branch-local analogue of Marx's *uniformisation* step: PANDA proper
    /// partitions intermediate relations recursively as the proof sequence
    /// unfolds; our branch-then-recost executor instead makes every branch
    /// degree-uniform up to a factor of two, after which the per-branch
    /// cheapest tree decomposition is within the submodular-width cost.
    pub fn plan(
        query: &ConjunctiveQuery,
        stats: &StatisticsSet,
    ) -> Result<Self, panda_entropy::BoundError> {
        let tds = TreeDecomposition::enumerate(query);
        let report = panda_entropy::subw_with_tds(query, &tds, stats)?;
        let fhtw_report = panda_entropy::fhtw_with_tds(query, &tds, stats)?;
        Ok(Self::from_reports(query, &report, &fhtw_report))
    }

    /// [`PandaEvaluator::plan`] under an LP pivot budget shared across the
    /// `fhtw` and `subw` chains; fails with
    /// [`BoundError::PivotBudgetExhausted`](panda_entropy::BoundError::PivotBudgetExhausted)
    /// when the budget runs out mid-planning.  A plan that completes within
    /// budget is identical to the unbudgeted one.
    pub fn plan_budgeted(
        query: &ConjunctiveQuery,
        stats: &StatisticsSet,
        budget: &mut PivotBudget,
    ) -> Result<Self, panda_entropy::BoundError> {
        let tds = TreeDecomposition::enumerate(query);
        let fhtw_report = panda_entropy::fhtw_with_tds_budgeted(query, &tds, stats, budget)?;
        let report = panda_entropy::subw_with_tds_budgeted(query, &tds, stats, budget)?;
        Ok(Self::from_reports(query, &report, &fhtw_report))
    }

    /// Builds the adaptive evaluator from already-computed width reports —
    /// the partition-derivation core shared by [`PandaEvaluator::plan`] and
    /// the strategy selector (which has the reports in hand and must not
    /// pay for the LPs twice).  Deterministic: the output depends only on
    /// the reports and the query.
    #[must_use]
    pub fn from_reports(
        query: &ConjunctiveQuery,
        report: &SubwReport,
        fhtw_report: &FhtwReport,
    ) -> Self {
        let mut partitions: BTreeSet<PartitionSpec> = BTreeSet::new();
        for sel in &report.per_selector {
            let Ok(integral) = sel.report.flow.to_integral() else { continue };
            let identity = TermIdentity::from_flow(&integral);
            let Ok(sequence) = ProofSequence::derive(&identity) else { continue };
            for step in &sequence.steps {
                let ProofStep::Decomposition { joint, cond } = step else { continue };
                // Find an input statistic guarding exactly this joint set so
                // we know which relation to partition.
                let guard = integral.sources.iter().find_map(|(term, _, stat)| {
                    if term.is_unconditional() && term.subj == *joint {
                        stat.guard.clone()
                    } else {
                        None
                    }
                });
                if let Some(relation) = guard {
                    partitions.insert(PartitionSpec {
                        relation,
                        group_vars: cond.to_vec(),
                        value_vars: joint.difference(*cond).to_vec(),
                    });
                }
            }
        }
        // Uniformisation: partition every binary atom on both directions.
        // Only meaningful when the query is genuinely adaptive (subw < fhtw);
        // otherwise a single decomposition already matches the width.
        if report.value < fhtw_report.value {
            for atom in query.atoms() {
                if atom.arity() != 2 || atom.vars[0] == atom.vars[1] {
                    continue;
                }
                for (group, value) in [(atom.vars[0], atom.vars[1]), (atom.vars[1], atom.vars[0])] {
                    partitions.insert(PartitionSpec {
                        relation: atom.relation.clone(),
                        group_vars: vec![group],
                        value_vars: vec![value],
                    });
                }
            }
        }
        PandaEvaluator {
            tds: report.tds.clone(),
            partitions: partitions.into_iter().collect(),
            max_branches: 4096,
        }
    }

    /// Evaluates the query adaptively: the partitioned relations are split
    /// into power-of-two degree buckets, every bucket combination forms a
    /// branch, each branch is costed from its own measured statistics, and
    /// the cheapest tree decomposition evaluates it.  The union of the
    /// branch outputs is the answer.  Uses the engine selected by
    /// `PANDA_THREADS` ([`Engine::from_env`], sequential by default).
    #[must_use]
    pub fn evaluate(&self, query: &ConjunctiveQuery, db: &Database) -> VarRelation {
        self.evaluate_with_engine(query, db, Engine::from_env())
    }

    /// [`PandaEvaluator::evaluate`] under an explicit [`Engine`]: the
    /// degree branches (the heavy/light case splits of Section 8.2) are
    /// independent, so a parallel engine evaluates them on the thread pool
    /// and merges the branch outputs **in branch order** before the final
    /// deduplication — bit-identical to sequential evaluation at any
    /// thread count.  Planning (`build_branches`, the per-branch TD
    /// choice's inputs) is deterministic and engine-independent.
    #[must_use]
    pub fn evaluate_with_engine(
        &self,
        query: &ConjunctiveQuery,
        db: &Database,
        engine: Engine,
    ) -> VarRelation {
        let branches = self.build_branches(query, db);
        let order: Vec<Var> = query.free_vars().to_vec();
        let across_branches = engine.is_parallel() && branches.len() > 1;
        // Branch workers own the coarse-grained parallelism; with a single
        // branch the engine is spent inside the bag joins instead.
        let inner_engine = if across_branches { Engine::Sequential } else { engine };
        // Bags whose atoms touch no partitioned relation are identical in
        // every branch: materialise each once, serve later scans zero-copy.
        let registry = SubplanRegistry::new();
        let evaluate_branch = |branch_db: &Database| -> Relation {
            let td = self.choose_td_for(query, branch_db);
            let plan = StaticTdPlan::new(td);
            let out =
                plan.evaluate_with_engine_shared(query, branch_db, inner_engine, Some(&registry));
            out.project_onto(&order).rel
        };
        let outputs: Vec<Relation> = if across_branches {
            engine.install(|| {
                use rayon::prelude::*;
                branches.par_iter().map(evaluate_branch).collect()
            })
        } else {
            branches.iter().map(evaluate_branch).collect()
        };
        let mut result = empty_result(query.free_vars());
        for out in &outputs {
            result.rel.extend_from(out);
        }
        result.rel.dedup();
        result
    }

    /// Simulates, deterministically at plan time, which bag subplans the
    /// branches will share: replays the per-branch decomposition choice and
    /// atom-to-bag assignment of [`PandaEvaluator::evaluate_with_engine`]
    /// over the given `branches`, computes each bag's
    /// [`SubplanKey`](crate::materialize), and reports every key scanned by
    /// two or more branches as a [`MaterializedSubplan`] (first-seen order).
    ///
    /// Plan-derived and engine-independent — safe to surface in a
    /// [`PlanReport`](crate::PlanReport), unlike the registry's runtime
    /// hit/miss counters whose split can vary with thread interleaving.
    #[must_use]
    pub fn materialization_plan(
        &self,
        query: &ConjunctiveQuery,
        branches: &[Database],
    ) -> Vec<MaterializedSubplan> {
        let mut counts: BTreeMap<SubplanKey, (VarSet, Vec<String>, usize)> = BTreeMap::new();
        let mut order: Vec<SubplanKey> = Vec::new();
        for branch_db in branches {
            let td = self.choose_td_for(query, branch_db);
            let plan = StaticTdPlan::new(td);
            for (bag_idx, atom_ids) in plan.assign_atoms(query).iter().enumerate() {
                if atom_ids.is_empty() {
                    continue;
                }
                let atoms: Vec<&Atom> = atom_ids.iter().map(|&i| &query.atoms()[i]).collect();
                let covered = atoms.iter().fold(VarSet::EMPTY, |acc, a| acc.union(a.var_set()));
                let bag_vars = plan.td.bags()[bag_idx].intersect(covered);
                let key = subplan_key(bag_vars, &atoms, branch_db);
                match counts.get_mut(&key) {
                    Some(entry) => entry.2 += 1,
                    None => {
                        let mut relations: Vec<String> =
                            atoms.iter().map(|a| a.relation.clone()).collect();
                        relations.sort();
                        counts.insert(key.clone(), (bag_vars, relations, 1));
                        order.push(key);
                    }
                }
            }
        }
        order
            .into_iter()
            .filter_map(|key| {
                let (bag, relations, num_scans) = counts.remove(&key)?;
                (num_scans >= 2).then_some(MaterializedSubplan { bag, relations, num_scans })
            })
            .collect()
    }

    /// Splits the database into branch databases according to the partition
    /// specs (cross product of per-relation degree buckets, capped at
    /// [`PandaEvaluator::max_branches`]).
    #[must_use]
    pub fn build_branches(&self, query: &ConjunctiveQuery, db: &Database) -> Vec<Database> {
        let mut branches = vec![db.clone()];
        for spec in &self.partitions {
            // Map the spec's variables to column indices via the first atom
            // over this relation.
            let Some(atom) = query.atoms().iter().find(|a| a.relation == spec.relation) else {
                continue;
            };
            let group_cols: Vec<usize> =
                spec.group_vars.iter().filter_map(|v| atom.position_of(*v)).collect();
            let value_cols: Vec<usize> =
                spec.value_vars.iter().filter_map(|v| atom.position_of(*v)).collect();
            if group_cols.len() != spec.group_vars.len()
                || value_cols.len() != spec.value_vars.len()
            {
                continue;
            }
            let mut next = Vec::new();
            for branch in &branches {
                let Some(rel) = branch.relation(&spec.relation) else {
                    next.push(branch.clone());
                    continue;
                };
                let buckets = rstats::bucket_by_degree(rel, &group_cols, &value_cols);
                if buckets.len() <= 1 || branches.len() * buckets.len() > self.max_branches {
                    next.push(branch.clone());
                    continue;
                }
                for bucket in buckets {
                    let mut b = branch.clone();
                    b.insert(spec.relation.clone(), bucket.relation);
                    next.push(b);
                }
            }
            branches = next;
        }
        branches
    }

    /// Chooses the cheapest tree decomposition for one branch.  The cost of
    /// a TD is its largest bag-materialisation cost *as the static plan
    /// will actually execute it* — the (exact, for two-atom bags) size of
    /// the join of the atoms assigned to the bag — because an estimate that
    /// assumes a cheaper construction the executor does not use would pick
    /// plans it cannot deliver.
    #[must_use]
    pub fn choose_td_for(&self, query: &ConjunctiveQuery, db: &Database) -> TreeDecomposition {
        let mut best: Option<(f64, &TreeDecomposition)> = None;
        for td in &self.tds {
            let mut cost: f64 = 0.0;
            for &bag in td.bags() {
                let contained: Vec<&Atom> =
                    query.atoms().iter().filter(|a| a.var_set().is_subset_of(bag)).collect();
                let bag_cost = if contained.is_empty() {
                    estimate_bag_size(query.atoms(), db, bag)
                } else {
                    chain_join_estimate(&contained, db)
                };
                cost = cost.max(bag_cost);
            }
            match best {
                Some((c, _)) if c <= cost => {}
                _ => best = Some((cost, td)),
            }
        }
        best.map(|(_, td)| td.clone())
            .unwrap_or_else(|| TreeDecomposition::new(vec![query.all_vars()]))
    }
}

/// Estimates the number of tuples needed to cover a bag, as the minimum of
/// (i) a degree-aware chain bound on the join of the atoms contained in the
/// bag (the "join construction") and (ii) a greedy cover of the bag by
/// per-atom projections (the "product construction") — the two candidate
/// constructions used by the DDR evaluator and the branch cost model of the
/// adaptive plan.
#[must_use]
pub fn estimate_bag_size(atoms: &[Atom], db: &Database, bag: VarSet) -> f64 {
    let contained: Vec<&Atom> = atoms.iter().filter(|a| a.var_set().is_subset_of(bag)).collect();
    let covered = contained.iter().fold(VarSet::EMPTY, |acc, a| acc.union(a.var_set()));
    let join_estimate =
        if covered == bag { chain_join_estimate(&contained, db) } else { f64::INFINITY };
    let projection_estimate = match greedy_projection_cover(atoms, db, bag) {
        Some(cover) => cover.iter().map(|(_, _, distinct)| *distinct as f64).product(),
        None => f64::INFINITY,
    };
    join_estimate.min(projection_estimate)
}

/// A degree-aware upper bound on the size of the natural join of `atoms`:
/// start from the smallest relation and repeatedly extend by the relation
/// whose *maximum degree* of its new variables given the shared variables
/// is smallest (this is what makes functional dependencies and light degree
/// buckets pay off, e.g. `|S ⋈ R_light| ≤ |S| · deg_R(X|Y)`).
#[must_use]
pub fn chain_join_estimate(atoms: &[&Atom], db: &Database) -> f64 {
    if atoms.is_empty() {
        return 1.0;
    }
    if atoms.len() == 2 {
        // Two-atom bags (the common case for the paper's queries) admit an
        // *exact* join-size computation in linear time, which is what makes
        // the per-branch tree-decomposition choice reliable on skewed data.
        return exact_pairwise_join_size(atoms[0], atoms[1], db);
    }
    let size_of = |atom: &Atom| -> f64 {
        db.relation(&atom.relation).map_or(0, Relation::distinct_count).max(1) as f64
    };
    let mut remaining: Vec<&Atom> = atoms.to_vec();
    remaining.sort_by(|a, b| size_of(a).total_cmp(&size_of(b)));
    let first = remaining.remove(0);
    let mut bound = size_of(first);
    let mut covered = first.var_set();
    while !remaining.is_empty() {
        // Among atoms sharing variables with what is already covered, pick
        // the one with the smallest extension degree.
        let mut best: Option<(usize, f64)> = None;
        for (idx, atom) in remaining.iter().enumerate() {
            let shared = atom.var_set().intersect(covered);
            if shared.is_empty() {
                continue;
            }
            let new_vars = atom.var_set().difference(covered);
            let degree = if new_vars.is_empty() {
                1.0
            } else {
                match db.relation(&atom.relation) {
                    Some(rel) => {
                        let shared_cols: Vec<usize> = atom
                            .vars
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| shared.contains(**v))
                            .map(|(i, _)| i)
                            .collect();
                        let new_cols: Vec<usize> = atom
                            .vars
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| new_vars.contains(**v))
                            .map(|(i, _)| i)
                            .collect();
                        rstats::max_degree(rel, &shared_cols, &new_cols).max(1) as f64
                    }
                    None => 1.0,
                }
            };
            match best {
                Some((_, d)) if d <= degree => {}
                _ => best = Some((idx, degree)),
            }
        }
        match best {
            Some((idx, degree)) => {
                let atom = remaining.remove(idx);
                bound *= degree;
                covered = covered.union(atom.var_set());
            }
            None => {
                // Disconnected component: multiply by the smallest remaining
                // relation and continue from there.
                remaining.sort_by(|a, b| size_of(a).total_cmp(&size_of(b)));
                let atom = remaining.remove(0);
                bound *= size_of(atom);
                covered = covered.union(atom.var_set());
            }
        }
    }
    bound
}

/// The exact size of the natural join of two atoms: probe the first
/// relation's (cached) hash index on the shared variables with every row of
/// the second relation and sum the matching group sizes (`Σ_k |A_k| ·
/// |B_k|`), all in linear time.  The per-branch TD choice calls this for
/// every bag of every candidate decomposition, so serving the group counts
/// from the relation's shared index cache is what keeps adaptive planning
/// cheap across branches.
fn exact_pairwise_join_size(a: &Atom, b: &Atom, db: &Database) -> f64 {
    let (Some(ra), Some(rb)) = (db.relation(&a.relation), db.relation(&b.relation)) else {
        return 0.0;
    };
    let shared: Vec<Var> = a.vars.iter().copied().filter(|v| b.vars.contains(v)).collect();
    // `position_of` returns first positions of distinct variables, so the
    // canonicalised column pairs have distinct `a`-columns as the cache
    // requires.
    let mut pairs: Vec<(usize, usize)> = shared
        .iter()
        .map(|v| (a.position_of(*v).expect("shared"), b.position_of(*v).expect("shared")))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let cols_a: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let cols_b: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let idx = ra.index_for(&cols_a);
    let mut total: f64 = 0.0;
    let mut key: Vec<u64> = Vec::with_capacity(cols_b.len());
    for row in rb.iter() {
        key.clear();
        key.extend(cols_b.iter().map(|&c| row[c]));
        total += idx.probe(&key).len() as f64;
    }
    total.max(1.0)
}

/// Greedily covers `bag` by projections of atoms: returns, per step, the
/// atom index, the covered overlap, and the distinct count of that
/// projection; `None` if some variable of `bag` occurs in no atom.  The
/// greedy criterion minimises the per-variable geometric mean
/// `distinct^(1/|overlap|)`, which routes e.g. a single heavy value of `Y`
/// through the tiny projection `π_Y(S_heavy)` rather than through a large
/// two-column projection.
#[must_use]
pub fn greedy_projection_cover(
    atoms: &[Atom],
    db: &Database,
    bag: VarSet,
) -> Option<Vec<(usize, VarSet, usize)>> {
    let mut remaining = bag;
    let mut cover = Vec::new();
    while !remaining.is_empty() {
        let mut best: Option<(f64, usize, VarSet, usize)> = None; // (geo-mean, atom, overlap, distinct)
        for (idx, atom) in atoms.iter().enumerate() {
            let overlap = atom.var_set().intersect(remaining);
            if overlap.is_empty() {
                continue;
            }
            let distinct = match db.relation(&atom.relation) {
                Some(rel) => {
                    let cols: Vec<usize> = atom
                        .vars
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| overlap.contains(**v))
                        .map(|(i, _)| i)
                        .collect();
                    rstats::distinct_count(rel, &cols).max(1)
                }
                None => 1,
            };
            let geo_mean = (distinct as f64).powf(1.0 / overlap.len() as f64);
            match &best {
                Some((g, _, _, _)) if *g <= geo_mean => {}
                _ => best = Some((geo_mean, idx, overlap, distinct)),
            }
        }
        match best {
            Some((_, idx, overlap, distinct)) => {
                cover.push((idx, overlap, distinct));
                remaining = remaining.difference(overlap);
            }
            None => return None,
        }
    }
    Some(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::parse_query;
    use panda_relation::Relation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn four_cycle() -> ConjunctiveQuery {
        parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap()
    }

    /// The paper's fhtw-hard instance (Section 5.1):
    /// `R = S = T = U = ([n/2] × [1]) ∪ ([1] × [n/2])` — the "double star".
    fn double_star_db(half: u64) -> Database {
        let mut rel = Relation::new(2);
        for i in 0..half {
            rel.push_row(&[i + 2, 1]);
            rel.push_row(&[1, i + 2]);
        }
        let rel = rel.deduped();
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            db.insert(name, rel.clone());
        }
        db
    }

    fn random_graph_db(n: u64, edges: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let rel =
            Relation::from_rows(2, (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]))
                .deduped();
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            db.insert(name, rel.clone());
        }
        db
    }

    #[test]
    fn static_plan_matches_generic_join_on_the_four_cycle() {
        let q = four_cycle();
        let db = random_graph_db(12, 80, 5);
        let stats = StatisticsSet::measure(&q, &db);
        let plan = StaticTdPlan::best_for(&q, &stats).unwrap();
        let expected = GenericJoin::evaluate(&q, &db);
        let got = plan.evaluate(&q, &db);
        let order: Vec<Var> = q.free_vars().to_vec();
        assert_eq!(got.canonical_rows_ordered(&order), expected.canonical_rows_ordered(&order));
    }

    #[test]
    fn static_plan_handles_empty_relations() {
        let q = four_cycle();
        let mut db = random_graph_db(8, 30, 1);
        db.insert("T", Relation::new(2));
        let plan = StaticTdPlan::new(TreeDecomposition::enumerate(&q)[0].clone());
        assert!(plan.evaluate(&q, &db).is_empty());
    }

    #[test]
    fn adaptive_plan_partitions_on_a_proof_sequence_degree() {
        let q = four_cycle();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 12);
        let evaluator = PandaEvaluator::plan(&q, &stats).unwrap();
        assert_eq!(evaluator.tds.len(), 2);
        assert!(
            !evaluator.partitions.is_empty(),
            "the 4-cycle proof sequences must yield at least one degree partition"
        );
        for spec in &evaluator.partitions {
            assert_eq!(spec.group_vars.len(), 1);
            assert_eq!(spec.value_vars.len(), 1);
        }
    }

    #[test]
    fn adaptive_plan_is_correct_on_random_and_adversarial_inputs() {
        let q = four_cycle();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 12);
        let evaluator = PandaEvaluator::plan(&q, &stats).unwrap();
        let order: Vec<Var> = q.free_vars().to_vec();
        for db in [random_graph_db(10, 60, 9), double_star_db(24)] {
            let expected = GenericJoin::evaluate(&q, &db);
            let got = evaluator.evaluate(&q, &db);
            assert_eq!(got.canonical_rows_ordered(&order), expected.canonical_rows_ordered(&order));
        }
    }

    #[test]
    fn adaptive_branches_partition_the_guard_relation() {
        let q = four_cycle();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 12);
        let evaluator = PandaEvaluator::plan(&q, &stats).unwrap();
        let db = double_star_db(16);
        let branches = evaluator.build_branches(&q, &db);
        assert!(branches.len() >= 2, "the double-star instance has mixed degrees");
        // Restricting to a single partition spec, the branch copies of the
        // partitioned relation are disjoint buckets covering the original.
        let mut single = evaluator.clone();
        single.partitions.truncate(1);
        let spec = &single.partitions[0];
        let original = db.relation(&spec.relation).unwrap();
        let single_branches = single.build_branches(&q, &db);
        let total: usize =
            single_branches.iter().map(|b| b.relation(&spec.relation).unwrap().len()).sum();
        assert_eq!(total, original.len());
    }

    #[test]
    fn branch_td_choice_differs_between_light_and_heavy_parts() {
        // On the double-star instance, the branch where S is restricted to
        // its low-degree part should prefer a different TD than the branch
        // with the high-degree part — the essence of adaptivity.
        let q = four_cycle();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 12);
        let evaluator = PandaEvaluator::plan(&q, &stats).unwrap();
        let db = double_star_db(64);
        let branches = evaluator.build_branches(&q, &db);
        let chosen: BTreeSet<Vec<VarSet>> =
            branches.iter().map(|b| evaluator.choose_td_for(&q, b).bags().to_vec()).collect();
        assert!(
            chosen.len() >= 2,
            "expected at least two distinct TDs to be chosen across branches, got {chosen:?}"
        );
    }

    #[test]
    fn estimate_bag_size_uses_the_cheaper_construction() {
        let q = four_cycle();
        let db = double_star_db(32);
        // Bag {X,Y,Z} covered by R ⋈ S: product estimate 65·65; projection
        // estimate |π_X R|·|π_Y R|·… — the function returns the cheaper one
        // and never infinity for coverable bags.
        let est = estimate_bag_size(q.atoms(), &db, VarSet::from_iter([Var(0), Var(1), Var(2)]));
        assert!(est.is_finite());
        assert!(est >= 1.0);
        let q2 = parse_query("Q(X,Y) :- R(X,Y)").unwrap();
        let mut db2 = Database::new();
        db2.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        let small = estimate_bag_size(q2.atoms(), &db2, VarSet::from_iter([Var(0), Var(1)]));
        assert!(small.is_finite());
        // A cover also exists for a single-variable bag.
        let cover = greedy_projection_cover(q2.atoms(), &db2, VarSet::singleton(Var(1))).unwrap();
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn sequential_join_fallback_is_correct() {
        let a =
            VarRelation::new(vec![Var(0), Var(1)], Relation::from_rows(2, vec![[1, 2], [3, 4]]));
        let b =
            VarRelation::new(vec![Var(1), Var(2)], Relation::from_rows(2, vec![[2, 5], [4, 6]]));
        let c = VarRelation::new(vec![Var(2), Var(0)], Relation::from_rows(2, vec![[5, 1]]));
        let out = sequential_join(&[a, b, c], VarSet::from_iter([Var(0), Var(2)]));
        assert_eq!(out.rel.canonical_rows(), vec![vec![1, 5]]);
    }
}
