//! Evaluation of disjunctive datalog rules (Section 8.2).
//!
//! A DDR `⋁_B Q_B(B) :- body` asks for relations `Q_B` such that every
//! tuple satisfying the body is covered by at least one disjunct.  PANDA
//! evaluates it within its polymatroid bound by partitioning the data on
//! the degrees named by the proof sequence of the bound's Shannon-flow
//! certificate: within each (near-uniform-degree) branch, *one* target is
//! cheap to cover, and different branches pick different targets — the
//! heavy/light behaviour of the paper's running example, where light
//! `Y`-values of `S` are routed to `A'_11(X,Y,Z)` by a join with `R` and
//! heavy `Y`-values are routed to `A'_21(Y,Z,W)` by a Cartesian product
//! with `T`.
//!
//! Each branch covers its chosen target with the cheaper of two
//! constructions:
//!
//! 1. a worst-case-optimal join of the body atoms contained in the target
//!    (the "light" construction), or
//! 2. a join of projections of body atoms that greedily cover the target
//!    (the "heavy" construction — for the 4-cycle this degenerates to
//!    `π_Y(S_heavy) × T`).
//!
//! Both constructions produce supersets of `π_B(⋈ body)`, so the union over
//! branches is always a valid model; the choice per branch is what keeps
//! the model small.

// panda-lint: allow-file(P1) -- head/bag indices are positions into the
// DDR rule's own disjunct list, and cover expects are guarded by the
// finite-cost check directly above them.

use std::collections::BTreeSet;

use panda_entropy::{ddr_polymatroid_bound, BoundError, StatisticsSet};
use panda_proof::{ProofSequence, ProofStep, TermIdentity};
use panda_query::{Atom, DisjunctiveRule, Var, VarSet};
use panda_relation::{stats as rstats, Database, Relation};

use crate::binding::VarRelation;
use crate::config::Engine;
use crate::generic_join::GenericJoin;
use crate::materialize::{subplan_key, SubplanRegistry};
use crate::plans::{
    chain_join_estimate, estimate_bag_size, greedy_projection_cover, PartitionSpec,
};

/// A model of a DDR: one relation per head disjunct (possibly empty), such
/// that every body-satisfying tuple is covered by at least one of them.
#[derive(Debug, Clone)]
pub struct DdrModel {
    /// `(target schema, relation)` pairs, one per head disjunct.
    pub targets: Vec<(VarSet, VarRelation)>,
}

impl DdrModel {
    /// The size of the largest target relation — the quantity bounded by
    /// Theorem 5.1 / Eq. (35).
    #[must_use]
    pub fn max_target_size(&self) -> usize {
        self.targets.iter().map(|(_, r)| r.len()).max().unwrap_or(0)
    }

    /// The total number of tuples across all targets.
    #[must_use]
    pub fn total_size(&self) -> usize {
        self.targets.iter().map(|(_, r)| r.len()).sum()
    }

    /// Checks model validity against the rule and database by brute force:
    /// every tuple of the full body join must project into some target.
    /// Intended for tests (it computes the full join).
    #[must_use]
    pub fn is_valid_model(&self, rule: &DisjunctiveRule, db: &Database) -> bool {
        let body_vars = rule.body_vars();
        let inputs: Vec<VarRelation> =
            rule.body().iter().map(|a| VarRelation::from_atom(a, db)).collect();
        let full = GenericJoin::new(body_vars).join(&inputs, &body_vars.to_vec());
        let order = body_vars.to_vec();
        for row in full.rel.iter() {
            let assignment: Vec<(Var, u64)> =
                order.iter().copied().zip(row.iter().copied()).collect();
            let covered = self.targets.iter().any(|(schema, target)| {
                if target.is_empty() {
                    return false;
                }
                let projected: Vec<u64> = target
                    .vars
                    .iter()
                    .map(|v| {
                        assignment
                            .iter()
                            .find(|(w, _)| w == v)
                            .map(|(_, val)| *val)
                            .expect("target schema is a subset of the body variables")
                    })
                    .collect();
                let _ = schema;
                target.rel.contains(&projected)
            });
            if !covered {
                return false;
            }
        }
        true
    }
}

/// The PANDA-style evaluator for one disjunctive datalog rule.
#[derive(Debug, Clone)]
pub struct DdrEvaluator {
    /// The rule being evaluated.
    pub rule: DisjunctiveRule,
    /// Degree partitions extracted from the Shannon-flow proof sequence.
    pub partitions: Vec<PartitionSpec>,
    /// The rule's polymatroid bound in log scale (from the planning stats).
    pub log_bound: panda_rational::Rat,
    /// Cap on the number of branches.
    pub max_branches: usize,
}

impl DdrEvaluator {
    /// Plans the evaluation of a DDR under the given statistics: solves the
    /// DDR's polymatroid-bound LP, extracts the Shannon flow, derives its
    /// proof sequence, and records one degree partition per decomposition
    /// step that applies to an input guard.
    pub fn plan(rule: &DisjunctiveRule, stats: &StatisticsSet) -> Result<Self, BoundError> {
        let universe = rule.body_vars();
        let report = ddr_polymatroid_bound(rule.head(), universe, stats)?;
        Ok(Self::from_bound(rule, &report))
    }

    /// [`DdrEvaluator::plan`] under an LP pivot budget: the bound's LP
    /// charges every simplex pivot against `budget` and fails with
    /// [`BoundError::PivotBudgetExhausted`] when it runs out.  A plan that
    /// completes within budget is identical to the unbudgeted one.
    pub fn plan_budgeted(
        rule: &DisjunctiveRule,
        stats: &StatisticsSet,
        budget: &mut panda_entropy::PivotBudget,
    ) -> Result<Self, BoundError> {
        let universe = rule.body_vars();
        let report =
            panda_entropy::ddr_polymatroid_bound_budgeted(rule.head(), universe, stats, budget)?;
        Ok(Self::from_bound(rule, &report))
    }

    /// The partition-derivation core shared by [`DdrEvaluator::plan`] and
    /// [`DdrEvaluator::plan_budgeted`]: extracts the Shannon flow's proof
    /// sequence and records one degree partition per decomposition step
    /// that applies to an input guard.
    fn from_bound(rule: &DisjunctiveRule, report: &panda_entropy::BoundReport) -> Self {
        let mut partitions: BTreeSet<PartitionSpec> = BTreeSet::new();
        if let Ok(integral) = report.flow.to_integral() {
            let identity = TermIdentity::from_flow(&integral);
            if let Ok(sequence) = ProofSequence::derive(&identity) {
                for step in &sequence.steps {
                    let ProofStep::Decomposition { joint, cond } = step else { continue };
                    let guard = integral.sources.iter().find_map(|(term, _, stat)| {
                        if term.is_unconditional() && term.subj == *joint {
                            stat.guard.clone()
                        } else {
                            None
                        }
                    });
                    if let Some(relation) = guard {
                        partitions.insert(PartitionSpec {
                            relation,
                            group_vars: cond.to_vec(),
                            value_vars: joint.difference(*cond).to_vec(),
                        });
                    }
                }
            }
        }
        DdrEvaluator {
            rule: rule.clone(),
            partitions: partitions.into_iter().collect(),
            log_bound: report.log_bound,
            max_branches: 4096,
        }
    }

    /// Evaluates the rule on a database instance, producing a model.  Uses
    /// the engine selected by `PANDA_THREADS` ([`Engine::from_env`],
    /// sequential by default).
    #[must_use]
    pub fn evaluate(&self, db: &Database) -> DdrModel {
        self.evaluate_with_engine(db, Engine::from_env())
    }

    /// [`DdrEvaluator::evaluate`] under an explicit [`Engine`]: the degree
    /// branches are independent (each picks its cheapest target and covers
    /// it), so a parallel engine evaluates them on the thread pool; branch
    /// contributions are merged into the targets **in branch order**
    /// before the final per-target deduplication, making the model
    /// bit-identical to sequential evaluation at any thread count.
    #[must_use]
    pub fn evaluate_with_engine(&self, db: &Database, engine: Engine) -> DdrModel {
        let mut targets: Vec<(VarSet, VarRelation)> = self
            .rule
            .head()
            .iter()
            .map(|&b| {
                let vars = b.to_vec();
                let arity = vars.len();
                (b, VarRelation::new(vars, Relation::new(arity)))
            })
            .collect();

        let branches = self.build_branches(db);
        let across_branches = engine.is_parallel() && branches.len() > 1;
        // Branch workers own the coarse-grained parallelism; with a single
        // branch the engine is spent inside the bag materialisation
        // instead.
        let inner_engine = if across_branches { Engine::Sequential } else { engine };
        // Disjuncts whose body atoms touch no partitioned relation cover
        // the identical subjoin in every branch that picks them: compute
        // each once, serve later scans zero-copy (see `crate::materialize`).
        let registry = SubplanRegistry::new();
        let evaluate_branch = |branch_db: &Database| -> (usize, VarRelation) {
            // Choose the cheapest target for this branch.
            let (best_idx, _) = self
                .rule
                .head()
                .iter()
                .enumerate()
                .map(|(i, &b)| (i, estimate_bag_size(self.rule.body(), branch_db, b)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("a DDR has at least one head disjunct");
            let bag = self.rule.head()[best_idx];
            let atoms: Vec<&Atom> = self.rule.body().iter().collect();
            let rel = registry.get_or_materialize(subplan_key(bag, &atoms, branch_db), || {
                materialize_bag_with_engine(self.rule.body(), branch_db, bag, inner_engine)
            });
            (best_idx, rel)
        };
        let covered: Vec<(usize, VarRelation)> = if across_branches {
            engine.install(|| {
                use rayon::prelude::*;
                branches.par_iter().map(evaluate_branch).collect()
            })
        } else {
            branches.iter().map(evaluate_branch).collect()
        };
        for (best_idx, rel) in covered {
            let order = targets[best_idx].1.vars.clone();
            targets[best_idx].1.rel.extend_from(&rel.project_onto(&order).rel);
        }
        for (_, rel) in &mut targets {
            rel.rel.dedup();
        }
        DdrModel { targets }
    }

    /// Splits the database into branches according to the partition specs.
    #[must_use]
    pub fn build_branches(&self, db: &Database) -> Vec<Database> {
        let mut branches = vec![db.clone()];
        for spec in &self.partitions {
            let Some(atom) = self.rule.body().iter().find(|a| a.relation == spec.relation) else {
                continue;
            };
            let group_cols: Vec<usize> =
                spec.group_vars.iter().filter_map(|v| atom.position_of(*v)).collect();
            let value_cols: Vec<usize> =
                spec.value_vars.iter().filter_map(|v| atom.position_of(*v)).collect();
            if group_cols.len() != spec.group_vars.len()
                || value_cols.len() != spec.value_vars.len()
            {
                continue;
            }
            let mut next = Vec::new();
            for branch in &branches {
                let Some(rel) = branch.relation(&spec.relation) else {
                    next.push(branch.clone());
                    continue;
                };
                let buckets = rstats::bucket_by_degree(rel, &group_cols, &value_cols);
                if buckets.len() <= 1 || branches.len() * buckets.len() > self.max_branches {
                    next.push(branch.clone());
                    continue;
                }
                for bucket in buckets {
                    let mut b = branch.clone();
                    b.insert(spec.relation.clone(), bucket.relation);
                    next.push(b);
                }
            }
            branches = next;
        }
        branches
    }
}

/// Materialises a superset of `π_bag(⋈ atoms)` using the cheaper of the two
/// constructions described in the module documentation.  Uses the engine
/// selected by `PANDA_THREADS` ([`Engine::from_env`], sequential by
/// default).
#[must_use]
pub fn materialize_bag(atoms: &[Atom], db: &Database, bag: VarSet) -> VarRelation {
    materialize_bag_with_engine(atoms, db, bag, Engine::from_env())
}

/// [`materialize_bag`] under an explicit [`Engine`] (applied to the
/// worst-case-optimal join of construction (i)).
#[must_use]
pub fn materialize_bag_with_engine(
    atoms: &[Atom],
    db: &Database,
    bag: VarSet,
    engine: Engine,
) -> VarRelation {
    // Cost of construction (i): degree-aware chain bound on the join of the
    // atoms contained in the bag, provided they cover it.
    let contained: Vec<&Atom> = atoms.iter().filter(|a| a.var_set().is_subset_of(bag)).collect();
    let covered = contained.iter().fold(VarSet::EMPTY, |acc, a| acc.union(a.var_set()));
    let contained_cost =
        if covered == bag { chain_join_estimate(&contained, db) } else { f64::INFINITY };

    // Cost of construction (ii): greedy projection cover.
    let cover = greedy_projection_cover(atoms, db, bag);
    let cover_cost: f64 =
        cover.as_ref().map_or(f64::INFINITY, |c| c.iter().map(|(_, _, d)| *d as f64).product());

    let bag_vars: Vec<Var> = bag.to_vec();
    if contained_cost <= cover_cost {
        // (i) worst-case-optimal join of the contained atoms.
        let inputs: Vec<VarRelation> =
            contained.iter().map(|a| VarRelation::from_atom(a, db)).collect();
        let join = GenericJoin::new(bag);
        join.join_with_engine(&inputs, &bag_vars, engine)
    } else {
        // (ii) join of the covering projections (disjoint pieces are a
        // Cartesian product).
        let cover = cover.expect("finite cover cost implies a cover exists");
        let mut acc: Option<VarRelation> = None;
        for (atom_idx, overlap, _) in cover {
            let atom = &atoms[atom_idx];
            let bound = VarRelation::from_atom(atom, db);
            let piece_vars: Vec<Var> = overlap.to_vec();
            let piece = bound.project_onto(&piece_vars);
            acc = Some(match acc {
                None => piece,
                Some(prev) => prev.natural_join(&piece),
            });
        }
        let acc = acc.unwrap_or_else(|| VarRelation::boolean(true));
        acc.project_onto(&bag_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::{parse_query, BagSelector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn four_cycle_ddr() -> DisjunctiveRule {
        // Eq. (38): A11(X,Y,Z) ∨ A21(Y,Z,W) :- R(X,Y),S(Y,Z),T(Z,W),U(W,X).
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let selector = BagSelector::new(vec![vs(&[0, 1, 2]), vs(&[1, 2, 3])]);
        DisjunctiveRule::for_bag_selector(&q, &selector)
    }

    /// The paper's hard instance: a "double star" where every relation is
    /// `([n]×{1}) ∪ ({1}×[n])`.
    fn double_star_db(half: u64) -> Database {
        let mut rel = Relation::new(2);
        for i in 0..half {
            rel.push_row(&[i + 2, 1]);
            rel.push_row(&[1, i + 2]);
        }
        let rel = rel.deduped();
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            db.insert(name, rel.clone());
        }
        db
    }

    fn random_db(n: u64, edges: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            let rel = Relation::from_rows(
                2,
                (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]),
            )
            .deduped();
            db.insert(name, rel);
        }
        db
    }

    #[test]
    fn planning_the_papers_ddr_yields_the_three_halves_bound_and_a_partition() {
        let rule = four_cycle_ddr();
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let stats = StatisticsSet::identical_cardinalities(&q, 1 << 12);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        assert_eq!(evaluator.log_bound, panda_rational::Rat::new(3, 2));
        assert!(!evaluator.partitions.is_empty());
    }

    #[test]
    fn model_is_valid_and_within_the_bound_on_the_hard_instance() {
        // Eq. (61): the DDR has a model of size ≤ N^{3/2}; the double-star
        // instance is exactly the one where single-TD plans need Ω(N²).
        let rule = four_cycle_ddr();
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let db = double_star_db(64);
        let n = db.relation("R").unwrap().len() as f64;
        let stats = StatisticsSet::measure(&q, &db);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        let model = evaluator.evaluate(&db);
        assert!(model.is_valid_model(&rule, &db), "model must cover the body join");
        let bound = n.powf(1.5);
        assert!(
            (model.max_target_size() as f64) <= 4.0 * bound,
            "model size {} exceeds ~N^1.5 = {}",
            model.max_target_size(),
            bound
        );
        // A single-target model (everything routed to A11 = XYZ) would need
        // ~N²/4 tuples on this instance, so the evaluator must have used both
        // disjuncts.
        assert!(model.targets.iter().all(|(_, r)| !r.is_empty()));
    }

    #[test]
    fn model_is_valid_on_random_instances() {
        let rule = four_cycle_ddr();
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        for seed in 0..3 {
            let db = random_db(12, 70, seed);
            let stats = StatisticsSet::measure(&q, &db);
            let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
            let model = evaluator.evaluate(&db);
            assert!(model.is_valid_model(&rule, &db), "seed {seed}");
        }
    }

    #[test]
    fn conjunctive_ddr_reduces_to_a_single_target() {
        // A DDR with one disjunct is just a CQ bag materialisation.
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z)").unwrap();
        let rule =
            DisjunctiveRule::new(vec![vs(&[0, 1, 2])], q.atoms().to_vec(), q.var_names().to_vec());
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [3, 4]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 5], [4, 6], [9, 9]]));
        let stats = StatisticsSet::measure(&q, &db);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        let model = evaluator.evaluate(&db);
        assert!(model.is_valid_model(&rule, &db));
        assert_eq!(model.targets.len(), 1);
        assert_eq!(model.total_size(), model.max_target_size());
    }

    #[test]
    fn materialize_bag_uses_projection_cover_when_cheaper() {
        // Bag {Y,Z,W} with a tiny π_Y(S) and a large T: the projection cover
        // π_Y(S) × T must be chosen over joining S with T.
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let mut db = Database::new();
        // S has a single Y value with many Z's.
        let mut s = Relation::new(2);
        let mut t = Relation::new(2);
        for i in 0..50u64 {
            s.push_row(&[1, i]);
            t.push_row(&[i, i + 1000]);
        }
        db.insert("R", Relation::from_rows(2, vec![[7, 1]]));
        db.insert("S", s);
        db.insert("T", t);
        db.insert("U", Relation::from_rows(2, vec![[1000, 7]]));
        let bag = vs(&[1, 2, 3]); // {Y,Z,W}
        let out = materialize_bag(q.atoms(), &db, bag);
        // |π_Y(S)| · |T| = 1 · 50 = 50, versus |S ⋈ T| = 50 too here, but the
        // result must at least be a superset of the true projection and have
        // schema {Y,Z,W}.
        assert_eq!(out.vars.len(), 3);
        assert!(out.len() >= 50);
        // Sanity: every (y,z,w) of the true join appears.
        let inputs = VarRelation::bind_all(&q, &db);
        let full = GenericJoin::new(q.all_vars()).join(&inputs, &[Var(1), Var(2), Var(3)]);
        for row in full.rel.iter() {
            assert!(out.project_onto(&[Var(1), Var(2), Var(3)]).rel.contains(row));
        }
    }

    #[test]
    fn ddr_model_size_beats_single_target_on_the_hard_instance() {
        // Compare against the naive strategy that covers everything with the
        // first target only: on the double star that costs Θ(N²/4).
        let rule = four_cycle_ddr();
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let db = double_star_db(48);
        let stats = StatisticsSet::measure(&q, &db);
        let evaluator = DdrEvaluator::plan(&rule, &stats).unwrap();
        let model = evaluator.evaluate(&db);
        let naive = materialize_bag(q.atoms(), &db, vs(&[0, 1, 2]));
        assert!(model.max_target_size() < naive.len());
    }
}
