//! Execution-engine configuration: the sequential/parallel knob and the
//! storage-layout knob.
//!
//! Every evaluator in this crate runs **sequentially by default**
//! ([`Engine::Sequential`]); parallelism is strictly opt-in, either
//! programmatically (`Panda::new(q).with_engine(Engine::Parallel(
//! Parallelism::threads(4)))`) or through the `PANDA_THREADS` environment
//! variable ([`Engine::from_env`]), which every default-constructed
//! evaluator consults.
//!
//! Parallel execution is **deterministic**: work is split into contiguous
//! chunks whose results are merged back in input order, so the output of
//! every evaluator is bit-identical to its sequential output at any thread
//! count (the workspace's `parallel_determinism` suite pins this).  What
//! parallelism changes is wall-clock time only — never answers, plans or
//! row order.
//!
//! The same contract holds for the storage layout: [`Layout`] (re-exported
//! from `panda-relation`; `PANDA_LAYOUT=columnar` via [`Layout::from_env`])
//! switches base relations to per-column buffers and the operator layer to
//! vectorised batch kernels, with bit-identical outputs across layouts and
//! engines.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

pub use panda_relation::Layout;

/// How many worker threads parallel stages may use.
///
/// A plain positive thread count; [`Parallelism::auto`] resolves to the
/// machine's available parallelism at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// A fixed thread count; `n` is clamped up to at least 1.
    #[must_use]
    pub fn threads(n: usize) -> Self {
        Parallelism(NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN))
    }

    /// The machine's available parallelism (at least 1).
    #[must_use]
    pub fn auto() -> Self {
        Parallelism(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The thread count.
    #[must_use]
    pub fn get(self) -> usize {
        self.0.get()
    }
}

/// The execution engine used by the evaluators.
///
/// [`Engine::Sequential`] is the default; [`Engine::Parallel`] fans
/// independent work units (generic-join top-level branches, PANDA degree
/// branches, DDR branches, probe shards, selector LP chains) out over a
/// thread pool and merges the results in a fixed order, producing
/// bit-identical outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Evaluate everything on the calling thread (the default).
    #[default]
    Sequential,
    /// Evaluate independent work units on a pool of the given size.
    Parallel(Parallelism),
}

impl Engine {
    /// The engine selected by the `PANDA_THREADS` environment variable
    /// (read once per process):
    ///
    /// * unset, empty, `1`, or unparsable — [`Engine::Sequential`],
    /// * `0` or `auto` — [`Engine::Parallel`] at the machine's available
    ///   parallelism,
    /// * `n > 1` — [`Engine::Parallel`] with `n` threads.
    ///
    /// This is what every default-constructed evaluator uses, and what the
    /// CI matrix toggles to run the whole test suite under both engines.
    #[must_use]
    pub fn from_env() -> Self {
        static FROM_ENV: OnceLock<Engine> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("PANDA_THREADS") {
            Ok(value) if value.eq_ignore_ascii_case("auto") => {
                Engine::Parallel(Parallelism::auto())
            }
            Ok(value) => match value.trim().parse::<usize>() {
                Ok(0) => Engine::Parallel(Parallelism::auto()),
                Ok(1) | Err(_) => Engine::Sequential,
                Ok(n) => Engine::Parallel(Parallelism::threads(n)),
            },
            Err(_) => Engine::Sequential,
        })
    }

    /// The number of worker threads this engine may use (1 when
    /// sequential).
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            Engine::Sequential => 1,
            Engine::Parallel(p) => p.get(),
        }
    }

    /// `true` iff this engine may use more than one thread.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }

    /// Runs `op` under this engine: directly on the calling thread when
    /// sequential, inside a thread pool of [`Engine::threads`] workers when
    /// parallel (so `rayon` primitives called inside see that budget).
    pub fn install<OP, R>(self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        match self {
            Engine::Sequential => op(),
            // panda-lint: allow(P1) -- the vendored pool builder has no
            // fallible path (no spawn handler, threads >= 1): build cannot
            // return Err.
            Engine::Parallel(p) => rayon::ThreadPoolBuilder::new()
                .num_threads(p.get())
                .build()
                .expect("thread pool construction is infallible")
                .install(op),
        }
    }
}

/// Whether the cross-query plan cache is enabled, from the
/// `PANDA_PLAN_CACHE` environment variable (read once per process):
///
/// * unset, or anything other than the values below — enabled (the
///   default),
/// * `off`, `0`, or `false` (case-insensitive) — disabled: every
///   evaluation plans from scratch, exactly as if the cache had never
///   existed.
///
/// Disabling the cache never changes results: a warm-cache evaluation is
/// bit-identical to a cold one (the workspace's `plan_cache_differential`
/// suite pins this); the knob exists so CI can keep the cold path honest
/// and so operators can rule the cache out when debugging.
#[must_use]
pub fn plan_cache_enabled() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("PANDA_PLAN_CACHE") {
        Ok(value) => {
            let v = value.trim();
            !(v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") || v == "0")
        }
        Err(_) => true,
    })
}

/// Deterministic resource budgets for planning and strategy selection.
///
/// All budgets are **unlimited by default** and every one is counted in a
/// machine-independent unit — simplex *pivots*, branch *counts*, estimated
/// *rows* — never wall-clock time, so a budgeted run makes the identical
/// decisions on every machine, at every thread count, on every run (the
/// workspace's D3 lint keeps clocks out of library code for exactly this
/// reason).
///
/// Under [`EvaluationStrategy::Auto`](crate::EvaluationStrategy::Auto) an
/// exceeded budget triggers a **one-way fail-soft downgrade** to a cheaper
/// strategy, recorded in the
/// [`PlanReport`](crate::PlanReport)'s
/// [`Downgrade`](crate::Downgrade) list; under an explicit strategy (which
/// has no fallback to downgrade to) it surfaces as
/// [`StrategyError::BudgetExceeded`](crate::StrategyError::BudgetExceeded).
///
/// ```
/// use panda_core::Budgets;
///
/// let budgets = Budgets::default()          // everything unlimited
///     .with_lp_pivot_budget(10_000)         // total simplex pivots spent planning
///     .with_branch_budget(64)               // adaptive-plan branch fan-out
///     .with_memory_rows_budget(1_000_000);  // estimated peak bag-materialisation rows
/// assert_eq!(budgets.lp_pivot_budget, Some(10_000));
/// assert_eq!(budgets.branch_budget, Some(64));
/// assert_eq!(budgets.memory_rows_budget, Some(1_000_000));
/// assert!(!budgets.is_unlimited());
/// assert!(Budgets::default().is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Budgets {
    /// Cap on the total number of simplex pivots spent on planning LPs
    /// (the fhtw/subw chains), shared across the whole selection.  `None`
    /// means unlimited.
    pub lp_pivot_budget: Option<u64>,
    /// Cap on the number of degree branches the adaptive plan may fan out
    /// into.  `None` means unlimited (the evaluator's own structural cap
    /// still applies).
    pub branch_budget: Option<usize>,
    /// Cap on the *estimated* peak number of rows a bag-materialising plan
    /// (static or adaptive) may build, from the planner's deterministic
    /// cardinality estimates.  `None` means unlimited.
    pub memory_rows_budget: Option<u64>,
}

impl Budgets {
    /// All budgets unlimited (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        Budgets::default()
    }

    /// Sets the LP pivot budget.
    #[must_use]
    pub fn with_lp_pivot_budget(mut self, pivots: u64) -> Self {
        self.lp_pivot_budget = Some(pivots);
        self
    }

    /// Sets the branch budget.
    #[must_use]
    pub fn with_branch_budget(mut self, branches: usize) -> Self {
        self.branch_budget = Some(branches);
        self
    }

    /// Sets the memory (estimated rows) budget.
    #[must_use]
    pub fn with_memory_rows_budget(mut self, rows: u64) -> Self {
        self.memory_rows_budget = Some(rows);
        self
    }

    /// `true` iff no budget is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.lp_pivot_budget.is_none()
            && self.branch_budget.is_none()
            && self.memory_rows_budget.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_default_to_unlimited_and_compose() {
        let b = Budgets::unlimited();
        assert!(b.is_unlimited());
        let b = b.with_lp_pivot_budget(5).with_branch_budget(2);
        assert_eq!(
            b,
            Budgets { lp_pivot_budget: Some(5), branch_budget: Some(2), memory_rows_budget: None }
        );
        assert!(!b.is_unlimited());
        assert!(!Budgets::default().with_memory_rows_budget(10).is_unlimited());
    }

    #[test]
    fn sequential_is_the_default_with_one_thread() {
        assert_eq!(Engine::default(), Engine::Sequential);
        assert_eq!(Engine::Sequential.threads(), 1);
        assert!(!Engine::Sequential.is_parallel());
    }

    #[test]
    fn parallelism_clamps_and_reports_threads() {
        assert_eq!(Parallelism::threads(0).get(), 1);
        assert_eq!(Parallelism::threads(4).get(), 4);
        assert!(Parallelism::auto().get() >= 1);
        let engine = Engine::Parallel(Parallelism::threads(4));
        assert_eq!(engine.threads(), 4);
        assert!(engine.is_parallel());
    }

    #[test]
    fn install_runs_the_closure_under_the_budget() {
        let seq = Engine::Sequential.install(|| 41 + 1);
        assert_eq!(seq, 42);
        let par = Engine::Parallel(Parallelism::threads(3)).install(rayon::current_num_threads);
        assert_eq!(par, 3);
    }
}
