//! Execution-engine configuration: the sequential/parallel knob.
//!
//! Every evaluator in this crate runs **sequentially by default**
//! ([`Engine::Sequential`]); parallelism is strictly opt-in, either
//! programmatically (`Panda::new(q).with_engine(Engine::Parallel(
//! Parallelism::threads(4)))`) or through the `PANDA_THREADS` environment
//! variable ([`Engine::from_env`]), which every default-constructed
//! evaluator consults.
//!
//! Parallel execution is **deterministic**: work is split into contiguous
//! chunks whose results are merged back in input order, so the output of
//! every evaluator is bit-identical to its sequential output at any thread
//! count (the workspace's `parallel_determinism` suite pins this).  What
//! parallelism changes is wall-clock time only — never answers, plans or
//! row order.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// How many worker threads parallel stages may use.
///
/// A plain positive thread count; [`Parallelism::auto`] resolves to the
/// machine's available parallelism at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// A fixed thread count; `n` is clamped up to at least 1.
    #[must_use]
    pub fn threads(n: usize) -> Self {
        Parallelism(NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN))
    }

    /// The machine's available parallelism (at least 1).
    #[must_use]
    pub fn auto() -> Self {
        Parallelism(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The thread count.
    #[must_use]
    pub fn get(self) -> usize {
        self.0.get()
    }
}

/// The execution engine used by the evaluators.
///
/// [`Engine::Sequential`] is the default; [`Engine::Parallel`] fans
/// independent work units (generic-join top-level branches, PANDA degree
/// branches, DDR branches, probe shards, selector LP chains) out over a
/// thread pool and merges the results in a fixed order, producing
/// bit-identical outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Evaluate everything on the calling thread (the default).
    #[default]
    Sequential,
    /// Evaluate independent work units on a pool of the given size.
    Parallel(Parallelism),
}

impl Engine {
    /// The engine selected by the `PANDA_THREADS` environment variable
    /// (read once per process):
    ///
    /// * unset, empty, `1`, or unparsable — [`Engine::Sequential`],
    /// * `0` or `auto` — [`Engine::Parallel`] at the machine's available
    ///   parallelism,
    /// * `n > 1` — [`Engine::Parallel`] with `n` threads.
    ///
    /// This is what every default-constructed evaluator uses, and what the
    /// CI matrix toggles to run the whole test suite under both engines.
    #[must_use]
    pub fn from_env() -> Self {
        static FROM_ENV: OnceLock<Engine> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("PANDA_THREADS") {
            Ok(value) if value.eq_ignore_ascii_case("auto") => {
                Engine::Parallel(Parallelism::auto())
            }
            Ok(value) => match value.trim().parse::<usize>() {
                Ok(0) => Engine::Parallel(Parallelism::auto()),
                Ok(1) | Err(_) => Engine::Sequential,
                Ok(n) => Engine::Parallel(Parallelism::threads(n)),
            },
            Err(_) => Engine::Sequential,
        })
    }

    /// The number of worker threads this engine may use (1 when
    /// sequential).
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            Engine::Sequential => 1,
            Engine::Parallel(p) => p.get(),
        }
    }

    /// `true` iff this engine may use more than one thread.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }

    /// Runs `op` under this engine: directly on the calling thread when
    /// sequential, inside a thread pool of [`Engine::threads`] workers when
    /// parallel (so `rayon` primitives called inside see that budget).
    pub fn install<OP, R>(self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        match self {
            Engine::Sequential => op(),
            // panda-lint: allow(P1) -- the vendored pool builder has no
            // fallible path (no spawn handler, threads >= 1): build cannot
            // return Err.
            Engine::Parallel(p) => rayon::ThreadPoolBuilder::new()
                .num_threads(p.get())
                .build()
                .expect("thread pool construction is infallible")
                .install(op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_the_default_with_one_thread() {
        assert_eq!(Engine::default(), Engine::Sequential);
        assert_eq!(Engine::Sequential.threads(), 1);
        assert!(!Engine::Sequential.is_parallel());
    }

    #[test]
    fn parallelism_clamps_and_reports_threads() {
        assert_eq!(Parallelism::threads(0).get(), 1);
        assert_eq!(Parallelism::threads(4).get(), 4);
        assert!(Parallelism::auto().get() >= 1);
        let engine = Engine::Parallel(Parallelism::threads(4));
        assert_eq!(engine.threads(), 4);
        assert!(engine.is_parallel());
    }

    #[test]
    fn install_runs_the_closure_under_the_budget() {
        let seq = Engine::Sequential.install(|| 41 + 1);
        assert_eq!(seq, 42);
        let par = Engine::Parallel(Parallelism::threads(3)).install(rayon::current_num_threads);
        assert_eq!(par, 3);
    }
}
