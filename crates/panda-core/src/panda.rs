//! The end-to-end PANDA facade.
//!
//! [`Panda`] bundles the whole pipeline of the paper: given a conjunctive
//! query and (measured or supplied) statistics it computes the width
//! measures, picks a strategy, and evaluates the query:
//!
//! * free-connex acyclic queries run Yannakakis directly (`O(N + OUT)`),
//! * cyclic queries whose submodular width is strictly below their
//!   fractional hypertree width run the adaptive multi-TD plan
//!   ([`crate::PandaEvaluator`]),
//! * other cyclic queries run the best single-TD plan
//!   ([`crate::StaticTdPlan`]).

use panda_entropy::{BoundError, StatisticsSet};
use panda_query::hypergraph::is_acyclic;
use panda_query::{ConjunctiveQuery, TreeDecomposition};
use panda_rational::Rat;
use panda_relation::Database;

use crate::binary::BinaryJoinPlan;
use crate::binding::VarRelation;
use crate::config::Engine;
use crate::generic_join::GenericJoin;
use crate::plans::{PandaEvaluator, PartitionSpec, StaticTdPlan};
use crate::yannakakis::yannakakis_query;

/// The evaluation strategies exposed by [`Panda`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluationStrategy {
    /// Choose automatically from the query structure and statistics.
    Auto,
    /// Yannakakis over the atoms (requires an acyclic query).
    Yannakakis,
    /// The best single-tree-decomposition (fhtw) plan.
    StaticTd,
    /// The adaptive multi-tree-decomposition (submodular width) plan.
    Adaptive,
    /// A single worst-case-optimal join over all atoms.
    GenericJoin,
    /// A greedy binary-join plan (the classical baseline).
    BinaryJoin,
}

/// A report of the planning decisions for a query.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The strategy `Auto` resolved to.
    pub strategy: EvaluationStrategy,
    /// The fractional hypertree width under the planning statistics.
    pub fhtw: Rat,
    /// The submodular width under the planning statistics.
    pub subw: Rat,
    /// The free-connex tree decompositions considered.
    pub tds: Vec<TreeDecomposition>,
    /// The degree partitions the adaptive plan would use.
    pub partitions: Vec<PartitionSpec>,
}

/// Why [`Panda::try_evaluate_with`] could not run the requested strategy:
/// the strategy does not apply to the query's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyError {
    /// [`EvaluationStrategy::Yannakakis`] was requested for a cyclic query.
    CyclicYannakakis,
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::CyclicYannakakis => {
                write!(f, "Yannakakis requires an acyclic query")
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// The end-to-end query evaluator.
#[derive(Debug, Clone)]
pub struct Panda {
    query: ConjunctiveQuery,
    statistics: Option<StatisticsSet>,
    engine: Engine,
}

impl Panda {
    /// Creates an evaluator for a query.  Statistics are measured from the
    /// data at evaluation time unless supplied with
    /// [`Panda::with_statistics`]; the execution engine is the one
    /// selected by `PANDA_THREADS` ([`Engine::from_env`], sequential by
    /// default) unless overridden with [`Panda::with_engine`].
    #[must_use]
    pub fn new(query: ConjunctiveQuery) -> Self {
        Panda { query, statistics: None, engine: Engine::from_env() }
    }

    /// Uses the given statistics for planning instead of measuring them.
    #[must_use]
    pub fn with_statistics(mut self, statistics: StatisticsSet) -> Self {
        self.statistics = Some(statistics);
        self
    }

    /// Uses the given execution engine.  Parallel engines change
    /// wall-clock time only: outputs are bit-identical to sequential
    /// evaluation at any thread count, and planning (strategy choice,
    /// partitions, branch structure) is engine-independent.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The configured execution engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The query being evaluated.
    #[must_use]
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    fn stats_for(&self, db: &Database) -> StatisticsSet {
        self.statistics.clone().unwrap_or_else(|| StatisticsSet::measure(&self.query, db))
    }

    /// `true` iff the query is acyclic *and* free-connex, i.e. eligible for
    /// the direct Yannakakis fast path (Section 3.4).
    #[must_use]
    pub fn is_free_connex_acyclic(&self) -> bool {
        let mut edges = self.query.edges();
        let acyclic = is_acyclic(&edges);
        edges.push(self.query.free_vars());
        acyclic && is_acyclic(&edges)
    }

    /// Produces the planning report (widths, decompositions, partitions)
    /// for the given database.
    ///
    /// Under a parallel engine the selector/bag LP chains behind the width
    /// computations run on the thread pool
    /// ([`panda_entropy::subw_with_tds_parallel`]); the reported widths
    /// are identical either way (optimal LP values are unique), and the
    /// partition derivation itself stays sequential so the plan structure
    /// is engine-independent.
    pub fn plan_report(&self, db: &Database) -> Result<PlanReport, BoundError> {
        let stats = self.stats_for(db);
        let tds = TreeDecomposition::enumerate(&self.query);
        let threads = self.engine.threads();
        let fhtw = panda_entropy::fhtw_with_tds_parallel(&self.query, &tds, &stats, threads)?.value;
        let subw = panda_entropy::subw_with_tds_parallel(&self.query, &tds, &stats, threads)?.value;
        let strategy = if self.is_free_connex_acyclic() {
            EvaluationStrategy::Yannakakis
        } else if subw < fhtw {
            EvaluationStrategy::Adaptive
        } else {
            EvaluationStrategy::StaticTd
        };
        let partitions = if strategy == EvaluationStrategy::Adaptive {
            PandaEvaluator::plan(&self.query, &stats)?.partitions
        } else {
            Vec::new()
        };
        Ok(PlanReport { strategy, fhtw, subw, tds, partitions })
    }

    /// Evaluates the query with the automatically chosen strategy.
    #[must_use]
    pub fn evaluate(&self, db: &Database) -> VarRelation {
        self.evaluate_with(db, EvaluationStrategy::Auto)
    }

    /// Evaluates the query with an explicit strategy.
    ///
    /// # Panics
    ///
    /// Panics if `Yannakakis` is requested for a cyclic query — use
    /// [`Panda::try_evaluate_with`] for the non-panicking form.
    #[must_use]
    pub fn evaluate_with(&self, db: &Database, strategy: EvaluationStrategy) -> VarRelation {
        // panda-lint: allow(P1) -- the panic is this method's documented
        // contract; the graceful path is `try_evaluate_with`.
        self.try_evaluate_with(db, strategy).expect("Yannakakis requires an acyclic query")
    }

    /// Evaluates the query with an explicit strategy, reporting a
    /// structural mismatch (a cyclic query under `Yannakakis`) as an error
    /// instead of panicking.
    pub fn try_evaluate_with(
        &self,
        db: &Database,
        strategy: EvaluationStrategy,
    ) -> Result<VarRelation, StrategyError> {
        match strategy {
            EvaluationStrategy::Auto => {
                if self.is_free_connex_acyclic() {
                    return self.try_evaluate_with(db, EvaluationStrategy::Yannakakis);
                }
                let stats = self.stats_for(db);
                match (
                    panda_entropy::subw(&self.query, &stats),
                    panda_entropy::fhtw(&self.query, &stats),
                ) {
                    (Ok(s), Ok(f)) if s.value < f.value => {
                        self.try_evaluate_with(db, EvaluationStrategy::Adaptive)
                    }
                    (Ok(_), Ok(_)) => self.try_evaluate_with(db, EvaluationStrategy::StaticTd),
                    _ => self.try_evaluate_with(db, EvaluationStrategy::GenericJoin),
                }
            }
            EvaluationStrategy::Yannakakis => {
                yannakakis_query(&self.query, db).ok_or(StrategyError::CyclicYannakakis)
            }
            EvaluationStrategy::StaticTd => {
                let stats = self.stats_for(db);
                let plan = StaticTdPlan::best_for(&self.query, &stats).unwrap_or_else(|_| {
                    StaticTdPlan::new(TreeDecomposition::new(vec![self.query.all_vars()]))
                });
                Ok(plan.evaluate_with_engine(&self.query, db, self.engine))
            }
            EvaluationStrategy::Adaptive => {
                let stats = self.stats_for(db);
                Ok(match PandaEvaluator::plan(&self.query, &stats) {
                    Ok(evaluator) => evaluator.evaluate_with_engine(&self.query, db, self.engine),
                    Err(_) => GenericJoin::evaluate_with_engine(&self.query, db, self.engine),
                })
            }
            EvaluationStrategy::GenericJoin => {
                Ok(GenericJoin::evaluate_with_engine(&self.query, db, self.engine))
            }
            EvaluationStrategy::BinaryJoin => {
                Ok(BinaryJoinPlan::new().evaluate_with_engine(&self.query, db, self.engine))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::{parse_query, Var};
    use panda_relation::Relation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_db(n: u64, edges: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            db.insert(
                name,
                Relation::from_rows(
                    2,
                    (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]),
                )
                .deduped(),
            );
        }
        db
    }

    #[test]
    fn auto_strategy_picks_yannakakis_for_free_connex_acyclic_queries() {
        // Q(A,B) over the 2-path is free-connex; Q(A,C) over the same body
        // is the classic non-free-connex example (its head atom closes a
        // triangle with the body).
        let q = parse_query("Q(A,B) :- R(A,B), S(B,C)").unwrap();
        let panda =
            Panda::new(q.clone()).with_statistics(StatisticsSet::identical_cardinalities(&q, 1000));
        assert!(panda.is_free_connex_acyclic());
        let db = random_db(10, 40, 1);
        let report = panda.plan_report(&db).unwrap();
        assert_eq!(report.strategy, EvaluationStrategy::Yannakakis);
        assert_eq!(report.fhtw, Rat::ONE);

        let not_fc = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
        assert!(!Panda::new(not_fc).is_free_connex_acyclic());
    }

    #[test]
    fn auto_strategy_picks_adaptive_for_the_four_cycle() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let panda = Panda::new(q.clone())
            .with_statistics(StatisticsSet::identical_cardinalities(&q, 1 << 12));
        let db = random_db(10, 50, 2);
        let report = panda.plan_report(&db).unwrap();
        assert_eq!(report.strategy, EvaluationStrategy::Adaptive);
        assert_eq!(report.fhtw, Rat::from_int(2));
        assert_eq!(report.subw, Rat::new(3, 2));
        assert_eq!(report.tds.len(), 2);
        assert!(!report.partitions.is_empty());
    }

    #[test]
    fn a_non_free_connex_projection_uses_a_static_plan() {
        // Q(X,Y) :- R(X,Z), S(Z,Y) is acyclic but not free-connex; the only
        // free-connex TD is the trivial one, so subw = fhtw and the static
        // plan is chosen.
        let q = parse_query("Q(X,Y) :- R(X,Z), S(Z,Y)").unwrap();
        let panda = Panda::new(q);
        assert!(!panda.is_free_connex_acyclic());
        let db = random_db(10, 40, 3);
        let report = panda.plan_report(&db).unwrap();
        assert_eq!(report.strategy, EvaluationStrategy::StaticTd);
    }

    #[test]
    fn all_strategies_agree_on_the_four_cycle() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let panda = Panda::new(q.clone());
        let db = random_db(9, 45, 4);
        let order: Vec<Var> = q.free_vars().to_vec();
        let reference = panda
            .evaluate_with(&db, EvaluationStrategy::GenericJoin)
            .canonical_rows_ordered(&order);
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::StaticTd,
            EvaluationStrategy::Adaptive,
            EvaluationStrategy::BinaryJoin,
        ] {
            let got = panda.evaluate_with(&db, strategy).canonical_rows_ordered(&order);
            assert_eq!(got, reference, "strategy {strategy:?}");
        }
    }

    #[test]
    fn all_strategies_agree_on_an_acyclic_query() {
        let q = parse_query("Q(A,C) :- R(A,B), S(B,C), T(C,D)").unwrap();
        let panda = Panda::new(q.clone());
        let db = random_db(12, 50, 5);
        let order: Vec<Var> = q.free_vars().to_vec();
        let reference = panda
            .evaluate_with(&db, EvaluationStrategy::GenericJoin)
            .canonical_rows_ordered(&order);
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::Yannakakis,
            EvaluationStrategy::StaticTd,
            EvaluationStrategy::BinaryJoin,
        ] {
            let got = panda.evaluate_with(&db, strategy).canonical_rows_ordered(&order);
            assert_eq!(got, reference, "strategy {strategy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn yannakakis_on_a_cyclic_query_panics() {
        let q = parse_query("Tri() :- R(A,B), S(B,C), T(C,A)").unwrap();
        let db = random_db(5, 10, 6);
        let _ = Panda::new(q).evaluate_with(&db, EvaluationStrategy::Yannakakis);
    }

    #[test]
    fn try_evaluate_reports_cyclic_yannakakis_gracefully() {
        let q = parse_query("Tri() :- R(A,B), S(B,C), T(C,A)").unwrap();
        let db = random_db(5, 10, 6);
        let panda = Panda::new(q);
        let err = panda
            .try_evaluate_with(&db, EvaluationStrategy::Yannakakis)
            .expect_err("cyclic query must not run Yannakakis");
        assert!(matches!(err, StrategyError::CyclicYannakakis));
        assert!(err.to_string().contains("acyclic"));
        // Every other strategy still succeeds on the same input, and Auto
        // routes around the cycle rather than surfacing the error.
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::GenericJoin,
            EvaluationStrategy::BinaryJoin,
        ] {
            assert!(panda.try_evaluate_with(&db, strategy).is_ok(), "strategy {strategy:?}");
        }
    }
}
