//! The end-to-end PANDA facade.
//!
//! [`Panda`] bundles the whole pipeline of the paper: given a conjunctive
//! query and (measured or supplied) statistics it computes the width
//! measures, picks a strategy through the deterministic rule-ordered
//! selector ([`crate::selector`]), and evaluates the query:
//!
//! * free-connex acyclic queries run Yannakakis directly (`O(N + OUT)`),
//! * cyclic queries whose submodular width is strictly below their
//!   fractional hypertree width run the adaptive multi-TD plan
//!   ([`crate::PandaEvaluator`]),
//! * other cyclic queries run the best single-TD plan
//!   ([`crate::StaticTdPlan`]),
//! * queries with no finite width run a generic worst-case optimal join.
//!
//! Every selection is observable: [`Panda::plan_report`] returns the
//! [`PlanReport`] — selected and executed strategy, the selector rule and
//! [`ReasonCode`] that fired, per-branch width bounds with their
//! Shannon-flow certificates, branch counts, and any fail-soft
//! [`Downgrade`]s forced by the configured [`Budgets`] — and
//! [`Panda::explain`] renders it as a stable, human-readable EXPLAIN.

use panda_entropy::{BoundError, CancelToken, StatisticsSet};
use panda_query::{ConjunctiveQuery, TreeDecomposition};
use panda_rational::Rat;
use panda_relation::Database;

use crate::binary::BinaryJoinPlan;
use crate::binding::VarRelation;
use crate::config::{Budgets, Engine};
use crate::generic_join::GenericJoin;
use crate::materialize::MaterializedSubplan;
use crate::plans::{PandaEvaluator, PartitionSpec, StaticTdPlan};
use crate::selector::{self, BranchBound, Downgrade, ReasonCode, Selection, SelectorRule};
use crate::yannakakis::yannakakis_query;
use crate::{fingerprint, plan_cache};

/// The evaluation strategies exposed by [`Panda`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluationStrategy {
    /// Choose automatically from the query structure and statistics.
    Auto,
    /// Yannakakis over the atoms (requires an acyclic query).
    Yannakakis,
    /// The best single-tree-decomposition (fhtw) plan.
    StaticTd,
    /// The adaptive multi-tree-decomposition (submodular width) plan.
    Adaptive,
    /// A single worst-case-optimal join over all atoms.
    GenericJoin,
    /// A greedy binary-join plan (the classical baseline).
    BinaryJoin,
}

impl EvaluationStrategy {
    /// A stable machine-readable name (the EXPLAIN spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvaluationStrategy::Auto => "auto",
            EvaluationStrategy::Yannakakis => "yannakakis",
            EvaluationStrategy::StaticTd => "static-td",
            EvaluationStrategy::Adaptive => "adaptive",
            EvaluationStrategy::GenericJoin => "generic-join",
            EvaluationStrategy::BinaryJoin => "binary-join",
        }
    }
}

impl std::fmt::Display for EvaluationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A report of the planning decisions for a query: what the selector
/// chose, why, what will actually run, and the width bounds (with their
/// certificates) backing the choice.
///
/// Every field is deterministic and engine-independent: the same query,
/// statistics, data and budgets produce the identical report at any
/// `PANDA_THREADS` setting (pinned by `tests/parallel_determinism.rs`).
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The strategy that will actually execute (after any downgrades).
    pub strategy: EvaluationStrategy,
    /// The strategy the selector rules chose (before downgrades); equal to
    /// [`PlanReport::strategy`] unless [`PlanReport::downgrades`] is
    /// non-empty.
    pub selected: EvaluationStrategy,
    /// Which selector rule fired.
    pub rule: SelectorRule,
    /// Why the rule fired (machine-readable).
    pub reason: ReasonCode,
    /// The fail-soft downgrades applied, in the order they were applied;
    /// empty when the selected strategy runs as-is.
    pub downgrades: Vec<Downgrade>,
    /// The fractional hypertree width, when it was computed.
    pub fhtw: Option<Rat>,
    /// The submodular width, when it was computed.
    pub subw: Option<Rat>,
    /// The free-connex tree decompositions considered.
    pub tds: Vec<TreeDecomposition>,
    /// The degree partitions the adaptive plan uses (empty for other
    /// strategies).
    pub partitions: Vec<PartitionSpec>,
    /// Number of degree branches the plan fans out into (1 for single-plan
    /// strategies; for a branch-budget downgrade, the count that triggered
    /// it).
    pub branch_count: usize,
    /// Per-branch width bounds with their Shannon-flow certificates: one
    /// per bag selector for the adaptive plan, one per bag of the best
    /// decomposition for the static plan, empty otherwise.
    pub branch_bounds: Vec<BranchBound>,
    /// Simplex pivots consumed by planning, when an LP pivot budget was
    /// configured.
    pub lp_pivots_used: Option<u64>,
    /// Subplans the plan materialises once and scans from several degree
    /// branches ([`MaterializedSubplan`]), in deterministic first-seen
    /// order; empty for single-branch strategies.  Plan-derived, so it is
    /// part of the report's bit-identity contract (identical warm or cold,
    /// at any thread count).
    pub materializations: Vec<MaterializedSubplan>,
    /// How the plan cache participated in this report:
    /// [`ReasonCode::PlanCacheHit`], [`ReasonCode::PlanCacheMiss`] (plus
    /// [`ReasonCode::PlanCacheEvict`] when the insert evicted an entry), or
    /// [`ReasonCode::PlanCacheBypass`] when `PANDA_PLAN_CACHE=off`.
    ///
    /// This field is **process-state telemetry**, not plan content: it is
    /// deliberately excluded from the [`Explain`] rendering and from the
    /// report bit-identity contract (a warm report differs from its cold
    /// twin in exactly this field).
    pub cache_events: Vec<ReasonCode>,
}

/// A [`PlanReport`] bundled with the query's variable names, rendered by
/// its `Display` impl as a stable, line-oriented EXPLAIN (the byte-stable
/// output pinned by CI's `explain` example job).
///
/// ```
/// use panda_core::Panda;
/// use panda_query::parse_query;
/// use panda_relation::{Database, Relation};
///
/// let q = parse_query("Q(A,B) :- R(A,B), S(B,C)").unwrap();
/// let mut db = Database::new();
/// db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
/// db.insert("S", Relation::from_rows(2, vec![[2, 3]]));
/// let explain = Panda::new(q).explain(&db).unwrap();
/// let text = explain.to_string();
/// assert!(text.contains("strategy: yannakakis"));
/// assert!(text.contains("rule: acyclic-fast-path"));
/// assert!(text.contains("reason: acyclic_free_connex"));
/// ```
#[derive(Debug, Clone)]
pub struct Explain {
    /// The underlying report.
    pub report: PlanReport,
    /// The query's variable names, for rendering bags.
    pub names: Vec<String>,
    /// The query text, as parsed.
    pub query: String,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = &self.report;
        writeln!(f, "query: {}", self.query)?;
        writeln!(f, "strategy: {}", r.strategy)?;
        writeln!(f, "selected: {}", r.selected)?;
        writeln!(f, "rule: {}", r.rule)?;
        writeln!(f, "reason: {}", r.reason)?;
        match (r.fhtw, r.subw) {
            (Some(fhtw), Some(subw)) => writeln!(f, "widths: fhtw = {fhtw}, subw = {subw}")?,
            (Some(fhtw), None) => writeln!(f, "widths: fhtw = {fhtw}, subw = (not computed)")?,
            (None, _) => writeln!(f, "widths: (not computed)")?,
        }
        writeln!(f, "branches: {}", r.branch_count)?;
        if let Some(pivots) = r.lp_pivots_used {
            writeln!(f, "lp pivots used: {pivots}")?;
        }
        if r.downgrades.is_empty() {
            writeln!(f, "downgrades: (none)")?;
        } else {
            writeln!(f, "downgrades:")?;
            for d in &r.downgrades {
                writeln!(f, "  {} -> {} [{}]", d.from, d.to, d.reason)?;
            }
        }
        if !r.branch_bounds.is_empty() {
            writeln!(f, "branch bounds:")?;
            for bound in &r.branch_bounds {
                let bags: Vec<String> =
                    bound.bags.iter().map(|b| b.display_with(&self.names)).collect();
                let certified =
                    if bound.certificate.is_some() { "certified" } else { "uncertified" };
                writeln!(f, "  {}: {} ({certified})", bags.join(" | "), bound.log_bound)?;
            }
        }
        // Cache events are deliberately NOT rendered: EXPLAIN output is
        // byte-stable across cold and warm runs (and across the CI
        // explain-stability matrix), while cache events are process state.
        if !r.materializations.is_empty() {
            writeln!(f, "materialised subplans:")?;
            for m in &r.materializations {
                writeln!(
                    f,
                    "  {}: {} ({} scans, materialised once)",
                    m.bag.display_with(&self.names),
                    m.relations.join(" * "),
                    m.num_scans
                )?;
            }
        }
        Ok(())
    }
}

/// Why [`Panda::try_evaluate_with`] could not run the requested strategy.
///
/// `Auto` never surfaces the budget and availability variants — it
/// downgrades fail-soft instead (see [`crate::selector`]); these errors
/// belong to *explicit* strategy requests, which leave no fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// [`EvaluationStrategy::Yannakakis`] was requested for a cyclic query.
    CyclicYannakakis,
    /// The requested strategy needs a costed tree decomposition and none
    /// could be produced (unbounded statistics, or an LP solver failure).
    TdUnavailable {
        /// The strategy that was requested.
        strategy: EvaluationStrategy,
        /// The width-computation error.
        source: BoundError,
    },
    /// A configured budget was exceeded while planning an explicit
    /// strategy, which has no fallback to downgrade to (use `Auto` for
    /// fail-soft downgrades).
    BudgetExceeded {
        /// The strategy that was requested.
        strategy: EvaluationStrategy,
        /// Which budget was exceeded.
        reason: ReasonCode,
    },
    /// The attached [`CancelToken`] was cancelled before or during the
    /// request.  Unlike budget exhaustion this is never absorbed fail-soft
    /// — a cancelled request aborts under `Auto` too — and it is a
    /// property of the *request*, not the plan: retrying with a fresh
    /// token re-plans (or serves the cached plan) normally.
    Cancelled {
        /// The strategy that was requested.
        strategy: EvaluationStrategy,
    },
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::CyclicYannakakis => {
                write!(f, "Yannakakis requires an acyclic query")
            }
            StrategyError::TdUnavailable { strategy, source } => {
                write!(f, "no tree decomposition could be costed for {strategy}: {source}")
            }
            StrategyError::BudgetExceeded { strategy, reason } => {
                write!(
                    f,
                    "budget exceeded ({reason}) while planning {strategy}, which has no \
                     fallback (Auto downgrades fail-soft instead)"
                )
            }
            StrategyError::Cancelled { strategy } => {
                write!(f, "the request was cancelled while running {strategy}")
            }
        }
    }
}

impl std::error::Error for StrategyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StrategyError::TdUnavailable { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The end-to-end query evaluator.
#[derive(Debug, Clone)]
pub struct Panda {
    query: ConjunctiveQuery,
    statistics: Option<StatisticsSet>,
    engine: Engine,
    budgets: Budgets,
    cancel: Option<CancelToken>,
}

impl Panda {
    /// Creates an evaluator for a query.  Statistics are measured from the
    /// data at evaluation time unless supplied with
    /// [`Panda::with_statistics`]; the execution engine is the one
    /// selected by `PANDA_THREADS` ([`Engine::from_env`], sequential by
    /// default) unless overridden with [`Panda::with_engine`]; all
    /// [`Budgets`] are unlimited unless set with [`Panda::with_budgets`].
    #[must_use]
    pub fn new(query: ConjunctiveQuery) -> Self {
        Panda {
            query,
            statistics: None,
            engine: Engine::from_env(),
            budgets: Budgets::default(),
            cancel: None,
        }
    }

    /// Uses the given statistics for planning instead of measuring them.
    #[must_use]
    pub fn with_statistics(mut self, statistics: StatisticsSet) -> Self {
        self.statistics = Some(statistics);
        self
    }

    /// Uses the given execution engine.  Parallel engines change
    /// wall-clock time only: outputs are bit-identical to sequential
    /// evaluation at any thread count, and planning (strategy choice,
    /// reason codes, partitions, branch structure) is engine-independent.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Uses the given [`Budgets`].  Under `Auto` an exceeded budget
    /// triggers a fail-soft downgrade recorded in the [`PlanReport`];
    /// under an explicit strategy it surfaces as
    /// [`StrategyError::BudgetExceeded`].
    #[must_use]
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Attaches a cooperative [`CancelToken`] checked at the start of every
    /// planning and evaluation request, and — when an LP pivot budget is
    /// configured — polled at every simplex pivot during planning.
    ///
    /// Cancellation is **cooperative and best-effort**: work that completes
    /// before the next poll returns its normal, bit-identical result, and a
    /// never-cancelled token changes nothing at all (polls consume no
    /// budget).  When the token fires mid-request, planning aborts with
    /// [`BoundError::Cancelled`] / [`StrategyError::Cancelled`] and nothing
    /// is inserted into the plan cache, so the cache never holds partial
    /// state.  Unlike budgets, cancellation is never absorbed into a
    /// fail-soft downgrade — `Auto` aborts too.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured execution engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The configured budgets.
    #[must_use]
    pub fn budgets(&self) -> Budgets {
        self.budgets
    }

    /// The query being evaluated.
    #[must_use]
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    fn stats_for(&self, db: &Database) -> StatisticsSet {
        self.statistics.clone().unwrap_or_else(|| StatisticsSet::measure(&self.query, db))
    }

    /// `true` iff an attached [`CancelToken`] has fired.
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Builds a [`PivotBudget`](panda_entropy::PivotBudget) for an explicit
    /// budgeted planning path, attaching the cancel token when one is set.
    fn pivot_budget(&self, limit: u64) -> panda_entropy::PivotBudget {
        let budget = panda_entropy::PivotBudget::new(limit);
        match &self.cancel {
            Some(token) => budget.with_cancel_token(token.clone()),
            None => budget,
        }
    }

    /// `true` iff the query is acyclic *and* free-connex, i.e. eligible for
    /// the direct Yannakakis fast path (Section 3.4).
    #[must_use]
    pub fn is_free_connex_acyclic(&self) -> bool {
        selector::free_connex_acyclic(&self.query)
    }

    /// Builds the full [`PlanReport`] from a completed selection.
    fn report_from(
        &self,
        selection: Selection,
        stats: &StatisticsSet,
        cache_events: Vec<ReasonCode>,
    ) -> PlanReport {
        let branch_bounds = selector::branch_bounds_for(&selection, &self.query, stats);
        let partitions =
            selection.evaluator.as_ref().map(|e| e.partitions.clone()).unwrap_or_default();
        PlanReport {
            strategy: selection.executed,
            selected: selection.selected,
            rule: selection.rule,
            reason: selection.reason,
            downgrades: selection.downgrades,
            fhtw: selection.fhtw.as_ref().map(|r| r.value),
            subw: selection.subw.as_ref().map(|r| r.value),
            tds: selection.tds,
            partitions,
            branch_count: selection.branch_count,
            branch_bounds,
            lp_pivots_used: selection.lp_pivots_used,
            materializations: selection.materializations,
            cache_events,
        }
    }

    /// Runs the selector through the cross-query plan cache: a hit skips
    /// planning (all width LPs and certificate chains) and serves the
    /// cached [`Selection`]; a miss plans as usual and populates the cache.
    /// Returns the selection plus the cache events that occurred, in order.
    ///
    /// Keying is by the *canonical* form of the query (structural
    /// isomorphism — variable renaming and body-atom permutation), the
    /// canonical encoding of the statistics the planner would consume, the
    /// budgets, and the requested strategy.  Thread count is deliberately
    /// excluded: planning is engine-independent (the explain-stability CI
    /// matrix proves it), so a plan cached under one engine serves every
    /// other bit-identically.  With `want_widths` the key also pins the
    /// exact variable numbering so width reports are always expressed in
    /// the query's own variables.
    fn select_cached(
        &self,
        stats: &StatisticsSet,
        db: &Database,
        requested: EvaluationStrategy,
        want_widths: bool,
    ) -> Result<(Selection, Vec<ReasonCode>), BoundError> {
        if !crate::config::plan_cache_enabled() {
            let selection = selector::select(
                &self.query,
                stats,
                db,
                self.budgets,
                self.engine.threads(),
                requested,
                want_widths,
                self.cancel.as_ref(),
            )?;
            return Ok((selection, vec![ReasonCode::PlanCacheBypass]));
        }
        let canon = fingerprint::canonicalize_query(&self.query);
        let stats_enc = fingerprint::canonical_statistics_encoding(stats, &canon.renaming);
        let key = plan_cache::PlanKey {
            canon: canon.encoding.clone(),
            exact: if want_widths { Some(canon.renaming.clone()) } else { None },
            stats: stats_enc,
            budgets: self.budgets,
            requested,
            want_widths,
        };
        // The evaluation path can also be served by a same-numbering
        // report-path entry: a plan with widths is a superset of a plan
        // without, so explain-then-evaluate plans exactly once.
        let fallback = (!want_widths).then(|| plan_cache::PlanKey {
            exact: Some(canon.renaming.clone()),
            want_widths: true,
            ..key.clone()
        });
        if let Some(selection) = plan_cache::lookup(&key, fallback.as_ref(), &canon.renaming) {
            return Ok((selection, vec![ReasonCode::PlanCacheHit]));
        }
        let selection = selector::select(
            &self.query,
            stats,
            db,
            self.budgets,
            self.engine.threads(),
            requested,
            want_widths,
            self.cancel.as_ref(),
        )?;
        // Only completed selections reach the cache: a cancelled (or
        // otherwise failed) plan returned above leaves the cache untouched.
        let evicted = plan_cache::insert(key, canon.renaming, &selection);
        let mut events = vec![ReasonCode::PlanCacheMiss];
        if evicted {
            events.push(ReasonCode::PlanCacheEvict);
        }
        Ok((selection, events))
    }

    /// Produces the planning report for the automatic strategy choice on
    /// the given database: the selector rule and reason that fired, the
    /// widths, per-branch bounds with certificates, branch counts, and any
    /// budget downgrades.
    ///
    /// Deterministic and engine-independent: under a parallel engine the
    /// per-bag `fhtw` LP chains run on the thread pool (optimal LP values
    /// are unique, so the widths are identical either way), while the
    /// `subw` certificate chain stays sequential because its Shannon flows
    /// seed the adaptive partitions and the reported certificates.  Only
    /// an LP solver *bug* surfaces as an error; unbounded widths and
    /// exhausted budgets are absorbed into the selection fail-soft.
    pub fn plan_report(&self, db: &Database) -> Result<PlanReport, BoundError> {
        self.plan_report_for(db, EvaluationStrategy::Auto)
    }

    /// [`Panda::plan_report`] for an explicit strategy request: the
    /// explicit-override rule fires and widths are attached
    /// informationally.
    pub fn plan_report_for(
        &self,
        db: &Database,
        strategy: EvaluationStrategy,
    ) -> Result<PlanReport, BoundError> {
        if self.is_cancelled() {
            return Err(BoundError::Cancelled);
        }
        let stats = self.stats_for(db);
        let (selection, cache_events) =
            self.select_cached(&stats, db, strategy, /*want_widths=*/ true)?;
        Ok(self.report_from(selection, &stats, cache_events))
    }

    /// [`Panda::plan_report`] rendered for humans: returns the [`Explain`]
    /// wrapper whose `Display` output is stable line-oriented text.
    pub fn explain(&self, db: &Database) -> Result<Explain, BoundError> {
        let report = self.plan_report(db)?;
        Ok(Explain {
            report,
            names: self.query.var_names().to_vec(),
            query: self.query.to_string(),
        })
    }

    /// [`Panda::explain`] for an explicit strategy request.
    pub fn explain_with(
        &self,
        db: &Database,
        strategy: EvaluationStrategy,
    ) -> Result<Explain, BoundError> {
        let report = self.plan_report_for(db, strategy)?;
        Ok(Explain {
            report,
            names: self.query.var_names().to_vec(),
            query: self.query.to_string(),
        })
    }

    /// Evaluates the query with the automatically chosen strategy.
    #[must_use]
    pub fn evaluate(&self, db: &Database) -> VarRelation {
        self.evaluate_with(db, EvaluationStrategy::Auto)
    }

    /// Evaluates the query with an explicit strategy.
    ///
    /// # Panics
    ///
    /// Panics if the strategy cannot run — `Yannakakis` on a cyclic query,
    /// a width-based plan whose statistics leave the output unbounded, or
    /// a configured budget exceeded under an explicit strategy — use
    /// [`Panda::try_evaluate_with`] for the non-panicking form.
    #[must_use]
    pub fn evaluate_with(&self, db: &Database, strategy: EvaluationStrategy) -> VarRelation {
        match self.try_evaluate_with(db, strategy) {
            Ok(result) => result,
            // panda-lint: allow(P1) -- the panic is this method's
            // documented contract; the graceful path is `try_evaluate_with`.
            Err(e) => panic!("{e}"),
        }
    }

    /// Evaluates the query with an explicit strategy, reporting structural
    /// mismatches (a cyclic query under `Yannakakis`), unavailable tree
    /// decompositions, and exceeded budgets as structured errors instead of
    /// panicking or silently substituting a different plan.
    pub fn try_evaluate_with(
        &self,
        db: &Database,
        strategy: EvaluationStrategy,
    ) -> Result<VarRelation, StrategyError> {
        self.try_evaluate_with_events(db, strategy).map(|(result, _events)| result)
    }

    /// [`Panda::try_evaluate_with`] that also reports the plan-cache events
    /// of the request (in order), so serving layers can account cache
    /// hits, misses and evictions per session.
    ///
    /// Only `Auto` consults the cross-query plan cache on the evaluation
    /// path; explicit strategies plan directly and report no events.  Like
    /// [`PlanReport::cache_events`] these are process-state telemetry, not
    /// part of the result's bit-identity contract.
    pub fn try_evaluate_with_events(
        &self,
        db: &Database,
        strategy: EvaluationStrategy,
    ) -> Result<(VarRelation, Vec<ReasonCode>), StrategyError> {
        if self.is_cancelled() {
            return Err(StrategyError::Cancelled { strategy });
        }
        match strategy {
            EvaluationStrategy::Auto => {
                let stats = self.stats_for(db);
                let (selection, cache_events) = self
                    .select_cached(
                        &stats,
                        db,
                        EvaluationStrategy::Auto,
                        /*want_widths=*/ false,
                    )
                    .map_err(|source| self.planning_error(EvaluationStrategy::Auto, source))?;
                Ok((self.execute_selection(db, &selection)?, cache_events))
            }
            EvaluationStrategy::Yannakakis => yannakakis_query(&self.query, db)
                .map(|result| (result, Vec::new()))
                .ok_or(StrategyError::CyclicYannakakis),
            EvaluationStrategy::StaticTd => {
                let stats = self.stats_for(db);
                let result = match self.budgets.lp_pivot_budget {
                    Some(limit) => {
                        let mut budget = self.pivot_budget(limit);
                        StaticTdPlan::best_for_budgeted(&self.query, &stats, &mut budget)
                    }
                    None => StaticTdPlan::best_for(&self.query, &stats),
                };
                let plan = result.map_err(|e| self.planning_error(strategy, e))?;
                Ok((plan.evaluate_with_engine(&self.query, db, self.engine), Vec::new()))
            }
            EvaluationStrategy::Adaptive => {
                let stats = self.stats_for(db);
                let result = match self.budgets.lp_pivot_budget {
                    Some(limit) => {
                        let mut budget = self.pivot_budget(limit);
                        PandaEvaluator::plan_budgeted(&self.query, &stats, &mut budget)
                    }
                    None => PandaEvaluator::plan(&self.query, &stats),
                };
                let mut evaluator = result.map_err(|e| self.planning_error(strategy, e))?;
                // An explicit adaptive request honours the branch budget as
                // a cap (branch splitting degrades gracefully), not an
                // error: the plan stays correct with fewer splits.
                if let Some(cap) = self.budgets.branch_budget {
                    evaluator.max_branches = evaluator.max_branches.min(cap);
                }
                Ok((evaluator.evaluate_with_engine(&self.query, db, self.engine), Vec::new()))
            }
            EvaluationStrategy::GenericJoin => {
                Ok((GenericJoin::evaluate_with_engine(&self.query, db, self.engine), Vec::new()))
            }
            EvaluationStrategy::BinaryJoin => Ok((
                BinaryJoinPlan::new().evaluate_with_engine(&self.query, db, self.engine),
                Vec::new(),
            )),
        }
    }

    /// Maps a planning [`BoundError`] for an explicit strategy request to
    /// the matching [`StrategyError`].
    fn planning_error(&self, strategy: EvaluationStrategy, source: BoundError) -> StrategyError {
        match source {
            BoundError::PivotBudgetExhausted => {
                StrategyError::BudgetExceeded { strategy, reason: ReasonCode::LpBudgetExhausted }
            }
            BoundError::Cancelled => StrategyError::Cancelled { strategy },
            source => StrategyError::TdUnavailable { strategy, source },
        }
    }

    /// Runs the strategy a completed [`Selection`] settled on, reusing the
    /// planning artifacts it carries (the best decomposition, the adaptive
    /// evaluator) so no LP is ever solved twice.
    fn execute_selection(
        &self,
        db: &Database,
        selection: &Selection,
    ) -> Result<VarRelation, StrategyError> {
        match selection.executed {
            EvaluationStrategy::Yannakakis => {
                // The acyclic fast-path rule verified free-connexity.
                yannakakis_query(&self.query, db).ok_or(StrategyError::CyclicYannakakis)
            }
            EvaluationStrategy::StaticTd => {
                let td = selection
                    .best_td
                    .clone()
                    .unwrap_or_else(|| TreeDecomposition::new(vec![self.query.all_vars()]));
                Ok(StaticTdPlan::new(td).evaluate_with_engine(&self.query, db, self.engine))
            }
            EvaluationStrategy::Adaptive => match selection.evaluator.as_ref() {
                Some(evaluator) => Ok(evaluator.evaluate_with_engine(&self.query, db, self.engine)),
                // The selector always plans the evaluator it selects; keep
                // the fail-soft contract even if that invariant breaks.
                None => Ok(GenericJoin::evaluate_with_engine(&self.query, db, self.engine)),
            },
            EvaluationStrategy::GenericJoin | EvaluationStrategy::Auto => {
                Ok(GenericJoin::evaluate_with_engine(&self.query, db, self.engine))
            }
            EvaluationStrategy::BinaryJoin => {
                Ok(BinaryJoinPlan::new().evaluate_with_engine(&self.query, db, self.engine))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::{parse_query, Var};
    use panda_relation::Relation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_db(n: u64, edges: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            db.insert(
                name,
                Relation::from_rows(
                    2,
                    (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]),
                )
                .deduped(),
            );
        }
        db
    }

    #[test]
    fn auto_strategy_picks_yannakakis_for_free_connex_acyclic_queries() {
        // Q(A,B) over the 2-path is free-connex; Q(A,C) over the same body
        // is the classic non-free-connex example (its head atom closes a
        // triangle with the body).
        let q = parse_query("Q(A,B) :- R(A,B), S(B,C)").unwrap();
        let panda =
            Panda::new(q.clone()).with_statistics(StatisticsSet::identical_cardinalities(&q, 1000));
        assert!(panda.is_free_connex_acyclic());
        let db = random_db(10, 40, 1);
        let report = panda.plan_report(&db).unwrap();
        assert_eq!(report.strategy, EvaluationStrategy::Yannakakis);
        assert_eq!(report.rule, SelectorRule::AcyclicFastPath);
        assert_eq!(report.reason, ReasonCode::AcyclicFreeConnex);
        assert_eq!(report.fhtw, Some(Rat::ONE));
        assert!(report.downgrades.is_empty());

        let not_fc = parse_query("Q(A,C) :- R(A,B), S(B,C)").unwrap();
        assert!(!Panda::new(not_fc).is_free_connex_acyclic());
    }

    #[test]
    fn auto_strategy_picks_adaptive_for_the_four_cycle() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let panda = Panda::new(q.clone())
            .with_statistics(StatisticsSet::identical_cardinalities(&q, 1 << 12));
        let db = random_db(10, 50, 2);
        let report = panda.plan_report(&db).unwrap();
        assert_eq!(report.strategy, EvaluationStrategy::Adaptive);
        assert_eq!(report.selected, EvaluationStrategy::Adaptive);
        assert_eq!(report.rule, SelectorRule::SubwGap);
        assert_eq!(report.reason, ReasonCode::SubwBelowFhtw);
        assert_eq!(report.fhtw, Some(Rat::from_int(2)));
        assert_eq!(report.subw, Some(Rat::new(3, 2)));
        assert_eq!(report.tds.len(), 2);
        assert!(!report.partitions.is_empty());
        assert!(report.branch_count >= 1);
        // One bound per bag selector, each carrying its verified flow.
        assert!(!report.branch_bounds.is_empty());
        for bound in &report.branch_bounds {
            assert!(bound.log_bound <= Rat::new(3, 2));
            bound
                .certificate
                .as_ref()
                .expect("adaptive bounds are certified")
                .verify_identity()
                .unwrap();
        }
    }

    #[test]
    fn a_non_free_connex_projection_uses_a_static_plan() {
        // Q(X,Y) :- R(X,Z), S(Z,Y) is acyclic but not free-connex; the only
        // free-connex TD is the trivial one, so subw = fhtw and the static
        // plan is chosen.
        let q = parse_query("Q(X,Y) :- R(X,Z), S(Z,Y)").unwrap();
        let panda = Panda::new(q);
        assert!(!panda.is_free_connex_acyclic());
        let db = random_db(10, 40, 3);
        let report = panda.plan_report(&db).unwrap();
        assert_eq!(report.strategy, EvaluationStrategy::StaticTd);
        assert_eq!(report.rule, SelectorRule::TdFallback);
        assert_eq!(report.reason, ReasonCode::NoWidthGap);
        // Static branch bounds cover the best TD's bags, certified.
        assert!(!report.branch_bounds.is_empty());
        for bound in &report.branch_bounds {
            assert_eq!(bound.bags.len(), 1);
            bound
                .certificate
                .as_ref()
                .expect("within budget => certified")
                .verify_identity()
                .unwrap();
        }
    }

    #[test]
    fn all_strategies_agree_on_the_four_cycle() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let panda = Panda::new(q.clone());
        let db = random_db(9, 45, 4);
        let order: Vec<Var> = q.free_vars().to_vec();
        let reference = panda
            .evaluate_with(&db, EvaluationStrategy::GenericJoin)
            .canonical_rows_ordered(&order);
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::StaticTd,
            EvaluationStrategy::Adaptive,
            EvaluationStrategy::BinaryJoin,
        ] {
            let got = panda.evaluate_with(&db, strategy).canonical_rows_ordered(&order);
            assert_eq!(got, reference, "strategy {strategy:?}");
        }
    }

    #[test]
    fn all_strategies_agree_on_an_acyclic_query() {
        let q = parse_query("Q(A,C) :- R(A,B), S(B,C), T(C,D)").unwrap();
        let panda = Panda::new(q.clone());
        let db = random_db(12, 50, 5);
        let order: Vec<Var> = q.free_vars().to_vec();
        let reference = panda
            .evaluate_with(&db, EvaluationStrategy::GenericJoin)
            .canonical_rows_ordered(&order);
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::Yannakakis,
            EvaluationStrategy::StaticTd,
            EvaluationStrategy::BinaryJoin,
        ] {
            let got = panda.evaluate_with(&db, strategy).canonical_rows_ordered(&order);
            assert_eq!(got, reference, "strategy {strategy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn yannakakis_on_a_cyclic_query_panics() {
        let q = parse_query("Tri() :- R(A,B), S(B,C), T(C,A)").unwrap();
        let db = random_db(5, 10, 6);
        let _ = Panda::new(q).evaluate_with(&db, EvaluationStrategy::Yannakakis);
    }

    #[test]
    fn try_evaluate_reports_cyclic_yannakakis_gracefully() {
        let q = parse_query("Tri() :- R(A,B), S(B,C), T(C,A)").unwrap();
        let db = random_db(5, 10, 6);
        let panda = Panda::new(q);
        let err = panda
            .try_evaluate_with(&db, EvaluationStrategy::Yannakakis)
            .expect_err("cyclic query must not run Yannakakis");
        assert!(matches!(err, StrategyError::CyclicYannakakis));
        assert!(err.to_string().contains("acyclic"));
        // Every other strategy still succeeds on the same input, and Auto
        // routes around the cycle rather than surfacing the error.
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::GenericJoin,
            EvaluationStrategy::BinaryJoin,
        ] {
            assert!(panda.try_evaluate_with(&db, strategy).is_ok(), "strategy {strategy:?}");
        }
    }

    #[test]
    fn a_cancelled_token_aborts_requests_with_structured_errors() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let db = random_db(9, 45, 7);
        let token = CancelToken::new();
        let panda = Panda::new(q).with_cancel_token(token.clone());

        // An un-cancelled token changes nothing: results and reports are
        // bit-identical to a token-free evaluator.
        let plain = Panda::new(panda.query().clone());
        let order: Vec<Var> = panda.query().free_vars().to_vec();
        assert_eq!(
            panda.evaluate(&db).canonical_rows_ordered(&order),
            plain.evaluate(&db).canonical_rows_ordered(&order),
        );
        assert_eq!(
            panda.explain(&db).unwrap().to_string(),
            plain.explain(&db).unwrap().to_string(),
        );

        // Once the token fires, every entry point reports cancellation —
        // including Auto, which never absorbs a cancel into a downgrade.
        token.cancel();
        for strategy in [
            EvaluationStrategy::Auto,
            EvaluationStrategy::Yannakakis,
            EvaluationStrategy::GenericJoin,
        ] {
            let err = panda.try_evaluate_with(&db, strategy).expect_err("cancelled");
            assert_eq!(err, StrategyError::Cancelled { strategy });
            assert!(err.to_string().contains("cancelled"));
        }
        assert!(matches!(panda.plan_report(&db), Err(BoundError::Cancelled)));

        // Cancellation is per-token, not per-query: a fresh evaluator for
        // the same query still runs normally.
        assert!(plain.try_evaluate_with(&db, EvaluationStrategy::Auto).is_ok());
    }

    #[test]
    fn a_mid_planning_cancel_aborts_at_the_next_pivot() {
        // Attach a pre-cancelled token *and* a pivot budget: planning then
        // has in-loop polling points and must abort inside the LP chain
        // (exercised via the explicit strategy, which skips the entry check
        // only in the sense that planning starts before any pivot runs).
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let db = random_db(9, 45, 8);
        let token = CancelToken::new();
        token.cancel();
        let panda = Panda::new(q)
            .with_budgets(Budgets::unlimited().with_lp_pivot_budget(u64::MAX))
            .with_cancel_token(token);
        // The entry check fires first here; drop to the planning internals
        // by calling the budgeted planner directly.
        let stats = panda.stats_for(&db);
        let mut budget =
            panda_entropy::PivotBudget::new(u64::MAX).with_cancel_token(CancelToken::new());
        assert!(StaticTdPlan::best_for_budgeted(panda.query(), &stats, &mut budget).is_ok());
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let mut budget = panda_entropy::PivotBudget::new(u64::MAX).with_cancel_token(cancelled);
        assert!(matches!(
            StaticTdPlan::best_for_budgeted(panda.query(), &stats, &mut budget),
            Err(BoundError::Cancelled)
        ));
        // The poll consumed no pivots before aborting.
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(EvaluationStrategy::Auto.name(), "auto");
        assert_eq!(EvaluationStrategy::Adaptive.to_string(), "adaptive");
        assert_eq!(EvaluationStrategy::StaticTd.to_string(), "static-td");
    }
}
