//! A worst-case-optimal join (generic join).
//!
//! The AGM bound (Section 2.1 of the paper) states that the output of a
//! full CQ under cardinality constraints is at most `Π_R N_R^{x_R}` for any
//! fractional edge cover `x`; *worst-case-optimal* join algorithms run in
//! time proportional to that bound.  [`GenericJoin`] implements the classic
//! variable-at-a-time scheme of Ngo–Porat–Ré–Rudra / "skew strikes back":
//! variables are bound one at a time and the candidate values for each
//! variable are obtained by intersecting, over all atoms containing it, the
//! values compatible with the current partial assignment.

// panda-lint: allow-file(P1) -- the per-variable candidate lists are
// built non-empty immediately before the split_first/expect calls, and
// column positions come from each atom's own schema.

use std::collections::HashMap;
use std::sync::Arc;

use panda_query::{ConjunctiveQuery, Var, VarSet};
use panda_relation::{Database, Relation, Value, ValueIndex};

use crate::binding::VarRelation;
use crate::config::Engine;

/// A worst-case-optimal join evaluator for (sub)queries.
#[derive(Debug, Clone)]
pub struct GenericJoin {
    /// The variable order used for the backtracking search.  Defaults to
    /// ascending variable index; callers may override it.
    pub variable_order: Vec<Var>,
}

impl GenericJoin {
    /// Creates an evaluator with the default (ascending-index) variable
    /// order over the given variables.
    #[must_use]
    pub fn new(vars: VarSet) -> Self {
        GenericJoin { variable_order: vars.to_vec() }
    }

    /// Creates an evaluator with an explicit variable order.
    #[must_use]
    pub fn with_order(variable_order: Vec<Var>) -> Self {
        GenericJoin { variable_order }
    }

    /// Joins the given bound relations over all variables of the order that
    /// appear in them and projects the result onto `output`, deduplicated.
    /// Equivalent to [`GenericJoin::join_with_engine`] with the engine
    /// selected by `PANDA_THREADS` ([`Engine::from_env`], sequential by
    /// default).
    ///
    /// Variable-free relations are treated as Boolean filters: if any of
    /// them is empty the result is empty.
    ///
    /// # Panics
    ///
    /// Panics if the variable order does not cover every variable occurring
    /// in the inputs (an incomplete order would silently drop those
    /// variables' join constraints and return wrong answers), or if an
    /// output variable does not occur in the join.
    #[must_use]
    pub fn join(&self, inputs: &[VarRelation], output: &[Var]) -> VarRelation {
        self.join_with_engine(inputs, output, Engine::from_env())
    }

    /// [`GenericJoin::join`] under an explicit [`Engine`].
    ///
    /// Under a parallel engine the **top-level branches** of the
    /// backtracking search — the candidate values of the first variable in
    /// the order — are split into contiguous chunks evaluated on the
    /// thread pool; chunk outputs are concatenated in candidate order and
    /// deduplicated exactly like the sequential stream, so the result is
    /// bit-identical to sequential evaluation at any thread count.
    ///
    /// # Panics
    ///
    /// As [`GenericJoin::join`].
    #[must_use]
    pub fn join_with_engine(
        &self,
        inputs: &[VarRelation],
        output: &[Var],
        engine: Engine,
    ) -> VarRelation {
        // Keep only the order variables that actually occur — but the order
        // must mention every occurring variable.
        let occurring: VarSet = inputs.iter().fold(VarSet::EMPTY, |acc, r| acc.union(r.var_set()));
        let order: Vec<Var> =
            self.variable_order.iter().copied().filter(|v| occurring.contains(*v)).collect();
        let covered: VarSet = order.iter().copied().collect();
        assert!(
            occurring.is_subset_of(covered),
            "variable order {:?} does not cover the occurring variables {:?}; the missing \
             variables' join constraints would be dropped",
            self.variable_order,
            occurring.difference(covered).to_vec()
        );
        for out in output {
            assert!(order.contains(out), "output variable {out:?} does not occur in the join");
        }
        if inputs.iter().any(|r| r.is_empty() && r.vars.is_empty()) {
            return VarRelation::new(output.to_vec(), Relation::new(output.len()));
        }

        let mut levels: Vec<Vec<LevelIndex>> = Vec::with_capacity(order.len());
        for (level, &v) in order.iter().enumerate() {
            let bound_set: VarSet = order[..level].iter().copied().collect();
            let mut per_atom = Vec::new();
            for input in inputs {
                let Some(v_col) = input.column_of(v) else { continue };
                // Enumerating the schema yields ascending (hence canonical)
                // column order.
                let (bound_cols, bound_vars): (Vec<usize>, Vec<Var>) = input
                    .vars
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| bound_set.contains(**w))
                    .map(|(i, w)| (i, *w))
                    .unzip();
                let candidates = input.rel.value_index(&bound_cols, v_col);
                per_atom.push(LevelIndex { bound_vars, candidates });
            }
            levels.push(per_atom);
        }

        let output_vars = output.to_vec();
        if !order.is_empty() && !levels[0].is_empty() {
            // Top-level case split: the candidates of the first variable.
            // Both engines consume this one candidate sequence, so the
            // parallel/sequential bit-identical contract has a single
            // source of truth for the top-level order.
            let Some(candidates) = top_level_candidates(&levels[0]) else {
                return VarRelation::new(output_vars, Relation::new(output.len()));
            };
            let v0 = order[0];
            let run_chunk = |chunk: &[Value]| -> Relation {
                let mut assignment: HashMap<Var, Value> = HashMap::new();
                let mut out = Relation::new(output_vars.len());
                for &value in chunk {
                    assignment.insert(v0, value);
                    search(&order, 1, &levels, &mut assignment, &output_vars, &mut out);
                    assignment.remove(&v0);
                }
                out
            };
            let threads = engine.threads();
            if threads > 1 && candidates.len() >= 2 {
                let k = threads.min(candidates.len());
                let chunks: Vec<&[Value]> = (0..k)
                    .map(|i| &candidates[candidates.len() * i / k..candidates.len() * (i + 1) / k])
                    .collect();
                let pieces: Vec<Relation> = engine.install(|| {
                    use rayon::prelude::*;
                    chunks.par_iter().map(|chunk| run_chunk(chunk)).collect()
                });
                let merged = Relation::concatenated(output_vars.len(), &pieces);
                return VarRelation::new(output_vars, merged.deduped());
            }
            let out = run_chunk(&candidates);
            return VarRelation::new(output_vars, out.deduped());
        }

        // Degenerate shapes (no occurring variables, or a first variable
        // bound by no atom): plain backtracking from level 0.
        let mut assignment: HashMap<Var, Value> = HashMap::new();
        let mut out = Relation::new(output.len());
        search(&order, 0, &levels, &mut assignment, &output_vars, &mut out);
        VarRelation::new(output_vars, out.deduped())
    }

    /// Evaluates a full or projected conjunctive query with a worst-case
    /// optimal join over all its atoms, returning the answer over the free
    /// variables.  Uses the engine selected by `PANDA_THREADS`
    /// ([`Engine::from_env`], sequential by default).
    #[must_use]
    pub fn evaluate(query: &ConjunctiveQuery, db: &Database) -> VarRelation {
        GenericJoin::evaluate_with_engine(query, db, Engine::from_env())
    }

    /// [`GenericJoin::evaluate`] under an explicit [`Engine`].
    #[must_use]
    pub fn evaluate_with_engine(
        query: &ConjunctiveQuery,
        db: &Database,
        engine: Engine,
    ) -> VarRelation {
        let inputs = VarRelation::bind_all(query, db);
        let join = GenericJoin::new(query.all_vars());
        join.join_with_engine(&inputs, &query.free_vars().to_vec(), engine)
    }
}

/// Per level, per atom: an index from the atom's already-bound columns to
/// the distinct candidate values of the current variable.  These are served
/// from each relation's shared cache, so repeated generic joins over the
/// same relation (across PANDA branches, or across bench iterations)
/// rebuild nothing.
struct LevelIndex {
    /// variables of the atom bound before this level, in ascending column
    /// order (the cache's canonical key order)
    bound_vars: Vec<Var>,
    /// candidate values for the level variable, per bound key
    candidates: Arc<ValueIndex>,
}

/// The intersected candidate values of the *first* order variable — the
/// generic join's top-level branches, in exactly the order the sequential
/// search visits them (ascending: the smallest atom's sorted candidate
/// list, filtered against the others).  `None` means some atom has no
/// tuples at all, i.e. an empty result.
fn top_level_candidates(indexes: &[LevelIndex]) -> Option<Vec<Value>> {
    let mut lists: Vec<&Vec<Value>> = Vec::with_capacity(indexes.len());
    for idx in indexes {
        debug_assert!(idx.bound_vars.is_empty(), "level 0 has no bound variables");
        lists.push(idx.candidates.candidates(&[])?);
    }
    lists.sort_by_key(|l| l.len());
    let (smallest, rest) = lists.split_first().expect("at least one atom");
    Some(
        smallest
            .iter()
            .copied()
            .filter(|value| rest.iter().all(|other| other.binary_search(value).is_ok()))
            .collect(),
    )
}

/// The recursive backtracking search of the generic join: binds the
/// variables of `order[level..]` one at a time by intersecting, per atom,
/// the candidate values compatible with the current partial `assignment`,
/// and pushes the projection of every full assignment onto `output` into
/// `out` (in candidate order — deterministic).
fn search(
    order: &[Var],
    level: usize,
    levels: &[Vec<LevelIndex>],
    assignment: &mut HashMap<Var, Value>,
    output: &[Var],
    out: &mut Relation,
) {
    if level == order.len() {
        let row: Vec<Value> = output.iter().map(|v| assignment[v]).collect();
        out.push_row(&row);
        return;
    }
    let v = order[level];
    let indexes = &levels[level];
    if indexes.is_empty() {
        // The variable occurs in no atom (cannot happen for well-formed
        // queries); skip it.
        search(order, level + 1, levels, assignment, output, out);
        return;
    }
    // Candidate lists for the current assignment, one per atom containing
    // v; intersect starting from the smallest.
    let mut lists: Vec<&Vec<Value>> = Vec::with_capacity(indexes.len());
    for idx in indexes {
        let key: Vec<Value> = idx.bound_vars.iter().map(|w| assignment[w]).collect();
        match idx.candidates.candidates(&key) {
            Some(values) => lists.push(values),
            None => return, // no compatible tuple in this atom
        }
    }
    lists.sort_by_key(|l| l.len());
    let (smallest, rest) = lists.split_first().expect("non-empty");
    'values: for &value in smallest.iter() {
        for other in rest {
            if other.binary_search(&value).is_err() {
                continue 'values;
            }
        }
        assignment.insert(v, value);
        search(order, level + 1, levels, assignment, output, out);
        assignment.remove(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::parse_query;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn triangle_db(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        let rel = Relation::from_rows(2, edges.iter().map(|&(a, b)| [a, b]));
        db.insert("R", rel.clone());
        db.insert("S", rel.clone());
        db.insert("T", rel);
        db
    }

    #[test]
    fn triangle_query_finds_all_triangles() {
        // Triangle on a small graph: edges 1-2, 2-3, 1-3 plus noise.
        let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
        let db = triangle_db(&[(1, 2), (2, 3), (1, 3), (4, 5)]);
        let out = GenericJoin::evaluate(&q, &db);
        assert_eq!(out.rel.canonical_rows(), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn projection_and_boolean_queries() {
        let q = parse_query("Q(A) :- R(A,B), S(B,C)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [4, 9]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 3], [2, 5]]));
        let out = GenericJoin::evaluate(&q, &db);
        assert_eq!(out.rel.canonical_rows(), vec![vec![1]]);

        let qb = parse_query("Q() :- R(A,B), S(B,C)").unwrap();
        let out = GenericJoin::evaluate(&qb, &db);
        assert_eq!(out.len(), 1); // true
        let empty_db = Database::new();
        let out = GenericJoin::evaluate(&qb, &empty_db);
        assert_eq!(out.len(), 0); // false
    }

    #[test]
    fn four_cycle_matches_nested_loop_semantics() {
        let q = parse_query("Q(X,Y,Z,W) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            let rel = Relation::from_rows(
                2,
                (0..60).map(|_| [rng.gen_range(0..8u64), rng.gen_range(0..8u64)]),
            )
            .deduped();
            db.insert(name, rel);
        }
        let fast = GenericJoin::evaluate(&q, &db);
        // Nested-loop reference.
        let mut expected = Vec::new();
        let r = db.relation("R").unwrap();
        let s = db.relation("S").unwrap();
        let t = db.relation("T").unwrap();
        let u = db.relation("U").unwrap();
        for er in r.iter() {
            for es in s.iter() {
                if er[1] != es[0] {
                    continue;
                }
                for et in t.iter() {
                    if es[1] != et[0] {
                        continue;
                    }
                    for eu in u.iter() {
                        if et[1] == eu[0] && eu[1] == er[0] {
                            expected.push(vec![er[0], er[1], es[1], et[1]]);
                        }
                    }
                }
            }
        }
        expected.sort();
        expected.dedup();
        assert_eq!(fast.rel.canonical_rows(), expected);
    }

    #[test]
    fn custom_variable_order_gives_same_answer() {
        let q = parse_query("Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)").unwrap();
        let db = triangle_db(&[(1, 2), (2, 3), (1, 3), (3, 1), (2, 1)]);
        let inputs = VarRelation::bind_all(&q, &db);
        let default = GenericJoin::new(q.all_vars()).join(&inputs, &q.free_vars().to_vec());
        let reversed = GenericJoin::with_order(vec![Var(2), Var(0), Var(1)])
            .join(&inputs, &q.free_vars().to_vec());
        assert_eq!(
            default.canonical_rows_ordered(&[Var(0), Var(1), Var(2)]),
            reversed.canonical_rows_ordered(&[Var(0), Var(1), Var(2)])
        );
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn incomplete_variable_order_panics_instead_of_dropping_constraints() {
        // Regression: an order missing an occurring variable used to drop
        // that variable's join constraints silently.  Here Y links R and S;
        // with order [X] the old code returned {1, 4} instead of {1}.
        let r =
            VarRelation::new(vec![Var(0), Var(1)], Relation::from_rows(2, vec![[1, 2], [4, 9]]));
        let s = VarRelation::new(vec![Var(1)], Relation::from_rows(1, vec![[2]]));
        let _ = GenericJoin::with_order(vec![Var(0)]).join(&[r, s], &[Var(0)]);
    }

    #[test]
    fn variable_free_relations_still_act_as_boolean_filters() {
        let r = VarRelation::new(vec![Var(0)], Relation::from_rows(1, vec![[1], [2]]));
        let t = VarRelation::boolean(true);
        let out = GenericJoin::with_order(vec![Var(0)]).join(&[r.clone(), t], &[Var(0)]);
        assert_eq!(out.len(), 2);
        let f = VarRelation::boolean(false);
        let out = GenericJoin::with_order(vec![Var(0)]).join(&[r, f], &[Var(0)]);
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn triangle_output_respects_agm_bound_on_random_graphs() {
        // |output| ≤ N^{3/2} for the triangle query (AGM bound).
        let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let edges: Vec<(u64, u64)> =
                (0..200).map(|_| (rng.gen_range(0..25u64), rng.gen_range(0..25u64))).collect();
            let db = triangle_db(&edges);
            let n = db.relation("R").unwrap().distinct_count() as f64;
            let out = GenericJoin::evaluate(&q, &db);
            assert!((out.len() as f64) <= n.powf(1.5) + 1e-9);
        }
    }

    #[test]
    fn parallel_top_level_split_is_bit_identical_to_sequential() {
        use crate::config::{Engine, Parallelism};
        let q = parse_query("Q(X,Y,Z,W) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut db = Database::new();
        for name in ["R", "S", "T", "U"] {
            let rel = Relation::from_rows(
                2,
                (0..80).map(|_| [rng.gen_range(0..10u64), rng.gen_range(0..10u64)]),
            )
            .deduped();
            db.insert(name, rel);
        }
        let seq = GenericJoin::evaluate_with_engine(&q, &db, Engine::Sequential);
        for threads in [2, 3, 8] {
            let par = GenericJoin::evaluate_with_engine(
                &q,
                &db,
                Engine::Parallel(Parallelism::threads(threads)),
            );
            assert_eq!(par.vars, seq.vars);
            // Bit-identical: same rows in the same storage order, not just
            // the same set.
            let seq_rows: Vec<Vec<u64>> = seq.rel.iter().map(<[u64]>::to_vec).collect();
            let par_rows: Vec<Vec<u64>> = par.rel.iter().map(<[u64]>::to_vec).collect();
            assert_eq!(par_rows, seq_rows, "threads = {threads}");
        }
    }

    #[test]
    fn cartesian_queries_work() {
        let q = parse_query("Q(A,B) :- R(A), S(B)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(1, vec![[1], [2]]));
        db.insert("S", Relation::from_rows(1, vec![[7], [8], [9]]));
        let out = GenericJoin::evaluate(&q, &db);
        assert_eq!(out.len(), 6);
    }
}
