//! The cross-query plan cache.
//!
//! Planning a cyclic query is LP work — the fhtw/subw chains dominate
//! end-to-end time on small and medium inputs — and it is a pure function
//! of `(query structure, statistics, budgets, requested strategy)`.  This
//! module caches completed (crate-internal) `Selection`s process-wide
//! under exactly that
//! key, so a repeated (or structurally-isomorphic — see
//! [`crate::fingerprint`]) query skips straight to execution.
//!
//! **Key.**  The canonical query encoding (renaming-invariant), the
//! canonical statistics encoding (label-free, renaming-invariant, derived
//! from the exact [`StatisticsSet`](panda_entropy::StatisticsSet) the
//! planner consumes — strictly stronger than
//! [`Database::statistics_fingerprint`](panda_relation::Database::statistics_fingerprint)),
//! the [`Budgets`], the requested [`EvaluationStrategy`], and the
//! `want_widths` flag.  The thread count is deliberately **excluded**:
//! planning is engine-independent (CI's explain-stability job pins this),
//! so a plan built at one `PANDA_THREADS` setting is byte-identical to the
//! plan built at any other.
//!
//! **Serving.**  A hit whose entry was inserted by a query with the *same*
//! variable numbering (the common case: the same query re-run, a query
//! differing only in variable/query names, or a body-atom permutation
//! preserving the variables' first-occurrence order) serves the cached
//! selection as-is — byte-identical to what a
//! cold `select` would return, so warm execution, reports and EXPLAIN
//! renderings are bit-identical to cold ones.  A hit across a genuinely
//! different numbering (isomorphic queries whose variables first occur in
//! different orders) is served on the evaluation path by renaming the
//! cached plan's execution artifacts (decompositions, degree partitions)
//! through the canonical bijection; the width *reports* are dropped from
//! the renamed copy (execution never reads them) and report-path
//! (`want_widths`) entries key on the exact numbering instead, so every
//! served report is always in the query's own variables.
//!
//! **Eviction.**  Deterministic least-recently-used by access *count*
//! ticks — never wall-clock time (the workspace D3 lint bans clocks) — in
//! a capacity-bounded ([`PLAN_CACHE_CAP`]) linear-scan store, so cache
//! behaviour is a pure function of the request sequence.
//!
//! The cache is on by default and disabled by `PANDA_PLAN_CACHE=off`
//! ([`crate::config::plan_cache_enabled`]); CI runs the conformance suite
//! with it off to keep the cold path honest, and the
//! `plan_cache_differential` suite pins cold/warm bit-identity.

// panda-lint: allow(D2) -- the import feeds the plan cache below: pure
// memoisation of deterministic selections (see `PLAN_CACHE`).
use std::sync::{Arc, Mutex, PoisonError};

use panda_query::{TreeDecomposition, Var, VarSet};

use crate::config::Budgets;
use crate::fingerprint::rename_set;
use crate::materialize::MaterializedSubplan;
use crate::panda::EvaluationStrategy;
use crate::plans::{PandaEvaluator, PartitionSpec};
use crate::selector::Selection;

/// Capacity of the process-wide plan cache (entries).  Eviction is
/// deterministic LRU by access count.
pub const PLAN_CACHE_CAP: usize = 64;

/// The cache key — see the module docs for what is included and why the
/// thread count is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PlanKey {
    /// Canonical query encoding ([`crate::fingerprint::canonicalize_query`]).
    pub(crate) canon: Vec<u8>,
    /// For report-path (`want_widths`) entries: the exact canonical
    /// renaming, so reports — which embed variable sets in certificates —
    /// are only ever served to the numbering that built them.
    pub(crate) exact: Option<Vec<u32>>,
    /// Canonical statistics encoding
    /// ([`crate::fingerprint::canonical_statistics_encoding`]).
    pub(crate) stats: Vec<u8>,
    /// The planning budgets (they shape downgrades, hence the plan).
    pub(crate) budgets: Budgets,
    /// The requested strategy (rule 1 short-circuits on it).
    pub(crate) requested: EvaluationStrategy,
    /// Whether informational widths were requested (the report path).
    pub(crate) want_widths: bool,
}

struct Slot {
    /// The canonical renaming of the query that inserted the entry.
    renaming: Vec<u32>,
    selection: Arc<Selection>,
    last_used: u64,
}

struct CacheState {
    entries: Vec<(PlanKey, Slot)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

// panda-lint: allow(D2) -- memoisation only: a selection is a pure
// function of its key (the selector is deterministic and
// engine-independent), so whichever thread populates a slot, every reader
// observes an identical plan; eviction affects only cost, never results.
static PLAN_CACHE: Mutex<CacheState> =
    Mutex::new(CacheState { entries: Vec::new(), tick: 0, hits: 0, misses: 0, evictions: 0 });

fn lock() -> std::sync::MutexGuard<'static, CacheState> {
    // panda-lint: allow(D2) -- see PLAN_CACHE: pure memoisation.
    PLAN_CACHE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Looks up a selection, refreshing its LRU position.  `renaming` is the
/// *current* query's canonical renaming; an entry inserted under a
/// different numbering is served renamed (evaluation-path entries only —
/// see the module docs).
///
/// `fallback` is an optional second key tried when `key` is absent — the
/// evaluation path passes its report-path twin, whose entries carry
/// strictly more information (widths) than execution needs, so an
/// explain-then-evaluate sequence plans exactly once.  One lookup counts
/// one hit or one miss regardless of which tier served it.
pub(crate) fn lookup(
    key: &PlanKey,
    fallback: Option<&PlanKey>,
    renaming: &[u32],
) -> Option<Selection> {
    let mut cache = lock();
    let found = cache
        .entries
        .iter()
        .position(|(k, _)| k == key)
        .or_else(|| fallback.and_then(|f| cache.entries.iter().position(|(k, _)| k == f)));
    let Some(pos) = found else {
        cache.misses += 1;
        return None;
    };
    cache.tick += 1;
    let tick = cache.tick;
    cache.hits += 1;
    // panda-lint: allow(P1) -- `pos` was produced by `position` on this
    // very vector under the same lock.
    let slot = &mut cache.entries[pos].1;
    slot.last_used = tick;
    if slot.renaming == renaming {
        Some((*slot.selection).clone())
    } else {
        Some(rename_selection(&slot.selection, &compose(&slot.renaming, renaming)))
    }
}

/// Inserts a freshly planned selection, evicting the least-recently-used
/// entry if the cache is full.  Returns `true` iff an eviction happened.
pub(crate) fn insert(key: PlanKey, renaming: Vec<u32>, selection: &Selection) -> bool {
    let mut cache = lock();
    cache.tick += 1;
    let tick = cache.tick;
    if let Some(pos) = cache.entries.iter().position(|(k, _)| *k == key) {
        // A concurrent planner raced us; refresh the slot (both planned
        // the identical selection) without evicting.
        // panda-lint: allow(P1) -- `pos` was produced by `position` on
        // this very vector under the same lock.
        let slot = &mut cache.entries[pos].1;
        slot.last_used = tick;
        return false;
    }
    let mut evicted = false;
    if cache.entries.len() >= PLAN_CACHE_CAP {
        // Deterministic LRU: ticks are unique, so the minimum is unique.
        let victim = cache
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, slot))| slot.last_used)
            .map(|(i, _)| i)
            // panda-lint: allow(P1) -- guarded by the `len() >= CAP` check
            // with `CAP > 0`, so the vector is non-empty here.
            .expect("cache is non-empty at capacity");
        cache.entries.remove(victim);
        cache.evictions += 1;
        evicted = true;
    }
    cache
        .entries
        .push((key, Slot { renaming, selection: Arc::new(selection.clone()), last_used: tick }));
    evicted
}

/// `sigma[v]` maps the cached query's variable `v` to the current query's
/// variable with the same canonical id.
fn compose(cached: &[u32], current: &[u32]) -> Vec<u32> {
    let mut inverse = vec![0u32; current.len()];
    for (var, &canonical) in current.iter().enumerate() {
        // panda-lint: allow(P1) -- both slices are canonical renamings of
        // the same canonical encoding: bijections on `0..len`, so every
        // canonical id indexes in range.
        inverse[canonical as usize] = var as u32;
    }
    // panda-lint: allow(P1) -- see above: canonical ids are `< len`.
    cached.iter().map(|&canonical| inverse[canonical as usize]).collect()
}

/// Renames a cached selection's execution artifacts into the current
/// query's variables.  Width reports are dropped (they are only consumed
/// by the report path, whose entries never take this branch).
fn rename_selection(selection: &Selection, sigma: &[u32]) -> Selection {
    let set = |s: VarSet| rename_set(s, sigma);
    let td =
        |t: &TreeDecomposition| TreeDecomposition::new(t.bags().iter().map(|&b| set(b)).collect());
    // panda-lint: allow(P1) -- `sigma` has one slot per query variable and
    // plan artifacts only mention query variables.
    let vars = |vs: &[Var]| vs.iter().map(|v| Var(sigma[v.index()])).collect();
    Selection {
        rule: selection.rule,
        reason: selection.reason,
        selected: selection.selected,
        executed: selection.executed,
        downgrades: selection.downgrades.clone(),
        fhtw: None,
        subw: None,
        tds: selection.tds.iter().map(td).collect(),
        best_td: selection.best_td.as_ref().map(td),
        evaluator: selection.evaluator.as_ref().map(|e| PandaEvaluator {
            tds: e.tds.iter().map(td).collect(),
            partitions: e
                .partitions
                .iter()
                .map(|p| PartitionSpec {
                    relation: p.relation.clone(),
                    group_vars: vars(&p.group_vars),
                    value_vars: vars(&p.value_vars),
                })
                .collect(),
            max_branches: e.max_branches,
        }),
        branch_count: selection.branch_count,
        lp_pivots_used: selection.lp_pivots_used,
        materializations: selection
            .materializations
            .iter()
            .map(|m| MaterializedSubplan {
                bag: set(m.bag),
                relations: m.relations.clone(),
                num_scans: m.num_scans,
            })
            .collect(),
    }
}

/// A snapshot of the plan cache's counters and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to cold planning.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// Reads the plan cache counters — process-wide observability for tests,
/// benches and operators.
#[must_use]
pub fn plan_cache_stats() -> PlanCacheStats {
    let cache = lock();
    PlanCacheStats {
        hits: cache.hits,
        misses: cache.misses,
        evictions: cache.evictions,
        entries: cache.entries.len(),
    }
}

/// Empties the plan cache and resets its counters.  Results are never
/// affected (a cleared cache merely re-plans); tests and benches use this
/// to measure cold/warm behaviour from a known state.
pub fn plan_cache_clear() {
    let mut cache = lock();
    cache.entries.clear();
    cache.tick = 0;
    cache.hits = 0;
    cache.misses = 0;
    cache.evictions = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{ReasonCode, SelectorRule};

    // These tests exercise only the pure helpers: the shared cache itself
    // is pinned end-to-end (cold/warm bit-identity, isomorphic hits, LRU
    // eviction order) by `tests/plan_cache_differential.rs`, which can
    // serialise access to the process-wide state.

    #[test]
    fn compose_maps_cached_variables_onto_current_ones() {
        // cached: v0→c2, v1→c0, v2→c1;  current: v0→c0, v1→c1, v2→c2.
        let sigma = compose(&[2, 0, 1], &[0, 1, 2]);
        // cached v0 has canonical id 2 = current v2, and so on.
        assert_eq!(sigma, vec![2, 0, 1]);
        // Composing a renaming with itself is the identity.
        assert_eq!(compose(&[2, 0, 1], &[2, 0, 1]), vec![0, 1, 2]);
    }

    #[test]
    fn rename_selection_renames_artifacts_and_drops_widths() {
        let mut selection = Selection::new(
            SelectorRule::SubwGap,
            ReasonCode::SubwBelowFhtw,
            EvaluationStrategy::Adaptive,
        );
        let bag: VarSet = [Var(0), Var(1)].into_iter().collect();
        selection.tds = vec![TreeDecomposition::new(vec![bag])];
        selection.best_td = Some(TreeDecomposition::new(vec![bag]));
        selection.materializations =
            vec![MaterializedSubplan { bag, relations: vec!["R".into()], num_scans: 2 }];
        let renamed = rename_selection(&selection, &[1, 2, 0]);
        let expected: VarSet = [Var(1), Var(2)].into_iter().collect();
        assert_eq!(renamed.tds[0].bags(), &[expected]);
        assert_eq!(renamed.best_td.unwrap().bags(), &[expected]);
        assert_eq!(renamed.materializations[0].bag, expected);
        assert_eq!(renamed.materializations[0].num_scans, 2);
        assert!(renamed.fhtw.is_none() && renamed.subw.is_none());
        assert_eq!(renamed.rule, SelectorRule::SubwGap);
    }
}
