//! A textbook binary-join baseline.
//!
//! This is the "classical query plan" the paper contrasts PANDA against: a
//! greedy left-deep sequence of pairwise hash joins with projection
//! push-down.  It has no worst-case guarantees — on cyclic queries or
//! skewed data its intermediate results can be quadratically larger than
//! both the AGM bound and the submodular-width bound, which is exactly what
//! experiment E8 measures.

use panda_query::{ConjunctiveQuery, Var, VarSet};
use panda_relation::Database;

use crate::binding::VarRelation;
use crate::config::Engine;
use crate::yannakakis::empty_result;

/// A greedy left-deep binary-join plan.
#[derive(Debug, Clone, Default)]
pub struct BinaryJoinPlan {
    /// When `true` (default), intermediate results are projected onto the
    /// variables still needed (free variables plus join variables of the
    /// remaining atoms).
    pub project_early: bool,
}

impl BinaryJoinPlan {
    /// Creates the default plan (with projection push-down).
    #[must_use]
    pub fn new() -> Self {
        BinaryJoinPlan { project_early: true }
    }

    /// Creates a plan without projection push-down (closest to a naive
    /// join-then-project execution).
    #[must_use]
    pub fn without_projection_pushdown() -> Self {
        BinaryJoinPlan { project_early: false }
    }

    /// Evaluates the query with greedy pairwise joins: start from the
    /// smallest relation; at every step join with the connected relation
    /// that minimises the estimated intermediate size (estimated as
    /// `|acc| · max-degree of the new attributes`).  Uses the engine
    /// selected by `PANDA_THREADS` ([`Engine::from_env`], sequential by
    /// default).
    #[must_use]
    pub fn evaluate(&self, query: &ConjunctiveQuery, db: &Database) -> VarRelation {
        self.evaluate_with_engine(query, db, Engine::from_env())
    }

    /// [`BinaryJoinPlan::evaluate`] under an explicit [`Engine`]: each
    /// pairwise hash join shards its probe side over the pool
    /// ([`panda_relation::operators::par_join`]), with bit-identical
    /// output at any thread count.
    #[must_use]
    pub fn evaluate_with_engine(
        &self,
        query: &ConjunctiveQuery,
        db: &Database,
        engine: Engine,
    ) -> VarRelation {
        let mut remaining = VarRelation::bind_all(query, db);
        if remaining.iter().any(VarRelation::is_empty) {
            return empty_result(query.free_vars());
        }
        if remaining.is_empty() {
            return VarRelation::boolean(true);
        }
        remaining.sort_by_key(VarRelation::len);
        let mut acc = remaining.remove(0);
        while !remaining.is_empty() {
            // Prefer a connected relation; among those, the smallest.
            // panda-lint: allow(P1) -- `i` ranges over `0..remaining.len()`
            // with no mutation until the loop below picks one element.
            let connected: Vec<usize> = (0..remaining.len())
                .filter(|&i| !remaining[i].var_set().intersect(acc.var_set()).is_empty())
                .collect();
            // panda-lint: allow(P1) -- `connected` holds indices into the
            // still-untouched `remaining` vector.
            let pick = connected.into_iter().min_by_key(|&i| remaining[i].len()).unwrap_or(0);
            let next = remaining.remove(pick);
            acc = acc.natural_join_with_engine(&next, engine);
            if self.project_early {
                let needed: VarSet = remaining
                    .iter()
                    .fold(query.free_vars(), |acc_set, r| acc_set.union(r.var_set()));
                acc = acc.project_to_set(acc.var_set().intersect(needed));
            }
        }
        let order: Vec<Var> = query.free_vars().to_vec();
        acc.project_onto(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic_join::GenericJoin;
    use panda_query::parse_query;
    use panda_relation::Relation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_db(names: &[&str], n: u64, edges: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        for name in names {
            let rel = Relation::from_rows(
                2,
                (0..edges).map(|_| [rng.gen_range(0..n), rng.gen_range(0..n)]),
            )
            .deduped();
            db.insert(*name, rel);
        }
        db
    }

    #[test]
    fn binary_plan_agrees_with_wcoj_on_cyclic_and_acyclic_queries() {
        let queries = [
            "Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)",
            "Q(A,B,C) :- R(A,B), S(B,C)",
            "Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)",
            "Q() :- R(A,B), S(B,C), T(C,A)",
        ];
        for (i, text) in queries.iter().enumerate() {
            let q = parse_query(text).unwrap();
            let db = random_db(&["R", "S", "T", "U"], 9, 50, i as u64);
            let expected = GenericJoin::evaluate(&q, &db);
            for plan in [BinaryJoinPlan::new(), BinaryJoinPlan::without_projection_pushdown()] {
                let got = plan.evaluate(&q, &db);
                let order: Vec<Var> = q.free_vars().to_vec();
                assert_eq!(
                    got.canonical_rows_ordered(&order),
                    expected.canonical_rows_ordered(&order),
                    "query {text}"
                );
            }
        }
    }

    #[test]
    fn empty_input_short_circuits() {
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        db.insert("S", Relation::new(2));
        assert!(BinaryJoinPlan::new().evaluate(&q, &db).is_empty());
    }

    #[test]
    fn disconnected_queries_fall_back_to_products() {
        let q = parse_query("Q(A,B) :- R(A), S(B)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(1, vec![[1], [2]]));
        db.insert("S", Relation::from_rows(1, vec![[5], [6], [7]]));
        assert_eq!(BinaryJoinPlan::new().evaluate(&q, &db).len(), 6);
    }
}
