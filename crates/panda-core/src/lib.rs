//! The PANDA query engine: turning information-theoretic bounds into query
//! plans.
//!
//! This crate ties the whole workspace together (Sections 4, 5 and 8 of the
//! paper):
//!
//! * [`VarRelation`] — a relation whose columns are bound to query
//!   variables; the common currency of every evaluator,
//! * [`GenericJoin`] — a worst-case-optimal join (the AGM-bound runtime of
//!   Section 2.1) used to materialise bags,
//! * [`yannakakis`] — the classic linear-time algorithm for free-connex
//!   acyclic queries (the final step of every static or adaptive plan,
//!   Eq. 12/29),
//! * [`StaticTdPlan`] — the single-tree-decomposition (fhtw) plan of
//!   Section 4,
//! * [`DdrEvaluator`] — evaluation of disjunctive datalog rules with
//!   degree-based data partitioning (Section 8.2),
//! * [`PandaEvaluator`] — the adaptive multi-TD plan of Section 5: the
//!   proof-sequence decompositions decide which degrees to partition on,
//!   every branch is re-costed, and the cheapest decomposition evaluates
//!   it,
//! * [`BinaryJoinPlan`] — a textbook binary-join baseline,
//! * [`faq`] — FAQ / semiring aggregate evaluation over join trees
//!   (Section 9.1),
//! * [`Panda`] — the end-to-end facade: `Panda::new(query).evaluate(&db)`,
//! * [`selector`] — the deterministic, rule-ordered strategy selector
//!   behind [`EvaluationStrategy::Auto`], with machine-readable
//!   [`ReasonCode`]s, observable [`PlanReport`]s/[`Explain`] output, and
//!   fail-soft [`Downgrade`]s under the configured [`Budgets`],
//! * [`config`] — the [`Engine`]/[`Parallelism`] knob: evaluation is
//!   sequential by default and opt-in parallel (deterministic —
//!   bit-identical outputs at any thread count), toggled per evaluator or
//!   through the `PANDA_THREADS` environment variable — the [`Layout`]
//!   knob selecting row-major or columnar relation storage (also
//!   bit-identical, toggled through `PANDA_LAYOUT`), and the [`Budgets`]
//!   for deterministic planning/execution resource caps.
//!
//! See `docs/ARCHITECTURE.md` at the workspace root for the execution
//! flow and the paper-section → module map, and `docs/NOTATION.md` for
//! the paper-notation glossary.

// Every public item in this crate must be documented; broken or missing
// docs fail CI via the `cargo doc` job (RUSTDOCFLAGS="-D warnings").
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod binding;
pub mod config;
pub mod ddr_eval;
pub mod faq;
pub mod fingerprint;
pub mod generic_join;
pub mod materialize;
pub mod panda;
pub mod plan_cache;
pub mod plans;
pub mod selector;
pub mod yannakakis;

pub use binary::BinaryJoinPlan;
pub use binding::VarRelation;
// The cooperative cancellation token lives in `panda-lp` (the pivot loop
// is its polling point); re-exported here because serving layers attach it
// through the `Panda` facade.
pub use config::{plan_cache_enabled, Budgets, Engine, Layout, Parallelism};
pub use ddr_eval::{DdrEvaluator, DdrModel};
pub use fingerprint::{canonicalize_query, CanonicalQuery};
pub use generic_join::GenericJoin;
pub use materialize::MaterializedSubplan;
pub use panda::{EvaluationStrategy, Explain, Panda, PlanReport, StrategyError};
pub use panda_entropy::CancelToken;
pub use plan_cache::{plan_cache_clear, plan_cache_stats, PlanCacheStats, PLAN_CACHE_CAP};
pub use plans::{PandaEvaluator, StaticTdPlan};
pub use selector::{BranchBound, Downgrade, ReasonCode, SelectorRule};
pub use yannakakis::yannakakis_free_connex;
