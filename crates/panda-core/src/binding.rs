//! Relations bound to query variables.

use std::collections::HashMap;

use panda_query::{Atom, ConjunctiveQuery, Var, VarSet};
use panda_relation::{operators, Database, Relation, Value};

use crate::config::Engine;

/// A relation whose columns are bound to query variables: column `i` holds
/// the values of `vars[i]`.  All evaluators operate on `VarRelation`s so
/// that joins and projections can be expressed by variable rather than by
/// positional column index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarRelation {
    /// The variable bound to each column.
    pub vars: Vec<Var>,
    /// The underlying tuples.
    pub rel: Relation,
}

impl VarRelation {
    /// Creates a binding; the number of variables must match the arity.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() != rel.arity()` or a variable repeats.
    #[must_use]
    pub fn new(vars: Vec<Var>, rel: Relation) -> Self {
        assert_eq!(vars.len(), rel.arity(), "schema/arity mismatch");
        for (i, v) in vars.iter().enumerate() {
            assert!(!vars[..i].contains(v), "repeated variable {v:?} in VarRelation schema");
        }
        VarRelation { vars, rel }
    }

    /// Binds a query atom to its relation instance in the database — an
    /// O(1) operation for the common case: the stored relation is handed
    /// out as a zero-copy clone sharing tuple storage and cached indexes.
    /// Repeated variables in the atom (e.g. `R(X,X)`) are handled by
    /// selecting the rows where the corresponding columns are equal and
    /// keeping a single column per variable.
    ///
    /// Missing relations are treated as empty.
    ///
    /// # Panics
    ///
    /// Panics if the stored relation's arity differs from the atom's — a
    /// mismatched `db.insert` would otherwise surface as a confusing
    /// schema panic or row-index error much deeper in evaluation.
    #[must_use]
    pub fn from_atom(atom: &Atom, db: &Database) -> Self {
        let rel = match db.relation(&atom.relation) {
            Some(stored) => {
                assert_eq!(
                    stored.arity(),
                    atom.arity(),
                    "atom {}/{} is bound to a stored relation of arity {}",
                    atom.relation,
                    atom.arity(),
                    stored.arity()
                );
                stored.clone()
            }
            None => Relation::new(atom.arity()),
        };
        // Detect repeated variables.
        let mut kept_cols: Vec<usize> = Vec::new();
        let mut kept_vars: Vec<Var> = Vec::new();
        let mut first_col_of: HashMap<Var, usize> = HashMap::new();
        let mut equality_pairs: Vec<(usize, usize)> = Vec::new();
        for (col, v) in atom.vars.iter().enumerate() {
            if let Some(&first) = first_col_of.get(v) {
                equality_pairs.push((first, col));
            } else {
                first_col_of.insert(*v, col);
                kept_cols.push(col);
                kept_vars.push(*v);
            }
        }
        let mut filtered = if equality_pairs.is_empty() {
            rel
        } else {
            operators::select_where(&rel, |row| {
                // panda-lint: allow(P1) -- `a`, `b` are first-occurrence
                // columns of the atom, and the arity assert above pins
                // every row to exactly `atom.arity()` values.
                equality_pairs.iter().all(|&(a, b)| row[a] == row[b])
            })
        };
        if kept_cols.len() != atom.arity() {
            filtered = operators::reorder(&filtered, &kept_cols);
        }
        // Under the columnar layout, make sure the bound relation carries a
        // column store even when repeated-variable handling produced a
        // fresh relation (the plain-clone case inherits the database
        // relation's store through the shared cache).
        if crate::config::Layout::from_env().is_columnar() {
            let _ = filtered.column_store();
        }
        VarRelation::new(kept_vars, filtered)
    }

    /// Binds every atom of a query.  Thanks to `Arc`-shared relation
    /// storage this hands out zero-copy views of the database — no tuple
    /// data is duplicated per query.
    #[must_use]
    pub fn bind_all(query: &ConjunctiveQuery, db: &Database) -> Vec<VarRelation> {
        query.atoms().iter().map(|a| VarRelation::from_atom(a, db)).collect()
    }

    /// The schema as a variable set.
    #[must_use]
    pub fn var_set(&self) -> VarSet {
        self.vars.iter().copied().collect()
    }

    /// The number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// `true` iff there are no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// The column index of a variable, if bound.
    #[must_use]
    pub fn column_of(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|w| *w == v)
    }

    /// Projects onto the given variables (which must all be bound),
    /// deduplicating.
    ///
    /// # Panics
    ///
    /// Panics if a variable is not in the schema — use
    /// [`VarRelation::try_project_onto`] for the non-panicking form.
    #[must_use]
    pub fn project_onto(&self, vars: &[Var]) -> VarRelation {
        // panda-lint: allow(P1) -- the panic is this method's documented
        // contract; the graceful path is `try_project_onto`.
        self.try_project_onto(vars).expect("projection variable not in schema")
    }

    /// Projects onto the given variables, deduplicating; `None` when a
    /// variable is not bound by the schema.
    #[must_use]
    pub fn try_project_onto(&self, vars: &[Var]) -> Option<VarRelation> {
        let cols: Vec<usize> =
            vars.iter().map(|v| self.column_of(*v)).collect::<Option<Vec<usize>>>()?;
        Some(VarRelation::new(vars.to_vec(), operators::project(&self.rel, &cols)))
    }

    /// Projects onto the intersection of the schema with `keep` (in schema
    /// order).
    #[must_use]
    pub fn project_to_set(&self, keep: VarSet) -> VarRelation {
        let vars: Vec<Var> = self.vars.iter().copied().filter(|v| keep.contains(*v)).collect();
        self.project_onto(&vars)
    }

    /// Natural join on the shared variables.  The output schema is `self`'s
    /// variables followed by `other`'s non-shared variables.
    #[must_use]
    pub fn natural_join(&self, other: &VarRelation) -> VarRelation {
        self.natural_join_with_engine(other, Engine::Sequential)
    }

    /// [`VarRelation::natural_join`] under an explicit [`Engine`]: a
    /// parallel engine routes the join through
    /// [`operators::par_join`] (probe-side shards), whose output is
    /// bit-identical to the sequential operator.
    #[must_use]
    pub fn natural_join_with_engine(&self, other: &VarRelation, engine: Engine) -> VarRelation {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.column_of(*v).map(|j| (i, j)))
            .collect();
        let out_rel = if engine.is_parallel() {
            operators::par_join(&self.rel, &other.rel, &shared, engine.threads())
        } else {
            operators::join(&self.rel, &other.rel, &shared)
        };
        let mut out_vars = self.vars.clone();
        let shared_other: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
        for (j, v) in other.vars.iter().enumerate() {
            if !shared_other.contains(&j) {
                out_vars.push(*v);
            }
        }
        VarRelation::new(out_vars, out_rel)
    }

    /// Semijoin: keep the tuples of `self` that agree with some tuple of
    /// `other` on the shared variables.
    #[must_use]
    pub fn semijoin(&self, other: &VarRelation) -> VarRelation {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.column_of(*v).map(|j| (i, j)))
            .collect();
        if shared.is_empty() {
            return if other.is_empty() {
                VarRelation::new(self.vars.clone(), Relation::new(self.vars.len()))
            } else {
                self.clone()
            };
        }
        VarRelation::new(self.vars.clone(), operators::semijoin(&self.rel, &other.rel, &shared))
    }

    /// The Cartesian product (schemas must be disjoint).
    #[must_use]
    pub fn cross_product(&self, other: &VarRelation) -> VarRelation {
        assert!(
            self.var_set().is_disjoint_from(other.var_set()),
            "cross product requires disjoint schemas"
        );
        self.natural_join(other)
    }

    /// Returns the canonical rows re-ordered so that columns follow the
    /// given variable order — used to compare evaluator outputs in tests.
    #[must_use]
    pub fn canonical_rows_ordered(&self, order: &[Var]) -> Vec<Vec<Value>> {
        let projected = self.project_onto(order);
        projected.rel.canonical_rows()
    }

    /// A relation over no variables representing "true" (one empty tuple)
    /// or "false" (no tuples) — the result shape of a Boolean query.
    #[must_use]
    pub fn boolean(value: bool) -> VarRelation {
        let mut rel = Relation::new(0);
        if value {
            rel.push_row(&[]);
        }
        VarRelation::new(Vec::new(), rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::parse_query;

    fn db_edges() -> Database {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3], [3, 4]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 10], [3, 10], [9, 9]]));
        db
    }

    #[test]
    fn bind_atoms_and_join() {
        let q = parse_query("Q(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
        let db = db_edges();
        let bound = VarRelation::bind_all(&q, &db);
        assert_eq!(bound.len(), 2);
        assert_eq!(bound[0].vars, vec![Var(0), Var(1)]);
        let joined = bound[0].natural_join(&bound[1]);
        assert_eq!(joined.vars, vec![Var(0), Var(1), Var(2)]);
        assert_eq!(joined.rel.canonical_rows(), vec![vec![1, 2, 10], vec![2, 3, 10]]);
    }

    #[test]
    fn try_project_onto_rejects_unknown_variables() {
        let q = parse_query("Q(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
        let db = db_edges();
        let bound = VarRelation::bind_all(&q, &db);
        assert!(bound[0].try_project_onto(&[Var(0)]).is_some());
        // Var(2) = Z is not in R(X,Y)'s schema.
        assert!(bound[0].try_project_onto(&[Var(0), Var(2)]).is_none());
    }

    #[test]
    fn missing_relation_is_empty() {
        let q = parse_query("Q(X) :- Missing(X)").unwrap();
        let db = Database::new();
        let bound = VarRelation::bind_all(&q, &db);
        assert!(bound[0].is_empty());
    }

    #[test]
    fn repeated_variables_become_selections() {
        // E(X,X) keeps only loops and a single column.
        let q = parse_query("Q(X) :- E(X,X)").unwrap();
        let mut db = Database::new();
        db.insert("E", Relation::from_rows(2, vec![[1, 1], [1, 2], [3, 3]]));
        let bound = VarRelation::from_atom(&q.atoms()[0], &db);
        assert_eq!(bound.vars, vec![Var(0)]);
        assert_eq!(bound.rel.canonical_rows(), vec![vec![1], vec![3]]);
    }

    #[test]
    fn projections_and_semijoins() {
        let q = parse_query("Q(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
        let db = db_edges();
        let bound = VarRelation::bind_all(&q, &db);
        let r = &bound[0];
        let s = &bound[1];
        let ry = r.project_onto(&[Var(1)]);
        assert_eq!(ry.rel.canonical_rows(), vec![vec![2], vec![3], vec![4]]);
        let reduced = r.semijoin(s);
        assert_eq!(reduced.rel.canonical_rows(), vec![vec![1, 2], vec![2, 3]]);
        let set_proj = r.project_to_set(VarSet::singleton(Var(0)));
        assert_eq!(set_proj.vars, vec![Var(0)]);
    }

    #[test]
    fn semijoin_with_disjoint_schema_checks_emptiness() {
        let a = VarRelation::new(vec![Var(0)], Relation::from_rows(1, vec![[1], [2]]));
        let b_nonempty = VarRelation::new(vec![Var(1)], Relation::from_rows(1, vec![[5]]));
        let b_empty = VarRelation::new(vec![Var(1)], Relation::new(1));
        assert_eq!(a.semijoin(&b_nonempty).len(), 2);
        assert_eq!(a.semijoin(&b_empty).len(), 0);
    }

    #[test]
    fn cross_product_and_boolean() {
        let a = VarRelation::new(vec![Var(0)], Relation::from_rows(1, vec![[1], [2]]));
        let b = VarRelation::new(vec![Var(1)], Relation::from_rows(1, vec![[7]]));
        let p = a.cross_product(&b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.vars, vec![Var(0), Var(1)]);
        assert_eq!(VarRelation::boolean(true).len(), 1);
        assert_eq!(VarRelation::boolean(false).len(), 0);
    }

    #[test]
    #[should_panic(expected = "repeated variable")]
    fn repeated_schema_variable_panics() {
        let _ = VarRelation::new(vec![Var(0), Var(0)], Relation::new(2));
    }

    #[test]
    fn bind_all_shares_storage_with_the_database() {
        let q = parse_query("Q(X,Y,Z) :- R(X,Y), S(Y,Z)").unwrap();
        let db = db_edges();
        let bound = VarRelation::bind_all(&q, &db);
        assert!(bound[0].rel.shares_storage_with(db.relation("R").unwrap()));
        assert!(bound[1].rel.shares_storage_with(db.relation("S").unwrap()));
    }

    #[test]
    #[should_panic(expected = "atom R/3 is bound to a stored relation of arity 2")]
    fn arity_mismatch_is_reported_at_binding_time() {
        // Regression: a mismatched insert used to surface as a confusing
        // "schema/arity mismatch" panic deep inside VarRelation::new.
        let q = parse_query("Q(X,Y,Z) :- R(X,Y,Z)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        let _ = VarRelation::from_atom(&q.atoms()[0], &db);
    }
}
