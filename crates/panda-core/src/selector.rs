//! The deterministic, rule-ordered strategy selector behind
//! [`EvaluationStrategy::Auto`].
//!
//! Selection walks a fixed rule list — first match wins — and records
//! *which* rule fired and *why* as machine-readable [`ReasonCode`]s:
//!
//! 1. **Explicit override** ([`SelectorRule::ExplicitOverride`]) — the
//!    caller named a strategy; the selector steps aside.
//! 2. **Acyclic fast path** ([`SelectorRule::AcyclicFastPath`]) — the
//!    query is free-connex acyclic, so Yannakakis runs in `O(N + OUT)`
//!    without solving a single LP.
//! 3. **Width gap** ([`SelectorRule::SubwGap`]) — `subw < fhtw`
//!    strictly, so the adaptive multi-TD plan beats every single
//!    decomposition (the PANDA case, Section 5 of the paper).
//! 4. **TD fallback** ([`SelectorRule::TdFallback`]) — widths exist but
//!    show no gap; the best single-TD (fhtw) plan is optimal among the
//!    decomposition plans.
//! 5. **Generic default** ([`SelectorRule::GenericDefault`]) — no width
//!    is available (unbounded statistics, or the LP budget died before
//!    `fhtw` finished); a worst-case optimal generic join needs no
//!    planning at all.
//!
//! Budgets ([`Budgets`]) turn unbounded planning or
//! execution blow-ups into **one-way fail-soft downgrades**, each recorded
//! as a [`Downgrade`] with its own reason code:
//!
//! * LP pivot budget exhausted *during `subw`* (`fhtw` already known) —
//!   selected `Adaptive`, executed `StaticTd` on fhtw's best
//!   decomposition ([`ReasonCode::LpBudgetExhausted`]);
//! * LP pivot budget exhausted *during `fhtw`* — no width rule can fire,
//!   so selection lands on the generic default (a selection reason, not a
//!   downgrade: nothing richer was ever selected);
//! * adaptive branch fan-out above the branch budget — selected
//!   `Adaptive`, executed `BinaryJoin`
//!   ([`ReasonCode::BranchBudgetExceeded`]);
//! * estimated peak bag-materialisation rows above the memory budget —
//!   executed `BinaryJoin` ([`ReasonCode::MemoryBudgetExceeded`]).
//!
//! Downgrades only ever move *down* the ladder `Adaptive → StaticTd →
//! BinaryJoin`; a downgraded plan still returns bit-identical results
//! (every strategy computes the same relation), it just renounces the
//! width guarantee.  Explicit strategies never downgrade — a budget
//! violation there is a structured
//! [`StrategyError::BudgetExceeded`](crate::StrategyError::BudgetExceeded)
//! error, because the caller left the selector no fallback to offer.
//!
//! Everything here is deterministic and engine-independent: widths are
//! exact rationals with unique optima, the `subw` certificate chain runs
//! sequentially (its Shannon flows seed the adaptive partitions, so the
//! chain shape must not depend on the thread count), and budgets count
//! pivots/branches/rows — never wall-clock time.

use panda_entropy::{
    BoundError, BoundReport, CancelToken, FhtwReport, PivotBudget, ShannonFlow, StatisticsSet,
    SubwReport,
};
use panda_query::hypergraph::is_acyclic;
use panda_query::{ConjunctiveQuery, TreeDecomposition, VarSet};
use panda_rational::Rat;
use panda_relation::Database;

use crate::config::Budgets;
use crate::materialize::MaterializedSubplan;
use crate::panda::EvaluationStrategy;
use crate::plans::{estimate_bag_size, PandaEvaluator};

/// Which selector rule chose the strategy (rules are tried in this order;
/// first match wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorRule {
    /// Rule 1: the caller requested a specific strategy.
    ExplicitOverride,
    /// Rule 2: the query is free-connex acyclic — Yannakakis, no LPs.
    AcyclicFastPath,
    /// Rule 3: `subw < fhtw` strictly — the adaptive multi-TD plan.
    SubwGap,
    /// Rule 4: widths computed but no gap — the best single-TD plan.
    TdFallback,
    /// Rule 5: no width available — the generic worst-case optimal join.
    GenericDefault,
}

impl SelectorRule {
    /// A stable machine-readable name (also the EXPLAIN spelling).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            SelectorRule::ExplicitOverride => "explicit-override",
            SelectorRule::AcyclicFastPath => "acyclic-fast-path",
            SelectorRule::SubwGap => "subw-gap",
            SelectorRule::TdFallback => "td-fallback",
            SelectorRule::GenericDefault => "generic-default",
        }
    }
}

impl std::fmt::Display for SelectorRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A machine-readable reason attached to every selection and every
/// downgrade.  The `code()` strings are stable output (pinned by the
/// EXPLAIN byte-stability job in CI); add codes, never repurpose them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReasonCode {
    /// The caller requested this strategy explicitly.
    ExplicitStrategy,
    /// The query is acyclic and free-connex.
    AcyclicFreeConnex,
    /// `subw < fhtw` strictly under the planning statistics.
    SubwBelowFhtw,
    /// Widths computed but `subw == fhtw`: no adaptive advantage.
    NoWidthGap,
    /// No finite width exists (the statistics leave the output unbounded).
    WidthsUnavailable,
    /// The LP pivot budget ran out mid-planning.
    LpBudgetExhausted,
    /// The adaptive plan's branch fan-out exceeded the branch budget.
    BranchBudgetExceeded,
    /// The estimated peak bag-materialisation rows exceeded the memory
    /// budget.
    MemoryBudgetExceeded,
    /// The selection was served from the cross-query plan cache.
    PlanCacheHit,
    /// The selection was planned cold and inserted into the plan cache.
    PlanCacheMiss,
    /// The plan cache was disabled (`PANDA_PLAN_CACHE=off`), so the
    /// selection was planned cold and not cached.
    PlanCacheBypass,
    /// Inserting this selection evicted the least-recently-used cache
    /// entry.
    PlanCacheEvict,
    /// The plan materialises at least one shared subplan once for several
    /// branch scans (see
    /// [`PlanReport::materializations`](crate::PlanReport::materializations)).
    SubplanMaterialized,
    /// Runtime telemetry code for a subplan scan served from an existing
    /// materialisation (used by logs/tests, never by reports — the runtime
    /// hit/miss split may vary with thread interleaving).
    SubplanReused,
}

impl ReasonCode {
    /// A stable machine-readable code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            ReasonCode::ExplicitStrategy => "explicit_strategy",
            ReasonCode::AcyclicFreeConnex => "acyclic_free_connex",
            ReasonCode::SubwBelowFhtw => "subw_below_fhtw",
            ReasonCode::NoWidthGap => "no_width_gap",
            ReasonCode::WidthsUnavailable => "widths_unavailable",
            ReasonCode::LpBudgetExhausted => "lp_budget_exhausted",
            ReasonCode::BranchBudgetExceeded => "branch_budget_exceeded",
            ReasonCode::MemoryBudgetExceeded => "memory_budget_exceeded",
            ReasonCode::PlanCacheHit => "plan_cache_hit",
            ReasonCode::PlanCacheMiss => "plan_cache_miss",
            ReasonCode::PlanCacheBypass => "plan_cache_bypass",
            ReasonCode::PlanCacheEvict => "plan_cache_evict",
            ReasonCode::SubplanMaterialized => "subplan_materialized",
            ReasonCode::SubplanReused => "subplan_reused",
        }
    }
}

impl std::fmt::Display for ReasonCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One fail-soft downgrade applied after selection: the strategy the rules
/// chose could not run within the configured [`Budgets`],
/// so a cheaper one ran instead.  Downgrades are one-way (`Adaptive →
/// StaticTd → BinaryJoin`) and each carries the [`ReasonCode`] of the
/// budget that forced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Downgrade {
    /// The strategy given up.
    pub from: EvaluationStrategy,
    /// The strategy executed instead.
    pub to: EvaluationStrategy,
    /// Which budget forced the downgrade.
    pub reason: ReasonCode,
}

/// One branch's width bound in a [`PlanReport`](crate::PlanReport):
/// the bags the branch covers, its log-scale bound, and (when planning
/// extracted one) the Shannon-flow certificate proving the bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchBound {
    /// The bags this branch covers: one bag per entry for a static plan,
    /// a whole bag selector for an adaptive DDR branch.
    pub bags: Vec<VarSet>,
    /// The branch's bound in `log_N` scale.
    pub log_bound: Rat,
    /// The machine-verified dual certificate, when one was extracted.
    /// Absent on budget-downgraded static plans (re-deriving certificates
    /// would spend LP work the budget already refused).
    pub certificate: Option<ShannonFlow>,
}

/// The full outcome of one selection: what fired, what was selected, what
/// will execute, and every planning artifact worth reusing at execution
/// time (so planning work is never done twice).
#[derive(Debug, Clone)]
pub(crate) struct Selection {
    pub rule: SelectorRule,
    pub reason: ReasonCode,
    pub selected: EvaluationStrategy,
    pub executed: EvaluationStrategy,
    pub downgrades: Vec<Downgrade>,
    pub fhtw: Option<FhtwReport>,
    pub subw: Option<SubwReport>,
    pub tds: Vec<TreeDecomposition>,
    /// fhtw's best decomposition, when fhtw completed.
    pub best_td: Option<TreeDecomposition>,
    /// The fully planned adaptive evaluator, when the gap rule fired.
    pub evaluator: Option<PandaEvaluator>,
    /// Number of degree branches the executed plan fans out into (1 for
    /// every single-plan strategy; for a downgraded adaptive plan, the
    /// count that triggered the downgrade).
    pub branch_count: usize,
    /// Simplex pivots consumed by planning, when a pivot budget was set.
    pub lp_pivots_used: Option<u64>,
    /// Subplans the adaptive plan will materialise once and scan from
    /// several branches (plan-derived and deterministic; empty for
    /// single-branch strategies).
    pub materializations: Vec<MaterializedSubplan>,
}

impl Selection {
    pub(crate) fn new(
        rule: SelectorRule,
        reason: ReasonCode,
        strategy: EvaluationStrategy,
    ) -> Self {
        Selection {
            rule,
            reason,
            selected: strategy,
            executed: strategy,
            downgrades: Vec::new(),
            fhtw: None,
            subw: None,
            tds: Vec::new(),
            best_td: None,
            evaluator: None,
            branch_count: 1,
            lp_pivots_used: None,
            materializations: Vec::new(),
        }
    }

    fn downgrade_to(&mut self, to: EvaluationStrategy, reason: ReasonCode) {
        self.downgrades.push(Downgrade { from: self.executed, to, reason });
        self.executed = to;
    }
}

/// `true` iff the query is acyclic *and* free-connex (Section 3.4): both
/// the body hypergraph and the body-plus-head hypergraph are acyclic.
#[must_use]
pub(crate) fn free_connex_acyclic(query: &ConjunctiveQuery) -> bool {
    let mut edges = query.edges();
    let acyclic = is_acyclic(&edges);
    edges.push(query.free_vars());
    acyclic && is_acyclic(&edges)
}

/// The planner's deterministic estimate of the peak bag-materialisation
/// size of a single-TD plan: the largest per-bag estimate over the
/// decomposition (the same estimator the adaptive branch cost model uses).
fn peak_bag_rows(query: &ConjunctiveQuery, db: &Database, td: &TreeDecomposition) -> f64 {
    td.bags().iter().map(|&bag| estimate_bag_size(query.atoms(), db, bag)).fold(0.0_f64, f64::max)
}

/// Applies the memory budget to a bag-materialising selection: if the
/// estimated peak rows of the plan's decomposition exceed the budget, the
/// selection downgrades to a binary join (which materialises only pairwise
/// join results and the output).  `BinaryJoin` and `GenericJoin` are the
/// ladder's floor and are never memory-checked; Yannakakis is linear in
/// input plus output and is exempt by construction.
fn apply_memory_budget(
    selection: &mut Selection,
    query: &ConjunctiveQuery,
    db: &Database,
    budgets: Budgets,
) {
    let Some(limit) = budgets.memory_rows_budget else { return };
    if !matches!(selection.executed, EvaluationStrategy::StaticTd | EvaluationStrategy::Adaptive) {
        return;
    }
    let Some(td) = selection.best_td.as_ref() else { return };
    // For the adaptive plan the whole-database estimate over the best
    // decomposition upper-bounds every branch (branch databases are subsets
    // of the input), so one deterministic check covers both strategies.
    let estimated = peak_bag_rows(query, db, td);
    if estimated > limit as f64 {
        selection.downgrade_to(EvaluationStrategy::BinaryJoin, ReasonCode::MemoryBudgetExceeded);
        selection.branch_count = 1;
    }
}

/// Attaches informational widths to a selection that did not need them to
/// decide (the explicit override and the acyclic fast path): EXPLAIN
/// callers still want to see `fhtw`/`subw`.  Runs unbudgeted — the
/// selection itself spent no LP work, so the budget has nothing to govern —
/// and absorbs width errors into absence (`None`).
fn attach_informational_widths(
    selection: &mut Selection,
    query: &ConjunctiveQuery,
    stats: &StatisticsSet,
    threads: usize,
) {
    let tds = TreeDecomposition::enumerate(query);
    if let Ok(report) = panda_entropy::fhtw_with_tds_parallel(query, &tds, stats, threads) {
        selection.best_td = Some(report.best_td().clone());
        selection.fhtw = Some(report);
    }
    if let Ok(report) = panda_entropy::subw_with_tds(query, &tds, stats) {
        selection.subw = Some(report);
    }
    selection.tds = tds;
}

/// Runs the selector: walks the rule list in order, applies the budgets,
/// and returns the full [`Selection`].
///
/// `want_widths` is set by the EXPLAIN path
/// ([`Panda::plan_report`](crate::Panda::plan_report)) to attach
/// informational widths on paths that do not compute them for the decision
/// itself; the evaluation path leaves it off so e.g. acyclic queries never
/// solve an LP.
///
/// Only [`BoundError::Solver`] — an LP solver *bug* — and
/// [`BoundError::Cancelled`] propagate as errors; `Unbounded` and
/// `PivotBudgetExhausted` are absorbed into the selection as fallbacks or
/// downgrades (that is the fail-soft contract).  Cancellation is
/// deliberately *not* fail-soft: the caller asked for the work to stop,
/// not for a cheaper plan to run instead.
///
/// `cancel` attaches a cooperative [`CancelToken`] to the pivot budget
/// when one is configured; the token is polled at every pivot, so a
/// cancelled token aborts planning at the next counting point.  With no
/// pivot budget there are no counting points — the caller's entry-level
/// cancellation checks are then the only cancellation granularity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn select(
    query: &ConjunctiveQuery,
    stats: &StatisticsSet,
    db: &Database,
    budgets: Budgets,
    threads: usize,
    requested: EvaluationStrategy,
    want_widths: bool,
    cancel: Option<&CancelToken>,
) -> Result<Selection, BoundError> {
    // Rule 1: explicit override.
    if requested != EvaluationStrategy::Auto {
        let mut selection =
            Selection::new(SelectorRule::ExplicitOverride, ReasonCode::ExplicitStrategy, requested);
        if want_widths {
            attach_informational_widths(&mut selection, query, stats, threads);
        }
        return Ok(selection);
    }

    // Rule 2: acyclic fast path — no LP is solved.
    if free_connex_acyclic(query) {
        let mut selection = Selection::new(
            SelectorRule::AcyclicFastPath,
            ReasonCode::AcyclicFreeConnex,
            EvaluationStrategy::Yannakakis,
        );
        if want_widths {
            attach_informational_widths(&mut selection, query, stats, threads);
        }
        return Ok(selection);
    }

    let tds = TreeDecomposition::enumerate(query);
    let mut budget = budgets.lp_pivot_budget.map(|limit| match cancel {
        Some(token) => PivotBudget::new(limit).with_cancel_token(token.clone()),
        None => PivotBudget::new(limit),
    });

    // fhtw: parallel chains when unbudgeted (optimal values are unique, so
    // the result is engine-independent either way); the budgeted chain is
    // sequential so the pivot count at which the budget dies is identical
    // at every thread count.
    let fhtw_result = match budget.as_mut() {
        Some(b) => panda_entropy::fhtw_with_tds_budgeted(query, &tds, stats, b),
        None => panda_entropy::fhtw_with_tds_parallel(query, &tds, stats, threads),
    };
    let fhtw_report = match fhtw_result {
        Ok(report) => report,
        Err(BoundError::Unbounded) => {
            // Rule 5: no finite width exists.
            let mut selection = Selection::new(
                SelectorRule::GenericDefault,
                ReasonCode::WidthsUnavailable,
                EvaluationStrategy::GenericJoin,
            );
            selection.tds = tds;
            selection.lp_pivots_used = budget.as_ref().map(PivotBudget::used);
            return Ok(selection);
        }
        Err(BoundError::PivotBudgetExhausted) => {
            // Rule 5: the budget died before any width was known, so no
            // width rule can fire and nothing richer was ever selected —
            // this is a selection reason, not a downgrade.
            let mut selection = Selection::new(
                SelectorRule::GenericDefault,
                ReasonCode::LpBudgetExhausted,
                EvaluationStrategy::GenericJoin,
            );
            selection.tds = tds;
            selection.lp_pivots_used = budget.as_ref().map(PivotBudget::used);
            return Ok(selection);
        }
        Err(e) => return Err(e),
    };

    // subw: always the sequential chain — its per-selector Shannon flows
    // seed the adaptive partitions and the report's certificates, so the
    // chain shape (and with it the extracted duals) must not depend on the
    // thread count.
    let subw_result = match budget.as_mut() {
        Some(b) => panda_entropy::subw_with_tds_budgeted(query, &tds, stats, b),
        None => panda_entropy::subw_with_tds(query, &tds, stats),
    };
    let lp_pivots_used = budget.as_ref().map(PivotBudget::used);

    let mut selection = match subw_result {
        Ok(subw_report) if subw_report.value < fhtw_report.value => {
            // Rule 3: strict width gap — the adaptive plan.
            let mut selection = Selection::new(
                SelectorRule::SubwGap,
                ReasonCode::SubwBelowFhtw,
                EvaluationStrategy::Adaptive,
            );
            let evaluator = PandaEvaluator::from_reports(query, &subw_report, &fhtw_report);
            let branches = evaluator.build_branches(query, db);
            selection.branch_count = branches.len();
            selection.materializations = evaluator.materialization_plan(query, &branches);
            if let Some(cap) = budgets.branch_budget {
                if selection.branch_count > cap {
                    selection.downgrade_to(
                        EvaluationStrategy::BinaryJoin,
                        ReasonCode::BranchBudgetExceeded,
                    );
                }
            }
            selection.evaluator = Some(evaluator);
            selection.best_td = Some(fhtw_report.best_td().clone());
            selection.subw = Some(subw_report);
            selection.fhtw = Some(fhtw_report);
            selection
        }
        Ok(subw_report) => {
            // Rule 4: widths agree — the best single-TD plan.
            let mut selection = Selection::new(
                SelectorRule::TdFallback,
                ReasonCode::NoWidthGap,
                EvaluationStrategy::StaticTd,
            );
            selection.best_td = Some(fhtw_report.best_td().clone());
            selection.subw = Some(subw_report);
            selection.fhtw = Some(fhtw_report);
            selection
        }
        Err(BoundError::PivotBudgetExhausted) => {
            // Downgrade: fhtw is known but the budget died inside subw.
            // The gap rule was being evaluated (its candidate is the
            // adaptive plan), so record Adaptive as selected and fall back
            // to the best single-TD plan fhtw already paid for.
            let mut selection = Selection::new(
                SelectorRule::SubwGap,
                ReasonCode::LpBudgetExhausted,
                EvaluationStrategy::Adaptive,
            );
            selection.downgrade_to(EvaluationStrategy::StaticTd, ReasonCode::LpBudgetExhausted);
            selection.best_td = Some(fhtw_report.best_td().clone());
            selection.fhtw = Some(fhtw_report);
            selection
        }
        Err(BoundError::Unbounded) => {
            // Cannot happen when fhtw is finite (subw ≤ fhtw pointwise),
            // but stay fail-soft: the single-TD plan is still sound.
            let mut selection = Selection::new(
                SelectorRule::TdFallback,
                ReasonCode::WidthsUnavailable,
                EvaluationStrategy::StaticTd,
            );
            selection.best_td = Some(fhtw_report.best_td().clone());
            selection.fhtw = Some(fhtw_report);
            selection
        }
        Err(e) => return Err(e),
    };

    selection.tds = tds;
    selection.lp_pivots_used = lp_pivots_used;
    apply_memory_budget(&mut selection, query, db, budgets);
    Ok(selection)
}

/// Builds the per-branch width bounds for a report.
///
/// * Adaptive: one [`BranchBound`] per bag selector, certificate included
///   (the `subw` chain already extracted and verified it).
/// * Static: one per bag of the best decomposition.  When the selection
///   completed within budget, each bag's certificate is re-derived with a
///   *cold* (warm-start-free, hence engine- and chain-independent)
///   polymatroid solve; after an LP-budget downgrade the recorded bag
///   bounds are reported without certificates instead of spending pivots
///   the budget already refused.
/// * Yannakakis / generic / binary plans carry no width bounds.
pub(crate) fn branch_bounds_for(
    selection: &Selection,
    query: &ConjunctiveQuery,
    stats: &StatisticsSet,
) -> Vec<BranchBound> {
    match selection.selected {
        EvaluationStrategy::Adaptive | EvaluationStrategy::StaticTd => {
            if selection.selected == EvaluationStrategy::Adaptive {
                if let Some(subw) = selection.subw.as_ref() {
                    return subw
                        .per_selector
                        .iter()
                        .map(|sel| BranchBound {
                            bags: sel.selector.bags().to_vec(),
                            log_bound: sel.report.log_bound,
                            certificate: Some(sel.report.flow.clone()),
                        })
                        .collect();
                }
            }
            let Some(fhtw) = selection.fhtw.as_ref() else { return Vec::new() };
            let Some((_, _, per_bag)) = fhtw.per_td.get(fhtw.best) else { return Vec::new() };
            let budget_died =
                selection.reason == ReasonCode::LpBudgetExhausted && selection.subw.is_none();
            let universe = query.all_vars();
            per_bag
                .iter()
                .map(|&(bag, log_bound)| {
                    let certificate = if budget_died {
                        None
                    } else {
                        panda_entropy::polymatroid_bound(bag, universe, stats)
                            .ok()
                            .map(|report: BoundReport| report.flow)
                    };
                    BranchBound { bags: vec![bag], log_bound, certificate }
                })
                .collect()
        }
        _ => Vec::new(),
    }
}
