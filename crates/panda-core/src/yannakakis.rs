//! The Yannakakis algorithm for free-connex acyclic joins.
//!
//! Given relations whose schemas form an α-acyclic hypergraph with a join
//! tree, the classic algorithm performs a bottom-up and a top-down semijoin
//! pass (after which every remaining tuple participates in some answer) and
//! then assembles the answer bottom-up, projecting onto the free variables
//! plus whatever the parent still needs.  For free-connex instances this
//! runs in `O(Σ|R_i| + |output|)` up to logarithmic factors — the guarantee
//! the paper invokes for the final step of every static and adaptive plan
//! (Eq. 12 and Eq. 29).
//!
//! Both semijoin passes go through [`panda_relation::operators::semijoin`],
//! which serves the filter side's hash table from the relation's shared
//! index cache — so repeated runs over the same database (across PANDA
//! branches or bench iterations) rebuild no leaf indexes, and semijoins
//! that filter nothing return O(1) clones.

// panda-lint: allow-file(P1) -- semijoin passes index per-node slots by
// the tree decomposition's own node ids, and the take()/expect pairs
// encode the bottom-up visit order (children strictly before parents).

use panda_query::hypergraph::join_tree_of;
use panda_query::{Var, VarSet};
use panda_relation::Relation;

use crate::binding::VarRelation;

/// Evaluates the join of `relations` projected onto `free`, assuming their
/// schemas form an acyclic hypergraph.  Returns `None` if they do not (the
/// caller should fall back to a different strategy).
#[must_use]
pub fn yannakakis_free_connex(relations: &[VarRelation], free: VarSet) -> Option<VarRelation> {
    if relations.is_empty() {
        return Some(VarRelation::boolean(true));
    }
    let schemas: Vec<VarSet> = relations.iter().map(VarRelation::var_set).collect();
    let tree = join_tree_of(&schemas)?;

    let mut nodes: Vec<VarRelation> = relations.to_vec();

    // Pass 1: bottom-up semijoin reduction (children filter parents).
    for &node in &tree.bottom_up {
        if let Some(parent) = tree.parent[node] {
            nodes[parent] = nodes[parent].semijoin(&nodes[node]);
        }
    }
    // Pass 2: top-down semijoin reduction (parents filter children).
    for &node in &tree.top_down() {
        let parent_rel = tree.parent[node].map(|p| nodes[p].clone());
        if let Some(parent_rel) = parent_rel {
            nodes[node] = nodes[node].semijoin(&parent_rel);
        }
    }

    // Pass 3: bottom-up assembly with projection.  At each node we keep the
    // free variables seen so far plus the variables shared with the parent.
    let mut partial: Vec<Option<VarRelation>> = vec![None; nodes.len()];
    for &node in &tree.bottom_up {
        let mut acc = nodes[node].clone();
        for &child in &tree.children[node] {
            let child_rel = partial[child].take().expect("children processed before parents");
            acc = acc.natural_join(&child_rel);
        }
        let keep: VarSet = match tree.parent[node] {
            Some(parent) => free.union(acc.var_set().intersect(nodes[parent].var_set())),
            None => free,
        };
        partial[node] = Some(acc.project_to_set(keep.intersect(acc.var_set())));
    }
    let root_result = partial[tree.root].take().expect("root processed last");

    // The root result covers every free variable that occurs in the inputs;
    // free variables not occurring at all (ill-formed input) are rejected.
    let covered: VarSet = schemas.iter().fold(VarSet::EMPTY, |acc, s| acc.union(*s));
    if !free.is_subset_of(covered) {
        return None;
    }
    let order: Vec<Var> = free.to_vec();
    Some(root_result.project_onto(&order))
}

/// Convenience wrapper: evaluates a free-connex acyclic *query* directly
/// from its atoms (used as the fast path of the end-to-end evaluator and as
/// the E13 baseline).  Returns `None` when the atom schemas are not
/// acyclic.
#[must_use]
pub fn yannakakis_query(
    query: &panda_query::ConjunctiveQuery,
    db: &panda_relation::Database,
) -> Option<VarRelation> {
    let bound = VarRelation::bind_all(query, db);
    yannakakis_free_connex(&bound, query.free_vars())
}

/// Builds an empty result with the given free variables — shared helper for
/// evaluators that detect an empty input early.
#[must_use]
pub fn empty_result(free: VarSet) -> VarRelation {
    let vars = free.to_vec();
    let arity = vars.len();
    VarRelation::new(vars, Relation::new(arity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic_join::GenericJoin;
    use panda_query::parse_query;
    use panda_relation::Database;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn path_db(n: u64, fanout: u64) -> Database {
        let mut db = Database::new();
        let mut r = Relation::new(2);
        let mut s = Relation::new(2);
        let mut t = Relation::new(2);
        for i in 0..n {
            r.push_row(&[i, i % fanout]);
            s.push_row(&[i % fanout, i % 7]);
            t.push_row(&[i % 7, i]);
        }
        db.insert("R", r.deduped());
        db.insert("S", s.deduped());
        db.insert("T", t.deduped());
        db
    }

    #[test]
    fn path_query_matches_generic_join() {
        let q = parse_query("Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D)").unwrap();
        let db = path_db(40, 5);
        let yann = yannakakis_query(&q, &db).expect("acyclic");
        let wcoj = GenericJoin::evaluate(&q, &db);
        assert_eq!(
            yann.canonical_rows_ordered(&q.free_vars().to_vec()),
            wcoj.canonical_rows_ordered(&q.free_vars().to_vec())
        );
    }

    #[test]
    fn projected_path_query() {
        let q = parse_query("Q(A,D) :- R(A,B), S(B,C), T(C,D)").unwrap();
        let db = path_db(40, 5);
        let yann = yannakakis_query(&q, &db).expect("acyclic");
        let wcoj = GenericJoin::evaluate(&q, &db);
        assert_eq!(
            yann.canonical_rows_ordered(&[Var(0), Var(3)]),
            wcoj.canonical_rows_ordered(&[Var(0), Var(3)])
        );
    }

    #[test]
    fn boolean_acyclic_query() {
        let q = parse_query("Q() :- R(A,B), S(B,C)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        db.insert("S", Relation::from_rows(2, vec![[9, 9]]));
        let out = yannakakis_query(&q, &db).unwrap();
        assert_eq!(out.len(), 0);
        db.insert("S", Relation::from_rows(2, vec![[2, 5]]));
        let out = yannakakis_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
        let db = path_db(10, 3);
        let mut db = db;
        db.insert("T", Relation::from_rows(2, vec![[1, 2]]));
        assert!(yannakakis_query(&q, &db).is_none());
    }

    #[test]
    fn star_query_with_dangling_tuples() {
        // Star: center A joined with three satellites; dangling tuples in
        // the satellites must not appear.
        let q = parse_query("Q(A,B,C,D) :- R(A,B), S(A,C), T(A,D)").unwrap();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 10], [2, 20], [3, 30]]));
        db.insert("S", Relation::from_rows(2, vec![[1, 100], [2, 200]]));
        db.insert("T", Relation::from_rows(2, vec![[1, 1000], [9, 9000]]));
        let out = yannakakis_query(&q, &db).unwrap();
        assert_eq!(out.rel.canonical_rows(), vec![vec![1, 10, 100, 1000]]);
    }

    #[test]
    fn random_acyclic_queries_agree_with_wcoj() {
        let q = parse_query("Q(A,C) :- R(A,B), S(B,C), U(B,D)").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let mut db = Database::new();
            for name in ["R", "S", "U"] {
                let rel = Relation::from_rows(
                    2,
                    (0..50).map(|_| [rng.gen_range(0..6u64), rng.gen_range(0..6u64)]),
                )
                .deduped();
                db.insert(name, rel);
            }
            let yann = yannakakis_query(&q, &db).unwrap();
            let wcoj = GenericJoin::evaluate(&q, &db);
            assert_eq!(
                yann.canonical_rows_ordered(&[Var(0), Var(2)]),
                wcoj.canonical_rows_ordered(&[Var(0), Var(2)])
            );
        }
    }

    #[test]
    fn empty_inputs_give_empty_or_true() {
        assert_eq!(yannakakis_free_connex(&[], VarSet::EMPTY).unwrap().len(), 1);
        let r = VarRelation::new(vec![Var(0)], Relation::new(1));
        let out = yannakakis_free_connex(&[r], VarSet::singleton(Var(0))).unwrap();
        assert!(out.is_empty());
        assert_eq!(empty_result(VarSet::singleton(Var(3))).len(), 0);
    }
}
