//! Canonical fingerprints for cross-query plan caching.
//!
//! Two queries that differ only in variable *identity* — variable names,
//! the order in which variables first occur, the order of body atoms, the
//! query name — have identical planning problems: the widths, tree
//! decompositions and degree partitions of one are those of the other with
//! the variables renamed.  The plan cache therefore keys on a **canonical
//! encoding** of the query computed here: a byte string invariant under
//! variable renaming, so structurally-isomorphic queries share a cache
//! slot.
//!
//! The canonical form is found by colour refinement (a 1-dimensional
//! Weisfeiler–Leman pass over the variable/atom incidence structure)
//! followed by a bounded backtracking search over the refinement classes;
//! the encoding chosen is the lexicographic minimum over all explored
//! complete labelings.  When the search space exceeds
//! [`MAX_LABELINGS`], the minimum over the explored prefix is used — still
//! deterministic for a given query, and **miss-safe**: a truncated search
//! can only make two isomorphic queries miss each other in the cache,
//! never make two non-isomorphic queries collide (equal encodings always
//! exhibit a concrete variable bijection mapping one query onto the
//! other).
//!
//! Statistics are canonicalised under the same renaming by
//! [`canonical_statistics_encoding`]: each constraint is encoded with its
//! variable sets renamed and its human-readable label **excluded** (labels
//! embed raw variable indices and never influence planning), and the
//! per-constraint encodings are sorted so the measurement order does not
//! matter.
//!
//! Everything here is pure computation on the query structure: no global
//! state, no hashing randomness (the exposed fingerprints use FNV-1a, not
//! the process-seeded `SipHash`), no clocks.

// panda-lint: allow-file(P1) -- dense canonicalisation kernel: every
// index is a variable id `< num_vars` or a colour id minted from the
// per-variable key vector, both in range by construction, and the two
// `expect`s sit behind exhaustiveness guarantees stated at their sites.

use panda_entropy::{StatKind, StatisticsSet};
use panda_query::{ConjunctiveQuery, Var, VarSet};

/// Cap on the number of complete variable labelings the canonical search
/// explores.  Queries whose refinement classes stay small (every practical
/// query: distinct relation symbols separate the variables quickly) never
/// come close; highly symmetric self-join queries fall back to the minimum
/// over the explored prefix, which is deterministic and miss-safe.
pub const MAX_LABELINGS: usize = 5_000;

/// A query reduced to canonical form: the renaming-invariant encoding and
/// the variable renaming that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalQuery {
    /// The canonical byte encoding: equal for two queries iff the explored
    /// search found the same minimal labeling — in particular, equal
    /// encodings imply the queries are isomorphic.
    pub encoding: Vec<u8>,
    /// `renaming[v]` is the canonical id assigned to variable `Var(v)`; a
    /// bijection from the query's variables onto `0..num_vars`.
    pub renaming: Vec<u32>,
}

impl CanonicalQuery {
    /// The FNV-1a fingerprint of the canonical encoding — a compact,
    /// process-independent observable for logs and tests; the cache itself
    /// compares full encodings, so hash collisions cannot cause false
    /// plan sharing.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.encoding)
    }
}

/// FNV-1a over a byte slice: a fixed, dependency-free 64-bit hash, stable
/// across processes and runs (unlike `SipHash`, which is key-seeded).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Applies a canonical renaming to a variable set: bit `v` maps to bit
/// `renaming[v]`.  Variables outside the renaming (never the case for sets
/// drawn from the fingerprinted query) are dropped.
#[must_use]
pub fn rename_set(set: VarSet, renaming: &[u32]) -> VarSet {
    let mut out = VarSet::EMPTY;
    for v in set.iter() {
        if let Some(&canonical) = renaming.get(v.index()) {
            out = out.with(Var(canonical));
        }
    }
    out
}

/// Computes the canonical form of a query: colour refinement over the
/// variable/atom incidence structure, then a bounded search over the
/// refinement classes for the lexicographically minimal encoding.
///
/// The encoding covers exactly what planning consumes: the number of
/// variables, the free-variable set, and the multiset of atoms (relation
/// symbol plus positional variable ids).  The query *name* and the
/// variable *names* are excluded — they never influence a plan.
#[must_use]
pub fn canonicalize_query(query: &ConjunctiveQuery) -> CanonicalQuery {
    let n = query.num_vars();
    if n == 0 {
        return CanonicalQuery { encoding: encode_labeling(query, &[]), renaming: Vec::new() };
    }

    // --- Colour refinement -------------------------------------------------
    // Initial colour: free/existential status plus the sorted multiset of
    // (relation, position, arity) occurrences of the variable.
    let free = query.free_vars();
    let mut keys: Vec<Vec<u8>> = (0..n)
        .map(|v| {
            let var = Var(v as u32);
            let mut key = vec![u8::from(free.contains(var))];
            let mut occurrences: Vec<(String, usize, usize)> = Vec::new();
            for atom in query.atoms() {
                for (pos, w) in atom.vars.iter().enumerate() {
                    if *w == var {
                        occurrences.push((atom.relation.clone(), pos, atom.arity()));
                    }
                }
            }
            occurrences.sort();
            for (rel, pos, arity) in occurrences {
                key.extend_from_slice(rel.as_bytes());
                key.push(0);
                key.push(pos as u8);
                key.push(arity as u8);
            }
            key
        })
        .collect();
    let mut colours = colours_from_keys(&keys);
    // Refine until the partition stabilises: a variable's new colour folds
    // in, per occurrence, the colours at every position of that atom.
    loop {
        let num_colours = distinct_count(&colours);
        for v in 0..n {
            let var = Var(v as u32);
            let mut key = vec![colours[v] as u8, (colours[v] >> 8) as u8];
            let mut occurrences: Vec<Vec<u8>> = Vec::new();
            for atom in query.atoms() {
                if !atom.vars.contains(&var) {
                    continue;
                }
                let mut occ: Vec<u8> = atom.relation.as_bytes().to_vec();
                occ.push(0);
                for w in &atom.vars {
                    occ.push(colours[w.index()] as u8);
                    occ.push((colours[w.index()] >> 8) as u8);
                }
                occurrences.push(occ);
            }
            occurrences.sort();
            for occ in occurrences {
                key.extend_from_slice(&occ);
            }
            keys[v] = key;
        }
        colours = colours_from_keys(&keys);
        if distinct_count(&colours) == num_colours {
            break;
        }
    }

    // --- Bounded search over refinement classes ----------------------------
    // Variables are labelled class by class (classes ordered by colour id,
    // which is derived from sorted keys and therefore isomorphism-
    // invariant); within a class every remaining variable is tried.  The
    // lexicographically smallest complete encoding wins.
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); distinct_count(&colours)];
    for (v, &c) in colours.iter().enumerate() {
        classes[c].push(v);
    }
    let mut order: Vec<usize> = Vec::with_capacity(n); // order[k] = variable with canonical id k
    let mut best: Option<(Vec<u8>, Vec<u32>)> = None;
    let mut explored = 0usize;
    search(query, &classes, 0, &mut order, &mut best, &mut explored);
    let (encoding, renaming) = best.expect("at least one labeling is always explored");
    CanonicalQuery { encoding, renaming }
}

/// Recursive labeling search: position `class_idx` in the class list;
/// `order` holds the variables already labelled (canonical id = index).
fn search(
    query: &ConjunctiveQuery,
    classes: &[Vec<usize>],
    class_idx: usize,
    order: &mut Vec<usize>,
    best: &mut Option<(Vec<u8>, Vec<u32>)>,
    explored: &mut usize,
) {
    if *explored >= MAX_LABELINGS {
        return;
    }
    if class_idx == classes.len() {
        *explored += 1;
        let n = order.len();
        let mut renaming = vec![0u32; n];
        for (canonical, &v) in order.iter().enumerate() {
            renaming[v] = canonical as u32;
        }
        let encoding = encode_labeling(query, &renaming);
        match best {
            Some((current, _)) if *current <= encoding => {}
            _ => *best = Some((encoding, renaming)),
        }
        return;
    }
    let class = &classes[class_idx];
    let start = order.len();
    // Permute the current class: pick each not-yet-placed member in turn.
    permute_class(query, classes, class_idx, class, start, order, best, explored);
}

#[allow(clippy::too_many_arguments)]
fn permute_class(
    query: &ConjunctiveQuery,
    classes: &[Vec<usize>],
    class_idx: usize,
    class: &[usize],
    start: usize,
    order: &mut Vec<usize>,
    best: &mut Option<(Vec<u8>, Vec<u32>)>,
    explored: &mut usize,
) {
    if order.len() - start == class.len() {
        search(query, classes, class_idx + 1, order, best, explored);
        return;
    }
    for &v in class {
        if order[start..].contains(&v) {
            continue;
        }
        order.push(v);
        permute_class(query, classes, class_idx, class, start, order, best, explored);
        order.pop();
        if *explored >= MAX_LABELINGS {
            return;
        }
    }
}

/// Encodes the query under a complete renaming: variable count, renamed
/// free set, then the sorted multiset of renamed atoms.
fn encode_labeling(query: &ConjunctiveQuery, renaming: &[u32]) -> Vec<u8> {
    let mut out = vec![renaming.len() as u8];
    out.extend_from_slice(&rename_set(query.free_vars(), renaming).bits().to_le_bytes());
    let mut atoms: Vec<Vec<u8>> = query
        .atoms()
        .iter()
        .map(|atom| {
            let mut enc: Vec<u8> = atom.relation.as_bytes().to_vec();
            enc.push(0);
            enc.push(atom.arity() as u8);
            for v in &atom.vars {
                enc.push(renaming[v.index()] as u8);
            }
            enc
        })
        .collect();
    atoms.sort();
    for atom in atoms {
        out.push(0xff);
        out.extend_from_slice(&atom);
    }
    out
}

/// Maps per-variable keys to dense colour ids, ordered by sorted key — an
/// isomorphism-invariant numbering.
fn colours_from_keys(keys: &[Vec<u8>]) -> Vec<usize> {
    let mut sorted: Vec<&Vec<u8>> = keys.iter().collect();
    sorted.sort();
    sorted.dedup();
    keys.iter().map(|k| sorted.binary_search(&k).expect("own key is present")).collect()
}

fn distinct_count(colours: &[usize]) -> usize {
    colours.iter().max().map_or(0, |m| m + 1)
}

/// Encodes a statistics set canonically under a query renaming: the log
/// base, then the sorted multiset of per-constraint encodings (guard
/// symbol, kind, renamed variable sets, count, exact log value).  The
/// human-readable `label` is excluded — it embeds raw variable indices and
/// never influences planning.
#[must_use]
pub fn canonical_statistics_encoding(stats: &StatisticsSet, renaming: &[u32]) -> Vec<u8> {
    let mut out = stats.base().to_le_bytes().to_vec();
    let mut encoded: Vec<Vec<u8>> = stats
        .stats()
        .iter()
        .map(|stat| {
            let mut enc: Vec<u8> = Vec::new();
            match &stat.guard {
                Some(g) => {
                    enc.push(1);
                    enc.extend_from_slice(g.as_bytes());
                }
                None => enc.push(0),
            }
            enc.push(0);
            match stat.kind {
                StatKind::Degree { cond, subj } => {
                    enc.push(1);
                    enc.extend_from_slice(&rename_set(cond, renaming).bits().to_le_bytes());
                    enc.extend_from_slice(&rename_set(subj, renaming).bits().to_le_bytes());
                }
                StatKind::LpNorm { cond, subj, k } => {
                    enc.push(2);
                    enc.extend_from_slice(&rename_set(cond, renaming).bits().to_le_bytes());
                    enc.extend_from_slice(&rename_set(subj, renaming).bits().to_le_bytes());
                    enc.extend_from_slice(&k.to_le_bytes());
                }
            }
            enc.extend_from_slice(&stat.count.to_le_bytes());
            enc.extend_from_slice(&stat.log_value.numer().to_le_bytes());
            enc.extend_from_slice(&stat.log_value.denom().to_le_bytes());
            enc
        })
        .collect();
    encoded.sort();
    for enc in encoded {
        out.push(0xff);
        out.extend_from_slice(&enc);
    }
    out
}

/// The FNV-1a fingerprint of [`canonical_statistics_encoding`].
#[must_use]
pub fn statistics_fingerprint(stats: &StatisticsSet, renaming: &[u32]) -> u64 {
    fnv1a(&canonical_statistics_encoding(stats, renaming))
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_query::parse_query;
    use panda_relation::{Database, Relation};

    fn canon(text: &str) -> CanonicalQuery {
        canonicalize_query(&parse_query(text).unwrap())
    }

    #[test]
    fn renamed_and_reordered_queries_share_an_encoding() {
        let base = canon("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)");
        // Variable names changed.
        assert_eq!(base.encoding, canon("Q(A,B) :- R(A,B), S(B,C), T(C,D), U(D,A)").encoding);
        // Body atoms permuted.
        assert_eq!(base.encoding, canon("Q(X,Y) :- U(W,X), T(Z,W), S(Y,Z), R(X,Y)").encoding);
        // Query name changed.
        assert_eq!(base.encoding, canon("P(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").encoding);
        // Existential variables introduced in a different first-occurrence
        // order: still isomorphic, still equal.
        assert_eq!(base.encoding, canon("Q(X,Y) :- T(Z,W), U(W,X), R(X,Y), S(Y,Z)").encoding);
    }

    #[test]
    fn non_isomorphic_queries_differ() {
        let base = canon("Q(X,Y) :- R(X,Y), S(Y,Z)");
        // Different free set.
        assert_ne!(base.encoding, canon("Q(X,Z) :- R(X,Y), S(Y,Z)").encoding);
        // Different relation symbol.
        assert_ne!(base.encoding, canon("Q(X,Y) :- R(X,Y), T(Y,Z)").encoding);
        // Different join structure.
        assert_ne!(base.encoding, canon("Q(X,Y) :- R(X,Y), S(X,Z)").encoding);
        // Extra atom.
        assert_ne!(base.encoding, canon("Q(X,Y) :- R(X,Y), S(Y,Z), S(Z,X)").encoding);
    }

    #[test]
    fn renaming_is_a_bijection_witnessing_the_encoding() {
        let c = canon("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)");
        let mut seen = vec![false; c.renaming.len()];
        for &id in &c.renaming {
            assert!(!seen[id as usize], "renaming must be injective");
            seen[id as usize] = true;
        }
        // Re-encoding under the returned renaming reproduces the encoding.
        let q = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        assert_eq!(encode_labeling(&q, &c.renaming), c.encoding);
    }

    #[test]
    fn symmetric_self_join_queries_stay_deterministic() {
        // Every atom uses the same symbol: colour refinement cannot fully
        // separate the variables, so the bounded search does the work.
        let a = canon("Tri() :- E(A,B), E(B,C), E(C,A)");
        let b = canon("Tri() :- E(X,Y), E(Y,Z), E(Z,X)");
        assert_eq!(a.encoding, b.encoding);
        // Deterministic across calls.
        assert_eq!(a, canon("Tri() :- E(A,B), E(B,C), E(C,A)"));
    }

    #[test]
    fn statistics_encodings_are_order_insensitive_and_label_free() {
        let q1 = parse_query("Q(X,Y) :- R(X,Y), S(Y,Z)").unwrap();
        let q2 = parse_query("Q(A,B) :- S(B,C), R(A,B)").unwrap();
        let c1 = canonicalize_query(&q1);
        let c2 = canonicalize_query(&q2);
        assert_eq!(c1.encoding, c2.encoding);
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 5], [3, 5], [3, 6]]));
        let s1 = StatisticsSet::measure(&q1, &db);
        let s2 = StatisticsSet::measure(&q2, &db);
        assert_eq!(
            canonical_statistics_encoding(&s1, &c1.renaming),
            canonical_statistics_encoding(&s2, &c2.renaming),
        );
        assert_eq!(
            statistics_fingerprint(&s1, &c1.renaming),
            statistics_fingerprint(&s2, &c2.renaming),
        );
        // Different data, different encoding.
        db.insert("S", Relation::from_rows(2, vec![[2, 5]]));
        let s3 = StatisticsSet::measure(&q1, &db);
        assert_ne!(
            canonical_statistics_encoding(&s1, &c1.renaming),
            canonical_statistics_encoding(&s3, &c1.renaming),
        );
    }

    #[test]
    fn fingerprints_are_stable_fnv() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        let c = canon("Q(X) :- R(X)");
        assert_eq!(c.fingerprint(), fnv1a(&c.encoding));
    }
}
