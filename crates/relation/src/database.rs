//! The [`Database`] — a named collection of relation instances.

use std::collections::HashMap;

use crate::column::Layout;
use crate::relation::{Relation, Value};

/// A database instance: a mapping from relation symbols to relation
/// instances, plus a small string-interning dictionary so callers can build
/// instances from symbolic data.
///
/// Because [`Relation`] storage is `Arc`-shared, cloning a `Database` is
/// O(relations), not O(tuples): every clone hands out zero-copy views that
/// share tuple data and cached indexes until a relation is mutated or
/// replaced.  The PANDA evaluators lean on this when they fan a database
/// out into per-branch copies that differ in a single partitioned relation.
///
/// # Examples
///
/// ```
/// use panda_relation::{Database, Relation};
///
/// let mut db = Database::new();
/// db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
/// assert_eq!(db.relation("R").unwrap().len(), 2);
/// assert_eq!(db.total_tuples(), 2);
///
/// // interning arbitrary labels:
/// let alice = db.intern("alice");
/// let bob = db.intern("bob");
/// assert_ne!(alice, bob);
/// assert_eq!(db.intern("alice"), alice);
/// assert_eq!(db.label_of(alice), Some("alice"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
    dictionary: HashMap<String, Value>,
    reverse_dictionary: Vec<String>,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts (or replaces) a relation instance under the given symbol.
    ///
    /// Under the columnar layout ([`Layout::from_env`], i.e.
    /// `PANDA_LAYOUT=columnar`) the relation's [column
    /// store](Relation::column_store) is built eagerly here, so every
    /// O(1) clone handed to the evaluators dispatches to the columnar
    /// kernels.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) -> &mut Self {
        if Layout::from_env().is_columnar() {
            let _ = relation.column_store();
        }
        self.relations.insert(name.into(), relation);
        self
    }

    /// Looks up a relation instance by symbol.
    #[must_use]
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Looks up a relation instance mutably.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Removes a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Iterates over `(symbol, relation)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> + '_ {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The relation symbols present, sorted (stable for reporting).
    #[must_use]
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        names
    }

    /// The number of relations.
    #[must_use]
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The input size `N = ‖D‖`: the total number of tuples across all
    /// relations (the paper's Section 3.1).
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The size of the largest single relation.
    #[must_use]
    pub fn max_relation_size(&self) -> usize {
        self.relations.values().map(Relation::len).max().unwrap_or(0)
    }

    /// Interns a string label, returning a stable `u64` value for it.
    pub fn intern(&mut self, label: &str) -> Value {
        if let Some(&v) = self.dictionary.get(label) {
            return v;
        }
        let v = self.reverse_dictionary.len() as Value;
        self.dictionary.insert(label.to_string(), v);
        self.reverse_dictionary.push(label.to_string());
        v
    }

    /// Returns the label previously interned as `value`, if any.
    #[must_use]
    pub fn label_of(&self, value: Value) -> Option<&str> {
        self.reverse_dictionary.get(value as usize).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 3], [3, 4]]));
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.max_relation_size(), 2);
        assert_eq!(db.relation_names(), vec!["R".to_string(), "S".to_string()]);
        assert!(db.relation("R").is_some());
        assert!(db.relation("T").is_none());
        let removed = db.remove("R").unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(db.num_relations(), 1);
    }

    #[test]
    fn replace_overwrites() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(1, vec![[1]]));
        db.insert("R", Relation::from_rows(1, vec![[1], [2]]));
        assert_eq!(db.relation("R").unwrap().len(), 2);
    }

    #[test]
    fn interning_is_stable_and_reversible() {
        let mut db = Database::new();
        let a = db.intern("a");
        let b = db.intern("b");
        assert_ne!(a, b);
        assert_eq!(db.intern("a"), a);
        assert_eq!(db.label_of(a), Some("a"));
        assert_eq!(db.label_of(b), Some("b"));
        assert_eq!(db.label_of(999), None);
    }

    #[test]
    fn database_clones_share_relation_storage() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        let branch = db.clone();
        assert!(branch.relation("R").unwrap().shares_storage_with(db.relation("R").unwrap()));
        // Replacing a relation in the branch leaves the original untouched.
        let mut branch = branch;
        branch.insert("R", Relation::from_rows(2, vec![[9, 9]]));
        assert_eq!(db.relation("R").unwrap().len(), 2);
        assert_eq!(branch.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn relation_mut_allows_in_place_updates() {
        let mut db = Database::new();
        db.insert("R", Relation::new(2));
        db.relation_mut("R").unwrap().push_row(&[7, 8]);
        assert_eq!(db.relation("R").unwrap().len(), 1);
    }
}
