//! The [`Database`] — a named collection of relation instances.

use std::collections::HashMap;

use crate::column::Layout;
use crate::relation::{Relation, Value};

/// A database instance: a mapping from relation symbols to relation
/// instances, plus a small string-interning dictionary so callers can build
/// instances from symbolic data.
///
/// Because [`Relation`] storage is `Arc`-shared, cloning a `Database` is
/// O(relations), not O(tuples): every clone hands out zero-copy views that
/// share tuple data and cached indexes until a relation is mutated or
/// replaced.  The PANDA evaluators lean on this when they fan a database
/// out into per-branch copies that differ in a single partitioned relation.
///
/// # Examples
///
/// ```
/// use panda_relation::{Database, Relation};
///
/// let mut db = Database::new();
/// db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
/// assert_eq!(db.relation("R").unwrap().len(), 2);
/// assert_eq!(db.total_tuples(), 2);
///
/// // interning arbitrary labels:
/// let alice = db.intern("alice");
/// let bob = db.intern("bob");
/// assert_ne!(alice, bob);
/// assert_eq!(db.intern("alice"), alice);
/// assert_eq!(db.label_of(alice), Some("alice"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
    dictionary: HashMap<String, Value>,
    reverse_dictionary: Vec<String>,
    /// Statistics epoch: bumped on every operation that can change the
    /// measured statistics of the instance (insert/replace, removal, or
    /// handing out a mutable relation reference).  Plan caches key on the
    /// epoch (or on [`Database::statistics_fingerprint`]) so a plan built
    /// against pre-mutation statistics can never be served post-mutation.
    epoch: u64,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts (or replaces) a relation instance under the given symbol.
    ///
    /// Under the columnar layout ([`Layout::from_env`], i.e.
    /// `PANDA_LAYOUT=columnar`) the relation's [column
    /// store](Relation::column_store) is built eagerly here, so every
    /// O(1) clone handed to the evaluators dispatches to the columnar
    /// kernels.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) -> &mut Self {
        if Layout::from_env().is_columnar() {
            let _ = relation.column_store();
        }
        self.epoch += 1;
        self.relations.insert(name.into(), relation);
        self
    }

    /// The statistics epoch: a counter bumped by every mutation entry point
    /// ([`Database::insert`], [`Database::relation_mut`],
    /// [`Database::remove`]).  Two equal epochs on the *same* instance
    /// guarantee the measured statistics are unchanged; the epoch is not
    /// comparable across instances (clones inherit the current value).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A deterministic fingerprint of the per-relation statistics the
    /// planner consumes: for every relation (in sorted name order) the
    /// name, arity, tuple count and distinct count are folded into an
    /// FNV-1a hash.  Unlike [`Database::epoch`] this is content-derived, so
    /// it is stable across clones and across process runs; a mutation that
    /// leaves all statistics unchanged leaves the fingerprint unchanged
    /// too.
    #[must_use]
    pub fn statistics_fingerprint(&self) -> u64 {
        // FNV-1a, 64-bit: a fixed, dependency-free hash so fingerprints do
        // not vary with the process's SipHash keys.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for name in self.relation_names() {
            // panda-lint: allow(P1) -- `relation_names` enumerates exactly
            // the keys of this map, so the lookup cannot miss.
            let rel = &self.relations[&name];
            eat(name.as_bytes());
            eat(&[0xff]);
            eat(&(rel.arity() as u64).to_le_bytes());
            eat(&(rel.len() as u64).to_le_bytes());
            eat(&(rel.distinct_count() as u64).to_le_bytes());
        }
        h
    }

    /// Looks up a relation instance by symbol.
    #[must_use]
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Looks up a relation instance mutably.  Conservatively bumps the
    /// statistics epoch: the caller may mutate through the reference.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        let rel = self.relations.get_mut(name);
        if rel.is_some() {
            self.epoch += 1;
        }
        rel
    }

    /// Removes a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        let rel = self.relations.remove(name);
        if rel.is_some() {
            self.epoch += 1;
        }
        rel
    }

    /// Iterates over `(symbol, relation)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> + '_ {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The relation symbols present, sorted (stable for reporting).
    #[must_use]
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        names
    }

    /// The number of relations.
    #[must_use]
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The input size `N = ‖D‖`: the total number of tuples across all
    /// relations (the paper's Section 3.1).
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The size of the largest single relation.
    #[must_use]
    pub fn max_relation_size(&self) -> usize {
        self.relations.values().map(Relation::len).max().unwrap_or(0)
    }

    /// Interns a string label, returning a stable `u64` value for it.
    pub fn intern(&mut self, label: &str) -> Value {
        if let Some(&v) = self.dictionary.get(label) {
            return v;
        }
        let v = self.reverse_dictionary.len() as Value;
        self.dictionary.insert(label.to_string(), v);
        self.reverse_dictionary.push(label.to_string());
        v
    }

    /// Returns the label previously interned as `value`, if any.
    #[must_use]
    pub fn label_of(&self, value: Value) -> Option<&str> {
        self.reverse_dictionary.get(value as usize).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        db.insert("S", Relation::from_rows(2, vec![[2, 3], [3, 4]]));
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.max_relation_size(), 2);
        assert_eq!(db.relation_names(), vec!["R".to_string(), "S".to_string()]);
        assert!(db.relation("R").is_some());
        assert!(db.relation("T").is_none());
        let removed = db.remove("R").unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(db.num_relations(), 1);
    }

    #[test]
    fn replace_overwrites() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(1, vec![[1]]));
        db.insert("R", Relation::from_rows(1, vec![[1], [2]]));
        assert_eq!(db.relation("R").unwrap().len(), 2);
    }

    #[test]
    fn interning_is_stable_and_reversible() {
        let mut db = Database::new();
        let a = db.intern("a");
        let b = db.intern("b");
        assert_ne!(a, b);
        assert_eq!(db.intern("a"), a);
        assert_eq!(db.label_of(a), Some("a"));
        assert_eq!(db.label_of(b), Some("b"));
        assert_eq!(db.label_of(999), None);
    }

    #[test]
    fn database_clones_share_relation_storage() {
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        let branch = db.clone();
        assert!(branch.relation("R").unwrap().shares_storage_with(db.relation("R").unwrap()));
        // Replacing a relation in the branch leaves the original untouched.
        let mut branch = branch;
        branch.insert("R", Relation::from_rows(2, vec![[9, 9]]));
        assert_eq!(db.relation("R").unwrap().len(), 2);
        assert_eq!(branch.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn relation_mut_allows_in_place_updates() {
        let mut db = Database::new();
        db.insert("R", Relation::new(2));
        db.relation_mut("R").unwrap().push_row(&[7, 8]);
        assert_eq!(db.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn epoch_bumps_on_every_mutation_entry_point() {
        let mut db = Database::new();
        assert_eq!(db.epoch(), 0);
        db.insert("R", Relation::from_rows(2, vec![[1, 2]]));
        let e1 = db.epoch();
        assert!(e1 > 0);
        // Mutable access bumps even if nothing is written.
        let _ = db.relation_mut("R");
        assert!(db.epoch() > e1);
        let e2 = db.epoch();
        // Missing relations don't bump.
        assert!(db.relation_mut("nope").is_none());
        assert!(db.remove("nope").is_none());
        assert_eq!(db.epoch(), e2);
        db.remove("R");
        assert!(db.epoch() > e2);
        // Reads never bump.
        let e3 = db.epoch();
        let _ = db.relation("R");
        let _ = db.total_tuples();
        let _ = db.statistics_fingerprint();
        assert_eq!(db.epoch(), e3);
    }

    #[test]
    fn statistics_fingerprint_tracks_content_not_identity() {
        let mut a = Database::new();
        a.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        a.insert("S", Relation::from_rows(1, vec![[5]]));
        let mut b = Database::new();
        // Insertion order must not matter (sorted names drive the hash).
        b.insert("S", Relation::from_rows(1, vec![[5]]));
        b.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        assert_eq!(a.statistics_fingerprint(), b.statistics_fingerprint());
        // Clones agree even though epochs are merely inherited.
        assert_eq!(a.clone().statistics_fingerprint(), a.statistics_fingerprint());
        // Changing the data changes the fingerprint.
        b.insert("R", Relation::from_rows(2, vec![[1, 2], [2, 3], [3, 4]]));
        assert_ne!(a.statistics_fingerprint(), b.statistics_fingerprint());
        // Renaming a relation changes the fingerprint.
        let mut c = Database::new();
        c.insert("R2", Relation::from_rows(2, vec![[1, 2], [2, 3]]));
        c.insert("S", Relation::from_rows(1, vec![[5]]));
        assert_ne!(a.statistics_fingerprint(), c.statistics_fingerprint());
    }
}
