//! Columnar storage: per-column `Arc`-shared buffers with dictionary
//! encoding, behind the same copy-on-write + index-cache architecture as
//! the row-major store.
//!
//! The row-major flat buffer of a [`Relation`] stays the *source of
//! truth* — `Relation::row` and `Relation::iter` hand out borrowed slices
//! of it, and every mutation path goes through it.  A [`ColumnStore`] is a
//! derived structure: a per-column mirror of the same rows, cached in the
//! relation's shared `IndexCache` exactly like hash indexes and degree
//! maps.  That placement buys the whole copy-on-write story for free:
//!
//! * O(1) relation clones share the column store (it rides in the shared
//!   cache `Arc`),
//! * mutation detaches the relation from the cache, so stale columns can
//!   never be observed,
//! * `Relation::partitioned` shard views carry zero-copy *slices* of the
//!   parent's column store (same `Arc` buffers, narrowed row window).
//!
//! Low-cardinality columns are dictionary-encoded ([`ColumnData::Dict`]):
//! values are replaced by `u32` codes into a sorted dictionary of the
//! distinct values.  The sorted dictionary makes value→code lookup a
//! binary search and gives the batch kernels in `crate::kernels` their
//! fast paths (per-*code* membership probes instead of per-*row* hash
//! probes).
//!
//! Whether the columnar layout is *active* is controlled by
//! [`Layout`] — `PANDA_LAYOUT=columnar` (or programmatic
//! [`Relation::column_store`] calls) attaches column stores to base
//! relations, and the operator layer dispatches to the columnar kernels
//! whenever its inputs carry one.  Outputs are **bit-identical across
//! layouts**: every kernel visits rows in the same order and keeps first
//! occurrences exactly like its row-major twin.

// panda-lint: allow-file(P1) -- column and row indices are bounded by the
// store's (columns, rows) shape, checked at construction from the
// relation's arity invariant; dictionary codes are produced by the same
// binary search that built the dictionary.

use std::sync::Arc;

use crate::relation::{Relation, Value};

/// The physical storage layout the engine evaluates over.
///
/// Row-major is the default: relations are flat `Arc<Vec<Value>>` buffers
/// and operators walk `arity`-strided tuples.  Under [`Layout::Columnar`]
/// base relations additionally carry a [`ColumnStore`] and the operator
/// layer routes through the batch kernels in `crate::kernels`.  The
/// layout knob changes *wall-clock time only*: outputs are bit-identical
/// across layouts and engines (pinned by the workspace's differential and
/// parallel-determinism suites).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Flat row-major tuples only (the default).
    #[default]
    RowMajor,
    /// Row-major plus per-column mirrors and batch kernels.
    Columnar,
}

impl Layout {
    /// The layout selected by the `PANDA_LAYOUT` environment variable
    /// (read once per process): `columnar` (case-insensitive; `column` and
    /// `col` are accepted) selects [`Layout::Columnar`]; everything else —
    /// unset, empty, `row`, unrecognised — is [`Layout::RowMajor`].
    ///
    /// This is what `Database::insert` and the atom-binding layer in
    /// `panda-core` consult, and what the CI matrix toggles to run the
    /// whole test suite under both layouts.
    #[must_use]
    pub fn from_env() -> Self {
        static FROM_ENV: std::sync::OnceLock<Layout> = std::sync::OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("PANDA_LAYOUT") {
            Ok(v)
                if v.eq_ignore_ascii_case("columnar")
                    || v.eq_ignore_ascii_case("column")
                    || v.eq_ignore_ascii_case("col") =>
            {
                Layout::Columnar
            }
            _ => Layout::RowMajor,
        })
    }

    /// `true` iff this is the columnar layout.
    #[must_use]
    pub fn is_columnar(self) -> bool {
        self == Layout::Columnar
    }
}

/// Dictionary encoding is only attempted when a column has at most this
/// many distinct values (codes are `u32`, but a huge dictionary defeats
/// the purpose: per-code kernels degenerate to per-row work).
const DICT_MAX_CARDINALITY: usize = 1 << 16;

/// One column's physical buffer: either the plain values, or `u32` codes
/// into a sorted dictionary of the distinct values (chosen per column at
/// build time for low-cardinality columns).
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// The values themselves, one per row.
    Plain(Arc<Vec<Value>>),
    /// Dictionary encoding: `dict` holds the sorted distinct values and
    /// `codes[i]` indexes into it.
    Dict {
        /// Per-row codes into `dict`.
        codes: Arc<Vec<u32>>,
        /// The sorted distinct values of the column.
        dict: Arc<Vec<Value>>,
    },
}

impl ColumnData {
    /// The value at (absolute) row `i`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Plain(values) => values[i],
            ColumnData::Dict { codes, dict } => dict[codes[i] as usize],
        }
    }

    /// Builds the column from gathered values, dictionary-encoding when
    /// the distinct-value count is low.  The encoding decision is a pure
    /// function of the values, so clones and re-builds agree.
    fn from_values(values: Vec<Value>) -> ColumnData {
        let mut dict: Vec<Value> = values.clone();
        dict.sort_unstable();
        dict.dedup();
        // Encode only when the dictionary earns its indirection: few
        // distinct values, and strictly fewer than rows (a key-like column
        // gains nothing).
        if dict.is_empty() || dict.len() > DICT_MAX_CARDINALITY || dict.len() * 2 > values.len() {
            return ColumnData::Plain(Arc::new(values));
        }
        let codes: Vec<u32> = values
            .iter()
            .map(|v| {
                // The dictionary was built from these exact values, so the
                // search always succeeds.
                let code = dict.binary_search(v).unwrap_or(usize::MAX);
                debug_assert!(code < dict.len());
                code as u32
            })
            .collect();
        ColumnData::Dict { codes: Arc::new(codes), dict: Arc::new(dict) }
    }
}

/// A per-column mirror of a relation's rows: `columns[c]` holds the values
/// of column `c` for rows `[start, start + rows)` of the underlying
/// buffers.
///
/// Stores are built once per relation ([`Relation::column_store`]), cached
/// in the relation's shared `IndexCache`, and *sliced* zero-copy for shard
/// views (`Arc`-shared column buffers, narrowed `[start, rows)` window) —
/// the columnar counterpart of [`Relation::partitioned`]'s row views.
///
/// # Examples
///
/// ```
/// use panda_relation::Relation;
///
/// let r = Relation::from_rows(2, (0..64u64).map(|i| [i, i % 3]));
/// let store = r.column_store().unwrap();
/// assert_eq!(store.num_rows(), 64);
/// assert_eq!(store.value(5, 0), 5);
/// assert_eq!(store.value(5, 1), 2);
/// // Column 1 has 3 distinct values over 64 rows: dictionary-encoded.
/// assert!(store.dict_column(1).is_some());
/// assert!(store.dict_column(0).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ColumnStore {
    start: usize,
    rows: usize,
    columns: Vec<ColumnData>,
}

impl ColumnStore {
    /// Builds the columnar mirror of a relation's (viewed) rows.  One pass
    /// per column; dictionary encoding is decided per column.
    #[must_use]
    pub fn from_relation(relation: &Relation) -> ColumnStore {
        let arity = relation.arity();
        let rows = relation.len();
        let columns = (0..arity)
            .map(|c| {
                let values: Vec<Value> = relation.iter().map(|row| row[c]).collect();
                ColumnData::from_values(values)
            })
            .collect();
        ColumnStore { start: 0, rows, columns }
    }

    /// The number of rows in (this view of) the store.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The value at `(row, col)`, `row` relative to this view.
    #[inline]
    #[must_use]
    pub fn value(&self, row: usize, col: usize) -> Value {
        debug_assert!(row < self.rows && col < self.columns.len());
        self.columns[col].get(self.start + row)
    }

    /// Gathers the key columns of `row` into `buf` (cleared first) — the
    /// columnar analogue of striding over a row-major tuple.
    #[inline]
    pub fn gather_key(&self, row: usize, cols: &[usize], buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(cols.iter().map(|&c| self.value(row, c)));
    }

    /// Gathers the full row into `buf` (cleared first).
    #[inline]
    pub fn gather_row(&self, row: usize, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.get(self.start + row)));
    }

    /// The codes (restricted to this view) and the full sorted dictionary
    /// of column `col`, when it is dictionary-encoded.  A sliced view's
    /// dictionary may contain values that do not occur in the view; the
    /// codes slice is exact.
    #[must_use]
    pub fn dict_column(&self, col: usize) -> Option<(&[u32], &[Value])> {
        match &self.columns[col] {
            ColumnData::Dict { codes, dict } => {
                Some((&codes[self.start..self.start + self.rows], dict.as_slice()))
            }
            ColumnData::Plain(_) => None,
        }
    }

    /// The plain value buffer (restricted to this view) of column `col`,
    /// when it is *not* dictionary-encoded.
    #[must_use]
    pub fn plain_column(&self, col: usize) -> Option<&[Value]> {
        match &self.columns[col] {
            ColumnData::Plain(values) => Some(&values[self.start..self.start + self.rows]),
            ColumnData::Dict { .. } => None,
        }
    }

    /// A zero-copy slice of rows `[lo, lo + rows)` of this view: the
    /// column buffers are `Arc`-shared, only the window narrows.  This is
    /// what `Relation::partitioned` attaches to its shard views.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds this view's rows.
    #[must_use]
    pub fn slice(&self, lo: usize, rows: usize) -> ColumnStore {
        assert!(
            lo + rows <= self.rows,
            "column-store slice [{lo}, {}) out of bounds for {} rows",
            lo + rows,
            self.rows
        );
        ColumnStore { start: self.start + lo, rows, columns: self.columns.clone() }
    }

    /// `true` iff the two stores share the same column buffers (slices of
    /// one build, or clones of each other).
    #[must_use]
    pub fn shares_buffers_with(&self, other: &ColumnStore) -> bool {
        self.columns.len() == other.columns.len()
            && self.columns.iter().zip(&other.columns).all(|(a, b)| match (a, b) {
                (ColumnData::Plain(x), ColumnData::Plain(y)) => Arc::ptr_eq(x, y),
                (
                    ColumnData::Dict { codes: xc, dict: xd },
                    ColumnData::Dict { codes: yc, dict: yd },
                ) => Arc::ptr_eq(xc, yc) && Arc::ptr_eq(xd, yd),
                _ => false,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_default_is_row_major() {
        assert_eq!(Layout::default(), Layout::RowMajor);
        assert!(!Layout::RowMajor.is_columnar());
        assert!(Layout::Columnar.is_columnar());
    }

    #[test]
    fn store_mirrors_every_value() {
        let r = Relation::from_rows(3, (0..50u64).map(|i| [i, i % 4, 1000 + i]));
        let store = ColumnStore::from_relation(&r);
        assert_eq!(store.num_rows(), 50);
        assert_eq!(store.num_columns(), 3);
        for (i, row) in r.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(store.value(i, c), v, "mismatch at ({i}, {c})");
            }
            let mut buf = Vec::new();
            store.gather_row(i, &mut buf);
            assert_eq!(buf.as_slice(), row);
        }
    }

    #[test]
    fn low_cardinality_columns_are_dictionary_encoded() {
        let r = Relation::from_rows(2, (0..100u64).map(|i| [i, i % 5]));
        let store = ColumnStore::from_relation(&r);
        assert!(store.plain_column(0).is_some(), "a key-like column stays plain");
        let (codes, dict) = store.dict_column(1).expect("5 distinct over 100 rows encodes");
        assert_eq!(dict, &[0, 1, 2, 3, 4]);
        assert_eq!(codes.len(), 100);
        // The dictionary is sorted and codes decode to the original values.
        for (i, row) in r.iter().enumerate() {
            assert_eq!(dict[codes[i] as usize], row[1]);
        }
    }

    #[test]
    fn slices_share_buffers_and_narrow_the_window() {
        let r = Relation::from_rows(2, (0..40u64).map(|i| [i, i % 3]));
        let store = ColumnStore::from_relation(&r);
        let s = store.slice(10, 5);
        assert_eq!(s.num_rows(), 5);
        assert!(s.shares_buffers_with(&store));
        for i in 0..5 {
            assert_eq!(s.value(i, 0), store.value(10 + i, 0));
            assert_eq!(s.value(i, 1), store.value(10 + i, 1));
        }
        // Slicing a slice composes the offsets.
        let s2 = s.slice(2, 2);
        assert_eq!(s2.value(0, 0), store.value(12, 0));
        let (codes, _) = s2.dict_column(1).expect("dict survives slicing");
        assert_eq!(codes.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        let r = Relation::from_rows(1, vec![[1], [2]]);
        let _ = ColumnStore::from_relation(&r).slice(1, 2);
    }

    #[test]
    fn empty_and_zero_arity_stores() {
        let store = ColumnStore::from_relation(&Relation::new(2));
        assert_eq!(store.num_rows(), 0);
        assert_eq!(store.num_columns(), 2);
        let mut b = Relation::new(0);
        b.push_row(&[]);
        let store = ColumnStore::from_relation(&b);
        assert_eq!(store.num_rows(), 1);
        assert_eq!(store.num_columns(), 0);
    }
}
