//! Degree statistics and degree-based partitioning.
//!
//! The paper's statistics abstraction (Section 3.2) is the *degree
//! constraint* `deg_R(Y | X) ≤ N_{Y|X}`: for every fixed assignment of the
//! columns `X`, the number of distinct `Y`-values is bounded.  This module
//! measures those degrees on concrete relation instances, and implements
//! the two partitioning primitives the PANDA algorithm relies on
//! (Section 8.2):
//!
//! * **heavy/light splitting** at a threshold (e.g. `deg_S(Z|Y=y) ≤ √N`),
//! * **power-of-two degree bucketing**, which produces `O(log N)` buckets
//!   within which degrees are uniform up to a factor of two — the
//!   "uniformization" that turns worst-case bounds into per-branch costs.
//!
//! All measurements go through one shared [`GroupedDegrees`] map (group →
//! number of distinct value-tuples), obtained via
//! [`Relation::grouped_degrees`] so repeated measurements of the same
//! `(relation, group, value)` triple — ubiquitous in the adaptive plan's
//! per-branch costing — are served from the relation's cache.

// panda-lint: allow-file(P1) -- degree vectors are sized to the group
// columns they were built from two lines earlier.

use std::collections::{HashMap, HashSet};

use crate::column::ColumnStore;
use crate::index::HashIndex;
use crate::relation::{Relation, Tuple, Value};

/// The per-group distinct-value counts of a relation for one split of its
/// columns into group columns `X` and value columns `Y`: for every distinct
/// `X`-value, the number of distinct `Y`-values co-occurring with it
/// (`deg_R(Y|X=x) = |π_Y σ_{X=x} R|`).  Duplicate rows are ignored.
///
/// The column sets are canonical (sorted, deduplicated) — degrees do not
/// depend on column order or repetition — which is what lets one computed
/// map serve [`degree_profile`], [`split_heavy_light`],
/// [`bucket_by_degree`] and [`degree_sequence`] alike, cached on the
/// relation via [`Relation::grouped_degrees`].
#[derive(Debug, Clone)]
pub struct GroupedDegrees {
    group_cols: Vec<usize>,
    value_cols: Vec<usize>,
    degrees: HashMap<Tuple, usize>,
    max_degree: usize,
    min_degree: usize,
    total: usize,
}

impl GroupedDegrees {
    /// Measures the degrees on a relation.  `group_cols` and `value_cols`
    /// must already be canonical (strictly increasing); use
    /// [`Relation::grouped_degrees`] to canonicalise and cache.
    #[must_use]
    pub(crate) fn compute(relation: &Relation, group_cols: &[usize], value_cols: &[usize]) -> Self {
        if value_cols.is_empty() {
            // Every group has exactly one distinct (empty) value-tuple, so
            // this degenerates to a distinct count over the group columns —
            // no per-group set needed.
            let mut degrees: HashMap<Tuple, usize> = HashMap::with_capacity(relation.len());
            for row in relation.iter() {
                let key: Tuple = group_cols.iter().map(|&c| row[c]).collect();
                degrees.entry(key).or_insert(1);
            }
            let n = degrees.len();
            return GroupedDegrees {
                group_cols: group_cols.to_vec(),
                value_cols: Vec::new(),
                degrees,
                max_degree: usize::from(n > 0),
                min_degree: usize::from(n > 0),
                total: n,
            };
        }
        let mut groups: HashMap<Tuple, HashSet<Tuple>> = HashMap::new();
        for row in relation.iter() {
            let key: Tuple = group_cols.iter().map(|&c| row[c]).collect();
            let value: Tuple = value_cols.iter().map(|&c| row[c]).collect();
            groups.entry(key).or_default().insert(value);
        }
        let mut max_degree = 0;
        let mut min_degree = usize::MAX;
        let mut total = 0;
        let degrees: HashMap<Tuple, usize> = groups
            .into_iter()
            .map(|(key, values)| {
                let d = values.len();
                max_degree = max_degree.max(d);
                min_degree = min_degree.min(d);
                total += d;
                (key, d)
            })
            .collect();
        if degrees.is_empty() {
            min_degree = 0;
        }
        GroupedDegrees {
            group_cols: group_cols.to_vec(),
            value_cols: value_cols.to_vec(),
            degrees,
            max_degree,
            min_degree,
            total,
        }
    }

    /// Column-direct twin of [`GroupedDegrees::compute`]: reads group keys
    /// and value tuples from a [`ColumnStore`].  On the ubiquitous
    /// single-group/single-value shape the per-group sets are keyed by the
    /// bare `u64` (and indexed per dictionary code when the group column is
    /// dictionary-encoded) instead of allocating a `Tuple` per row.
    ///
    /// Degrees are per-group *set sizes* — order-insensitive — so the
    /// resulting map, max/min and total are identical to the row-major
    /// computation by construction.
    #[must_use]
    pub(crate) fn compute_from_store(
        store: &ColumnStore,
        group_cols: &[usize],
        value_cols: &[usize],
    ) -> Self {
        let rows = store.num_rows();
        if let ([g], [v]) = (group_cols, value_cols) {
            // deg(v | g): one set of v-values per distinct g-value, keyed
            // back as single-column tuples.  Hash order never reaches an
            // ordered sink here: the degrees map and the max/min/total
            // folds below are order-insensitive.
            let degrees: HashMap<Tuple, usize> = if let Some((codes, dict)) = store.dict_column(*g)
            {
                let mut per_code: Vec<HashSet<Value>> = vec![HashSet::new(); dict.len()];
                for (i, &code) in codes.iter().enumerate() {
                    per_code[code as usize].insert(store.value(i, *v));
                }
                per_code
                    .into_iter()
                    .enumerate()
                    .filter(|(_, set)| !set.is_empty())
                    .map(|(code, set)| (vec![dict[code]], set.len()))
                    .collect::<HashMap<Tuple, usize>>()
            } else {
                let mut by_value: HashMap<Value, HashSet<Value>> = HashMap::new();
                for i in 0..rows {
                    by_value.entry(store.value(i, *g)).or_default().insert(store.value(i, *v));
                }
                by_value
                    .into_iter()
                    .map(|(key, set)| (vec![key], set.len()))
                    .collect::<HashMap<Tuple, usize>>()
            };
            let mut max_degree = 0;
            let mut min_degree = usize::MAX;
            let mut total = 0;
            for &d in degrees.values() {
                max_degree = max_degree.max(d);
                min_degree = min_degree.min(d);
                total += d;
            }
            if degrees.is_empty() {
                min_degree = 0;
            }
            return GroupedDegrees {
                group_cols: group_cols.to_vec(),
                value_cols: value_cols.to_vec(),
                degrees,
                max_degree,
                min_degree,
                total,
            };
        }
        if value_cols.is_empty() {
            // As in `compute`: degenerates to the distinct groups.
            let mut degrees: HashMap<Tuple, usize> = HashMap::with_capacity(rows);
            let mut key_buf: Tuple = Tuple::with_capacity(group_cols.len());
            for i in 0..rows {
                store.gather_key(i, group_cols, &mut key_buf);
                if !degrees.contains_key(&key_buf) {
                    degrees.insert(key_buf.clone(), 1);
                }
            }
            let n = degrees.len();
            return GroupedDegrees {
                group_cols: group_cols.to_vec(),
                value_cols: Vec::new(),
                degrees,
                max_degree: usize::from(n > 0),
                min_degree: usize::from(n > 0),
                total: n,
            };
        }
        let mut groups: HashMap<Tuple, HashSet<Tuple>> = HashMap::new();
        let mut key_buf: Tuple = Tuple::with_capacity(group_cols.len());
        let mut val_buf: Tuple = Tuple::with_capacity(value_cols.len());
        for i in 0..rows {
            store.gather_key(i, group_cols, &mut key_buf);
            store.gather_key(i, value_cols, &mut val_buf);
            groups.entry(key_buf.clone()).or_default().insert(val_buf.clone());
        }
        let mut max_degree = 0;
        let mut min_degree = usize::MAX;
        let mut total = 0;
        let degrees: HashMap<Tuple, usize> = groups
            .into_iter()
            .map(|(key, values)| {
                let d = values.len();
                max_degree = max_degree.max(d);
                min_degree = min_degree.min(d);
                total += d;
                (key, d)
            })
            .collect();
        if degrees.is_empty() {
            min_degree = 0;
        }
        GroupedDegrees {
            group_cols: group_cols.to_vec(),
            value_cols: value_cols.to_vec(),
            degrees,
            max_degree,
            min_degree,
            total,
        }
    }

    /// The canonical group (conditioning) columns.
    #[must_use]
    pub fn group_cols(&self) -> &[usize] {
        &self.group_cols
    }

    /// The canonical value columns.
    #[must_use]
    pub fn value_cols(&self) -> &[usize] {
        &self.value_cols
    }

    /// Number of distinct group values.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.degrees.len()
    }

    /// Maximum over groups of the number of distinct value-tuples, i.e.
    /// `deg_R(Y | X)`.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Minimum over groups of the number of distinct value-tuples (zero for
    /// an empty relation).
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.min_degree
    }

    /// Total number of distinct `(X, Y)` pairs.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// The degree of the group the given row belongs to (zero if the row's
    /// group does not occur, i.e. the row is not from this relation).
    #[must_use]
    pub fn degree_of_row(&self, row: &[Value]) -> usize {
        let key: Tuple = self.group_cols.iter().map(|&c| row[c]).collect();
        self.degrees.get(&key).copied().unwrap_or(0)
    }

    /// Every degree value observed per group, sorted descending.
    #[must_use]
    pub fn sequence_desc(&self) -> Vec<usize> {
        let mut seq: Vec<usize> = self.degrees.values().copied().collect();
        seq.sort_unstable_by(|a, b| b.cmp(a));
        seq
    }
}

/// The measured degree profile of a relation with respect to a split of its
/// columns into group columns `X` and value columns `Y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeProfile {
    /// The group (conditioning) columns `X`.
    pub group_cols: Vec<usize>,
    /// The value columns `Y`.
    pub value_cols: Vec<usize>,
    /// Number of distinct `X`-values.
    pub num_groups: usize,
    /// Maximum over groups of the number of distinct `Y`-values, i.e.
    /// `deg_R(Y | X)`.
    pub max_degree: usize,
    /// Total number of distinct `(X, Y)` pairs.
    pub total: usize,
}

impl DegreeProfile {
    /// Average degree (total / groups), rounded up; zero for an empty
    /// relation.
    #[must_use]
    pub fn avg_degree_ceil(&self) -> usize {
        if self.num_groups == 0 {
            0
        } else {
            self.total.div_ceil(self.num_groups)
        }
    }
}

/// One bucket of a power-of-two degree bucketing.
#[derive(Debug, Clone)]
pub struct DegreeBucket {
    /// Lower bound (inclusive) on the per-group degree in this bucket.
    pub degree_lo: usize,
    /// Upper bound (inclusive) on the per-group degree in this bucket.
    pub degree_hi: usize,
    /// The tuples of the original relation whose group falls in the bucket.
    pub relation: Relation,
    /// Number of distinct group values in the bucket.
    pub num_groups: usize,
}

/// Measures the degree of `value_cols` given `group_cols` in `relation`.
///
/// Duplicate rows are ignored (degrees are about *distinct* values, per the
/// paper's definition `deg_R(Y|X=x) = |π_Y σ_{X=x} R|`).
#[must_use]
pub fn degree_profile(
    relation: &Relation,
    group_cols: &[usize],
    value_cols: &[usize],
) -> DegreeProfile {
    let gd = relation.grouped_degrees(group_cols, value_cols);
    DegreeProfile {
        group_cols: group_cols.to_vec(),
        value_cols: value_cols.to_vec(),
        num_groups: gd.num_groups(),
        max_degree: gd.max_degree(),
        total: gd.total(),
    }
}

/// The maximum degree `deg_R(Y | X)`; convenience wrapper around
/// [`Relation::grouped_degrees`].
#[must_use]
pub fn max_degree(relation: &Relation, group_cols: &[usize], value_cols: &[usize]) -> usize {
    relation.grouped_degrees(group_cols, value_cols).max_degree()
}

/// The number of distinct values of a set of columns.  Only the resulting
/// count is cached on the relation (see [`Relation::distinct_count_of`]).
#[must_use]
pub fn distinct_count(relation: &Relation, cols: &[usize]) -> usize {
    relation.distinct_count_of(cols)
}

/// Splits `relation` into `(light, heavy)` parts: a tuple goes to `heavy`
/// iff its group value has strictly more than `threshold` distinct
/// value-column assignments.  This is the partitioning used in the paper's
/// running example (`deg_S(Z|Y=y) ≤ √N` vs `> √N`, Section 8.2).
///
/// When one side is empty the other is an O(1) clone of the input (shared
/// storage, shared index cache).
#[must_use]
pub fn split_heavy_light(
    relation: &Relation,
    group_cols: &[usize],
    value_cols: &[usize],
    threshold: usize,
) -> (Relation, Relation) {
    let gd = relation.grouped_degrees(group_cols, value_cols);
    if gd.max_degree() <= threshold {
        return (relation.clone(), Relation::new(relation.arity()));
    }
    if gd.min_degree() > threshold {
        return (Relation::new(relation.arity()), relation.clone());
    }
    let mut light = Relation::new(relation.arity());
    let mut heavy = Relation::new(relation.arity());
    for row in relation.iter() {
        if gd.degree_of_row(row) > threshold {
            heavy.push_row(row);
        } else {
            light.push_row(row);
        }
    }
    (light, heavy)
}

/// The inclusive upper end of the power-of-two degree bucket starting at
/// `2^j`, saturating instead of overflowing for the top bucket.
fn bucket_hi(j: u32) -> usize {
    match 1usize.checked_shl(j + 1) {
        Some(v) => v - 1,
        None => usize::MAX,
    }
}

/// Buckets `relation` by the degree of its groups into power-of-two ranges
/// `[2^j, 2^{j+1})`.  Buckets are returned in increasing degree order and
/// empty buckets are omitted; together they partition the relation's rows.
///
/// When all groups fall in one bucket, that bucket's relation is an O(1)
/// clone of the input (shared storage, shared index cache).
#[must_use]
pub fn bucket_by_degree(
    relation: &Relation,
    group_cols: &[usize],
    value_cols: &[usize],
) -> Vec<DegreeBucket> {
    if relation.is_empty() {
        return Vec::new();
    }
    let gd = relation.grouped_degrees(group_cols, value_cols);
    let bucket_of = |degree: usize| -> u32 {
        debug_assert!(degree >= 1);
        usize::BITS - 1 - degree.leading_zeros() // floor(log2(degree))
    };
    let lo_bucket = bucket_of(gd.min_degree());
    let hi_bucket = bucket_of(gd.max_degree());
    if lo_bucket == hi_bucket {
        return vec![DegreeBucket {
            degree_lo: 1usize << lo_bucket,
            degree_hi: bucket_hi(lo_bucket),
            relation: relation.clone(),
            num_groups: gd.num_groups(),
        }];
    }
    let mut buckets: HashMap<u32, (Relation, HashSet<Tuple>)> = HashMap::new();
    for row in relation.iter() {
        let degree = gd.degree_of_row(row);
        let bucket_id = bucket_of(degree);
        let key: Tuple = gd.group_cols().iter().map(|&c| row[c]).collect();
        let entry = buckets
            .entry(bucket_id)
            .or_insert_with(|| (Relation::new(relation.arity()), HashSet::new()));
        entry.0.push_row(row);
        entry.1.insert(key);
    }
    let mut out: Vec<DegreeBucket> = buckets
        .into_iter()
        .map(|(j, (rel, groups))| DegreeBucket {
            degree_lo: 1usize << j,
            degree_hi: bucket_hi(j),
            relation: rel,
            num_groups: groups.len(),
        })
        .collect();
    out.sort_by_key(|b| b.degree_lo);
    out
}

/// Returns every degree value observed per group, sorted descending.
/// Useful for computing ℓ_k norms of degree sequences (Section 9.2).
#[must_use]
pub fn degree_sequence(
    relation: &Relation,
    group_cols: &[usize],
    value_cols: &[usize],
) -> Vec<usize> {
    relation.grouped_degrees(group_cols, value_cols).sequence_desc()
}

/// The ℓ_k norm of the degree sequence of `value_cols` given `group_cols`,
/// as a floating point number (`k = 0` is interpreted as ℓ_∞, i.e. the max
/// degree).  See Eq. (72) of the paper.
#[must_use]
pub fn lp_norm_of_degree_sequence(
    relation: &Relation,
    group_cols: &[usize],
    value_cols: &[usize],
    k: u32,
) -> f64 {
    let seq = degree_sequence(relation, group_cols, value_cols);
    if k == 0 {
        return seq.first().copied().unwrap_or(0) as f64;
    }
    let sum: f64 = seq.iter().map(|&d| (d as f64).powi(k as i32)).sum();
    sum.powf(1.0 / f64::from(k))
}

/// Builds an index and reports `max_degree` through it — sanity helper used
/// in tests to cross-check [`degree_profile`] against [`HashIndex`].
#[must_use]
pub fn max_degree_via_index(relation: &Relation, group_cols: &[usize]) -> usize {
    HashIndex::build(relation, group_cols).max_degree()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn skewed() -> Relation {
        // y=1 has degree 4, y=2 degree 2, y=3 degree 1.
        Relation::from_rows(2, vec![[1, 10], [1, 11], [1, 12], [1, 13], [2, 20], [2, 21], [3, 30]])
    }

    #[test]
    fn degree_profile_basic() {
        let r = skewed();
        let p = degree_profile(&r, &[0], &[1]);
        assert_eq!(p.num_groups, 3);
        assert_eq!(p.max_degree, 4);
        assert_eq!(p.total, 7);
        assert_eq!(p.avg_degree_ceil(), 3);
        assert_eq!(max_degree(&r, &[0], &[1]), 4);
        assert_eq!(max_degree(&r, &[1], &[0]), 1);
    }

    #[test]
    fn degree_ignores_duplicate_rows() {
        let r = Relation::from_rows(2, vec![[1, 10], [1, 10], [1, 11]]);
        assert_eq!(max_degree(&r, &[0], &[1]), 2);
    }

    #[test]
    fn cardinality_is_degree_with_empty_condition() {
        let r = skewed();
        let p = degree_profile(&r, &[], &[0, 1]);
        assert_eq!(p.max_degree, 7);
        assert_eq!(p.num_groups, 1);
        assert_eq!(distinct_count(&r, &[0]), 3);
        assert_eq!(distinct_count(&r, &[0, 1]), 7);
    }

    #[test]
    fn grouped_degrees_is_order_and_repetition_invariant() {
        let r = Relation::from_rows(3, vec![[1, 10, 5], [1, 11, 5], [2, 20, 6]]);
        let a = r.grouped_degrees(&[0, 2], &[1]);
        let b = r.grouped_degrees(&[2, 0, 0], &[1, 1]);
        assert_eq!(a.group_cols(), b.group_cols());
        assert_eq!(a.max_degree(), b.max_degree());
        assert_eq!(a.num_groups(), 2);
        assert_eq!(a.min_degree(), 1);
        assert_eq!(a.max_degree(), 2);
        assert_eq!(a.degree_of_row(&[1, 99, 5]), 2);
        assert_eq!(a.degree_of_row(&[9, 0, 9]), 0);
    }

    #[test]
    fn grouped_degrees_is_cached_on_the_relation() {
        let r = skewed();
        let a = r.grouped_degrees(&[0], &[1]);
        let b = r.clone().grouped_degrees(&[0], &[1]);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "clones must share the degree cache");
    }

    #[test]
    fn heavy_light_split_partitions_rows() {
        let r = skewed();
        let (light, heavy) = split_heavy_light(&r, &[0], &[1], 2);
        assert_eq!(light.len() + heavy.len(), r.len());
        // group 1 (degree 4) is heavy, groups 2 and 3 light.
        assert_eq!(heavy.len(), 4);
        assert_eq!(light.len(), 3);
        assert!(heavy.iter().all(|row| row[0] == 1));
    }

    #[test]
    fn heavy_light_split_fast_paths_share_storage() {
        let r = skewed();
        let (light, heavy) = split_heavy_light(&r, &[0], &[1], 100);
        assert!(light.shares_storage_with(&r), "all-light split must be an O(1) clone");
        assert!(heavy.is_empty());
        let (light, heavy) = split_heavy_light(&r, &[0], &[1], 0);
        assert!(heavy.shares_storage_with(&r), "all-heavy split must be an O(1) clone");
        assert!(light.is_empty());
    }

    #[test]
    fn bucketing_partitions_and_bounds_degrees() {
        let r = skewed();
        let buckets = bucket_by_degree(&r, &[0], &[1]);
        let total: usize = buckets.iter().map(|b| b.relation.len()).sum();
        assert_eq!(total, r.len());
        for b in &buckets {
            let d = max_degree(&b.relation, &[0], &[1]);
            assert!(
                d >= b.degree_lo && d <= b.degree_hi,
                "degree {d} outside [{}, {}]",
                b.degree_lo,
                b.degree_hi
            );
        }
        // degrees 4, 2, 1 land in buckets [4,7], [2,3], [1,1].
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].degree_lo, 1);
        assert_eq!(buckets[1].degree_lo, 2);
        assert_eq!(buckets[2].degree_lo, 4);
    }

    #[test]
    fn single_bucket_shares_storage() {
        // All groups have degree 1 → one bucket, O(1) clone.
        let r = Relation::from_rows(2, vec![[1, 10], [2, 20], [3, 30]]);
        let buckets = bucket_by_degree(&r, &[0], &[1]);
        assert_eq!(buckets.len(), 1);
        assert!(buckets[0].relation.shares_storage_with(&r));
        assert_eq!(buckets[0].num_groups, 3);
    }

    #[test]
    fn bucket_hi_saturates_at_the_top() {
        assert_eq!(bucket_hi(0), 1);
        assert_eq!(bucket_hi(2), 7);
        assert_eq!(bucket_hi(usize::BITS - 1), usize::MAX);
    }

    #[test]
    fn degree_sequence_and_lp_norms() {
        let r = skewed();
        assert_eq!(degree_sequence(&r, &[0], &[1]), vec![4, 2, 1]);
        let linf = lp_norm_of_degree_sequence(&r, &[0], &[1], 0);
        assert!((linf - 4.0).abs() < 1e-9);
        let l1 = lp_norm_of_degree_sequence(&r, &[0], &[1], 1);
        assert!((l1 - 7.0).abs() < 1e-9);
        let l2 = lp_norm_of_degree_sequence(&r, &[0], &[1], 2);
        assert!((l2 - (16.0f64 + 4.0 + 1.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn index_and_profile_agree() {
        let r = skewed();
        assert_eq!(max_degree_via_index(&r, &[0]), max_degree(&r, &[0], &[1]));
    }

    proptest! {
        #[test]
        fn prop_buckets_partition_rows(rows in proptest::collection::vec((0u64..15, 0u64..40), 1..120)) {
            let rel = Relation::from_rows(2, rows.iter().map(|(a, b)| [*a, *b])).deduped();
            let buckets = bucket_by_degree(&rel, &[0], &[1]);
            let total: usize = buckets.iter().map(|b| b.relation.len()).sum();
            prop_assert_eq!(total, rel.len());
            for b in &buckets {
                let d = max_degree(&b.relation, &[0], &[1]);
                prop_assert!(d <= b.degree_hi);
                prop_assert!(max_degree(&b.relation, &[0], &[1]) >= 1);
            }
        }

        #[test]
        fn prop_heavy_light_respects_threshold(
            rows in proptest::collection::vec((0u64..10, 0u64..30), 1..100),
            threshold in 1usize..6,
        ) {
            let rel = Relation::from_rows(2, rows.iter().map(|(a, b)| [*a, *b])).deduped();
            let (light, heavy) = split_heavy_light(&rel, &[0], &[1], threshold);
            prop_assert_eq!(light.len() + heavy.len(), rel.len());
            if !light.is_empty() {
                prop_assert!(max_degree(&light, &[0], &[1]) <= threshold);
            }
            // every heavy group has degree > threshold in the original.
            let heavy_groups: std::collections::HashSet<u64> = heavy.iter().map(|r| r[0]).collect();
            for g in heavy_groups {
                let mut vals = std::collections::HashSet::new();
                for row in rel.iter() {
                    if row[0] == g { vals.insert(row[1]); }
                }
                prop_assert!(vals.len() > threshold);
            }
        }
    }
}
