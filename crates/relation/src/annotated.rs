//! Semiring-annotated relations.
//!
//! An [`AnnotatedRelation`] pairs every tuple with an element of a
//! commutative semiring `K`, following the provenance-semiring view of
//! query evaluation (Green–Karvounarakis–Tannen) used by the paper's FAQ
//! extension (Section 9.1).  The operators provided here — annotated join,
//! aggregation (projection with `⊕`), and semijoin filtering — are exactly
//! what a tree-decomposition-based FAQ plan needs.

// panda-lint: allow-file(P1) -- the annotation column is pinned by the
// schema wrapper; value rows carry exactly `arity` entries.

use std::collections::HashMap;

use crate::relation::{Relation, Tuple, Value};
use crate::semiring::Semiring;

/// A relation whose tuples carry semiring annotations.
#[derive(Debug, Clone)]
pub struct AnnotatedRelation<S: Semiring> {
    arity: usize,
    rows: Vec<Tuple>,
    annotations: Vec<S::Elem>,
}

impl<S: Semiring> AnnotatedRelation<S> {
    /// Creates an empty annotated relation with the given arity.
    #[must_use]
    pub fn new(arity: usize) -> Self {
        AnnotatedRelation { arity, rows: Vec::new(), annotations: Vec::new() }
    }

    /// Builds an annotated relation from a plain relation, annotating every
    /// tuple with the multiplicative identity (`one`).
    #[must_use]
    pub fn from_relation(relation: &Relation) -> Self {
        let mut out = AnnotatedRelation::new(relation.arity());
        for row in relation.iter() {
            out.push(row.to_vec(), S::one());
        }
        out
    }

    /// Builds an annotated relation from `(tuple, annotation)` pairs.
    pub fn from_annotated_rows<I>(arity: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = (Tuple, S::Elem)>,
    {
        let mut out = AnnotatedRelation::new(arity);
        for (row, ann) in rows {
            out.push(row, ann);
        }
        out
    }

    /// The number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of annotated tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no tuples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends an annotated tuple; zero-annotated tuples are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the tuple length differs from the arity.
    pub fn push(&mut self, row: Tuple, annotation: S::Elem) {
        assert_eq!(row.len(), self.arity, "annotated row arity mismatch");
        if S::is_zero(&annotation) {
            return;
        }
        self.rows.push(row);
        self.annotations.push(annotation);
    }

    /// Iterates over `(tuple, annotation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &S::Elem)> + '_ {
        self.rows.iter().zip(self.annotations.iter())
    }

    /// Drops annotations, returning the plain support relation
    /// (deduplicated).
    #[must_use]
    pub fn support(&self) -> Relation {
        Relation::from_rows(self.arity, self.rows.iter()).deduped()
    }

    /// Combines duplicate tuples by `⊕`-adding their annotations.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut combined: HashMap<Tuple, S::Elem> = HashMap::with_capacity(self.rows.len());
        for (row, ann) in self.iter() {
            combined
                .entry(row.clone())
                .and_modify(|e| *e = S::add(e, ann))
                .or_insert_with(|| ann.clone());
        }
        let mut out = AnnotatedRelation::new(self.arity);
        let mut entries: Vec<(Tuple, S::Elem)> = combined.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (row, ann) in entries {
            out.push(row, ann);
        }
        out
    }

    /// Projects onto `cols`, `⊕`-aggregating annotations of tuples that
    /// collapse together.  This is the FAQ "marginalisation" operator.
    #[must_use]
    pub fn aggregate_onto(&self, cols: &[usize]) -> Self {
        let mut combined: HashMap<Tuple, S::Elem> = HashMap::with_capacity(self.rows.len());
        for (row, ann) in self.iter() {
            let key: Tuple = cols.iter().map(|&c| row[c]).collect();
            combined.entry(key).and_modify(|e| *e = S::add(e, ann)).or_insert_with(|| ann.clone());
        }
        let mut out = AnnotatedRelation::new(cols.len());
        let mut entries: Vec<(Tuple, S::Elem)> = combined.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (row, ann) in entries {
            out.push(row, ann);
        }
        out
    }

    /// Annotated hash join on column pairs `on = [(self_col, other_col)]`;
    /// the output annotation is the `⊗`-product.  Output schema follows
    /// [`crate::operators::join`]: all of `self`'s columns, then the
    /// non-join columns of `other`.
    #[must_use]
    pub fn join(&self, other: &Self, on: &[(usize, usize)]) -> Self {
        let other_join_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        let other_keep_cols: Vec<usize> =
            (0..other.arity).filter(|c| !other_join_cols.contains(c)).collect();
        let mut index: HashMap<Tuple, Vec<usize>> = HashMap::with_capacity(other.len());
        for (i, (row, _)) in other.iter().enumerate() {
            let key: Tuple = other_join_cols.iter().map(|&c| row[c]).collect();
            index.entry(key).or_default().push(i);
        }
        let mut out = AnnotatedRelation::new(self.arity + other_keep_cols.len());
        for (lrow, lann) in self.iter() {
            let key: Tuple = on.iter().map(|&(l, _)| lrow[l]).collect();
            if let Some(matches) = index.get(&key) {
                for &ri in matches {
                    let rrow = &other.rows[ri];
                    let rann = &other.annotations[ri];
                    let mut row = lrow.clone();
                    row.extend(other_keep_cols.iter().map(|&c| rrow[c]));
                    out.push(row, S::mul(lann, rann));
                }
            }
        }
        out.normalized()
    }

    /// Keeps only the tuples whose key columns appear in `keys` (an
    /// annotated semijoin against a plain relation of matching arity).
    #[must_use]
    pub fn semijoin_values(&self, self_cols: &[usize], keys: &Relation) -> Self {
        let key_set: std::collections::HashSet<Tuple> =
            keys.iter().map(<[Value]>::to_vec).collect();
        let mut out = AnnotatedRelation::new(self.arity);
        for (row, ann) in self.iter() {
            let key: Tuple = self_cols.iter().map(|&c| row[c]).collect();
            if key_set.contains(&key) {
                out.push(row.clone(), ann.clone());
            }
        }
        out
    }

    /// The `⊕`-aggregate of all annotations (the value of a fully-aggregated
    /// FAQ, e.g. the total count for `#CQ`).
    #[must_use]
    pub fn total(&self) -> S::Elem {
        self.annotations.iter().fold(S::zero(), |acc, a| S::add(&acc, a))
    }

    /// Looks up the (normalized) annotation of a tuple; `zero` if absent.
    #[must_use]
    pub fn annotation_of(&self, row: &[Value]) -> S::Elem {
        let mut acc = S::zero();
        for (r, a) in self.iter() {
            if r.as_slice() == row {
                acc = S::add(&acc, a);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSemiring, CountingSemiring, MinPlusSemiring};

    #[test]
    fn counting_join_counts_paths() {
        // R(a,b), S(b,c): count 2-paths grouped by (a,c).
        let r = Relation::from_rows(2, vec![[1, 2], [1, 3], [2, 3]]);
        let s = Relation::from_rows(2, vec![[2, 9], [3, 9]]);
        let ar = AnnotatedRelation::<CountingSemiring>::from_relation(&r);
        let as_ = AnnotatedRelation::<CountingSemiring>::from_relation(&s);
        let joined = ar.join(&as_, &[(1, 0)]);
        // paths: 1-2-9, 1-3-9, 2-3-9.
        assert_eq!(joined.len(), 3);
        let per_ac = joined.aggregate_onto(&[0, 2]);
        assert_eq!(per_ac.annotation_of(&[1, 9]), 2);
        assert_eq!(per_ac.annotation_of(&[2, 9]), 1);
        assert_eq!(joined.total(), 3);
    }

    #[test]
    fn zero_annotations_are_pruned() {
        let mut a = AnnotatedRelation::<CountingSemiring>::new(1);
        a.push(vec![1], 0);
        a.push(vec![2], 3);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn boolean_annotations_reduce_to_set_semantics() {
        let r = Relation::from_rows(2, vec![[1, 2], [1, 2], [3, 4]]);
        let a = AnnotatedRelation::<BoolSemiring>::from_relation(&r).normalized();
        assert_eq!(a.len(), 2);
        assert!(a.annotation_of(&[1, 2]));
        assert!(!a.annotation_of(&[9, 9]));
        assert_eq!(a.support().canonical_rows(), vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn min_plus_join_takes_shortest_combination() {
        // Weighted edges; weight of a 2-path is the sum, aggregate = min.
        let ar = AnnotatedRelation::<MinPlusSemiring>::from_annotated_rows(
            2,
            vec![(vec![1, 2], 5), (vec![1, 3], 1)],
        );
        let as_ = AnnotatedRelation::<MinPlusSemiring>::from_annotated_rows(
            2,
            vec![(vec![2, 9], 1), (vec![3, 9], 10)],
        );
        let joined = ar.join(&as_, &[(1, 0)]);
        let best = joined.aggregate_onto(&[0, 2]);
        // 1→2→9 costs 6; 1→3→9 costs 11 ⇒ min is 6.
        assert_eq!(best.annotation_of(&[1, 9]), 6);
    }

    #[test]
    fn aggregate_onto_empty_columns_gives_total() {
        let a = AnnotatedRelation::<CountingSemiring>::from_annotated_rows(
            2,
            vec![(vec![1, 2], 2), (vec![3, 4], 5)],
        );
        let total = a.aggregate_onto(&[]);
        assert_eq!(total.annotation_of(&[]), 7);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn semijoin_filters_by_key_set() {
        let a = AnnotatedRelation::<CountingSemiring>::from_annotated_rows(
            2,
            vec![(vec![1, 2], 1), (vec![3, 4], 1), (vec![5, 6], 1)],
        );
        let keys = Relation::from_rows(1, vec![[1], [5]]);
        let filtered = a.semijoin_values(&[0], &keys);
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.support().canonical_rows(), vec![vec![1, 2], vec![5, 6]]);
    }

    #[test]
    fn normalized_merges_duplicates() {
        let a = AnnotatedRelation::<CountingSemiring>::from_annotated_rows(
            1,
            vec![(vec![1], 2), (vec![1], 3), (vec![2], 1)],
        );
        let n = a.normalized();
        assert_eq!(n.len(), 2);
        assert_eq!(n.annotation_of(&[1]), 5);
    }
}
