//! Batch-at-a-time columnar kernels.
//!
//! Each kernel is the columnar twin of one row-major operator inner loop
//! in [`crate::operators`]: it reads a [`ColumnStore`] column-wise (and
//! per *dictionary code* where a column is dictionary-encoded) instead of
//! striding over row-major tuples.  The dispatch sites in `operators.rs`
//! select a kernel whenever the relevant input carries a cached column
//! store — which is what the `Layout::Columnar` knob arranges for base
//! relations.
//!
//! **Determinism contract**: every kernel visits probe/input rows in
//! exactly the same order as its row-major twin and deduplicates keep-first
//! through the same sink, so operator outputs are bit-identical across
//! layouts (the differential suite in
//! `crates/relation/tests/operators_differential.rs` pins this per
//! operator, and `tests/parallel_determinism.rs` end to end).
//!
//! The wins come from three places:
//!
//! * **code-domain membership** — semijoin/antijoin filters and `=` selections
//!   on a dictionary-encoded column probe each distinct *code* once
//!   (`O(dict + rows)` comparisons) instead of hashing every row,
//! * **per-code probe memoisation** — a single-column hash-join probe over a
//!   dictionary column resolves each code's match list once,
//! * **column-contiguous scans** — selection, projection and distinct
//!   counting touch only the columns they need.

// panda-lint: allow-file(P1) -- row/column indices are bounded by the
// store shape (mirroring the relation's arity invariant), and dictionary
// codes index the dictionary they were built from.

use std::collections::HashSet;

use crate::column::ColumnStore;
use crate::index::HashIndex;
use crate::operators::DedupSink;
use crate::relation::{Relation, Tuple, Value};

/// Columnar projection onto `cols` (first occurrences kept, in row order —
/// identical to the row-major `operators::project`).
pub(crate) fn project(store: &ColumnStore, cols: &[usize]) -> Relation {
    let rows = store.num_rows();
    // Single-column fast paths: dedup in the value (or code) domain, no
    // per-row tuple allocation.
    if let [col] = cols {
        if let Some((codes, dict)) = store.dict_column(*col) {
            let mut seen = vec![false; dict.len()];
            let mut out: Vec<Value> = Vec::with_capacity(dict.len());
            for &code in codes {
                if !seen[code as usize] {
                    seen[code as usize] = true;
                    out.push(dict[code as usize]);
                }
            }
            return Relation::from_flat(1, out);
        }
        let mut seen: HashSet<Value> = HashSet::with_capacity(rows.min(1 << 16));
        let mut out: Vec<Value> = Vec::new();
        for i in 0..rows {
            let v = store.value(i, *col);
            if seen.insert(v) {
                out.push(v);
            }
        }
        return Relation::from_flat(1, out);
    }
    let mut sink = DedupSink::new(cols.len());
    let mut buf: Tuple = Tuple::with_capacity(cols.len());
    for i in 0..rows {
        store.gather_key(i, cols, &mut buf);
        sink.push(&buf);
    }
    sink.into_relation()
}

/// Columnar `σ[col = value]`: scans one column (comparing `u32` codes when
/// it is dictionary-encoded), then materialises the matching rows
/// column-by-column.  Row order is preserved, like the row-major path.
pub(crate) fn select_eq(store: &ColumnStore, col: usize, value: Value) -> Relation {
    let arity = store.num_columns();
    let matches: Vec<usize> = if let Some((codes, dict)) = store.dict_column(col) {
        match dict.binary_search(&value) {
            Err(_) => Vec::new(), // the value never occurs
            Ok(code) => {
                let code = code as u32;
                codes.iter().enumerate().filter_map(|(i, &c)| (c == code).then_some(i)).collect()
            }
        }
    } else if let Some(values) = store.plain_column(col) {
        values.iter().enumerate().filter_map(|(i, &v)| (v == value).then_some(i)).collect()
    } else {
        Vec::new()
    };
    materialise_rows(store, &matches, arity)
}

/// Gathers the given rows of the store into a fresh row-major relation,
/// filling column by column (each source buffer is walked contiguously).
fn materialise_rows(store: &ColumnStore, rows: &[usize], arity: usize) -> Relation {
    let mut data: Vec<Value> = vec![0; rows.len() * arity];
    for c in 0..arity {
        for (j, &i) in rows.iter().enumerate() {
            data[j * arity + c] = store.value(i, c);
        }
    }
    Relation::from_flat(arity, data)
}

/// The semijoin/antijoin keep-bitmap: `keep[i]` is `true` iff probing the
/// membership index with row `i`'s key columns matches `keep_matches`.
///
/// On a single dictionary-encoded key column the index is probed once per
/// distinct *code*; every other shape probes per row exactly like the
/// row-major `filter_by_membership` loop, so the resulting bitmap — and
/// therefore the output rows and their order — is identical.
pub(crate) fn membership_bitmap(
    store: &ColumnStore,
    idx: &HashIndex,
    probe_cols: &[usize],
    keep_matches: bool,
) -> Vec<bool> {
    let rows = store.num_rows();
    if let [col] = probe_cols {
        if let Some((codes, dict)) = store.dict_column(*col) {
            let keep_code: Vec<bool> =
                dict.iter().map(|&v| idx.contains_key(&[v]) == keep_matches).collect();
            return codes.iter().map(|&c| keep_code[c as usize]).collect();
        }
    }
    let mut key_buf: Tuple = Tuple::with_capacity(probe_cols.len());
    (0..rows)
        .map(|i| {
            store.gather_key(i, probe_cols, &mut key_buf);
            idx.contains_key(&key_buf) == keep_matches
        })
        .collect()
}

/// Columnar hash-join probe: the probe side is read column-wise and, for a
/// single dictionary-encoded probe column, each code's match list is
/// resolved once up front.  Probe rows are visited in order and joined
/// rows stream through the same keep-first [`DedupSink`] as the row-major
/// `probe_side_join`, so the output is bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_side_join(
    build: &Relation,
    store: &ColumnStore,
    idx: &HashIndex,
    probe_cols: &[usize],
    right_keep_cols: &[usize],
    build_left: bool,
    out_arity: usize,
) -> Relation {
    let rows = store.num_rows();
    let mut out = DedupSink::new(out_arity);
    let mut row_buf: Tuple = Tuple::with_capacity(out_arity);
    let mut prow_buf: Tuple = Tuple::with_capacity(store.num_columns());
    let mut emit = |prow_ids: &[usize], i: usize, out: &mut DedupSink, prow_buf: &mut Tuple| {
        if prow_ids.is_empty() {
            return;
        }
        store.gather_row(i, prow_buf);
        for &brow_id in prow_ids {
            let brow = build.row(brow_id);
            let (lrow, rrow): (&[Value], &[Value]) =
                if build_left { (brow, prow_buf) } else { (prow_buf, brow) };
            row_buf.clear();
            row_buf.extend_from_slice(lrow);
            row_buf.extend(right_keep_cols.iter().map(|&c| rrow[c]));
            out.push(&row_buf);
        }
    };
    if let [col] = probe_cols {
        if let Some((codes, dict)) = store.dict_column(*col) {
            // Resolve every code's match list once; per row it's an O(1)
            // table lookup instead of a hash probe.
            let per_code: Vec<&[usize]> = dict.iter().map(|&v| idx.probe(&[v])).collect();
            for (i, &code) in codes.iter().enumerate() {
                emit(per_code[code as usize], i, &mut out, &mut prow_buf);
            }
            return out.into_relation();
        }
    }
    let mut key_buf: Tuple = Tuple::with_capacity(probe_cols.len());
    for i in 0..rows {
        store.gather_key(i, probe_cols, &mut key_buf);
        emit(idx.probe(&key_buf), i, &mut out, &mut prow_buf);
    }
    out.into_relation()
}

/// Column-direct distinct count over canonical `cols` — a code bitmap for
/// one dictionary column, a value set for one plain column, gathered
/// tuples otherwise.  Counting is order-insensitive, so the result equals
/// the row-major count by construction.
pub(crate) fn distinct_count(store: &ColumnStore, cols: &[usize]) -> usize {
    let rows = store.num_rows();
    if let [col] = cols {
        if let Some((codes, dict)) = store.dict_column(*col) {
            let mut seen = vec![false; dict.len()];
            let mut n = 0;
            for &code in codes {
                if !seen[code as usize] {
                    seen[code as usize] = true;
                    n += 1;
                }
            }
            return n;
        }
        if let Some(values) = store.plain_column(*col) {
            let seen: HashSet<Value> = values.iter().copied().collect();
            return seen.len();
        }
    }
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(rows);
    let mut buf: Tuple = Tuple::with_capacity(cols.len());
    for i in 0..rows {
        store.gather_key(i, cols, &mut buf);
        if !seen.contains(&buf) {
            seen.insert(buf.clone());
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use crate::operators;
    use crate::relation::Relation;

    /// Rows in storage order — the bit-level comparison.
    fn raw(rel: &Relation) -> Vec<Vec<u64>> {
        rel.iter().map(<[u64]>::to_vec).collect()
    }

    /// An independent copy of `r` with a column store attached.  A plain
    /// `clone()` would share the index cache — attaching a store to it
    /// would turn the row-major twin columnar too and defeat the
    /// differential comparison.
    fn columnar(r: &Relation) -> Relation {
        let c = Relation::from_rows(r.arity(), r.iter());
        let _ = c.column_store();
        c
    }

    fn mixed() -> Relation {
        // Column 0: low cardinality (dict); column 1: high cardinality.
        Relation::from_rows(2, (0..200u64).map(|i| [i % 4, i * 7 % 101]))
    }

    #[test]
    fn columnar_project_is_bit_identical() {
        let r = mixed();
        let c = columnar(&r);
        for cols in [&[0][..], &[1][..], &[0, 1][..], &[1, 0][..], &[1, 1][..]] {
            assert_eq!(
                raw(&operators::project(&c, cols)),
                raw(&operators::project(&r, cols)),
                "cols {cols:?}"
            );
        }
    }

    #[test]
    fn columnar_select_eq_is_bit_identical() {
        let r = mixed();
        let c = columnar(&r);
        for (col, value) in [(0, 2), (0, 99), (1, 7), (1, 1000)] {
            assert_eq!(
                raw(&operators::select_eq(&c, col, value)),
                raw(&operators::select_eq(&r, col, value)),
                "σ[{col} = {value}]"
            );
        }
    }

    #[test]
    fn columnar_semijoin_antijoin_are_bit_identical() {
        let l = mixed();
        let lc = columnar(&l);
        let right = Relation::from_rows(1, vec![[0], [2], [55]]);
        for on in [&[(0usize, 0usize)][..], &[(1, 0)][..]] {
            assert_eq!(
                raw(&operators::semijoin(&lc, &right, on)),
                raw(&operators::semijoin(&l, &right, on))
            );
            assert_eq!(
                raw(&operators::antijoin(&lc, &right, on)),
                raw(&operators::antijoin(&l, &right, on))
            );
        }
    }

    #[test]
    fn columnar_join_is_bit_identical_including_warm_cache() {
        let r = Relation::from_rows(2, (0..80u64).map(|i| [i % 5, i % 7]));
        let s = Relation::from_rows(2, (0..90u64).map(|i| [i % 7, i % 3]));
        let expected = raw(&operators::join(&r, &s, &[(1, 0)]));
        let (rc, sc) = (columnar(&r), columnar(&s));
        // Cold caches on the columnar twins, then warm.
        assert_eq!(raw(&operators::join(&rc, &sc, &[(1, 0)])), expected);
        assert_eq!(raw(&operators::join(&rc, &sc, &[(1, 0)])), expected);
        // Mixed: columnar probe against row-major build and vice versa.
        assert_eq!(raw(&operators::join(&r, &sc, &[(1, 0)])), expected);
        assert_eq!(raw(&operators::join(&rc, &s, &[(1, 0)])), expected);
    }

    #[test]
    fn columnar_par_join_shards_slice_the_store() {
        let r = Relation::from_rows(2, (0..120u64).map(|i| [i % 6, i % 11]));
        let s = Relation::from_rows(2, (0..100u64).map(|i| [i % 11, i % 4]));
        let expected = raw(&operators::join(&r, &s, &[(1, 0)]));
        let (rc, sc) = (columnar(&r), columnar(&s));
        for threads in [2, 4, 8] {
            assert_eq!(
                raw(&operators::par_join(&rc, &sc, &[(1, 0)], threads)),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn columnar_distinct_count_matches() {
        let r = mixed();
        let c = columnar(&r);
        assert_eq!(c.distinct_count(), r.distinct_count());
        for cols in [&[0][..], &[1][..], &[0, 1][..]] {
            assert_eq!(c.distinct_count_of(cols), r.distinct_count_of(cols), "cols {cols:?}");
        }
    }

    #[test]
    fn zero_arity_inputs_fall_back_gracefully() {
        let mut b = Relation::new(0);
        b.push_row(&[]);
        assert!(b.column_store().is_none(), "no columns to mirror");
        let one = columnar(&Relation::from_rows(1, vec![[1], [2]]));
        let prod = operators::cartesian_product(&one, &b);
        assert_eq!(prod.len(), 2);
    }
}
