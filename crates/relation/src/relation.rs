//! The [`Relation`] tuple store.

use std::collections::HashSet;
use std::fmt;

/// A single attribute value.  The engine is value-agnostic; strings and
/// other domains are dictionary-encoded to `u64` (see
/// [`crate::Database::intern`]).
pub type Value = u64;

/// An owned tuple.
pub type Tuple = Vec<Value>;

/// A finite relation instance with positional columns.
///
/// Tuples are stored row-major in a single flat vector, `arity` values per
/// row.  The relation is a *set* semantically; [`Relation::dedup`] and the
/// set-producing operators enforce this, while bulk-loading methods allow
/// temporary duplicates for speed.
///
/// # Examples
///
/// ```
/// use panda_relation::Relation;
///
/// let mut r = Relation::new(2);
/// r.push_row(&[1, 10]);
/// r.push_row(&[2, 20]);
/// r.push_row(&[1, 10]); // duplicate
/// assert_eq!(r.len(), 3);
/// let r = r.deduped();
/// assert_eq!(r.len(), 2);
/// assert!(r.contains(&[2, 20]));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    data: Vec<Value>,
}

impl Relation {
    /// Creates an empty relation with the given number of columns.
    #[must_use]
    pub fn new(arity: usize) -> Self {
        Relation { arity, data: Vec::new() }
    }

    /// Creates an empty relation with capacity for `rows` tuples.
    #[must_use]
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        Relation { arity, data: Vec::with_capacity(arity * rows) }
    }

    /// Builds a relation from an iterator of rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `arity`.
    pub fn from_rows<I, R>(arity: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[Value]>,
    {
        let mut rel = Relation::new(arity);
        for row in rows {
            rel.push_row(row.as_ref());
        }
        rel
    }

    /// The number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of stored tuples (duplicates included if any).
    #[must_use]
    pub fn len(&self) -> usize {
        match self.data.len().checked_div(self.arity) {
            Some(rows) => rows,
            // A zero-arity relation is either empty or the single empty
            // tuple; we encode the latter by a one-element marker vector.
            None => usize::from(!self.data.is_empty()),
        }
    }

    /// `true` iff the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.arity()`.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.arity,
            "pushed a row of length {} into a relation of arity {}",
            row.len(),
            self.arity
        );
        if self.arity == 0 {
            if self.data.is_empty() {
                self.data.push(1); // marker: the empty tuple is present
            }
        } else {
            self.data.extend_from_slice(row);
        }
    }

    /// Returns the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Value] {
        assert!(i < self.len(), "row index {i} out of bounds (len {})", self.len());
        if self.arity == 0 {
            &[]
        } else {
            &self.data[i * self.arity..(i + 1) * self.arity]
        }
    }

    /// Iterates over all rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        let arity = self.arity;
        let len = self.len();
        (0..len).map(move |i| {
            if arity == 0 {
                &[] as &[Value]
            } else {
                &self.data[i * arity..(i + 1) * arity]
            }
        })
    }

    /// Returns `true` iff the relation contains the given row (linear scan;
    /// build a [`crate::HashIndex`] for repeated probes).
    #[must_use]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.iter().any(|r| r == row)
    }

    /// Removes duplicate rows in place (order is not preserved).
    pub fn dedup(&mut self) {
        if self.arity == 0 || self.len() <= 1 {
            return;
        }
        let mut seen: HashSet<&[Value]> = HashSet::with_capacity(self.len());
        let mut out = Vec::with_capacity(self.data.len());
        for row in self.data.chunks_exact(self.arity) {
            if seen.insert(row) {
                out.extend_from_slice(row);
            }
        }
        self.data = out;
    }

    /// Returns a deduplicated copy.
    #[must_use]
    pub fn deduped(mut self) -> Self {
        self.dedup();
        self
    }

    /// Sorts rows lexicographically in place.  Useful for canonical
    /// comparisons in tests and for merge-style operators.
    pub fn sort(&mut self) {
        if self.arity == 0 {
            return;
        }
        let mut rows: Vec<Tuple> = self.iter().map(<[Value]>::to_vec).collect();
        rows.sort_unstable();
        self.data.clear();
        for row in rows {
            self.data.extend_from_slice(&row);
        }
    }

    /// Returns the rows as a sorted, deduplicated vector of owned tuples —
    /// the canonical form used to compare query outputs in tests.
    #[must_use]
    pub fn canonical_rows(&self) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = self.iter().map(<[Value]>::to_vec).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// The number of *distinct* rows.
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        if self.arity == 0 {
            return self.len();
        }
        let mut seen: HashSet<&[Value]> = HashSet::with_capacity(self.len());
        for i in 0..self.len() {
            seen.insert(&self.data[i * self.arity..(i + 1) * self.arity]);
        }
        seen.len()
    }

    /// Extends this relation with all rows of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn extend_from(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "arity mismatch in extend_from");
        if self.arity == 0 {
            if !other.is_empty() && self.data.is_empty() {
                self.data.push(1);
            }
        } else {
            self.data.extend_from_slice(&other.data);
        }
    }

    /// Reserves space for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional * self.arity.max(1));
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation(arity={}, rows={})", self.arity, self.len())?;
        const PREVIEW: usize = 8;
        for (i, row) in self.iter().enumerate() {
            if i >= PREVIEW {
                writeln!(f, "  … {} more", self.len() - PREVIEW)?;
                break;
            }
            writeln!(f, "  {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_read_rows() {
        let mut r = Relation::new(3);
        r.push_row(&[1, 2, 3]);
        r.push_row(&[4, 5, 6]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.row(0), &[1, 2, 3]);
        assert_eq!(r.row(1), &[4, 5, 6]);
        assert!(!r.is_empty());
        assert!(r.contains(&[4, 5, 6]));
        assert!(!r.contains(&[4, 5, 7]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_push_panics() {
        let mut r = Relation::new(2);
        r.push_row(&[1, 2, 3]);
    }

    #[test]
    fn zero_arity_relation_behaves_like_a_boolean() {
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[] as &[Value]);
        assert_eq!(r.distinct_count(), 1);
    }

    #[test]
    fn dedup_removes_duplicates_only() {
        let r = Relation::from_rows(2, vec![[1, 1], [2, 2], [1, 1], [3, 3], [2, 2]]);
        let d = r.deduped();
        assert_eq!(d.len(), 3);
        assert_eq!(d.canonical_rows(), vec![vec![1, 1], vec![2, 2], vec![3, 3]]);
    }

    #[test]
    fn sort_orders_lexicographically() {
        let mut r = Relation::from_rows(2, vec![[2, 1], [1, 5], [1, 2]]);
        r.sort();
        assert_eq!(r.row(0), &[1, 2]);
        assert_eq!(r.row(1), &[1, 5]);
        assert_eq!(r.row(2), &[2, 1]);
    }

    #[test]
    fn distinct_count_and_extend() {
        let mut r = Relation::from_rows(1, vec![[1], [2], [2]]);
        assert_eq!(r.distinct_count(), 2);
        let other = Relation::from_rows(1, vec![[3], [1]]);
        r.extend_from(&other);
        assert_eq!(r.len(), 5);
        assert_eq!(r.distinct_count(), 3);
    }

    proptest! {
        #[test]
        fn prop_dedup_is_idempotent(rows in proptest::collection::vec((0u64..20, 0u64..20), 0..60)) {
            let rel = Relation::from_rows(2, rows.iter().map(|(a, b)| [*a, *b]));
            let once = rel.clone().deduped();
            let twice = once.clone().deduped();
            prop_assert_eq!(once.canonical_rows(), twice.canonical_rows());
            prop_assert_eq!(once.len(), rel.distinct_count());
        }

        #[test]
        fn prop_canonical_rows_sorted_unique(rows in proptest::collection::vec((0u64..10, 0u64..10), 0..60)) {
            let rel = Relation::from_rows(2, rows.iter().map(|(a, b)| [*a, *b]));
            let canon = rel.canonical_rows();
            let mut sorted = canon.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(canon, sorted);
        }
    }
}
