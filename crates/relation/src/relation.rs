//! The [`Relation`] tuple store.

// panda-lint: allow-file(P1) -- row accesses are bounded by the arity
// invariant every constructor enforces (len % arity == 0).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::column::ColumnStore;
use crate::index::{is_canonical_cols, HashIndex, IndexCache, ValueIndex};
use crate::stats::GroupedDegrees;

/// A single attribute value.  The engine is value-agnostic; strings and
/// other domains are dictionary-encoded to `u64` (see
/// [`crate::Database::intern`]).
pub type Value = u64;

/// An owned tuple.
pub type Tuple = Vec<Value>;

/// A finite relation instance with positional columns.
///
/// Tuples are stored row-major in a single flat vector, `arity` values per
/// row.  The vector is `Arc`-shared: cloning a relation is O(1) and shares
/// both the tuple storage and the relation's [`index cache`](Relation::index_for),
/// while mutation is copy-on-write (a mutated clone copies the data once
/// and detaches from the shared cache, leaving other clones untouched).
///
/// The relation is a *set* semantically; [`Relation::dedup`] and the
/// set-producing operators enforce this, while bulk-loading methods allow
/// temporary duplicates for speed.
///
/// A relation can also be a zero-copy *shard view* over a contiguous row
/// range of a shared buffer (see [`Relation::partitioned`]): shards share
/// the parent's tuple storage and behave like independent relations —
/// mutating a shard copies just its own rows out first.
///
/// # Examples
///
/// ```
/// use panda_relation::Relation;
///
/// let mut r = Relation::new(2);
/// r.push_row(&[1, 10]);
/// r.push_row(&[2, 20]);
/// r.push_row(&[1, 10]); // duplicate
/// assert_eq!(r.len(), 3);
/// let r = r.deduped();
/// assert_eq!(r.len(), 2);
/// assert!(r.contains(&[2, 20]));
///
/// // Clones are O(1) and share storage until one side mutates.
/// let snapshot = r.clone();
/// assert!(snapshot.shares_storage_with(&r));
/// ```
#[derive(Clone)]
pub struct Relation {
    arity: usize,
    data: Arc<Vec<Value>>,
    /// When set, this relation is a shard view over rows
    /// `[start, start + rows)` of `data` (only ever set for arity > 0);
    /// `None` means the whole buffer.  Mutation materialises the view
    /// first (see [`Relation::make_owned`]).
    view: Option<(usize, usize)>,
    /// When set, rows are in non-decreasing lexicographic order of these
    /// columns (ties in arbitrary order) — the precondition for the
    /// sort-merge join path in [`crate::operators::join`].
    sort_order: Option<Vec<usize>>,
    cache: Arc<IndexCache>,
}

impl Relation {
    /// Creates an empty relation with the given number of columns.
    #[must_use]
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            data: Arc::new(Vec::new()),
            view: None,
            sort_order: None,
            cache: Arc::new(IndexCache::default()),
        }
    }

    /// Creates an empty relation with capacity for `rows` tuples.
    #[must_use]
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        Relation {
            arity,
            data: Arc::new(Vec::with_capacity(arity * rows)),
            view: None,
            sort_order: None,
            cache: Arc::new(IndexCache::default()),
        }
    }

    /// Wraps an already-validated flat row-major buffer — the fast path for
    /// operator output sinks that assemble rows without per-row checks.
    /// For arity zero the buffer must be the empty-or-marker encoding.
    pub(crate) fn from_flat(arity: usize, data: Vec<Value>) -> Self {
        debug_assert!(
            if arity == 0 { data.len() <= 1 } else { data.len() % arity == 0 },
            "flat buffer of length {} is not row-aligned for arity {arity}",
            data.len()
        );
        Relation {
            arity,
            data: Arc::new(data),
            view: None,
            sort_order: None,
            cache: Arc::new(IndexCache::default()),
        }
    }

    /// Builds a relation from an iterator of rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `arity`.
    pub fn from_rows<I, R>(arity: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[Value]>,
    {
        let mut rel = Relation::new(arity);
        for row in rows {
            rel.push_row(row.as_ref());
        }
        rel
    }

    /// The number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of stored tuples (duplicates included if any).
    #[must_use]
    pub fn len(&self) -> usize {
        if let Some((_, rows)) = self.view {
            return rows;
        }
        match self.data.len().checked_div(self.arity) {
            Some(rows) => rows,
            // A zero-arity relation is either empty or the single empty
            // tuple; we encode the latter by a one-element marker vector.
            None => usize::from(!self.data.is_empty()),
        }
    }

    /// The viewed flat row buffer: for a shard view, just its own rows; for
    /// a whole-buffer relation, all of `data`.  Zero-arity relations are
    /// never views, so their marker encoding passes through unchanged.
    fn flat(&self) -> &[Value] {
        match self.view {
            Some((start, rows)) => &self.data[start * self.arity..(start + rows) * self.arity],
            None => &self.data,
        }
    }

    /// Materialises a shard view into its own buffer (a one-time copy of
    /// just this shard's rows).  Called by every mutating method so that
    /// copy-on-write never touches rows outside the view.
    ///
    /// Materialisation changes the relation's [storage
    /// identity](Relation::storage_id), so any derived statistics computed
    /// under the old identity (indexes, distinct counts, column-store
    /// slices of the parent buffer) are detached here — not only by the
    /// mutating callers — ensuring a mutation path that reaches
    /// `make_owned` directly (e.g. [`Relation::reserve`]) can never leave a
    /// pre-materialisation cache attached to post-materialisation storage.
    fn make_owned(&mut self) {
        if self.view.is_some() {
            self.invalidate_derived();
            self.data = Arc::new(self.flat().to_vec());
            self.view = None;
        }
    }

    /// `true` iff the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` iff `self` and `other` share the same underlying tuple
    /// storage: O(1) clones of each other with no intervening mutation, or
    /// shard views ([`Relation::partitioned`]) over the same buffer.
    #[must_use]
    pub fn shares_storage_with(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// A process-local identity of this relation's *storage*: the address
    /// of the shared tuple buffer plus the viewed row range.  Two relations
    /// with equal storage ids hold exactly the same rows (they are O(1)
    /// clones or identical shard views of one buffer), which is what lets
    /// the plan layer deduplicate repeated subplans over shared inputs
    /// without comparing tuple data.  The id is only meaningful while both
    /// relations are alive and must never be persisted.
    #[must_use]
    pub fn storage_id(&self) -> (usize, usize, usize) {
        let (start, rows) = self.view.unwrap_or((0, self.len()));
        (Arc::as_ptr(&self.data) as *const u8 as usize, start, rows)
    }

    /// Detaches this relation from any cache shared with clones.  Called by
    /// every mutating method *before* the data changes: other clones keep
    /// the (still valid) cached structures for the old storage, while this
    /// relation starts from an empty cache.
    fn invalidate_derived(&mut self) {
        if self.cache.is_populated() || Arc::strong_count(&self.cache) > 1 {
            self.cache = Arc::new(IndexCache::default());
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.arity()`.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.arity,
            "pushed a row of length {} into a relation of arity {}",
            row.len(),
            self.arity
        );
        self.invalidate_derived();
        self.sort_order = None;
        self.make_owned();
        let data = Arc::make_mut(&mut self.data);
        if self.arity == 0 {
            if data.is_empty() {
                data.push(1); // marker: the empty tuple is present
            }
        } else {
            data.extend_from_slice(row);
        }
    }

    /// Returns the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Value] {
        assert!(i < self.len(), "row index {i} out of bounds (len {})", self.len());
        if self.arity == 0 {
            &[]
        } else {
            &self.flat()[i * self.arity..(i + 1) * self.arity]
        }
    }

    /// Iterates over all rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        let arity = self.arity;
        let len = self.len();
        let flat = self.flat();
        (0..len).map(
            move |i| {
                if arity == 0 {
                    &[] as &[Value]
                } else {
                    &flat[i * arity..(i + 1) * arity]
                }
            },
        )
    }

    /// Returns `true` iff the relation contains the given row (linear scan;
    /// build a [`crate::HashIndex`] for repeated probes).
    #[must_use]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.iter().any(|r| r == row)
    }

    /// Removes duplicate rows in place, keeping the first occurrence of
    /// every row (so a sorted relation stays sorted).  When the relation is
    /// already duplicate-free this is a no-op that preserves shared storage
    /// and cached indexes.
    pub fn dedup(&mut self) {
        if self.arity == 0 || self.len() <= 1 {
            return;
        }
        let out = {
            let flat = self.flat();
            let mut seen: HashSet<&[Value]> = HashSet::with_capacity(self.len());
            let mut out = Vec::with_capacity(flat.len());
            for row in flat.chunks_exact(self.arity) {
                if seen.insert(row) {
                    out.extend_from_slice(row);
                }
            }
            if out.len() == flat.len() {
                return; // duplicate-free: keep shared storage and cache
            }
            out
        };
        self.invalidate_derived();
        self.data = Arc::new(out);
        self.view = None;
        // `sort_order` is preserved: dropping later duplicates keeps a
        // sorted sequence sorted.
    }

    /// Returns a deduplicated copy.
    #[must_use]
    pub fn deduped(mut self) -> Self {
        self.dedup();
        self
    }

    /// Sorts rows lexicographically in place and records the sort order.
    /// Useful for canonical comparisons in tests and for the sort-merge
    /// join path.  A no-op when the relation already carries the full
    /// lexicographic order.
    pub fn sort(&mut self) {
        if self.arity == 0 {
            self.sort_order = Some(Vec::new());
            return;
        }
        let identity: Vec<usize> = (0..self.arity).collect();
        if self.sort_order.as_ref() == Some(&identity) {
            return;
        }
        let mut rows: Vec<&[Value]> = self.iter().collect();
        rows.sort_unstable();
        let mut data = Vec::with_capacity(rows.len() * self.arity);
        for row in rows {
            data.extend_from_slice(row);
        }
        self.invalidate_derived();
        self.data = Arc::new(data);
        self.view = None;
        self.sort_order = Some(identity);
    }

    /// Returns a copy whose rows are sorted lexicographically by the given
    /// columns (ties in arbitrary order), with the sort order recorded so
    /// the operator layer can pick the sort-merge join path.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use panda_relation::Relation;
    ///
    /// let r = Relation::from_rows(2, vec![[9, 1], [3, 2], [3, 1]]);
    /// let s = r.sorted_by_columns(&[1, 0]);
    /// assert_eq!(s.sort_order(), Some(&[1, 0][..]));
    /// assert_eq!(s.row(0), &[3, 1]);
    /// // Re-sorting by the recorded order is an O(1) clone.
    /// assert!(s.sorted_by_columns(&[1, 0]).shares_storage_with(&s));
    /// ```
    #[must_use]
    pub fn sorted_by_columns(&self, cols: &[usize]) -> Relation {
        for &c in cols {
            assert!(c < self.arity, "sort column {c} out of range for arity {}", self.arity);
        }
        if self.sort_order.as_deref() == Some(cols) {
            return self.clone();
        }
        let mut rows: Vec<&[Value]> = self.iter().collect();
        rows.sort_by(|a, b| cols.iter().map(|&c| a[c]).cmp(cols.iter().map(|&c| b[c])));
        let mut data = Vec::with_capacity(rows.len() * self.arity);
        for row in rows {
            data.extend_from_slice(row);
        }
        Relation {
            arity: self.arity,
            data: Arc::new(data),
            view: None,
            sort_order: Some(cols.to_vec()),
            cache: Arc::new(IndexCache::default()),
        }
    }

    /// The recorded sort order, if any: rows are in non-decreasing
    /// lexicographic order of these columns.
    #[must_use]
    pub fn sort_order(&self) -> Option<&[usize]> {
        self.sort_order.as_deref()
    }

    /// Records a sort order the caller has established by construction
    /// (debug-asserted).  Crate-internal: operators use it to propagate
    /// orderedness through order-preserving outputs.
    pub(crate) fn assume_sort_order(&mut self, order: Vec<usize>) {
        debug_assert!(
            self.iter().zip(self.iter().skip(1)).all(|(a, b)| {
                order.iter().map(|&c| a[c]).cmp(order.iter().map(|&c| b[c]))
                    != std::cmp::Ordering::Greater
            }),
            "assume_sort_order called with an order the rows do not satisfy"
        );
        self.sort_order = Some(order);
    }

    /// Returns the rows as a sorted, deduplicated vector of owned tuples —
    /// the canonical form used to compare query outputs in tests.
    #[must_use]
    pub fn canonical_rows(&self) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = self.iter().map(<[Value]>::to_vec).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// The number of *distinct* rows (the count — and only the count — is
    /// cached across repeated calls).
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        if self.arity == 0 {
            return self.len();
        }
        let cols: Vec<usize> = (0..self.arity).collect();
        self.cache.distinct_count(self, &cols)
    }

    /// The number of distinct values of a set of columns (order and
    /// repetition irrelevant; the count is cached across repeated calls).
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    #[must_use]
    pub fn distinct_count_of(&self, cols: &[usize]) -> usize {
        let mut canonical = cols.to_vec();
        canonical.sort_unstable();
        canonical.dedup();
        for &c in &canonical {
            assert!(c < self.arity, "count column {c} out of range for arity {}", self.arity);
        }
        if self.arity == 0 {
            return self.len();
        }
        self.cache.distinct_count(self, &canonical)
    }

    /// Extends this relation with all rows of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn extend_from(&mut self, other: &Relation) {
        assert_eq!(self.arity, other.arity, "arity mismatch in extend_from");
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            // Adopt the other side's storage wholesale — O(1), and the
            // shared cache rides along.
            *self = other.clone();
            return;
        }
        self.invalidate_derived();
        self.sort_order = None;
        self.make_owned();
        let data = Arc::make_mut(&mut self.data);
        if self.arity == 0 {
            if data.is_empty() {
                data.push(1);
            }
        } else {
            data.extend_from_slice(other.flat());
        }
    }

    /// Reserves space for `additional` more rows.  Like every mutating
    /// method this detaches shared derived statistics first: reserving
    /// re-allocates shared storage (new [storage
    /// identity](Relation::storage_id)), and the subsequent writes the
    /// caller is preparing for must start from a clean cache.
    pub fn reserve(&mut self, additional: usize) {
        self.invalidate_derived();
        self.make_owned();
        Arc::make_mut(&mut self.data).reserve(additional * self.arity.max(1));
    }

    /// The cached hash index on the given canonical (strictly increasing)
    /// key columns, building it on first use.  Clones of this relation
    /// share the cache, so repeated joins on the same `(relation, key
    /// columns)` pair build the index once.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is not strictly increasing or a column is out of
    /// range.
    #[must_use]
    pub fn index_for(&self, cols: &[usize]) -> Arc<HashIndex> {
        assert!(
            is_canonical_cols(cols),
            "index_for requires strictly increasing key columns, got {cols:?}"
        );
        self.cache.index(self, cols)
    }

    /// The cached hash index on the given canonical key columns, if one was
    /// already built — used by the operator layer to prefer an indexed
    /// build side.
    ///
    /// # Examples
    ///
    /// ```
    /// use panda_relation::Relation;
    ///
    /// let r = Relation::from_rows(2, vec![[1, 10], [2, 20]]);
    /// assert!(r.try_cached_index(&[0]).is_none());
    /// let built = r.index_for(&[0]); // builds and caches
    /// let cached = r.try_cached_index(&[0]).unwrap();
    /// assert!(std::sync::Arc::ptr_eq(&built, &cached));
    /// ```
    #[must_use]
    pub fn try_cached_index(&self, cols: &[usize]) -> Option<Arc<HashIndex>> {
        self.cache.cached_index(cols)
    }

    /// The cached [`ValueIndex`] for `value_col` grouped by the canonical
    /// (strictly increasing) `group_cols`, building it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `group_cols` is not strictly increasing or a column is out
    /// of range.
    ///
    /// # Examples
    ///
    /// The candidate values of a generic-join level: distinct, sorted
    /// values of one column per bound prefix.
    ///
    /// ```
    /// use panda_relation::Relation;
    ///
    /// let r = Relation::from_rows(2, vec![[1, 30], [1, 10], [1, 30], [2, 5]]);
    /// let idx = r.value_index(&[0], 1);
    /// assert_eq!(idx.candidates(&[1]), Some(&vec![10, 30]));
    /// assert_eq!(idx.candidates(&[9]), None);
    /// // Clones share the cached index.
    /// assert!(std::sync::Arc::ptr_eq(&idx, &r.clone().value_index(&[0], 1)));
    /// ```
    #[must_use]
    pub fn value_index(&self, group_cols: &[usize], value_col: usize) -> Arc<ValueIndex> {
        assert!(
            is_canonical_cols(group_cols),
            "value_index requires strictly increasing group columns, got {group_cols:?}"
        );
        self.cache.value_index(self, group_cols, value_col)
    }

    /// The cached [`GroupedDegrees`] of `value_cols` given `group_cols`
    /// (column order and repetitions are irrelevant to degrees, so the sets
    /// are canonicalised internally), building it on first use.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use panda_relation::Relation;
    ///
    /// // deg(col 1 | col 0): group 1 has two distinct values, group 2 one.
    /// let r = Relation::from_rows(2, vec![[1, 10], [1, 11], [2, 20]]);
    /// let gd = r.grouped_degrees(&[0], &[1]);
    /// assert_eq!(gd.max_degree(), 2);
    /// assert_eq!(gd.num_groups(), 2);
    /// assert_eq!(gd.degree_of_row(&[1, 99]), 2);
    /// ```
    #[must_use]
    pub fn grouped_degrees(
        &self,
        group_cols: &[usize],
        value_cols: &[usize],
    ) -> Arc<GroupedDegrees> {
        let canonical = |cols: &[usize]| -> Vec<usize> {
            let mut v = cols.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        let group = canonical(group_cols);
        let value = canonical(value_cols);
        for &c in group.iter().chain(value.iter()) {
            assert!(c < self.arity, "degree column {c} out of range for arity {}", self.arity);
        }
        self.cache.grouped_degrees(self, &group, &value)
    }

    /// The columnar twin of this relation's rows: per-column `Arc`-shared
    /// buffers with dictionary encoding for low-cardinality columns,
    /// cached in the shared `IndexCache` and built on first use (clones
    /// share it; mutation detaches it with the rest of the cache).  Once
    /// present, the operator and statistics layers dispatch to the
    /// vectorised columnar kernels — with bit-identical output to the
    /// row-major path.  Returns `None` for arity zero, which has no
    /// columns to store.
    ///
    /// # Examples
    ///
    /// ```
    /// use panda_relation::Relation;
    ///
    /// let r = Relation::from_rows(2, vec![[1, 10], [2, 20]]);
    /// let store = r.column_store().unwrap();
    /// assert_eq!(store.num_rows(), 2);
    /// assert_eq!(store.value(1, 1), 20);
    /// // Clones share the cached store.
    /// assert!(r.clone().column_store().unwrap().shares_buffers_with(&store));
    /// ```
    #[must_use]
    pub fn column_store(&self) -> Option<Arc<ColumnStore>> {
        if self.arity == 0 {
            return None;
        }
        Some(self.cache.column_store(self))
    }

    /// The cached column store, if one was already built — the operator
    /// layer's dispatch test: `Some` means the columnar layout is active
    /// for this relation and kernels should take the column path.
    #[must_use]
    pub fn try_column_store(&self) -> Option<Arc<ColumnStore>> {
        if self.arity == 0 {
            return None;
        }
        self.cache.cached_column_store()
    }

    /// Splits the relation into at most `parts` contiguous, balanced shards
    /// that together cover all rows in order.  Shards are **zero-copy
    /// views**: they share the parent's `Arc`-backed tuple storage (no
    /// tuple data is duplicated until a shard is mutated) and inherit the
    /// parent's recorded sort order, but start from their own empty index
    /// cache.  Returns an empty vector for an empty relation and a single
    /// O(1) clone when `parts == 1` or the relation has a single row (or
    /// arity zero).
    ///
    /// This is the fan-out primitive of the parallel execution layer: a
    /// probe side split into shards can be joined shard-by-shard on a
    /// thread pool and re-assembled with [`Relation::concatenated`],
    /// reproducing the sequential output exactly.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use panda_relation::Relation;
    ///
    /// let r = Relation::from_rows(2, vec![[1, 2], [3, 4], [5, 6], [7, 8], [9, 10]]);
    /// let shards = r.partitioned(2);
    /// assert_eq!(shards.len(), 2);
    /// assert_eq!(shards[0].len() + shards[1].len(), r.len());
    /// // Shards are zero-copy views over the parent's storage …
    /// assert!(shards.iter().all(|s| s.shares_storage_with(&r)));
    /// // … and re-assembling them in order reproduces the original.
    /// assert_eq!(Relation::concatenated(2, &shards), r);
    /// ```
    #[must_use]
    pub fn partitioned(&self, parts: usize) -> Vec<Relation> {
        assert!(parts > 0, "cannot partition a relation into zero shards");
        let len = self.len();
        if len == 0 {
            return Vec::new();
        }
        if parts == 1 || len == 1 || self.arity == 0 {
            return vec![self.clone()];
        }
        let base = self.view.map_or(0, |(start, _)| start);
        // When the parent already carries a column store, each shard starts
        // from a zero-copy column *slice* of it instead of an empty cache,
        // so the columnar layout survives the parallel fan-out without
        // re-encoding per shard.
        let parent_store = self.cache.cached_column_store();
        let k = parts.min(len);
        let shards: Vec<Relation> = (0..k)
            .map(|i| {
                let lo = len * i / k;
                let hi = len * (i + 1) / k;
                let cache = match &parent_store {
                    Some(store) => IndexCache::with_column_store(store.slice(lo, hi - lo)),
                    None => IndexCache::default(),
                };
                Relation {
                    arity: self.arity,
                    data: Arc::clone(&self.data),
                    view: Some((base + lo, hi - lo)),
                    // A contiguous slice of a sorted sequence is sorted.
                    sort_order: self.sort_order.clone(),
                    cache: Arc::new(cache),
                }
            })
            .collect();
        // The shards must tile the parent exactly: re-concatenating them in
        // order is the identity (the determinism contract of the parallel
        // operators that fan out over these shards).
        debug_assert_eq!(shards.iter().map(Relation::len).sum::<usize>(), len);
        debug_assert!(shards.iter().all(|s| s.arity() == self.arity));
        shards
    }

    /// Concatenates shards (in order) into one relation of the given
    /// arity — the merge half of [`Relation::partitioned`].  Rows appear
    /// exactly in shard order, so partitioning and concatenating is the
    /// identity; no deduplication is performed.  When at most one shard is
    /// non-empty the result is an O(1) clone of it (shared storage and
    /// index cache).
    ///
    /// # Panics
    ///
    /// Panics if any shard's arity differs from `arity`.
    #[must_use]
    pub fn concatenated(arity: usize, shards: &[Relation]) -> Relation {
        for shard in shards {
            assert_eq!(shard.arity(), arity, "shard arity mismatch in concatenated");
        }
        let mut non_empty = shards.iter().filter(|s| !s.is_empty());
        let Some(first) = non_empty.next() else { return Relation::new(arity) };
        if non_empty.next().is_none() {
            return first.clone();
        }
        if arity == 0 {
            let mut out = Relation::new(0);
            out.push_row(&[]);
            return out;
        }
        let total: usize = shards.iter().map(|s| s.flat().len()).sum();
        let mut data = Vec::with_capacity(total);
        for shard in shards {
            data.extend_from_slice(shard.flat());
        }
        let out = Relation::from_flat(arity, data);
        // Shard-order merge preserves every row: the concatenation is the
        // identity on the shard sequence, nothing dropped or reordered.
        debug_assert_eq!(out.len(), shards.iter().map(Relation::len).sum::<usize>());
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && ((Arc::ptr_eq(&self.data, &other.data) && self.view == other.view)
                || self.flat() == other.flat())
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation(arity={}, rows={})", self.arity, self.len())?;
        const PREVIEW: usize = 8;
        for (i, row) in self.iter().enumerate() {
            if i >= PREVIEW {
                writeln!(f, "  … {} more", self.len() - PREVIEW)?;
                break;
            }
            writeln!(f, "  {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_read_rows() {
        let mut r = Relation::new(3);
        r.push_row(&[1, 2, 3]);
        r.push_row(&[4, 5, 6]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.row(0), &[1, 2, 3]);
        assert_eq!(r.row(1), &[4, 5, 6]);
        assert!(!r.is_empty());
        assert!(r.contains(&[4, 5, 6]));
        assert!(!r.contains(&[4, 5, 7]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_push_panics() {
        let mut r = Relation::new(2);
        r.push_row(&[1, 2, 3]);
    }

    #[test]
    fn zero_arity_relation_behaves_like_a_boolean() {
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        r.push_row(&[]);
        r.push_row(&[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[] as &[Value]);
        assert_eq!(r.distinct_count(), 1);
    }

    #[test]
    fn dedup_removes_duplicates_only() {
        let r = Relation::from_rows(2, vec![[1, 1], [2, 2], [1, 1], [3, 3], [2, 2]]);
        let d = r.deduped();
        assert_eq!(d.len(), 3);
        assert_eq!(d.canonical_rows(), vec![vec![1, 1], vec![2, 2], vec![3, 3]]);
    }

    #[test]
    fn sort_orders_lexicographically() {
        let mut r = Relation::from_rows(2, vec![[2, 1], [1, 5], [1, 2]]);
        r.sort();
        assert_eq!(r.row(0), &[1, 2]);
        assert_eq!(r.row(1), &[1, 5]);
        assert_eq!(r.row(2), &[2, 1]);
        assert_eq!(r.sort_order(), Some(&[0, 1][..]));
    }

    #[test]
    fn distinct_count_and_extend() {
        let mut r = Relation::from_rows(1, vec![[1], [2], [2]]);
        assert_eq!(r.distinct_count(), 2);
        let other = Relation::from_rows(1, vec![[3], [1]]);
        r.extend_from(&other);
        assert_eq!(r.len(), 5);
        assert_eq!(r.distinct_count(), 3);
    }

    #[test]
    fn clones_share_storage_until_mutation() {
        let mut r = Relation::from_rows(2, vec![[1, 2], [3, 4]]);
        let snapshot = r.clone();
        assert!(snapshot.shares_storage_with(&r));
        r.push_row(&[5, 6]);
        assert!(!snapshot.shares_storage_with(&r));
        assert_eq!(snapshot.len(), 2, "the clone must not see the mutation");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn dedup_of_a_duplicate_free_relation_preserves_sharing() {
        let r = Relation::from_rows(2, vec![[1, 2], [3, 4]]);
        let d = r.clone().deduped();
        assert!(d.shares_storage_with(&r));
    }

    #[test]
    fn extend_from_into_empty_adopts_storage() {
        let other = Relation::from_rows(2, vec![[1, 2], [3, 4]]);
        let mut r = Relation::new(2);
        r.extend_from(&other);
        assert!(r.shares_storage_with(&other));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn sorted_by_columns_records_the_order() {
        let r = Relation::from_rows(2, vec![[9, 1], [3, 2], [3, 1]]);
        let s = r.sorted_by_columns(&[1, 0]);
        assert_eq!(s.sort_order(), Some(&[1, 0][..]));
        assert_eq!(s.row(0), &[3, 1]);
        assert_eq!(s.row(1), &[9, 1]);
        assert_eq!(s.row(2), &[3, 2]);
        // The original is untouched and unordered.
        assert_eq!(r.sort_order(), None);
        // Re-sorting by the recorded order is an O(1) clone.
        assert!(s.sorted_by_columns(&[1, 0]).shares_storage_with(&s));
    }

    #[test]
    fn mutation_clears_the_sort_order() {
        let mut r = Relation::from_rows(1, vec![[1], [2]]);
        r.sort();
        assert!(r.sort_order().is_some());
        r.push_row(&[0]);
        assert_eq!(r.sort_order(), None);
    }

    #[test]
    fn partitioned_shards_are_zero_copy_and_cover_in_order() {
        let r = Relation::from_rows(2, (0..17u64).map(|i| [i, i * 10]));
        for parts in [1, 2, 3, 5, 17, 40] {
            let shards = r.partitioned(parts);
            assert!(shards.len() <= parts);
            assert!(shards.iter().all(|s| !s.is_empty()), "parts = {parts}");
            assert!(shards.iter().all(|s| s.shares_storage_with(&r)), "parts = {parts}");
            let merged = Relation::concatenated(2, &shards);
            let expected: Vec<Tuple> = r.iter().map(<[Value]>::to_vec).collect();
            let got: Vec<Tuple> = merged.iter().map(<[Value]>::to_vec).collect();
            assert_eq!(got, expected, "parts = {parts}");
        }
        assert!(Relation::new(3).partitioned(4).is_empty());
    }

    #[test]
    fn shard_views_read_only_their_own_rows() {
        let r = Relation::from_rows(1, vec![[0], [1], [2], [3], [4]]);
        let shards = r.partitioned(2);
        assert_eq!(shards[0].canonical_rows(), vec![vec![0], vec![1]]);
        assert_eq!(shards[1].canonical_rows(), vec![vec![2], vec![3], vec![4]]);
        assert_eq!(shards[1].row(0), &[2]);
        assert!(shards[1].contains(&[4]));
        assert!(!shards[1].contains(&[1]));
        assert_eq!(shards[1].distinct_count(), 3);
    }

    #[test]
    fn mutating_a_shard_copies_out_and_detaches() {
        let r = Relation::from_rows(1, vec![[0], [1], [2], [3]]);
        let shards = r.partitioned(2);
        let mut shard = shards[1].clone();
        shard.push_row(&[9]);
        assert!(!shard.shares_storage_with(&r), "mutation must detach the view");
        assert_eq!(shard.canonical_rows(), vec![vec![2], vec![3], vec![9]]);
        // The parent and the sibling shard are untouched.
        assert_eq!(r.len(), 4);
        assert_eq!(shards[0].canonical_rows(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn make_owned_detaches_stale_derived_statistics() {
        // Regression: `reserve` reaches `make_owned` without going through
        // a row-mutating method, so the view materialisation itself must
        // detach derived statistics — a cache built for the old storage
        // identity must never survive onto the new one.
        let r = Relation::from_rows(2, vec![[1, 10], [2, 20], [3, 30], [4, 40]]);
        let mut shard = r.partitioned(2).pop().unwrap();
        let before = shard.storage_id();
        let _ = shard.index_for(&[0]);
        let _ = shard.distinct_count();
        assert!(shard.try_cached_index(&[0]).is_some());
        shard.reserve(8);
        assert_ne!(shard.storage_id(), before, "materialisation re-homes storage");
        assert!(
            shard.try_cached_index(&[0]).is_none(),
            "derived statistics must be detached when the storage identity changes"
        );
        // The rows themselves are intact and re-derived stats are correct.
        assert_eq!(shard.canonical_rows(), vec![vec![3, 30], vec![4, 40]]);
        assert_eq!(shard.distinct_count(), 2);
    }

    #[test]
    fn storage_id_distinguishes_views_and_tracks_sharing() {
        let r = Relation::from_rows(1, vec![[0], [1], [2], [3]]);
        let clone = r.clone();
        assert_eq!(r.storage_id(), clone.storage_id(), "O(1) clones share identity");
        let shards = r.partitioned(2);
        assert_ne!(shards[0].storage_id(), shards[1].storage_id());
        assert_ne!(shards[0].storage_id(), r.storage_id());
        // Equal shard views of the same range agree.
        assert_eq!(shards[1].storage_id(), r.partitioned(2)[1].storage_id());
        let owned = Relation::from_rows(1, vec![[0], [1], [2], [3]]);
        assert_ne!(owned.storage_id(), r.storage_id(), "distinct buffers differ");
    }

    #[test]
    fn shards_of_a_sorted_relation_stay_sorted_and_can_renest() {
        let mut r = Relation::from_rows(2, (0..12u64).map(|i| [i / 3, i % 3]));
        r.sort();
        let shards = r.partitioned(3);
        for shard in &shards {
            assert_eq!(shard.sort_order(), Some(&[0, 1][..]));
            // A shard of a shard composes the view offsets.
            let nested = shard.partitioned(2);
            let merged = Relation::concatenated(2, &nested);
            assert_eq!(merged.canonical_rows(), shard.canonical_rows());
            assert!(nested.iter().all(|s| s.shares_storage_with(&r)));
        }
    }

    #[test]
    fn shard_equality_is_by_viewed_rows() {
        let r = Relation::from_rows(1, vec![[7], [7], [8]]);
        let shards = r.partitioned(3);
        assert_eq!(shards[0], shards[1], "equal single-row views compare equal");
        assert_ne!(shards[0], shards[2]);
        assert_ne!(shards[0], r);
    }

    #[test]
    fn concatenated_single_nonempty_shard_is_a_clone() {
        let r = Relation::from_rows(2, vec![[1, 2], [3, 4]]);
        let merged = Relation::concatenated(2, &[Relation::new(2), r.clone(), Relation::new(2)]);
        assert!(merged.shares_storage_with(&r));
        assert_eq!(Relation::concatenated(2, &[]).len(), 0);
        // Zero-arity concatenation is boolean-or.
        let mut t = Relation::new(0);
        t.push_row(&[]);
        assert_eq!(Relation::concatenated(0, &[t.clone(), t]).len(), 1);
    }

    proptest! {
        #[test]
        fn prop_partition_concat_roundtrips(
            rows in proptest::collection::vec((0u64..30, 0u64..30), 0..80),
            parts in 1usize..9,
        ) {
            let rel = Relation::from_rows(2, rows.iter().map(|(a, b)| [*a, *b]));
            let shards = rel.partitioned(parts);
            let merged = Relation::concatenated(2, &shards);
            let expected: Vec<Tuple> = rel.iter().map(<[Value]>::to_vec).collect();
            let got: Vec<Tuple> = merged.iter().map(<[Value]>::to_vec).collect();
            prop_assert_eq!(got, expected);
            let total: usize = shards.iter().map(Relation::len).sum();
            prop_assert_eq!(total, rel.len());
        }

        #[test]
        fn prop_dedup_is_idempotent(rows in proptest::collection::vec((0u64..20, 0u64..20), 0..60)) {
            let rel = Relation::from_rows(2, rows.iter().map(|(a, b)| [*a, *b]));
            let once = rel.clone().deduped();
            let twice = once.clone().deduped();
            prop_assert_eq!(once.canonical_rows(), twice.canonical_rows());
            prop_assert_eq!(once.len(), rel.distinct_count());
        }

        #[test]
        fn prop_canonical_rows_sorted_unique(rows in proptest::collection::vec((0u64..10, 0u64..10), 0..60)) {
            let rel = Relation::from_rows(2, rows.iter().map(|(a, b)| [*a, *b]));
            let canon = rel.canonical_rows();
            let mut sorted = canon.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(canon, sorted);
        }
    }
}
