//! Relational operators: projection, selection, joins and set operations.
//!
//! All operators are positional: a join is specified by pairs of column
//! indices to equate, mirroring how an [`crate::Relation`] is bound to a
//! query atom (column *i* of the relation instance is the *i*-th variable
//! of the atom).  The variable-aware layer lives in `panda-core`.
//!
//! The join-shaped operators ([`join`], [`semijoin`], [`antijoin`] and the
//! set operations built on them) consult the build side's shared index
//! cache ([`Relation::index_for`]) before building a hash table, so
//! repeated joins on the same `(relation, key columns)` pair — the normal
//! case across PANDA's degree branches and Yannakakis' semijoin passes —
//! pay for the index once.  When both inputs carry a compatible recorded
//! sort order ([`Relation::sort_order`]), [`join`] switches to a
//! sort-merge path that needs no hash table at all.

// panda-lint: allow-file(P1) -- column indices are validated against
// both arities in join/semijoin setup before any row is touched, and
// the pool-build expect has no fallible path in the vendored subset.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::Arc;

use crate::index::HashIndex;
use crate::kernels;
use crate::relation::{Relation, Tuple, Value};

/// The sort order a projection's output inherits: the longest prefix of
/// the input's recorded order whose columns all survive into `cols`,
/// rewritten to output positions (first occurrence in `cols`).  Valid
/// because keep-first deduplication preserves the input row order, and a
/// lexicographic order restricted to a leading prefix is still
/// non-decreasing.
fn projected_sort_order(input_order: &[usize], cols: &[usize]) -> Option<Vec<usize>> {
    let mapped: Vec<usize> =
        input_order.iter().map_while(|c| cols.iter().position(|x| x == c)).collect();
    if mapped.is_empty() {
        None
    } else {
        Some(mapped)
    }
}

/// Projects `relation` onto the given columns (in the given order),
/// removing duplicates (first occurrences kept, in input row order).
///
/// When the input carries a recorded sort order whose leading columns all
/// survive the projection, the corresponding output order is recorded on
/// the result — so a downstream [`join`] on those columns can take the
/// sort-merge path.
///
/// # Panics
///
/// Panics if a column index is out of range.
#[must_use]
pub fn project(relation: &Relation, cols: &[usize]) -> Relation {
    for &c in cols {
        assert!(c < relation.arity(), "projection column {c} out of range");
    }
    let mut out = if let Some(store) = relation.try_column_store() {
        kernels::project(&store, cols)
    } else {
        let mut out = Relation::with_capacity(cols.len(), relation.len());
        let mut seen: HashSet<Tuple> = HashSet::with_capacity(relation.len());
        for row in relation.iter() {
            let projected: Tuple = cols.iter().map(|&c| row[c]).collect();
            if seen.insert(projected.clone()) {
                out.push_row(&projected);
            }
        }
        out
    };
    if !out.is_empty() {
        if let Some(order) = relation.sort_order().and_then(|o| projected_sort_order(o, cols)) {
            out.assume_sort_order(order);
        }
    }
    out
}

/// Selects the rows where column `col` equals `value`.  Preserves row
/// order and the input's recorded sort order.
#[must_use]
pub fn select_eq(relation: &Relation, col: usize, value: Value) -> Relation {
    assert!(col < relation.arity(), "selection column {col} out of range");
    let mut out = if let Some(store) = relation.try_column_store() {
        kernels::select_eq(&store, col, value)
    } else {
        let mut out = Relation::new(relation.arity());
        for row in relation.iter() {
            if row[col] == value {
                out.push_row(row);
            }
        }
        out
    };
    // A filter keeps a subsequence of the rows, so sortedness survives.
    if !out.is_empty() {
        if let Some(order) = relation.sort_order() {
            out.assume_sort_order(order.to_vec());
        }
    }
    out
}

/// Selects the rows satisfying an arbitrary predicate.  Preserves row
/// order and the input's recorded sort order.
#[must_use]
pub fn select_where<F: FnMut(&[Value]) -> bool>(relation: &Relation, mut pred: F) -> Relation {
    let mut out = Relation::new(relation.arity());
    for row in relation.iter() {
        if pred(row) {
            out.push_row(row);
        }
    }
    if !out.is_empty() {
        if let Some(order) = relation.sort_order() {
            out.assume_sort_order(order.to_vec());
        }
    }
    out
}

/// The join pairs rewritten for one build side: pairs sorted by build
/// column with exact duplicates removed, split into (build columns, probe
/// columns).  Returns `None` when a build column repeats with different
/// probe columns — that shape needs a bespoke (uncached) index.
fn canonical_pairs(on: &[(usize, usize)], build_is_left: bool) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut pairs: Vec<(usize, usize)> =
        on.iter().map(|&(l, r)| if build_is_left { (l, r) } else { (r, l) }).collect();
    pairs.sort_unstable();
    pairs.dedup();
    if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
        return None;
    }
    Some((pairs.iter().map(|p| p.0).collect(), pairs.iter().map(|p| p.1).collect()))
}

/// The hash index of `build` on the join columns, served from the shared
/// cache when the column set is canonical, built fresh otherwise.
/// `build_is_left` selects which component of each `on` pair belongs to the
/// build side; the returned probe columns are aligned with the index's key
/// columns.
fn build_side_index(
    build: &Relation,
    on: &[(usize, usize)],
    build_is_left: bool,
) -> (Arc<HashIndex>, Vec<usize>) {
    match canonical_pairs(on, build_is_left) {
        Some((build_cols, probe_cols)) => (build.index_for(&build_cols), probe_cols),
        None => {
            let build_cols: Vec<usize> =
                on.iter().map(|&(l, r)| if build_is_left { l } else { r }).collect();
            let probe_cols: Vec<usize> =
                on.iter().map(|&(l, r)| if build_is_left { r } else { l }).collect();
            (Arc::new(HashIndex::build(build, &build_cols)), probe_cols)
        }
    }
}

/// A pass-through hasher for keys that already are 64-bit hashes — avoids
/// hashing a row's hash a second time inside the dedup sink's map.
#[derive(Default, Clone)]
struct PrehashedState;

struct PrehashedHasher(u64);

impl std::hash::BuildHasher for PrehashedState {
    type Hasher = PrehashedHasher;

    fn build_hasher(&self) -> PrehashedHasher {
        PrehashedHasher(0)
    }
}

impl std::hash::Hasher for PrehashedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("the dedup sink only hashes u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// A deduplicating output sink: rows are dropped as they are produced, so
/// duplicates are never materialised.  Rows are appended to a raw flat
/// buffer (no per-row relation bookkeeping) and tracked by their 64-bit
/// hash mapped to a row id — no owned copy of any row is kept outside the
/// buffer itself.  Distinct rows with colliding hashes (vanishingly rare)
/// go to a linearly scanned overflow list.
pub(crate) struct DedupSink {
    arity: usize,
    data: Vec<Value>,
    rows: usize,
    zero_arity_present: bool,
    hasher: std::collections::hash_map::RandomState,
    first_with_hash: std::collections::HashMap<u64, usize, PrehashedState>,
    overflow: Vec<(u64, usize)>,
}

impl DedupSink {
    pub(crate) fn new(arity: usize) -> Self {
        DedupSink {
            arity,
            data: Vec::new(),
            rows: 0,
            zero_arity_present: false,
            hasher: std::collections::hash_map::RandomState::new(),
            first_with_hash: std::collections::HashMap::default(),
            overflow: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, row: &[Value]) {
        use std::collections::hash_map::Entry;
        use std::hash::BuildHasher;
        debug_assert_eq!(row.len(), self.arity);
        if self.arity == 0 {
            self.zero_arity_present = true; // a zero-arity relation dedups itself
            return;
        }
        let h = self.hasher.hash_one(row);
        let id = self.rows;
        let arity = self.arity;
        match self.first_with_hash.entry(h) {
            Entry::Vacant(e) => {
                e.insert(id);
            }
            Entry::Occupied(e) => {
                let first = *e.get();
                let row_at = |i: usize| &self.data[i * arity..(i + 1) * arity];
                if row_at(first) == row
                    || self.overflow.iter().any(|&(oh, i)| oh == h && row_at(i) == row)
                {
                    return;
                }
                self.overflow.push((h, id));
            }
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    pub(crate) fn into_relation(self) -> Relation {
        if self.arity == 0 {
            let mut out = Relation::new(0);
            if self.zero_arity_present {
                out.push_row(&[]);
            }
            return out;
        }
        Relation::from_flat(self.arity, self.data)
    }
}

/// Hash- or merge-joins `left` and `right` on the column pairs
/// `on = [(lcol, rcol)]`.
///
/// The output schema is all columns of `left` followed by the columns of
/// `right` that are **not** join columns (in their original order), i.e. the
/// natural-join convention once positional columns are bound to variables.
/// The output is deduplicated (streamed — duplicates are dropped as they
/// are produced, never materialised).
///
/// The build side's hash index is served from the relation's shared cache;
/// when both sides carry a recorded sort order whose prefixes align with
/// `on`, a sort-merge path is used instead.
///
/// # Examples
///
/// Pre-sorting both inputs routes the same join through the sort-merge
/// path, with identical results:
///
/// ```
/// use panda_relation::{operators, Relation};
///
/// let r = Relation::from_rows(2, vec![[1, 2], [2, 3]]);
/// let s = Relation::from_rows(2, vec![[2, 5], [2, 6], [3, 7]]);
/// let hashed = operators::join(&r, &s, &[(1, 0)]);
/// let merged = operators::join(&r.sorted_by_columns(&[1, 0]), &s.sorted_by_columns(&[0, 1]), &[(1, 0)]);
/// assert_eq!(hashed.canonical_rows(), merged.canonical_rows());
/// ```
#[must_use]
pub fn join(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Relation {
    for &(l, r) in on {
        assert!(l < left.arity(), "left join column {l} out of range");
        assert!(r < right.arity(), "right join column {r} out of range");
    }
    if let Some(aligned) = merge_alignment(left, right, on) {
        return merge_join(left, right, &aligned, on);
    }
    hash_join(left, right, on)
}

/// Chooses the build side like [`hash_join`]: prefer a side whose index is
/// already cached; otherwise build on the smaller side for cache
/// friendliness and probe with the other.
fn choose_build_left(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> bool {
    let cached = |rel: &Relation, is_left: bool| {
        canonical_pairs(on, is_left).is_some_and(|(cols, _)| rel.try_cached_index(&cols).is_some())
    };
    match (cached(left, true), cached(right, false)) {
        (true, false) => true,
        (false, true) => false,
        _ => left.len() <= right.len(),
    }
}

/// Probes every row of `probe` against the build side's index, streaming
/// the joined rows through a dedup sink — the inner loop shared by
/// [`hash_join`] and each [`par_join`] probe shard.
fn probe_side_join(
    build: &Relation,
    probe: &Relation,
    idx: &HashIndex,
    probe_cols: &[usize],
    right_keep_cols: &[usize],
    build_left: bool,
    out_arity: usize,
) -> Relation {
    // A columnar probe side (including the sliced stores par_join's shard
    // views inherit) takes the batch kernel; same visit order, same sink.
    if let Some(store) = probe.try_column_store() {
        return kernels::probe_side_join(
            build,
            &store,
            idx,
            probe_cols,
            right_keep_cols,
            build_left,
            out_arity,
        );
    }
    let mut out = DedupSink::new(out_arity);
    let mut row_buf: Tuple = Tuple::with_capacity(out_arity);
    let mut key_buf: Tuple = Tuple::with_capacity(probe_cols.len());
    for prow in probe.iter() {
        key_buf.clear();
        key_buf.extend(probe_cols.iter().map(|&c| prow[c]));
        for &brow_id in idx.probe(&key_buf) {
            let brow = build.row(brow_id);
            let (lrow, rrow) = if build_left { (brow, prow) } else { (prow, brow) };
            row_buf.clear();
            row_buf.extend_from_slice(lrow);
            row_buf.extend(right_keep_cols.iter().map(|&c| rrow[c]));
            out.push(&row_buf);
        }
    }
    out.into_relation()
}

/// The shared setup of a hash join: output shape, build-side choice and
/// the (cached) build index.  [`hash_join`] and [`par_join`] both start
/// from this one helper so their build/probe decisions can never diverge —
/// which is what `par_join`'s bit-identical-to-[`join`] contract rests on.
struct JoinSetup {
    build_left: bool,
    idx: Arc<HashIndex>,
    probe_cols: Vec<usize>,
    right_keep_cols: Vec<usize>,
    out_arity: usize,
}

fn join_setup(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> JoinSetup {
    let right_join_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let right_keep_cols: Vec<usize> =
        (0..right.arity()).filter(|c| !right_join_cols.contains(c)).collect();
    let out_arity = left.arity() + right_keep_cols.len();
    let build_left = choose_build_left(left, right, on);
    let (idx, probe_cols) = if build_left {
        build_side_index(left, on, true)
    } else {
        build_side_index(right, on, false)
    };
    JoinSetup { build_left, idx, probe_cols, right_keep_cols, out_arity }
}

fn hash_join(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Relation {
    let setup = join_setup(left, right, on);
    let build = if setup.build_left { left } else { right };
    let probe = if setup.build_left { right } else { left };
    probe_side_join(
        build,
        probe,
        &setup.idx,
        &setup.probe_cols,
        &setup.right_keep_cols,
        setup.build_left,
        setup.out_arity,
    )
}

/// [`join`] with the probe side split into up to `threads` zero-copy
/// shards ([`Relation::partitioned`]) that are joined on a thread pool and
/// concatenated in shard order.
///
/// The output is **bit-identical to [`join`]** at every thread count: the
/// build side (and its shared cached index) is the same, probe rows are
/// visited in the same order across the ordered shards, and the final
/// deduplication keeps first occurrences exactly like the sequential
/// streaming sink.  With `threads <= 1`, or when the sort-merge path
/// applies, this delegates to [`join`] directly.
///
/// # Panics
///
/// Panics if a column index is out of range.
///
/// # Examples
///
/// ```
/// use panda_relation::{operators, Relation};
///
/// let r = Relation::from_rows(2, vec![[1, 2], [2, 3], [4, 4]]);
/// let s = Relation::from_rows(2, vec![[2, 10], [2, 11], [4, 20]]);
/// let seq = operators::join(&r, &s, &[(1, 0)]);
/// let par = operators::par_join(&r, &s, &[(1, 0)], 4);
/// let rows = |rel: &Relation| rel.iter().map(<[u64]>::to_vec).collect::<Vec<_>>();
/// assert_eq!(rows(&par), rows(&seq)); // identical rows in identical order
/// ```
#[must_use]
pub fn par_join(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
    threads: usize,
) -> Relation {
    for &(l, r) in on {
        assert!(l < left.arity(), "left join column {l} out of range");
        assert!(r < right.arity(), "right join column {r} out of range");
    }
    if threads <= 1 || merge_alignment(left, right, on).is_some() {
        return join(left, right, on);
    }
    let setup = join_setup(left, right, on);
    let build = if setup.build_left { left } else { right };
    let probe = if setup.build_left { right } else { left };
    let run_shard = |shard: &Relation| -> Relation {
        probe_side_join(
            build,
            shard,
            &setup.idx,
            &setup.probe_cols,
            &setup.right_keep_cols,
            setup.build_left,
            setup.out_arity,
        )
    };
    let shards = probe.partitioned(threads.max(1));
    if shards.len() <= 1 {
        return match shards.first() {
            Some(shard) => run_shard(shard),
            None => Relation::new(setup.out_arity),
        };
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction is infallible");
    let pieces: Vec<Relation> = pool.install(|| {
        use rayon::prelude::*;
        shards.par_iter().map(run_shard).collect()
    });
    // The deterministic pool's indexed collect must hand back exactly one
    // piece per probe shard, in shard order, all with the output arity —
    // the precondition for the order-preserving merge below.
    debug_assert_eq!(pieces.len(), shards.len());
    debug_assert!(pieces.iter().all(|p| p.arity() == setup.out_arity));
    let merged = Relation::concatenated(setup.out_arity, &pieces);
    // Cross-shard duplicates can only come from *duplicate probe rows*
    // landing in different shards: an output row determines the probe row
    // that produced it (all probe columns appear in the output), and any
    // duplicates from one probe row are adjacent and removed by that
    // shard's streaming sink.  A duplicate-free probe side therefore needs
    // no second dedup pass over the merged output — and the distinct count
    // is served from the probe relation's cache.
    if probe.distinct_count() < probe.len() {
        merged.deduped()
    } else {
        merged
    }
}

/// Checks whether the recorded sort orders of both sides begin with the
/// join columns in matching positions; returns the `on` pairs re-ordered to
/// that common prefix when they do.
fn merge_alignment(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
) -> Option<Vec<(usize, usize)>> {
    if on.is_empty() {
        return None;
    }
    let lo = left.sort_order()?;
    let ro = right.sort_order()?;
    if lo.len() < on.len() || ro.len() < on.len() {
        return None;
    }
    let mut remaining: Vec<(usize, usize)> = on.to_vec();
    let mut aligned = Vec::with_capacity(on.len());
    for i in 0..on.len() {
        let pair = (lo[i], ro[i]);
        let pos = remaining.iter().position(|&p| p == pair)?;
        remaining.remove(pos);
        aligned.push(pair);
    }
    Some(aligned)
}

/// `true` iff `order` is the full identity permutation for `arity` columns
/// — the case where a merge join's output is itself lexicographically
/// sorted.
fn is_identity_order(order: &[usize], arity: usize) -> bool {
    order.len() == arity && order.iter().enumerate().all(|(i, &c)| i == c)
}

/// Sort-merge join: both sides are sorted with the aligned join columns as
/// the leading prefix of their sort orders, so equal-key groups are
/// contiguous and can be paired with two cursors.
fn merge_join(
    left: &Relation,
    right: &Relation,
    aligned: &[(usize, usize)],
    on: &[(usize, usize)],
) -> Relation {
    let lcols: Vec<usize> = aligned.iter().map(|p| p.0).collect();
    let rcols: Vec<usize> = aligned.iter().map(|p| p.1).collect();
    let right_join_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let right_keep_cols: Vec<usize> =
        (0..right.arity()).filter(|c| !right_join_cols.contains(c)).collect();
    let out_arity = left.arity() + right_keep_cols.len();
    let mut out = DedupSink::new(out_arity);

    let key_cmp = |a: &[Value], acols: &[usize], b: &[Value], bcols: &[usize]| -> Ordering {
        acols.iter().map(|&c| a[c]).cmp(bcols.iter().map(|&c| b[c]))
    };

    let (ln, rn) = (left.len(), right.len());
    let mut row_buf: Tuple = Tuple::with_capacity(out_arity);
    let (mut i, mut j) = (0, 0);
    while i < ln && j < rn {
        match key_cmp(left.row(i), &lcols, right.row(j), &rcols) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                let i_end = (i + 1..ln)
                    .find(|&x| key_cmp(left.row(x), &lcols, left.row(i), &lcols) != Ordering::Equal)
                    .unwrap_or(ln);
                let j_end = (j + 1..rn)
                    .find(|&x| {
                        key_cmp(right.row(x), &rcols, right.row(j), &rcols) != Ordering::Equal
                    })
                    .unwrap_or(rn);
                for a in i..i_end {
                    let lrow = left.row(a);
                    for b in j..j_end {
                        let rrow = right.row(b);
                        row_buf.clear();
                        row_buf.extend_from_slice(lrow);
                        row_buf.extend(right_keep_cols.iter().map(|&c| rrow[c]));
                        out.push(&row_buf);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    let mut out = out.into_relation();
    // With fully (identity-)sorted inputs the concatenated output is itself
    // sorted: left parts are non-decreasing, and within one left row the
    // kept right columns ascend with the right rows.
    if left.sort_order().is_some_and(|o| is_identity_order(o, left.arity()))
        && right.sort_order().is_some_and(|o| is_identity_order(o, right.arity()))
        && !out.is_empty()
    {
        out.assume_sort_order((0..out_arity).collect());
    }
    out
}

/// The Cartesian product of two relations (a join with no join columns).
#[must_use]
pub fn cartesian_product(left: &Relation, right: &Relation) -> Relation {
    join(left, right, &[])
}

/// Semijoin: the rows of `left` that have at least one matching row in
/// `right` under the column pairs `on`.  Preserves `left`'s row order (and
/// recorded sort order); when nothing is filtered the result is an O(1)
/// clone of `left`.
///
/// # Panics
///
/// Panics if a column index is out of range.
#[must_use]
pub fn semijoin(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Relation {
    filter_by_membership(left, right, on, true)
}

/// Antijoin: the rows of `left` with **no** matching row in `right`.
/// Preserves `left`'s row order (and recorded sort order); when nothing is
/// filtered the result is an O(1) clone of `left`.
///
/// # Panics
///
/// Panics if a column index is out of range.
#[must_use]
pub fn antijoin(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Relation {
    filter_by_membership(left, right, on, false)
}

fn filter_by_membership(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
    keep_matches: bool,
) -> Relation {
    for &(l, r) in on {
        assert!(l < left.arity(), "left join column {l} out of range");
        assert!(r < right.arity(), "right join column {r} out of range");
    }
    let (idx, probe_cols) = build_side_index(right, on, false);
    // Both layouts reduce to the same keep-bitmap: the columnar kernel
    // probes per dictionary code where it can, the row loop per row.
    let keep: Vec<bool> = if let Some(store) = left.try_column_store() {
        kernels::membership_bitmap(&store, &idx, &probe_cols, keep_matches)
    } else {
        let mut key_buf: Tuple = Tuple::with_capacity(probe_cols.len());
        left.iter()
            .map(|row| {
                key_buf.clear();
                key_buf.extend(probe_cols.iter().map(|&c| row[c]));
                idx.contains_key(&key_buf) == keep_matches
            })
            .collect()
    };
    if keep.iter().all(|&k| k) {
        return left.clone();
    }
    let kept = keep.iter().filter(|&&k| k).count();
    let mut out = Relation::with_capacity(left.arity(), kept);
    for (row, _) in left.iter().zip(&keep).filter(|&(_, &k)| k) {
        out.push_row(row);
    }
    if let Some(order) = left.sort_order() {
        if !out.is_empty() {
            out.assume_sort_order(order.to_vec());
        }
    }
    out
}

/// Set union of two relations of equal arity (deduplicated).
#[must_use]
pub fn union(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(left.arity(), right.arity(), "union arity mismatch");
    let mut out = left.clone();
    out.extend_from(right);
    out.deduped()
}

/// Set difference `left \ right` of two relations of equal arity.
#[must_use]
pub fn difference(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(left.arity(), right.arity(), "difference arity mismatch");
    let all: Vec<usize> = (0..left.arity()).collect();
    let on: Vec<(usize, usize)> = all.iter().map(|&c| (c, c)).collect();
    antijoin(&left.clone().deduped(), right, &on)
}

/// Set intersection of two relations of equal arity.
#[must_use]
pub fn intersection(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(left.arity(), right.arity(), "intersection arity mismatch");
    let on: Vec<(usize, usize)> = (0..left.arity()).map(|c| (c, c)).collect();
    semijoin(&left.clone().deduped(), right, &on)
}

/// Renames (reorders) columns: output column `i` is input column
/// `permutation[i]`.  Unlike [`project`], duplicates are *not* removed and
/// the permutation may repeat columns.
///
/// # Panics
///
/// Panics if a column index is out of range.
#[must_use]
pub fn reorder(relation: &Relation, permutation: &[usize]) -> Relation {
    for &c in permutation {
        assert!(c < relation.arity(), "reorder column {c} out of range");
    }
    let mut out = Relation::with_capacity(permutation.len(), relation.len());
    let mut buf: Tuple = vec![0; permutation.len()];
    for row in relation.iter() {
        for (o, &c) in permutation.iter().enumerate() {
            buf[o] = row[c];
        }
        out.push_row(&buf);
    }
    // Row order is preserved, so the longest prefix of the input's recorded
    // sort order whose columns survive into the output still holds there
    // (remapped through the permutation) — this keeps reordered inputs on
    // the sort-merge join path.
    if let Some(order) = relation.sort_order() {
        let remapped: Vec<usize> =
            order.iter().map_while(|&c| permutation.iter().position(|&p| p == c)).collect();
        if !remapped.is_empty() && !out.is_empty() {
            out.assume_sort_order(remapped);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r_edges() -> Relation {
        Relation::from_rows(2, vec![[1, 2], [2, 3], [3, 1], [2, 4]])
    }

    #[test]
    fn project_dedups() {
        let r = Relation::from_rows(2, vec![[1, 10], [1, 20], [2, 10]]);
        let p = project(&r, &[0]);
        assert_eq!(p.canonical_rows(), vec![vec![1], vec![2]]);
        let swapped = project(&r, &[1, 0]);
        assert_eq!(swapped.canonical_rows(), vec![vec![10, 1], vec![10, 2], vec![20, 1]]);
    }

    #[test]
    fn select_filters_rows() {
        let r = r_edges();
        assert_eq!(select_eq(&r, 0, 2).len(), 2);
        assert_eq!(select_eq(&r, 1, 9).len(), 0);
        assert_eq!(select_where(&r, |row| row[0] < row[1]).len(), 3);
    }

    #[test]
    fn join_matches_nested_loop_semantics() {
        // Path query: R(a,b) ⋈ S(b,c).
        let r = Relation::from_rows(2, vec![[1, 2], [2, 3]]);
        let s = Relation::from_rows(2, vec![[2, 5], [2, 6], [3, 7], [9, 9]]);
        let out = join(&r, &s, &[(1, 0)]);
        assert_eq!(out.arity(), 3);
        assert_eq!(out.canonical_rows(), vec![vec![1, 2, 5], vec![1, 2, 6], vec![2, 3, 7]]);
    }

    #[test]
    fn join_on_multiple_columns() {
        let r = Relation::from_rows(3, vec![[1, 2, 3], [1, 2, 4], [5, 6, 7]]);
        let s = Relation::from_rows(3, vec![[1, 2, 100], [5, 5, 100]]);
        let out = join(&r, &s, &[(0, 0), (1, 1)]);
        assert_eq!(out.canonical_rows(), vec![vec![1, 2, 3, 100], vec![1, 2, 4, 100]]);
    }

    #[test]
    fn join_with_duplicate_index_columns() {
        // Both pairs target right column 0: rows must satisfy both equalities.
        let r = Relation::from_rows(2, vec![[1, 1], [1, 2], [3, 3]]);
        let s = Relation::from_rows(1, vec![[1], [3]]);
        let out = join(&r, &s, &[(0, 0), (1, 0)]);
        assert_eq!(out.canonical_rows(), vec![vec![1, 1], vec![3, 3]]);
    }

    #[test]
    fn join_hits_the_cached_index_on_repeat() {
        let r = Relation::from_rows(2, vec![[1, 2], [2, 3]]);
        let s = Relation::from_rows(2, vec![[2, 5], [3, 7]]);
        let first = join(&r, &s, &[(1, 0)]);
        // After one join, one side carries a cached index; the second join
        // must produce identical output through the cached path.
        assert!(
            r.try_cached_index(&[1]).is_some() || s.try_cached_index(&[0]).is_some(),
            "a join must populate the build side's cache"
        );
        let second = join(&r, &s, &[(1, 0)]);
        assert_eq!(first.canonical_rows(), second.canonical_rows());
    }

    #[test]
    fn merge_join_path_matches_hash_join() {
        let r = Relation::from_rows(2, vec![[2, 1], [1, 5], [1, 2], [3, 9]]);
        let s = Relation::from_rows(2, vec![[5, 8], [1, 7], [2, 6], [2, 4]]);
        let expected = join(&r, &s, &[(1, 0)]).canonical_rows();
        let rs = r.sorted_by_columns(&[1, 0]);
        let ss = s.sorted_by_columns(&[0, 1]);
        let merged = join(&rs, &ss, &[(1, 0)]);
        assert_eq!(merged.canonical_rows(), expected);
    }

    #[test]
    fn merge_join_of_identity_sorted_inputs_is_sorted() {
        let mut r = Relation::from_rows(2, vec![[2, 1], [1, 2], [1, 5]]);
        let mut s = Relation::from_rows(2, vec![[1, 7], [2, 6], [5, 8]]);
        r.sort();
        s.sort();
        let out = join(&r, &s, &[(0, 0)]);
        assert_eq!(out.sort_order(), Some(&[0, 1, 2][..]));
        let mut canon = out.clone();
        canon.sort();
        assert_eq!(canon.canonical_rows(), out.canonical_rows());
    }

    #[test]
    fn cartesian_product_sizes_multiply() {
        let a = Relation::from_rows(1, vec![[1], [2], [3]]);
        let b = Relation::from_rows(1, vec![[10], [20]]);
        let p = cartesian_product(&a, &b);
        assert_eq!(p.len(), 6);
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn semijoin_and_antijoin_partition_left() {
        let l = r_edges();
        let r = Relation::from_rows(1, vec![[2], [3]]);
        let semi = semijoin(&l, &r, &[(0, 0)]);
        let anti = antijoin(&l, &r, &[(0, 0)]);
        assert_eq!(semi.len() + anti.len(), l.len());
        assert_eq!(semi.canonical_rows(), vec![vec![2, 3], vec![2, 4], vec![3, 1]]);
        assert_eq!(anti.canonical_rows(), vec![vec![1, 2]]);
    }

    #[test]
    fn unfiltered_semijoin_shares_storage() {
        let l = r_edges();
        let r = Relation::from_rows(1, vec![[1], [2], [3]]);
        let semi = semijoin(&l, &r, &[(0, 0)]);
        assert!(semi.shares_storage_with(&l), "a no-op semijoin must be an O(1) clone");
        let anti = antijoin(&l, &Relation::new(1), &[(0, 0)]);
        assert!(anti.shares_storage_with(&l), "a no-op antijoin must be an O(1) clone");
    }

    #[test]
    fn semijoin_and_antijoin_propagate_the_left_sort_order() {
        let l = Relation::from_rows(2, vec![[4, 0], [1, 2], [2, 3], [2, 4], [3, 1]])
            .sorted_by_columns(&[0, 1]);
        let r = Relation::from_rows(1, vec![[2], [3]]);
        // The filtered paths re-assemble kept rows in order and must carry
        // the recorded order through, keeping them on the merge-join path.
        let semi = semijoin(&l, &r, &[(0, 0)]);
        assert!(semi.len() < l.len(), "this case must exercise the filtered path");
        assert_eq!(semi.sort_order(), Some(&[0, 1][..]));
        let anti = antijoin(&l, &r, &[(0, 0)]);
        assert!(anti.len() < l.len());
        assert_eq!(anti.sort_order(), Some(&[0, 1][..]));
        // The unfiltered (O(1)-clone) path trivially keeps it.
        let all = semijoin(&l, &Relation::from_rows(1, vec![[1], [2], [3], [4]]), &[(0, 0)]);
        assert_eq!(all.sort_order(), Some(&[0, 1][..]));
        // A sorted, filtered semijoin output feeds the sort-merge join: the
        // result must be identical to joining the unsorted equivalent.
        let s = Relation::from_rows(2, vec![[2, 7], [3, 8]]);
        let merged = join(&semi, &s, &[(0, 0)]);
        let reference = join(&semijoin(&l.clone().deduped(), &r, &[(0, 0)]), &s, &[(0, 0)]);
        assert_eq!(merged.canonical_rows(), reference.canonical_rows());
    }

    #[test]
    fn intersection_and_difference_inherit_left_order() {
        let a = Relation::from_rows(1, vec![[3], [1], [2]]).sorted_by_columns(&[0]);
        let b = Relation::from_rows(1, vec![[3], [4]]);
        assert_eq!(intersection(&a, &b).sort_order(), Some(&[0][..]));
        assert_eq!(difference(&a, &b).sort_order(), Some(&[0][..]));
    }

    #[test]
    fn union_difference_intersection() {
        let a = Relation::from_rows(1, vec![[1], [2], [3]]);
        let b = Relation::from_rows(1, vec![[3], [4]]);
        assert_eq!(union(&a, &b).canonical_rows(), vec![vec![1], vec![2], vec![3], vec![4]]);
        assert_eq!(difference(&a, &b).canonical_rows(), vec![vec![1], vec![2]]);
        assert_eq!(intersection(&a, &b).canonical_rows(), vec![vec![3]]);
    }

    #[test]
    fn reorder_repeats_and_permutes() {
        let r = Relation::from_rows(2, vec![[1, 2]]);
        let out = reorder(&r, &[1, 0, 1]);
        assert_eq!(out.row(0), &[2, 1, 2]);
    }

    #[test]
    fn reorder_remaps_the_recorded_sort_order() {
        let r = Relation::from_rows(2, vec![[3, 1], [1, 2], [2, 2]]).sorted_by_columns(&[1, 0]);
        // Swap the columns: the order (old cols [1, 0]) becomes [0, 1].
        let swapped = reorder(&r, &[1, 0]);
        assert_eq!(swapped.sort_order(), Some(&[0, 1][..]));
        // Dropping the leading order column truncates the order to the
        // prefix that survives (here: nothing — col 1 is gone).
        let dropped = reorder(&r, &[0]);
        assert_eq!(dropped.sort_order(), None);
        // Dropping a trailing order column keeps the sorted prefix.
        let tail = reorder(&r, &[1]);
        assert_eq!(tail.sort_order(), Some(&[0][..]));
        // An unsorted input stays unsorted.
        assert_eq!(reorder(&r_edges(), &[1, 0]).sort_order(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reorder_out_of_range_column_panics() {
        let r = Relation::from_rows(2, vec![[1, 2]]);
        let _ = reorder(&r, &[0, 2]);
    }

    /// Raw rows in storage order — bit-level comparison, not set-level.
    fn raw_rows(rel: &Relation) -> Vec<Tuple> {
        rel.iter().map(<[Value]>::to_vec).collect()
    }

    #[test]
    fn par_join_is_bit_identical_to_join_at_every_thread_count() {
        let r = Relation::from_rows(2, (0..40u64).map(|i| [i % 7, i % 11]));
        let s = Relation::from_rows(2, (0..50u64).map(|i| [i % 11, i % 5]));
        let expected = raw_rows(&join(&r, &s, &[(1, 0)]));
        for threads in [1, 2, 3, 8, 64] {
            let got = raw_rows(&par_join(&r, &s, &[(1, 0)], threads));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_join_handles_empty_and_cartesian_shapes() {
        let r = Relation::from_rows(1, vec![[1], [2], [3]]);
        let empty = Relation::new(1);
        assert!(par_join(&r, &empty, &[(0, 0)], 4).is_empty());
        assert!(par_join(&empty, &r, &[(0, 0)], 4).is_empty());
        let b = Relation::from_rows(1, vec![[10], [20]]);
        let seq = raw_rows(&join(&r, &b, &[]));
        let par = raw_rows(&par_join(&r, &b, &[], 4));
        assert_eq!(par, seq);
    }

    #[test]
    fn par_join_dedups_across_shard_boundaries() {
        // Every probe row produces the same joined row: shard-local dedup
        // alone would leave one copy per shard, so the final merge must
        // dedup across shard boundaries too.
        let all_same = Relation::from_rows(2, (0..16u64).map(|_| [7, 1]));
        let s = Relation::from_rows(2, vec![[1, 5]]);
        let seq = raw_rows(&join(&all_same, &s, &[(1, 0)]));
        let par = raw_rows(&par_join(&all_same, &s, &[(1, 0)], 4));
        assert_eq!(par, seq);
        assert_eq!(par.len(), 1, "cross-shard duplicates must collapse");
    }

    #[test]
    fn project_propagates_usable_sort_order_prefix() {
        let r = Relation::from_rows(3, vec![[2, 1, 9], [1, 5, 8], [1, 2, 7]]);
        let s = r.sorted_by_columns(&[1, 0, 2]);
        // All order columns survive (reordered): the full order maps through.
        let p = project(&s, &[1, 0]);
        assert_eq!(p.sort_order(), Some(&[0, 1][..]));
        // Only the leading order column survives: the prefix maps through.
        let q = project(&s, &[1, 2]);
        assert_eq!(q.sort_order(), Some(&[0][..]));
        // The leading order column is projected away: nothing usable.
        let n = project(&s, &[0, 2]);
        assert_eq!(n.sort_order(), None);
    }

    #[test]
    fn selections_propagate_the_sort_order() {
        let r = Relation::from_rows(2, vec![[2, 1], [1, 5], [1, 2], [2, 3]]);
        let s = r.sorted_by_columns(&[0, 1]);
        assert_eq!(select_eq(&s, 0, 1).sort_order(), Some(&[0, 1][..]));
        assert_eq!(select_where(&s, |row| row[1] >= 2).sort_order(), Some(&[0, 1][..]));
        // The unsorted input stays unsorted.
        assert_eq!(select_eq(&r, 0, 1).sort_order(), None);
    }

    #[test]
    fn projected_outputs_take_the_sort_merge_path() {
        let r = Relation::from_rows(3, vec![[4, 1, 0], [3, 2, 0], [2, 1, 1], [1, 3, 1]]);
        let a = project(&r.sorted_by_columns(&[0, 1]), &[0, 1]);
        let b = project(&r.sorted_by_columns(&[1, 2]), &[1, 2]);
        // Both projections carry orders aligning with a join on their first
        // columns, so the merge path applies …
        assert!(merge_alignment(&a, &b, &[(0, 0)]).is_some());
        // … and produces the same result as the hash path on order-free
        // copies of the same rows.
        let strip = |rel: &Relation| Relation::from_rows(rel.arity(), rel.iter());
        let expected = join(&strip(&a), &strip(&b), &[(0, 0)]).canonical_rows();
        assert_eq!(join(&a, &b, &[(0, 0)]).canonical_rows(), expected);
    }

    #[test]
    fn join_is_commutative_up_to_column_order() {
        let r = Relation::from_rows(2, vec![[1, 2], [2, 3], [4, 4]]);
        let s = Relation::from_rows(2, vec![[2, 10], [4, 20]]);
        let rs = join(&r, &s, &[(1, 0)]);
        let sr = join(&s, &r, &[(0, 1)]);
        // rs columns: (r0, r1, s1); sr columns: (s0, s1, r0).
        let rs_norm = reorder(&rs, &[0, 1, 2]).canonical_rows();
        let sr_norm = reorder(&sr, &[2, 0, 1]).canonical_rows();
        assert_eq!(rs_norm, sr_norm);
    }
}
