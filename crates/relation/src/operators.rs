//! Relational operators: projection, selection, joins and set operations.
//!
//! All operators are positional: a join is specified by pairs of column
//! indices to equate, mirroring how an [`crate::Relation`] is bound to a
//! query atom (column *i* of the relation instance is the *i*-th variable
//! of the atom).  The variable-aware layer lives in `panda-core`.

use std::collections::HashSet;

use crate::index::HashIndex;
use crate::relation::{Relation, Tuple, Value};

/// Projects `relation` onto the given columns (in the given order),
/// removing duplicates.
///
/// # Panics
///
/// Panics if a column index is out of range.
#[must_use]
pub fn project(relation: &Relation, cols: &[usize]) -> Relation {
    for &c in cols {
        assert!(c < relation.arity(), "projection column {c} out of range");
    }
    let mut out = Relation::with_capacity(cols.len(), relation.len());
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(relation.len());
    for row in relation.iter() {
        let projected: Tuple = cols.iter().map(|&c| row[c]).collect();
        if seen.insert(projected.clone()) {
            out.push_row(&projected);
        }
    }
    out
}

/// Selects the rows where column `col` equals `value`.
#[must_use]
pub fn select_eq(relation: &Relation, col: usize, value: Value) -> Relation {
    assert!(col < relation.arity(), "selection column {col} out of range");
    let mut out = Relation::new(relation.arity());
    for row in relation.iter() {
        if row[col] == value {
            out.push_row(row);
        }
    }
    out
}

/// Selects the rows satisfying an arbitrary predicate.
#[must_use]
pub fn select_where<F: FnMut(&[Value]) -> bool>(relation: &Relation, mut pred: F) -> Relation {
    let mut out = Relation::new(relation.arity());
    for row in relation.iter() {
        if pred(row) {
            out.push_row(row);
        }
    }
    out
}

/// Hash-joins `left` and `right` on the column pairs `on = [(lcol, rcol)]`.
///
/// The output schema is all columns of `left` followed by the columns of
/// `right` that are **not** join columns (in their original order), i.e. the
/// natural-join convention once positional columns are bound to variables.
/// The output is deduplicated.
#[must_use]
pub fn join(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Relation {
    for &(l, r) in on {
        assert!(l < left.arity(), "left join column {l} out of range");
        assert!(r < right.arity(), "right join column {r} out of range");
    }
    let right_join_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let right_keep_cols: Vec<usize> =
        (0..right.arity()).filter(|c| !right_join_cols.contains(c)).collect();
    let out_arity = left.arity() + right_keep_cols.len();
    let mut out = Relation::new(out_arity);

    // Build on the smaller side for cache friendliness, probe with the other.
    let left_join_cols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let build_left = left.len() <= right.len();
    if build_left {
        let idx = HashIndex::build(left, &left_join_cols);
        let mut row_buf: Tuple = Vec::with_capacity(out_arity);
        for rrow in right.iter() {
            let key: Tuple = right_join_cols.iter().map(|&c| rrow[c]).collect();
            for &lrow_id in idx.probe(&key) {
                let lrow = left.row(lrow_id);
                row_buf.clear();
                row_buf.extend_from_slice(lrow);
                row_buf.extend(right_keep_cols.iter().map(|&c| rrow[c]));
                out.push_row(&row_buf);
            }
        }
    } else {
        let idx = HashIndex::build(right, &right_join_cols);
        let mut row_buf: Tuple = Vec::with_capacity(out_arity);
        for lrow in left.iter() {
            let key: Tuple = left_join_cols.iter().map(|&c| lrow[c]).collect();
            for &rrow_id in idx.probe(&key) {
                let rrow = right.row(rrow_id);
                row_buf.clear();
                row_buf.extend_from_slice(lrow);
                row_buf.extend(right_keep_cols.iter().map(|&c| rrow[c]));
                out.push_row(&row_buf);
            }
        }
    }
    out.deduped()
}

/// The Cartesian product of two relations (a join with no join columns).
#[must_use]
pub fn cartesian_product(left: &Relation, right: &Relation) -> Relation {
    join(left, right, &[])
}

/// Semijoin: the rows of `left` that have at least one matching row in
/// `right` under the column pairs `on`.
#[must_use]
pub fn semijoin(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Relation {
    let right_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let idx = HashIndex::build(right, &right_cols);
    let mut out = Relation::new(left.arity());
    for row in left.iter() {
        let key: Tuple = on.iter().map(|&(l, _)| row[l]).collect();
        if idx.contains_key(&key) {
            out.push_row(row);
        }
    }
    out
}

/// Antijoin: the rows of `left` with **no** matching row in `right`.
#[must_use]
pub fn antijoin(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Relation {
    let right_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let idx = HashIndex::build(right, &right_cols);
    let mut out = Relation::new(left.arity());
    for row in left.iter() {
        let key: Tuple = on.iter().map(|&(l, _)| row[l]).collect();
        if !idx.contains_key(&key) {
            out.push_row(row);
        }
    }
    out
}

/// Set union of two relations of equal arity (deduplicated).
#[must_use]
pub fn union(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(left.arity(), right.arity(), "union arity mismatch");
    let mut out = left.clone();
    out.extend_from(right);
    out.deduped()
}

/// Set difference `left \ right` of two relations of equal arity.
#[must_use]
pub fn difference(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(left.arity(), right.arity(), "difference arity mismatch");
    let all: Vec<usize> = (0..left.arity()).collect();
    let on: Vec<(usize, usize)> = all.iter().map(|&c| (c, c)).collect();
    antijoin(&left.clone().deduped(), right, &on)
}

/// Set intersection of two relations of equal arity.
#[must_use]
pub fn intersection(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(left.arity(), right.arity(), "intersection arity mismatch");
    let on: Vec<(usize, usize)> = (0..left.arity()).map(|c| (c, c)).collect();
    semijoin(&left.clone().deduped(), right, &on)
}

/// Renames (reorders) columns: output column `i` is input column
/// `permutation[i]`.  Unlike [`project`], duplicates are *not* removed and
/// the permutation may repeat columns.
#[must_use]
pub fn reorder(relation: &Relation, permutation: &[usize]) -> Relation {
    let mut out = Relation::with_capacity(permutation.len(), relation.len());
    let mut buf: Tuple = vec![0; permutation.len()];
    for row in relation.iter() {
        for (o, &c) in permutation.iter().enumerate() {
            buf[o] = row[c];
        }
        out.push_row(&buf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r_edges() -> Relation {
        Relation::from_rows(2, vec![[1, 2], [2, 3], [3, 1], [2, 4]])
    }

    #[test]
    fn project_dedups() {
        let r = Relation::from_rows(2, vec![[1, 10], [1, 20], [2, 10]]);
        let p = project(&r, &[0]);
        assert_eq!(p.canonical_rows(), vec![vec![1], vec![2]]);
        let swapped = project(&r, &[1, 0]);
        assert_eq!(swapped.canonical_rows(), vec![vec![10, 1], vec![10, 2], vec![20, 1]]);
    }

    #[test]
    fn select_filters_rows() {
        let r = r_edges();
        assert_eq!(select_eq(&r, 0, 2).len(), 2);
        assert_eq!(select_eq(&r, 1, 9).len(), 0);
        assert_eq!(select_where(&r, |row| row[0] < row[1]).len(), 3);
    }

    #[test]
    fn join_matches_nested_loop_semantics() {
        // Path query: R(a,b) ⋈ S(b,c).
        let r = Relation::from_rows(2, vec![[1, 2], [2, 3]]);
        let s = Relation::from_rows(2, vec![[2, 5], [2, 6], [3, 7], [9, 9]]);
        let out = join(&r, &s, &[(1, 0)]);
        assert_eq!(out.arity(), 3);
        assert_eq!(out.canonical_rows(), vec![vec![1, 2, 5], vec![1, 2, 6], vec![2, 3, 7]]);
    }

    #[test]
    fn join_on_multiple_columns() {
        let r = Relation::from_rows(3, vec![[1, 2, 3], [1, 2, 4], [5, 6, 7]]);
        let s = Relation::from_rows(3, vec![[1, 2, 100], [5, 5, 100]]);
        let out = join(&r, &s, &[(0, 0), (1, 1)]);
        assert_eq!(out.canonical_rows(), vec![vec![1, 2, 3, 100], vec![1, 2, 4, 100]]);
    }

    #[test]
    fn cartesian_product_sizes_multiply() {
        let a = Relation::from_rows(1, vec![[1], [2], [3]]);
        let b = Relation::from_rows(1, vec![[10], [20]]);
        let p = cartesian_product(&a, &b);
        assert_eq!(p.len(), 6);
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn semijoin_and_antijoin_partition_left() {
        let l = r_edges();
        let r = Relation::from_rows(1, vec![[2], [3]]);
        let semi = semijoin(&l, &r, &[(0, 0)]);
        let anti = antijoin(&l, &r, &[(0, 0)]);
        assert_eq!(semi.len() + anti.len(), l.len());
        assert_eq!(semi.canonical_rows(), vec![vec![2, 3], vec![2, 4], vec![3, 1]]);
        assert_eq!(anti.canonical_rows(), vec![vec![1, 2]]);
    }

    #[test]
    fn union_difference_intersection() {
        let a = Relation::from_rows(1, vec![[1], [2], [3]]);
        let b = Relation::from_rows(1, vec![[3], [4]]);
        assert_eq!(union(&a, &b).canonical_rows(), vec![vec![1], vec![2], vec![3], vec![4]]);
        assert_eq!(difference(&a, &b).canonical_rows(), vec![vec![1], vec![2]]);
        assert_eq!(intersection(&a, &b).canonical_rows(), vec![vec![3]]);
    }

    #[test]
    fn reorder_repeats_and_permutes() {
        let r = Relation::from_rows(2, vec![[1, 2]]);
        let out = reorder(&r, &[1, 0, 1]);
        assert_eq!(out.row(0), &[2, 1, 2]);
    }

    #[test]
    fn join_is_commutative_up_to_column_order() {
        let r = Relation::from_rows(2, vec![[1, 2], [2, 3], [4, 4]]);
        let s = Relation::from_rows(2, vec![[2, 10], [4, 20]]);
        let rs = join(&r, &s, &[(1, 0)]);
        let sr = join(&s, &r, &[(0, 1)]);
        // rs columns: (r0, r1, s1); sr columns: (s0, s1, r0).
        let rs_norm = reorder(&rs, &[0, 1, 2]).canonical_rows();
        let sr_norm = reorder(&sr, &[2, 0, 1]).canonical_rows();
        assert_eq!(rs_norm, sr_norm);
    }
}
