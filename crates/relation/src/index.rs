//! Hash indexes over relations, and the per-relation index/degree cache.
//!
//! The PANDA/subw algorithms repeatedly semijoin, join and partition the
//! *same* relations across proof-sequence steps and degree branches.  To
//! avoid rebuilding identical hash tables every time, every [`Relation`]
//! carries an `IndexCache`: a lazily populated map from canonical
//! (sorted, distinct) key-column sets to built indexes.  Because relation
//! storage is `Arc`-shared, an O(1) relation clone shares the cache too —
//! the second join on the same `(relation, key columns)` pair anywhere in
//! the engine is a lookup, not a build.  Mutating a relation detaches it
//! from the shared cache (see `Relation::invalidate_derived`).

// panda-lint: allow-file(P1) -- key columns are canonicalised and
// bounds-checked against the arity before an index is ever built.

use std::collections::HashMap;
// panda-lint: allow(D2) -- the index cache is the one sanctioned use of
// interior mutability outside the pool: it memoises *deterministic* derived
// structures, so which thread populates an entry can never change a result.
use std::sync::atomic::{AtomicBool, Ordering};
// panda-lint: allow(D2) -- same cache: Mutex guards lookup tables whose
// contents are a pure function of the relation, never of timing.
use std::sync::{Arc, Mutex, PoisonError};

use crate::column::ColumnStore;
use crate::kernels;
use crate::relation::{Relation, Tuple, Value};
use crate::stats::GroupedDegrees;

/// A hash index mapping the values of a fixed set of key columns to the row
/// indices that carry them.
///
/// The index borrows nothing from the relation; it stores owned key tuples
/// and row ids, so the relation can be mutated afterwards (at which point
/// the index is stale and should be rebuilt).  Indexes obtained through
/// [`Relation::index_for`] are cached and never stale: mutation detaches
/// the relation from its cache.
///
/// # Examples
///
/// ```
/// use panda_relation::{HashIndex, Relation};
///
/// let r = Relation::from_rows(2, vec![[1, 10], [1, 20], [2, 30]]);
/// let idx = HashIndex::build(&r, &[0]);
/// assert_eq!(idx.probe(&[1]).len(), 2);
/// assert_eq!(idx.probe(&[9]).len(), 0);
/// assert_eq!(idx.num_keys(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: HashMap<Tuple, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index on `key_cols` of `relation`.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    #[must_use]
    pub fn build(relation: &Relation, key_cols: &[usize]) -> Self {
        for &c in key_cols {
            assert!(
                c < relation.arity(),
                "index column {c} out of range for arity {}",
                relation.arity()
            );
        }
        let mut map: HashMap<Tuple, Vec<usize>> = HashMap::with_capacity(relation.len());
        for (i, row) in relation.iter().enumerate() {
            let key: Tuple = key_cols.iter().map(|&c| row[c]).collect();
            map.entry(key).or_default().push(i);
        }
        HashIndex { key_cols: key_cols.to_vec(), map }
    }

    /// Column-direct build: reads keys from a [`ColumnStore`] instead of
    /// striding over row-major tuples.  Rows are visited in the same order
    /// as [`HashIndex::build`], so for a store mirroring the same relation
    /// the resulting index is observably identical (same keys, same row
    /// ids in the same per-key order).
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    #[must_use]
    pub fn build_from_store(store: &ColumnStore, key_cols: &[usize]) -> Self {
        for &c in key_cols {
            assert!(
                c < store.num_columns(),
                "index column {c} out of range for {} columns",
                store.num_columns()
            );
        }
        let rows = store.num_rows();
        if let [col] = key_cols {
            if let Some((codes, dict)) = store.dict_column(*col) {
                // Group row ids per code first (row order preserved per
                // code), then key the map by the decoded values.
                let mut per_code: Vec<Vec<usize>> = vec![Vec::new(); dict.len()];
                for (i, &code) in codes.iter().enumerate() {
                    per_code[code as usize].push(i);
                }
                let map: HashMap<Tuple, Vec<usize>> = per_code
                    .into_iter()
                    .enumerate()
                    .filter(|(_, ids)| !ids.is_empty())
                    .map(|(code, ids)| (vec![dict[code]], ids))
                    .collect();
                return HashIndex { key_cols: key_cols.to_vec(), map };
            }
        }
        let mut map: HashMap<Tuple, Vec<usize>> = HashMap::with_capacity(rows);
        let mut key_buf: Tuple = Tuple::with_capacity(key_cols.len());
        for i in 0..rows {
            store.gather_key(i, key_cols, &mut key_buf);
            map.entry(key_buf.clone()).or_default().push(i);
        }
        HashIndex { key_cols: key_cols.to_vec(), map }
    }

    /// The columns this index is keyed on.
    #[must_use]
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row ids whose key columns equal `key` (empty slice if none).
    #[must_use]
    pub fn probe(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Whether any row carries the given key.
    #[must_use]
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }

    /// The number of distinct keys.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// The largest number of rows sharing one key — i.e. the maximum degree
    /// `deg(remaining columns | key columns)` of the indexed relation.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.map.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over `(key, row ids)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Vec<usize>)> + '_ {
        self.map.iter()
    }

    /// Extracts the key of `row` according to this index's key columns.
    #[must_use]
    pub fn key_of(&self, row: &[Value]) -> Tuple {
        self.key_cols.iter().map(|&c| row[c]).collect()
    }
}

/// An index from a group of key columns to the *distinct, sorted* values of
/// one value column — the per-level candidate structure of a generic join
/// (the candidates for the level variable given the already-bound prefix).
///
/// Built through [`Relation::value_index`] these are cached alongside hash
/// indexes, so repeated worst-case-optimal joins over a shared relation
/// (e.g. the unpartitioned atoms across PANDA branches) reuse them.
#[derive(Debug, Clone)]
pub struct ValueIndex {
    group_cols: Vec<usize>,
    value_col: usize,
    map: HashMap<Tuple, Vec<Value>>,
}

impl ValueIndex {
    /// Builds the candidate index for `value_col` grouped by `group_cols`.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    #[must_use]
    pub fn build(relation: &Relation, group_cols: &[usize], value_col: usize) -> Self {
        for &c in group_cols.iter().chain(std::iter::once(&value_col)) {
            assert!(
                c < relation.arity(),
                "value-index column {c} out of range for arity {}",
                relation.arity()
            );
        }
        let mut map: HashMap<Tuple, Vec<Value>> = HashMap::new();
        for row in relation.iter() {
            let key: Tuple = group_cols.iter().map(|&c| row[c]).collect();
            map.entry(key).or_default().push(row[value_col]);
        }
        // Deduplicate each candidate list once (sorting keeps the per-key
        // work linearithmic even for very heavy keys and enables binary
        // search at probe time).
        for values in map.values_mut() {
            values.sort_unstable();
            values.dedup();
        }
        ValueIndex { group_cols: group_cols.to_vec(), value_col, map }
    }

    /// Column-direct build from a [`ColumnStore`]: gathers group keys and
    /// values column-wise.  Candidate lists are sorted and deduplicated
    /// exactly like [`ValueIndex::build`], so the result is observably
    /// identical for a store mirroring the same relation.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    #[must_use]
    pub fn build_from_store(store: &ColumnStore, group_cols: &[usize], value_col: usize) -> Self {
        for &c in group_cols.iter().chain(std::iter::once(&value_col)) {
            assert!(
                c < store.num_columns(),
                "value-index column {c} out of range for {} columns",
                store.num_columns()
            );
        }
        let mut map: HashMap<Tuple, Vec<Value>> = HashMap::new();
        let mut key_buf: Tuple = Tuple::with_capacity(group_cols.len());
        for i in 0..store.num_rows() {
            store.gather_key(i, group_cols, &mut key_buf);
            map.entry(key_buf.clone()).or_default().push(store.value(i, value_col));
        }
        for values in map.values_mut() {
            values.sort_unstable();
            values.dedup();
        }
        ValueIndex { group_cols: group_cols.to_vec(), value_col, map }
    }

    /// The group (conditioning) columns.
    #[must_use]
    pub fn group_cols(&self) -> &[usize] {
        &self.group_cols
    }

    /// The value column the candidates are drawn from.
    #[must_use]
    pub fn value_col(&self) -> usize {
        self.value_col
    }

    /// The sorted distinct candidate values for a group key, if any row
    /// carries it.
    #[must_use]
    pub fn candidates(&self, key: &[Value]) -> Option<&Vec<Value>> {
        self.map.get(key)
    }
}

/// `true` iff the slice is strictly increasing — the canonical shape for
/// cached key-column sets.
pub(crate) fn is_canonical_cols(cols: &[usize]) -> bool {
    cols.windows(2).all(|w| w[0] < w[1])
}

/// Cache key for a [`ValueIndex`]: canonical group columns plus the value
/// column.
type ValueKey = (Vec<usize>, usize);

/// Cache key for a [`GroupedDegrees`]: canonical group and value columns.
type DegreeKey = (Vec<usize>, Vec<usize>);

/// The per-relation cache of derived structures: hash indexes and value
/// indexes keyed by canonical (sorted, distinct) column sets, and grouped
/// degree maps keyed by canonical (group, value) column pairs.
///
/// The cache lives behind the relation's storage `Arc`, so O(1) clones
/// share it; interior mutability makes population transparent to callers
/// holding `&Relation`.  Builds happen outside the lock (a racing duplicate
/// build is harmless), and a relaxed "populated" flag lets the mutation
/// path skip allocating a replacement cache when nothing was ever cached.
#[derive(Debug, Default)]
pub(crate) struct IndexCache {
    // panda-lint: allow(D2) -- memoisation only: every cached value is a
    // pure function of the relation's rows, so population order (and the
    // winner of a racing duplicate build) cannot influence any result.
    populated: AtomicBool,
    indexes: Mutex<HashMap<Vec<usize>, Arc<HashIndex>>>,
    values: Mutex<HashMap<ValueKey, Arc<ValueIndex>>>,
    degrees: Mutex<HashMap<DegreeKey, Arc<GroupedDegrees>>>,
    counts: Mutex<HashMap<Vec<usize>, usize>>,
    /// The columnar mirror of the relation's rows, when the columnar
    /// layout attached one.  Lives here so it inherits the whole
    /// copy-on-write story: shared by O(1) clones, detached on mutation.
    columns: Mutex<Option<Arc<ColumnStore>>>,
}

impl IndexCache {
    /// A cache pre-seeded with a column store — used by
    /// `Relation::partitioned` to hand shard views a zero-copy slice of
    /// the parent's store.
    pub(crate) fn with_column_store(store: ColumnStore) -> Self {
        let cache = IndexCache::default();
        *cache.columns.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(store));
        cache.mark_populated();
        cache
    }

    /// Whether any entry was ever inserted (relaxed; used only to decide if
    /// mutation needs to detach from the cache).
    pub(crate) fn is_populated(&self) -> bool {
        self.populated.load(Ordering::Relaxed)
    }

    fn mark_populated(&self) {
        self.populated.store(true, Ordering::Relaxed);
    }

    /// The cached column store, if one was attached.
    pub(crate) fn cached_column_store(&self) -> Option<Arc<ColumnStore>> {
        self.columns.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The column store for `relation`, building and caching it on first
    /// use.
    pub(crate) fn column_store(&self, relation: &Relation) -> Arc<ColumnStore> {
        if let Some(store) = self.cached_column_store() {
            return store;
        }
        let built = Arc::new(ColumnStore::from_relation(relation));
        self.mark_populated();
        let mut slot = self.columns.lock().unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(built).clone()
    }

    /// Returns the cached hash index for a canonical column set, if built.
    pub(crate) fn cached_index(&self, cols: &[usize]) -> Option<Arc<HashIndex>> {
        self.indexes.lock().unwrap_or_else(PoisonError::into_inner).get(cols).cloned()
    }

    /// Returns the hash index for a canonical column set, building and
    /// caching it on first use.
    pub(crate) fn index(&self, relation: &Relation, cols: &[usize]) -> Arc<HashIndex> {
        if let Some(idx) = self.cached_index(cols) {
            return idx;
        }
        // Column-direct build when the columnar layout attached a store —
        // observably identical to the row-major build.
        let built = match self.cached_column_store() {
            Some(store) => Arc::new(HashIndex::build_from_store(&store, cols)),
            None => Arc::new(HashIndex::build(relation, cols)),
        };
        self.mark_populated();
        self.indexes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(cols.to_vec())
            .or_insert(built)
            .clone()
    }

    /// Returns the value index for a canonical group/value column pair,
    /// building and caching it on first use.
    pub(crate) fn value_index(
        &self,
        relation: &Relation,
        group_cols: &[usize],
        value_col: usize,
    ) -> Arc<ValueIndex> {
        let key = (group_cols.to_vec(), value_col);
        if let Some(idx) =
            self.values.lock().unwrap_or_else(PoisonError::into_inner).get(&key).cloned()
        {
            return idx;
        }
        let built = match self.cached_column_store() {
            Some(store) => Arc::new(ValueIndex::build_from_store(&store, group_cols, value_col)),
            None => Arc::new(ValueIndex::build(relation, group_cols, value_col)),
        };
        self.mark_populated();
        self.values
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(built)
            .clone()
    }

    /// Returns the number of distinct values of a canonical column set,
    /// computing it transiently (borrowed row refs, nothing retained but
    /// the resulting `usize`) and caching it on first use.
    pub(crate) fn distinct_count(&self, relation: &Relation, cols: &[usize]) -> usize {
        if let Some(&n) = self.counts.lock().unwrap_or_else(PoisonError::into_inner).get(cols) {
            return n;
        }
        let n = if let Some(store) = self.cached_column_store() {
            // Column-direct count (code bitmaps / single-column sets);
            // counting is order-insensitive, so the result is identical.
            kernels::distinct_count(&store, cols)
        } else if cols.len() == relation.arity() {
            // Full-row count: hash borrowed row slices, no per-row allocation.
            let mut seen: std::collections::HashSet<&[Value]> =
                std::collections::HashSet::with_capacity(relation.len());
            relation.iter().for_each(|row| {
                seen.insert(row);
            });
            seen.len()
        } else {
            let mut seen: std::collections::HashSet<Tuple> =
                std::collections::HashSet::with_capacity(relation.len());
            for row in relation.iter() {
                seen.insert(cols.iter().map(|&c| row[c]).collect());
            }
            seen.len()
        };
        self.mark_populated();
        self.counts.lock().unwrap_or_else(PoisonError::into_inner).insert(cols.to_vec(), n);
        n
    }

    /// Returns the grouped degrees for a canonical group/value column pair,
    /// building and caching them on first use.
    pub(crate) fn grouped_degrees(
        &self,
        relation: &Relation,
        group_cols: &[usize],
        value_cols: &[usize],
    ) -> Arc<GroupedDegrees> {
        let key = (group_cols.to_vec(), value_cols.to_vec());
        if let Some(gd) =
            self.degrees.lock().unwrap_or_else(PoisonError::into_inner).get(&key).cloned()
        {
            return gd;
        }
        let built = match self.cached_column_store() {
            Some(store) => {
                Arc::new(GroupedDegrees::compute_from_store(&store, group_cols, value_cols))
            }
            None => Arc::new(GroupedDegrees::compute(relation, group_cols, value_cols)),
        };
        self.mark_populated();
        self.degrees
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_insert(built)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        let r = Relation::from_rows(3, vec![[1, 10, 100], [1, 20, 200], [2, 10, 300]]);
        let idx = HashIndex::build(&r, &[0, 1]);
        assert_eq!(idx.probe(&[1, 10]), &[0]);
        assert_eq!(idx.probe(&[1, 20]), &[1]);
        assert_eq!(idx.probe(&[2, 10]), &[2]);
        assert!(idx.probe(&[2, 20]).is_empty());
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.max_degree(), 1);
    }

    #[test]
    fn max_degree_reflects_duplicated_keys() {
        let r = Relation::from_rows(2, vec![[1, 1], [1, 2], [1, 3], [2, 4]]);
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.max_degree(), 3);
        assert_eq!(idx.num_keys(), 2);
        assert!(idx.contains_key(&[2]));
    }

    #[test]
    fn empty_key_groups_everything() {
        let r = Relation::from_rows(2, vec![[1, 1], [2, 2], [3, 3]]);
        let idx = HashIndex::build(&r, &[]);
        assert_eq!(idx.num_keys(), 1);
        assert_eq!(idx.probe(&[]).len(), 3);
        assert_eq!(idx.max_degree(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let r = Relation::new(1);
        let _ = HashIndex::build(&r, &[2]);
    }

    #[test]
    fn key_of_extracts_key_columns() {
        let r = Relation::from_rows(3, vec![[7, 8, 9]]);
        let idx = HashIndex::build(&r, &[2, 0]);
        assert_eq!(idx.key_of(&[7, 8, 9]), vec![9, 7]);
    }

    #[test]
    fn value_index_sorts_and_dedups_candidates() {
        let r = Relation::from_rows(2, vec![[1, 30], [1, 10], [1, 30], [2, 5]]);
        let idx = ValueIndex::build(&r, &[0], 1);
        assert_eq!(idx.candidates(&[1]), Some(&vec![10, 30]));
        assert_eq!(idx.candidates(&[2]), Some(&vec![5]));
        assert_eq!(idx.candidates(&[9]), None);
        assert_eq!(idx.group_cols(), &[0]);
        assert_eq!(idx.value_col(), 1);
    }

    #[test]
    fn cached_index_is_shared_between_clones() {
        let r = Relation::from_rows(2, vec![[1, 10], [2, 20]]);
        let idx1 = r.index_for(&[0]);
        let clone = r.clone();
        let idx2 = clone.index_for(&[0]);
        assert!(Arc::ptr_eq(&idx1, &idx2), "clones must share the index cache");
    }

    #[test]
    fn mutation_detaches_from_the_shared_cache() {
        let mut r = Relation::from_rows(2, vec![[1, 10], [2, 20]]);
        let original = r.clone();
        let before = r.index_for(&[0]);
        r.push_row(&[3, 30]);
        let after = r.index_for(&[0]);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.probe(&[3]).len(), 1);
        // The original clone still sees its (valid) cached index.
        assert!(Arc::ptr_eq(&before, &original.index_for(&[0])));
        assert!(original.index_for(&[0]).probe(&[3]).is_empty());
    }
}
