//! Hash indexes over relations.

use std::collections::HashMap;

use crate::relation::{Relation, Tuple, Value};

/// A hash index mapping the values of a fixed set of key columns to the row
/// indices that carry them.
///
/// The index borrows nothing from the relation; it stores owned key tuples
/// and row ids, so the relation can be mutated afterwards (at which point
/// the index is stale and should be rebuilt).
///
/// # Examples
///
/// ```
/// use panda_relation::{HashIndex, Relation};
///
/// let r = Relation::from_rows(2, vec![[1, 10], [1, 20], [2, 30]]);
/// let idx = HashIndex::build(&r, &[0]);
/// assert_eq!(idx.probe(&[1]).len(), 2);
/// assert_eq!(idx.probe(&[9]).len(), 0);
/// assert_eq!(idx.num_keys(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: HashMap<Tuple, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index on `key_cols` of `relation`.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    #[must_use]
    pub fn build(relation: &Relation, key_cols: &[usize]) -> Self {
        for &c in key_cols {
            assert!(
                c < relation.arity(),
                "index column {c} out of range for arity {}",
                relation.arity()
            );
        }
        let mut map: HashMap<Tuple, Vec<usize>> = HashMap::with_capacity(relation.len());
        for (i, row) in relation.iter().enumerate() {
            let key: Tuple = key_cols.iter().map(|&c| row[c]).collect();
            map.entry(key).or_default().push(i);
        }
        HashIndex { key_cols: key_cols.to_vec(), map }
    }

    /// The columns this index is keyed on.
    #[must_use]
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row ids whose key columns equal `key` (empty slice if none).
    #[must_use]
    pub fn probe(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Whether any row carries the given key.
    #[must_use]
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }

    /// The number of distinct keys.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// The largest number of rows sharing one key — i.e. the maximum degree
    /// `deg(remaining columns | key columns)` of the indexed relation.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.map.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over `(key, row ids)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Vec<usize>)> + '_ {
        self.map.iter()
    }

    /// Extracts the key of `row` according to this index's key columns.
    #[must_use]
    pub fn key_of(&self, row: &[Value]) -> Tuple {
        self.key_cols.iter().map(|&c| row[c]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        let r = Relation::from_rows(3, vec![[1, 10, 100], [1, 20, 200], [2, 10, 300]]);
        let idx = HashIndex::build(&r, &[0, 1]);
        assert_eq!(idx.probe(&[1, 10]), &[0]);
        assert_eq!(idx.probe(&[1, 20]), &[1]);
        assert_eq!(idx.probe(&[2, 10]), &[2]);
        assert!(idx.probe(&[2, 20]).is_empty());
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.max_degree(), 1);
    }

    #[test]
    fn max_degree_reflects_duplicated_keys() {
        let r = Relation::from_rows(2, vec![[1, 1], [1, 2], [1, 3], [2, 4]]);
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.max_degree(), 3);
        assert_eq!(idx.num_keys(), 2);
        assert!(idx.contains_key(&[2]));
    }

    #[test]
    fn empty_key_groups_everything() {
        let r = Relation::from_rows(2, vec![[1, 1], [2, 2], [3, 3]]);
        let idx = HashIndex::build(&r, &[]);
        assert_eq!(idx.num_keys(), 1);
        assert_eq!(idx.probe(&[]).len(), 3);
        assert_eq!(idx.max_degree(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let r = Relation::new(1);
        let _ = HashIndex::build(&r, &[2]);
    }

    #[test]
    fn key_of_extracts_key_columns() {
        let r = Relation::from_rows(3, vec![[7, 8, 9]]);
        let idx = HashIndex::build(&r, &[2, 0]);
        assert_eq!(idx.key_of(&[7, 8, 9]), vec![9, 7]);
    }
}
