//! Commutative semirings for FAQ-style aggregate queries (Section 9.1).
//!
//! A functional aggregate query annotates every input tuple with an element
//! of a commutative semiring `(K, ⊕, ⊗)` and asks for `⊕`-aggregates of
//! `⊗`-products over the join.  Instantiating the semiring recovers:
//!
//! * the plain conjunctive query (Boolean semiring),
//! * counting / `#CQ` (natural numbers with `+`, `×`),
//! * minimum-weight matching (tropical semiring `min`/`+`),
//! * bottleneck / fuzzy matching (`max`/`min`).
//!
//! The paper distinguishes **idempotent** semirings (where `a ⊕ a = a`),
//! for which PANDA's overlapping data partitioning is harmless, from
//! non-idempotent ones such as counting, where PANDA does not directly
//! apply (Section 9.1, open problem in Section 10).  The
//! [`Semiring::IS_IDEMPOTENT`] associated constant lets the planner check
//! this at compile time.

/// A commutative semiring `(K, ⊕, ⊗)` with identities `zero` and `one`.
pub trait Semiring: Clone + std::fmt::Debug + 'static {
    /// Element type.
    type Elem: Clone + PartialEq + std::fmt::Debug;

    /// Whether `⊕` is idempotent (`a ⊕ a = a`).  PANDA's adaptive plans are
    /// only sound over idempotent semirings because partitions may overlap.
    const IS_IDEMPOTENT: bool;

    /// The additive identity (annotation of absent tuples).
    fn zero() -> Self::Elem;
    /// The multiplicative identity.
    fn one() -> Self::Elem;
    /// The aggregate operator `⊕`.
    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// The combination operator `⊗`.
    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Returns `true` if the element equals the additive identity; such
    /// annotations can be pruned.
    fn is_zero(a: &Self::Elem) -> bool {
        *a == Self::zero()
    }
}

/// The Boolean semiring `({false,true}, ∨, ∧)`: plain CQ semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Elem = bool;
    const IS_IDEMPOTENT: bool = true;

    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn mul(a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// The counting semiring `(ℕ, +, ×)` used for `#CQ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingSemiring;

impl Semiring for CountingSemiring {
    type Elem = u64;
    const IS_IDEMPOTENT: bool = false;

    fn zero() -> u64 {
        0
    }
    fn one() -> u64 {
        1
    }
    fn add(a: &u64, b: &u64) -> u64 {
        // panda-lint: allow(P1) -- deliberate loud overflow guard: counts
        // must abort on overflow, never wrap into a wrong answer.
        a.checked_add(*b).expect("counting semiring overflow")
    }
    fn mul(a: &u64, b: &u64) -> u64 {
        // panda-lint: allow(P1) -- deliberate loud overflow guard, as above.
        a.checked_mul(*b).expect("counting semiring overflow")
    }
}

/// The tropical (min, +) semiring over `i64` with an explicit infinity,
/// used for minimum-weight pattern queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPlusSemiring;

/// "Infinity" for [`MinPlusSemiring`]; additions saturate at this value.
pub const MIN_PLUS_INFINITY: i64 = i64::MAX / 4;

impl Semiring for MinPlusSemiring {
    type Elem = i64;
    const IS_IDEMPOTENT: bool = true;

    fn zero() -> i64 {
        MIN_PLUS_INFINITY
    }
    fn one() -> i64 {
        0
    }
    fn add(a: &i64, b: &i64) -> i64 {
        (*a).min(*b)
    }
    fn mul(a: &i64, b: &i64) -> i64 {
        (*a + *b).min(MIN_PLUS_INFINITY)
    }
}

/// The (max, min) "bottleneck" semiring over `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxMinSemiring;

/// "Minus infinity" for [`MaxMinSemiring`].
pub const MAX_MIN_NEG_INFINITY: i64 = i64::MIN / 4;
/// "Plus infinity" for [`MaxMinSemiring`] (the multiplicative identity).
pub const MAX_MIN_POS_INFINITY: i64 = i64::MAX / 4;

impl Semiring for MaxMinSemiring {
    type Elem = i64;
    const IS_IDEMPOTENT: bool = true;

    fn zero() -> i64 {
        MAX_MIN_NEG_INFINITY
    }
    fn one() -> i64 {
        MAX_MIN_POS_INFINITY
    }
    fn add(a: &i64, b: &i64) -> i64 {
        (*a).max(*b)
    }
    fn mul(a: &i64, b: &i64) -> i64 {
        (*a).min(*b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_semiring_axioms<S: Semiring>(samples: &[S::Elem], expect_idempotent: bool) {
        assert_eq!(S::IS_IDEMPOTENT, expect_idempotent, "advertised idempotence flag");
        let zero = S::zero();
        let one = S::one();
        for a in samples {
            // identities
            assert_eq!(S::add(a, &zero), *a, "additive identity");
            assert_eq!(S::mul(a, &one), *a, "multiplicative identity");
            assert_eq!(S::mul(a, &zero), zero, "annihilation");
            for b in samples {
                assert_eq!(S::add(a, b), S::add(b, a), "⊕ commutativity");
                assert_eq!(S::mul(a, b), S::mul(b, a), "⊗ commutativity");
                for c in samples {
                    assert_eq!(
                        S::add(&S::add(a, b), c),
                        S::add(a, &S::add(b, c)),
                        "⊕ associativity"
                    );
                    assert_eq!(
                        S::mul(&S::mul(a, b), c),
                        S::mul(a, &S::mul(b, c)),
                        "⊗ associativity"
                    );
                    assert_eq!(
                        S::mul(a, &S::add(b, c)),
                        S::add(&S::mul(a, b), &S::mul(a, c)),
                        "distributivity"
                    );
                }
            }
            if S::IS_IDEMPOTENT {
                assert_eq!(S::add(a, a), *a, "idempotence");
            }
        }
    }

    #[test]
    fn boolean_semiring_axioms() {
        check_semiring_axioms::<BoolSemiring>(&[false, true], true);
    }

    #[test]
    fn counting_semiring_axioms() {
        check_semiring_axioms::<CountingSemiring>(&[0, 1, 2, 5, 7], false);
    }

    #[test]
    fn min_plus_semiring_axioms() {
        check_semiring_axioms::<MinPlusSemiring>(&[MIN_PLUS_INFINITY, 0, 1, 5, 100], true);
        assert_eq!(MinPlusSemiring::add(&3, &7), 3);
        assert_eq!(MinPlusSemiring::mul(&3, &7), 10);
    }

    #[test]
    fn max_min_semiring_axioms() {
        check_semiring_axioms::<MaxMinSemiring>(
            &[MAX_MIN_NEG_INFINITY, MAX_MIN_POS_INFINITY, 0, 1, 5],
            true,
        );
    }

    #[test]
    fn counting_is_not_idempotent_in_behaviour() {
        assert_ne!(CountingSemiring::add(&2, &2), 2);
    }
}
