//! In-memory relational engine for `panda-rs`.
//!
//! This crate is the data-plane substrate that every evaluation algorithm
//! in the workspace (Yannakakis, worst-case-optimal joins, static
//! tree-decomposition plans, PANDA's adaptive plans) runs on.  It provides:
//!
//! * [`Relation`] — a flat tuple store over `u64` values with positional
//!   columns,
//! * [`Database`] — a named collection of relations (one per relation
//!   symbol of a query),
//! * relational operators (projection, selection, natural join on column
//!   pairs, semijoin, antijoin, union, difference) in [`operators`],
//! * hash indexes and the shared per-relation index/degree cache in
//!   [`index`] — relation storage is `Arc`-shared and copy-on-write, so
//!   O(1) relation clones share built indexes and measured degrees across
//!   every consumer of the same data (see [`Relation::index_for`],
//!   [`Relation::value_index`] and [`Relation::grouped_degrees`]),
//! * an optional columnar mirror of each relation in [`mod@column`] — per-column
//!   `Arc`-shared buffers with dictionary encoding for low-cardinality
//!   columns, cached alongside the indexes and dispatched to vectorised
//!   operator kernels when the [`Layout::Columnar`] layout is active
//!   (outputs are bit-identical to the row-major path),
//! * degree statistics, heavy/light splitting and power-of-two degree
//!   bucketing in [`stats`] — the measurements that feed degree constraints
//!   (Section 3.2 of the paper) and PANDA's data partitioning (Section 8),
//! * commutative semirings and annotated relations in [`semiring`] and
//!   [`annotated`] for FAQ-style aggregate queries (Section 9.1).
//!
//! Values are plain `u64`s: the paper's queries range over abstract
//! domains, and dictionary-encoding strings to integers is standard
//! practice in analytic engines.  The [`Database`] type offers a small
//! helper for interning arbitrary string values when building instances
//! from external data.
//!
//! For the parallel execution layer, [`Relation::partitioned`] splits a
//! relation into zero-copy contiguous shard views over the shared storage
//! and [`Relation::concatenated`] re-assembles them in order;
//! [`operators::par_join`] uses them to evaluate a hash join's probe side
//! on a thread pool with bit-identical output.  See
//! `docs/ARCHITECTURE.md` at the workspace root for how the evaluators
//! drive this.

// Every public item in this crate must be documented; broken or missing
// docs fail CI via the `cargo doc` job (RUSTDOCFLAGS="-D warnings").
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotated;
pub mod column;
pub mod database;
pub mod index;
mod kernels;
pub mod operators;
pub mod relation;
pub mod semiring;
pub mod stats;

pub use annotated::AnnotatedRelation;
pub use column::{ColumnData, ColumnStore, Layout};
pub use database::Database;
pub use index::{HashIndex, ValueIndex};
pub use relation::{Relation, Tuple, Value};
pub use semiring::{BoolSemiring, CountingSemiring, MaxMinSemiring, MinPlusSemiring, Semiring};
pub use stats::{DegreeBucket, DegreeProfile, GroupedDegrees};
