//! Differential tests for the operator layer: every join-shaped operator is
//! checked against a naive nested-loop reference on random inputs, through
//! all three execution paths — fresh index, cached index, and sort-merge.

use panda_relation::{operators, Relation, Tuple, Value};
use proptest::prelude::*;

/// Nested-loop reference join: all columns of `left` followed by the
/// non-join columns of `right`, as a canonical (sorted, unique) row set.
fn naive_join(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Vec<Tuple> {
    let right_join_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let right_keep_cols: Vec<usize> =
        (0..right.arity()).filter(|c| !right_join_cols.contains(c)).collect();
    let mut rows = Vec::new();
    for lrow in left.iter() {
        for rrow in right.iter() {
            if on.iter().all(|&(l, r)| lrow[l] == rrow[r]) {
                let mut row: Tuple = lrow.to_vec();
                row.extend(right_keep_cols.iter().map(|&c| rrow[c]));
                rows.push(row);
            }
        }
    }
    rows.sort();
    rows.dedup();
    rows
}

fn naive_semijoin(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Vec<Tuple> {
    let mut rows: Vec<Tuple> = left
        .iter()
        .filter(|lrow| right.iter().any(|rrow| on.iter().all(|&(l, r)| lrow[l] == rrow[r])))
        .map(<[Value]>::to_vec)
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

fn naive_antijoin(left: &Relation, right: &Relation, on: &[(usize, usize)]) -> Vec<Tuple> {
    let mut rows: Vec<Tuple> = left
        .iter()
        .filter(|lrow| !right.iter().any(|rrow| on.iter().all(|&(l, r)| lrow[l] == rrow[r])))
        .map(<[Value]>::to_vec)
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

fn rel_from(arity: usize, rows: &[Vec<Value>]) -> Relation {
    Relation::from_rows(arity, rows.iter().map(Vec::as_slice))
}

/// Strategy: rows for a relation of the given arity over a small domain
/// (small domains force key collisions, the interesting case).
fn rows_strategy(arity: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..6, arity..arity + 1), 0..max_rows)
}

proptest! {
    #[test]
    fn prop_join_matches_nested_loop(
        lrows in rows_strategy(2, 40),
        rrows in rows_strategy(2, 40),
        lcol in 0usize..2,
        rcol in 0usize..2,
    ) {
        let left = rel_from(2, &lrows);
        let right = rel_from(2, &rrows);
        let on = [(lcol, rcol)];
        let expected = naive_join(&left, &right, &on);
        prop_assert_eq!(operators::join(&left, &right, &on).canonical_rows(), expected);
    }

    #[test]
    fn prop_par_join_is_bit_identical_to_join(
        lrows in rows_strategy(2, 40),
        rrows in rows_strategy(2, 40),
        lcol in 0usize..2,
        rcol in 0usize..2,
        threads in 1usize..9,
    ) {
        // Stronger than set equality: the parallel shard merge must
        // reproduce the sequential row order bit for bit.
        let left = rel_from(2, &lrows);
        let right = rel_from(2, &rrows);
        let on = [(lcol, rcol)];
        let seq: Vec<Tuple> = operators::join(&left, &right, &on).iter().map(<[Value]>::to_vec).collect();
        let par: Vec<Tuple> =
            operators::par_join(&left, &right, &on, threads).iter().map(<[Value]>::to_vec).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn prop_par_join_on_shards_matches_nested_loop(
        lrows in rows_strategy(2, 40),
        rrows in rows_strategy(2, 40),
        threads in 2usize..6,
    ) {
        let left = rel_from(2, &lrows);
        let right = rel_from(2, &rrows);
        let on = [(1, 0)];
        let expected = naive_join(&left, &right, &on);
        prop_assert_eq!(operators::par_join(&left, &right, &on, threads).canonical_rows(), expected);
    }

    #[test]
    fn prop_join_on_two_columns_matches_nested_loop(
        lrows in rows_strategy(3, 30),
        rrows in rows_strategy(2, 30),
    ) {
        let left = rel_from(3, &lrows);
        let right = rel_from(2, &rrows);
        let on = [(0, 0), (2, 1)];
        let expected = naive_join(&left, &right, &on);
        prop_assert_eq!(operators::join(&left, &right, &on).canonical_rows(), expected);
    }

    #[test]
    fn prop_join_with_empty_on_is_cartesian(
        lrows in rows_strategy(2, 15),
        rrows in rows_strategy(1, 15),
    ) {
        let left = rel_from(2, &lrows);
        let right = rel_from(1, &rrows);
        let expected = naive_join(&left, &right, &[]);
        prop_assert_eq!(operators::join(&left, &right, &[]).canonical_rows(), expected);
        prop_assert_eq!(operators::cartesian_product(&left, &right).canonical_rows(),
            naive_join(&left, &right, &[]));
    }

    #[test]
    fn prop_cached_and_fresh_index_paths_agree(
        lrows in rows_strategy(2, 30),
        rrows in rows_strategy(2, 30),
    ) {
        let left = rel_from(2, &lrows);
        let right = rel_from(2, &rrows);
        let on = [(1, 0)];
        // Fresh relations (cold cache) vs the same join repeated (warm
        // cache on the build side) vs a pre-warmed probe-side index (which
        // flips the build-side choice).
        let cold = operators::join(&left, &right, &on).canonical_rows();
        let warm = operators::join(&left, &right, &on).canonical_rows();
        prop_assert_eq!(&cold, &warm);
        let _ = left.index_for(&[1]);
        let _ = right.index_for(&[0]);
        let both_cached = operators::join(&left, &right, &on).canonical_rows();
        prop_assert_eq!(&cold, &both_cached);
    }

    #[test]
    fn prop_merge_join_agrees_with_hash_join(
        lrows in rows_strategy(2, 40),
        rrows in rows_strategy(2, 40),
        lcol in 0usize..2,
        rcol in 0usize..2,
    ) {
        let left = rel_from(2, &lrows);
        let right = rel_from(2, &rrows);
        let on = [(lcol, rcol)];
        let expected = naive_join(&left, &right, &on);
        let lsorted = left.sorted_by_columns(&[lcol, 1 - lcol]);
        let rsorted = right.sorted_by_columns(&[rcol, 1 - rcol]);
        prop_assert!(lsorted.sort_order().is_some());
        prop_assert_eq!(operators::join(&lsorted, &rsorted, &on).canonical_rows(), expected);
    }

    #[test]
    fn prop_semijoin_and_antijoin_match_nested_loop(
        lrows in rows_strategy(2, 40),
        rrows in rows_strategy(2, 40),
        lcol in 0usize..2,
        rcol in 0usize..2,
    ) {
        let left = rel_from(2, &lrows).deduped();
        let right = rel_from(2, &rrows);
        let on = [(lcol, rcol)];
        prop_assert_eq!(
            operators::semijoin(&left, &right, &on).canonical_rows(),
            naive_semijoin(&left, &right, &on)
        );
        prop_assert_eq!(
            operators::antijoin(&left, &right, &on).canonical_rows(),
            naive_antijoin(&left, &right, &on)
        );
        // Semijoin and antijoin partition the (deduplicated) left side.
        let semi = operators::semijoin(&left, &right, &on);
        let anti = operators::antijoin(&left, &right, &on);
        prop_assert_eq!(semi.len() + anti.len(), left.len());
    }

    #[test]
    fn prop_set_operations_match_set_semantics(
        lrows in rows_strategy(2, 40),
        rrows in rows_strategy(2, 40),
    ) {
        use std::collections::BTreeSet;
        let left = rel_from(2, &lrows);
        let right = rel_from(2, &rrows);
        let lset: BTreeSet<Tuple> = left.iter().map(<[Value]>::to_vec).collect();
        let rset: BTreeSet<Tuple> = right.iter().map(<[Value]>::to_vec).collect();
        let union_exp: Vec<Tuple> = lset.union(&rset).cloned().collect();
        let diff_exp: Vec<Tuple> = lset.difference(&rset).cloned().collect();
        let inter_exp: Vec<Tuple> = lset.intersection(&rset).cloned().collect();
        prop_assert_eq!(operators::union(&left, &right).canonical_rows(), union_exp);
        prop_assert_eq!(operators::difference(&left, &right).canonical_rows(), diff_exp);
        prop_assert_eq!(operators::intersection(&left, &right).canonical_rows(), inter_exp);
    }
}

/// An independent copy of `r` with a column store attached.  A plain
/// `clone()` would share the index cache — attaching a store to it would
/// turn the row-major twin columnar too and defeat the differential
/// comparison.
fn columnar(r: &Relation) -> Relation {
    let c = Relation::from_rows(r.arity(), r.iter());
    let _ = c.column_store();
    c
}

/// Rows in storage order — the bit-level comparison, stronger than the
/// canonical (set-level) one.
fn raw(rel: &Relation) -> Vec<Tuple> {
    rel.iter().map(<[Value]>::to_vec).collect()
}

proptest! {
    #[test]
    fn prop_columnar_operators_are_bit_identical(
        lrows in rows_strategy(2, 40),
        rrows in rows_strategy(2, 40),
        lcol in 0usize..2,
        rcol in 0usize..2,
        value in 0u64..6,
        threads in 1usize..6,
    ) {
        let left = rel_from(2, &lrows);
        let right = rel_from(2, &rrows);
        let (lc, rc) = (columnar(&left), columnar(&right));
        let on = [(lcol, rcol)];
        // Projection and selection through the columnar kernels.
        for cols in [&[0][..], &[1][..], &[1, 0][..]] {
            prop_assert_eq!(
                raw(&operators::project(&lc, cols)),
                raw(&operators::project(&left, cols))
            );
        }
        prop_assert_eq!(
            raw(&operators::select_eq(&lc, lcol, value)),
            raw(&operators::select_eq(&left, lcol, value))
        );
        // Join-shaped operators: cold store/index caches, then warm, then
        // the parallel engine (probe shards inherit sliced stores).
        let join_exp = raw(&operators::join(&left, &right, &on));
        prop_assert_eq!(raw(&operators::join(&lc, &rc, &on)), join_exp.clone());
        prop_assert_eq!(raw(&operators::join(&lc, &rc, &on)), join_exp.clone());
        prop_assert_eq!(
            raw(&operators::par_join(&lc, &rc, &on, threads)),
            raw(&operators::par_join(&left, &right, &on, threads))
        );
        prop_assert_eq!(
            raw(&operators::semijoin(&lc, &rc, &on)),
            raw(&operators::semijoin(&left, &right, &on))
        );
        prop_assert_eq!(
            raw(&operators::antijoin(&lc, &rc, &on)),
            raw(&operators::antijoin(&left, &right, &on))
        );
        // Mixed layouts: a columnar side joined against a row-major one.
        prop_assert_eq!(raw(&operators::join(&lc, &right, &on)), join_exp.clone());
        prop_assert_eq!(raw(&operators::join(&left, &rc, &on)), join_exp);
        // Set operations.
        prop_assert_eq!(
            raw(&operators::union(&lc, &rc)),
            raw(&operators::union(&left, &right))
        );
        prop_assert_eq!(
            raw(&operators::difference(&lc, &rc)),
            raw(&operators::difference(&left, &right))
        );
        prop_assert_eq!(
            raw(&operators::intersection(&lc, &rc)),
            raw(&operators::intersection(&left, &right))
        );
    }

    #[test]
    fn prop_columnar_statistics_and_indexes_agree(rows in rows_strategy(3, 50)) {
        let r = rel_from(3, &rows);
        let c = columnar(&r);
        prop_assert_eq!(c.distinct_count(), r.distinct_count());
        for cols in [&[0][..], &[2][..], &[0, 1][..], &[1, 2][..]] {
            prop_assert_eq!(c.distinct_count_of(cols), r.distinct_count_of(cols));
        }
        for (g, v) in [
            (&[0][..], &[1][..]),
            (&[0][..], &[1, 2][..]),
            (&[0, 1][..], &[2][..]),
            (&[0][..], &[][..]),
        ] {
            let a = c.grouped_degrees(g, v);
            let b = r.grouped_degrees(g, v);
            prop_assert_eq!(a.max_degree(), b.max_degree(), "max deg({v:?} | {g:?})");
            prop_assert_eq!(a.min_degree(), b.min_degree(), "min deg({v:?} | {g:?})");
            prop_assert_eq!(a.total(), b.total(), "total deg({v:?} | {g:?})");
            prop_assert_eq!(a.num_groups(), b.num_groups(), "groups deg({v:?} | {g:?})");
            for row in r.iter() {
                prop_assert_eq!(a.degree_of_row(row), b.degree_of_row(row));
            }
        }
        // The hash and value indexes built from the store are observably
        // identical to the row-built ones: same keys, same row ids in the
        // same per-key order, same candidate lists.
        for cols in [&[0][..], &[1][..], &[0, 2][..]] {
            let ic = c.index_for(cols);
            let ir = r.index_for(cols);
            prop_assert_eq!(ic.num_keys(), ir.num_keys());
            prop_assert_eq!(ic.max_degree(), ir.max_degree());
            for row in r.iter() {
                let key: Tuple = cols.iter().map(|&col| row[col]).collect();
                prop_assert_eq!(ic.probe(&key), ir.probe(&key));
            }
        }
        let vc = c.value_index(&[0], 2);
        let vr = r.value_index(&[0], 2);
        for row in r.iter() {
            prop_assert_eq!(vc.candidates(&[row[0]]), vr.candidates(&[row[0]]));
        }
    }

    #[test]
    fn prop_columnar_shards_match_row_major_shards(
        rows in rows_strategy(2, 60),
        parts in 1usize..7,
    ) {
        let r = rel_from(2, &rows);
        let c = columnar(&r);
        let rshards = r.partitioned(parts);
        let cshards = c.partitioned(parts);
        prop_assert_eq!(rshards.len(), cshards.len());
        for (rs, cs) in rshards.iter().zip(&cshards) {
            prop_assert_eq!(raw(rs), raw(cs));
            // Shards of a columnar parent stay columnar: either an O(1)
            // clone sharing the cache, or a zero-copy store slice.
            prop_assert!(cs.try_column_store().is_some());
        }
    }
}

#[test]
fn zero_arity_relations_through_all_operators() {
    let truthy = {
        let mut r = Relation::new(0);
        r.push_row(&[]);
        r
    };
    let falsy = Relation::new(0);
    let data = Relation::from_rows(2, vec![[1, 2], [3, 4]]);

    // Joining with the zero-arity "true" is the identity; with "false" it
    // is empty — in both argument orders, through the hash path.
    assert_eq!(operators::join(&data, &truthy, &[]).canonical_rows(), data.canonical_rows());
    assert_eq!(operators::join(&truthy, &data, &[]).len(), 2);
    assert!(operators::join(&data, &falsy, &[]).is_empty());
    assert!(operators::join(&falsy, &data, &[]).is_empty());

    // Zero-arity × zero-arity behaves like Boolean conjunction.
    assert_eq!(operators::join(&truthy, &truthy, &[]).len(), 1);
    assert!(operators::join(&truthy, &falsy, &[]).is_empty());

    // Semijoin/antijoin with an empty `on` test the other side's
    // non-emptiness.
    assert_eq!(operators::semijoin(&data, &truthy, &[]).len(), 2);
    assert!(operators::semijoin(&data, &falsy, &[]).is_empty());
    assert!(operators::antijoin(&data, &truthy, &[]).is_empty());
    assert_eq!(operators::antijoin(&data, &falsy, &[]).len(), 2);

    // Set operations on zero-arity relations.
    assert_eq!(operators::union(&truthy, &falsy,).len(), 1);
    assert_eq!(operators::intersection(&truthy, &truthy).len(), 1);
    assert!(operators::intersection(&truthy, &falsy).is_empty());
    assert!(operators::difference(&truthy, &truthy).is_empty());
    assert_eq!(operators::difference(&truthy, &falsy).len(), 1);
}

#[test]
fn projection_of_zero_columns_is_boolean() {
    let data = Relation::from_rows(2, vec![[1, 2], [3, 4]]);
    let p = operators::project(&data, &[]);
    assert_eq!(p.arity(), 0);
    assert_eq!(p.len(), 1);
    let empty = Relation::new(2);
    assert!(operators::project(&empty, &[]).is_empty());
}
