//! Diagnostics: rule codes, severities and rustc-style rendering.

use std::fmt;
use std::path::PathBuf;

/// The lint rules, one code per invariant (catalogued in `docs/LINTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hash-order leak: `HashMap`/`HashSet` iteration flowing into an
    /// ordered sink without an intervening sort.
    D1,
    /// Parallelism primitive outside the deterministic pool.
    D2,
    /// Wall-clock or randomness in a result path.
    D3,
    /// Unjustified `unwrap`/`expect`/slice-indexing in a library crate.
    P1,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    S1,
    /// Malformed `panda-lint:` directive.
    L0,
}

impl Rule {
    /// Every rule, in catalogue order.
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::P1, Rule::S1, Rule::L0];

    /// Parses a rule code as written in an allow directive.
    #[must_use]
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "P1" => Some(Rule::P1),
            "S1" => Some(Rule::S1),
            // L0 deliberately unparseable: a malformed directive can not be
            // suppressed by another directive.
            _ => None,
        }
    }

    /// The code as printed in diagnostics (`D1`, …).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::P1 => "P1",
            Rule::S1 => "S1",
            Rule::L0 => "L0",
        }
    }

    /// One-line summary for `--list-rules` and `docs/LINTS.md`.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => "HashMap/HashSet iteration must not reach an ordered sink unsorted",
            Rule::D2 => {
                "no thread/lock/atomic primitives outside vendor/rayon and panda_core::config"
            }
            Rule::D3 => "no Instant/SystemTime/rand in non-bench, non-test code",
            Rule::P1 => "unwrap/expect/slice-indexing in library crates needs a justification",
            Rule::S1 => "every crate root must declare #![forbid(unsafe_code)]",
            Rule::L0 => "panda-lint directives must be well-formed and justified",
        }
    }

    /// Whether the rule is advisory by default (promoted by `--deny-all`).
    #[must_use]
    pub fn advisory_by_default(self) -> bool {
        matches!(self, Rule::P1)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a rule violation anchored to a file and statement span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// File the violation is in (workspace-relative when produced by the
    /// workspace driver).
    pub file: PathBuf,
    /// 1-based line the offending token is on.
    pub line: usize,
    /// 1-based first line of the enclosing statement (for multi-line
    /// statements the allow directive may sit anywhere in
    /// `span_start - 1 ..= span_end`).
    pub span_start: usize,
    /// 1-based last line of the enclosing statement.
    pub span_end: usize,
    /// Human explanation of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: error[{}]: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Sorts diagnostics into the canonical reporting order (file, line, rule)
/// — the tool's own output must be deterministic.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}
