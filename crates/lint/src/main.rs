//! The `panda-lint` CLI.
//!
//! ```text
//! cargo run -p panda-lint                  # advisory mode: P1 warns
//! cargo run -p panda-lint -- --deny-all    # CI mode: every rule is an error
//! cargo run -p panda-lint -- --list-rules  # print the rule catalogue
//! cargo run -p panda-lint -- --root <dir>  # lint a different workspace
//! ```
//!
//! Exit codes: `0` clean (or advisory-only findings without `--deny-all`),
//! `1` violations, `2` usage or I/O error.

#![forbid(unsafe_code)]

use panda_lint::diagnostics::Rule;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny_all: bool,
    list_rules: bool,
    quiet: bool,
    root: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts =
        Options { deny_all: false, list_rules: false, quiet: false, root: PathBuf::from(".") };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--list-rules" => opts.list_rules = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--root" => {
                opts.root =
                    PathBuf::from(args.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--help" | "-h" => {
                println!(
                    "panda-lint: static analysis for the PANDA workspace's determinism and \
                     safety invariants\n\n\
                     USAGE: panda-lint [--deny-all] [--quiet] [--list-rules] [--root <dir>]\n\n\
                     Without --deny-all, rule P1 (panic-safety justifications) is advisory;\n\
                     CI runs with --deny-all so every rule is an error.\n\
                     Rule catalogue: docs/LINTS.md (or --list-rules)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("panda-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in Rule::ALL {
            let posture = if rule.advisory_by_default() { "advisory" } else { "deny" };
            println!("{:<3} [{posture:^8}] {}", rule.code(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }
    // When invoked through `cargo run -p panda-lint`, the working directory
    // is the workspace root; `--root` overrides for out-of-tree use.
    let diags = match panda_lint::analyze_workspace(&opts.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("panda-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut errors = 0usize;
    let mut advisories = 0usize;
    for d in &diags {
        let advisory = d.rule.advisory_by_default() && !opts.deny_all;
        if advisory {
            advisories += 1;
        } else {
            errors += 1;
        }
        if !opts.quiet {
            let sev = if advisory { "warning" } else { "error" };
            println!("{}:{}: {sev}[{}]: {}", d.file.display(), d.line, d.rule, d.message);
        }
    }
    if !opts.quiet {
        let mode = if opts.deny_all { " (--deny-all)" } else { "" };
        println!("panda-lint{mode}: {errors} error(s), {advisories} advisory finding(s)");
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
