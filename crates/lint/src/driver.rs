//! The workspace driver: member discovery, file walking and per-file
//! classification.
//!
//! Discovery reads the root `Cargo.toml`'s `[workspace] members` list with
//! a purpose-built scanner (the tool is dependency-free, so no TOML crate),
//! skips `vendor/` members wholesale, and adds the umbrella package's own
//! `src/`, `tests/` and `examples/` directories.  The walk order is sorted,
//! so diagnostics come out in the same order on every run.

use crate::diagnostics::Diagnostic;
use crate::parse::{self, FileContext, Role};
use crate::rules;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates exempt from rule P1 (instrumentation, not library surface).
const NON_LIBRARY_CRATES: [&str; 2] = ["crates/bench", "crates/workloads"];

/// Path fragments never walked: the vendored shims police themselves and
/// the lint fixtures are *deliberate* violations.
const SKIP_FRAGMENTS: [&str; 2] = ["vendor/", "tests/fixtures"];

/// Lints every workspace member under `root`; returns diagnostics sorted
/// into canonical order, with paths workspace-relative.
///
/// # Errors
///
/// Returns a message when the workspace manifest cannot be read or parsed.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let manifest = root.join("Cargo.toml");
    let text = fs::read_to_string(&manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let members = workspace_members(&text)?;
    let mut diags = Vec::new();
    let mut scanned = Vec::new();
    for member in &members {
        if member.starts_with("vendor/") {
            continue;
        }
        collect_rs_files(&root.join(member), &mut scanned);
    }
    // The umbrella package lives at the workspace root.
    for dir in ["src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut scanned);
    }
    scanned.sort();
    scanned.dedup();
    for file in &scanned {
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        let src =
            fs::read_to_string(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        analyze_source(&rel, &src, &mut diags);
    }
    crate::diagnostics::sort(&mut diags);
    Ok(diags)
}

/// Lints one file's source text, classifying it from its
/// workspace-relative path.  Exposed for the fixture tests and the CLI's
/// explicit-file mode.
pub fn analyze_source(rel: &Path, src: &str, diags: &mut Vec<Diagnostic>) {
    let p = rel.to_string_lossy().replace('\\', "/");
    if SKIP_FRAGMENTS.iter().any(|s| p.contains(s)) {
        return;
    }
    let role = parse::role_of(rel);
    let bench_crate = p.starts_with("crates/bench/");
    let library_crate =
        role == Role::Src && !NON_LIBRARY_CRATES.iter().any(|c| p.starts_with(&format!("{c}/")));
    let crate_root = p.ends_with("src/lib.rs") || p.ends_with("src/main.rs");
    let ctx = FileContext::new(
        rel.to_path_buf(),
        role,
        bench_crate,
        library_crate,
        crate_root,
        src,
        diags,
    );
    rules::check_file(&ctx, diags);
}

/// Recursively collects `.rs` files under `dir` (sorted for determinism),
/// skipping [`SKIP_FRAGMENTS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let p = path.to_string_lossy().replace('\\', "/");
        if SKIP_FRAGMENTS.iter().any(|s| p.contains(s)) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts the `members = [ "…" ]` entries from the workspace manifest.
fn workspace_members(manifest: &str) -> Result<Vec<String>, String> {
    let start = manifest
        .find("members")
        .ok_or_else(|| "no `members` key in workspace manifest".to_string())?;
    let tail = manifest.get(start..).unwrap_or_default();
    let open = tail.find('[').ok_or_else(|| "no `[` after `members`".to_string())?;
    let body = tail.get(open + 1..).unwrap_or_default();
    let close = body.find(']').ok_or_else(|| "unclosed `members` array".to_string())?;
    let list = body.get(..close).unwrap_or_default();
    let mut members = Vec::new();
    for chunk in list.split(',') {
        let entry = chunk.trim().trim_matches('"').trim();
        // Strip a trailing line comment on the entry, if any.
        let entry = entry.split("#").next().unwrap_or(entry).trim().trim_matches('"');
        if !entry.is_empty() {
            members.push(entry.to_string());
        }
    }
    Ok(members)
}
