//! D2 — no parallelism or synchronisation primitives outside the
//! deterministic pool.
//!
//! The engine's bit-identical-at-any-thread-count guarantee holds because
//! *all* parallelism is funnelled through the vendored rayon-subset pool
//! (ordered fork/join, input-ordered merges).  A stray
//! `std::thread::spawn`, channel or ad-hoc atomic counter re-introduces
//! scheduling order as an observable, so any use of those primitives must
//! either live in the two sanctioned places — `vendor/rayon` (not walked)
//! and `panda_core::config` (thread-count discovery) — or carry an
//! explicit justification that scheduling order cannot reach an output.

use crate::diagnostics::{Diagnostic, Rule};
use crate::parse::FileContext;

/// Sync primitives whose bare type name is banned.
const BANNED_TYPES: [&str; 17] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
    "mpsc",
];

/// Files exempt from D2 by policy (alongside `vendor/`, which the driver
/// never walks).
fn exempt(ctx: &FileContext) -> bool {
    let p = ctx.path.to_string_lossy().replace('\\', "/");
    p.ends_with("crates/panda-core/src/config.rs") || p.contains("vendor/")
}

/// Scans for banned primitives and `std::thread` paths.
pub fn check(ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    if exempt(ctx) {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if BANNED_TYPES.iter().any(|b| t.is_ident(b)) {
            ctx.report(
                Rule::D2,
                i,
                format!(
                    "`{}` is a scheduling-order hazard: all parallelism must go through \
                     the deterministic pool (vendor/rayon via panda::config)",
                    t.text
                ),
                diags,
            );
            continue;
        }
        // `thread::spawn`, `thread::scope`, `std::thread`, … — any
        // `thread` path segment outside the sanctioned modules.
        if t.is_ident("thread") {
            let after = toks.get(i + 1).zip(toks.get(i + 2));
            let before = i.checked_sub(2).and_then(|j| toks.get(j).zip(toks.get(j + 1)));
            let path_after = after.is_some_and(|(a, b)| a.is_punct(':') && b.is_punct(':'));
            let path_before = before.is_some_and(|(a, b)| a.is_ident("std") && b.is_punct(':'));
            if path_after || path_before {
                ctx.report(
                    Rule::D2,
                    i,
                    "`std::thread` is off-limits: spawn work on the deterministic pool \
                     (vendor/rayon) so merge order stays input-ordered"
                        .into(),
                    diags,
                );
            }
        }
    }
}
