//! S1 — every crate root must declare `#![forbid(unsafe_code)]`.
//!
//! The workspace carries zero `unsafe` today; S1 pins that state so it can
//! only be given up explicitly (deleting a `forbid` is visible in review in
//! a way that adding one `unsafe` block deep in a module is not).

use crate::diagnostics::{Diagnostic, Rule};
use crate::parse::FileContext;

/// Checks a crate-root file for the `#![forbid(unsafe_code)]` attribute.
pub fn check(ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    if !ctx.crate_root {
        return;
    }
    let toks = &ctx.tokens;
    let mut i = 0usize;
    while i + 4 < toks.len() {
        let punct = |k: usize, c: char| toks.get(i + k).is_some_and(|t| t.is_punct(c));
        let ident = |k: usize, s: &str| toks.get(i + k).is_some_and(|t| t.is_ident(s));
        if punct(0, '#') && punct(1, '!') && punct(2, '[') && ident(3, "forbid") && punct(4, '(') {
            let mut j = i + 5;
            while let Some(t) = toks.get(j) {
                if t.is_punct(')') {
                    break;
                }
                if t.is_ident("unsafe_code") {
                    return;
                }
                j += 1;
            }
        }
        i += 1;
    }
    ctx.report(
        Rule::S1,
        0,
        "crate root is missing `#![forbid(unsafe_code)]` — the workspace is unsafe-free \
         by policy and every crate must pin that"
            .into(),
        diags,
    );
}
