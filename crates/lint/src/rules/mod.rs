//! The rule registry.
//!
//! Each rule module exposes `check(&FileContext, &mut Vec<Diagnostic>)`;
//! scoping (which roles/crates a rule applies to) lives inside the rule so
//! the driver stays policy-free.  The catalogue is `docs/LINTS.md`.

pub mod d1_hash_order;
pub mod d2_parallelism;
pub mod d3_nondeterminism;
pub mod p1_panics;
pub mod s1_unsafe;

use crate::diagnostics::Diagnostic;
use crate::parse::FileContext;

/// Runs every rule over one file.
pub fn check_file(ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    d1_hash_order::check(ctx, diags);
    d2_parallelism::check(ctx, diags);
    d3_nondeterminism::check(ctx, diags);
    p1_panics::check(ctx, diags);
    s1_unsafe::check(ctx, diags);
}
