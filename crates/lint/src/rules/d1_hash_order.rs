//! D1 — hash iteration order must not reach an ordered sink.
//!
//! `HashMap`/`HashSet` iteration order is arbitrary (and, with a different
//! hasher or allocation history, different) — the moment it flows into a
//! `Vec`, a `String`, or anything else that remembers order, the output is
//! no longer a function of the input.  This is the single hazard class
//! behind most determinism regressions, and the one the engine's
//! bit-identical guarantee can least afford.
//!
//! The analysis is function-scoped and name-based:
//!
//! 1. collect every identifier the file associates with a hash container
//!    (`let m = HashMap::new()`, `m: HashMap<…>` in params and struct
//!    fields, `let m: &HashSet<…>`),
//! 2. find iterations over those names — method chains
//!    (`m.iter()`, `m.keys()`, …) and `for` loops (`for k in &m`),
//! 3. flag the iteration when its statement (or loop body) feeds an
//!    ordered sink (`collect` into `Vec`/`String`/unknown, `extend`,
//!    `push`) with no sanitiser in between — a `sort*` call, a collect
//!    into a `BTreeMap`/`BTreeSet`, or a later `target.sort*()` in the
//!    same function.
//!
//! Like every name-based analysis it is a heuristic: a hash map returned
//! by a function in *another* file and iterated here is invisible.  The
//! fixture corpus (`tests/fixtures/{pass,fail}/d1_*.rs`) pins exactly
//! what fires.

// panda-lint: allow-file(P1) -- token indices in this module all derive
// from enumerate()/matched-scan positions bounded by the token vector;
// Option-threading every lookup would bury the automaton.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::Token;
use crate::parse::{FileContext, Role};
use std::collections::BTreeSet;

/// Iterator-producing methods on hash containers.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Collect targets that do not observe iteration order.
const ORDER_INSENSITIVE_TARGETS: [&str; 4] = ["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Entry point: function-scoped hash-order analysis of library source.
pub fn check(ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    if ctx.role != Role::Src {
        return;
    }
    let toks = &ctx.tokens;
    let hash_names = hash_typed_names(toks);
    if hash_names.is_empty() {
        return;
    }
    let fns = fn_body_spans(toks);
    // Chain-form iterations: `name.iter()…`.
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_span(t.line) {
            continue;
        }
        if !hash_names.contains(t.text.as_str()) {
            continue;
        }
        let is_chain = toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && toks.get(i + 2).is_some_and(|m| ITER_METHODS.iter().any(|im| m.is_ident(im)))
            && toks.get(i + 3).is_some_and(|p| p.is_punct('('));
        if !is_chain {
            continue;
        }
        // The run is the whole statement: sinks can precede the iteration
        // in source order (`out.extend(m.keys())`).
        let stmt_start = statement_start(toks, i);
        let stmt_end = statement_end(toks, i);
        let fn_end = enclosing_fn_end(&fns, i).unwrap_or(toks.len());
        check_run(ctx, toks, i, stmt_start, stmt_end, fn_end, &t.text, diags);
    }
    // Loop-form iterations: `for pat in &name { … }` / `for pat in name.iter() { … }`.
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("for") || ctx.in_test_span(toks[i].line) {
            i += 1;
            continue;
        }
        let Some((header_end, body_end)) = for_loop_spans(toks, i) else {
            i += 1;
            continue;
        };
        // Does the header iterate a hash name directly (`in name`,
        // `in &name`, `in &mut name`)?  Chain-form headers
        // (`for k in name.keys()`) are already caught by the chain scan
        // above, whose statement run extends through the loop body.
        let mut iterated: Option<&str> = None;
        for j in i + 1..header_end {
            let t = &toks[j];
            if hash_names.contains(t.text.as_str()) {
                let direct = toks
                    .get(j.wrapping_sub(1))
                    .is_some_and(|p| p.is_ident("in") || p.is_punct('&') || p.is_ident("mut"));
                let not_chained = !toks.get(j + 1).is_some_and(|a| a.is_punct('.'));
                if direct && not_chained {
                    iterated = Some(t.text.as_str());
                    break;
                }
            }
        }
        if let Some(name) = iterated {
            let fn_end = enclosing_fn_end(&fns, i).unwrap_or(toks.len());
            check_run(ctx, toks, i, header_end + 1, body_end, fn_end, name, diags);
        }
        i = header_end + 1;
    }
}

/// Shared sink/sanitiser analysis over a token run.
///
/// `at` is the token anchoring the diagnostic, `run` is
/// `run_start..run_end` (statement tail for chains, loop body for `for`
/// loops), `fn_end` bounds the deferred-sort search.
#[allow(clippy::too_many_arguments)]
fn check_run(
    ctx: &FileContext,
    toks: &[Token],
    at: usize,
    run_start: usize,
    run_end: usize,
    fn_end: usize,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let mut sink: Option<(usize, &'static str)> = None;
    let mut sanitised = false;
    let mut j = run_start;
    while j < run_end {
        let t = &toks[j];
        if t.is_punct('.') {
            if let Some(m) = toks.get(j + 1) {
                if m.text.starts_with("sort") {
                    sanitised = true;
                } else if m.is_ident("collect") {
                    match collect_target(toks, j + 1) {
                        CollectTarget::OrderInsensitive => sanitised = true,
                        CollectTarget::Ordered | CollectTarget::Unknown => {
                            if sink.is_none() {
                                sink = Some((j + 1, "collect"));
                            }
                        }
                    }
                } else if (m.is_ident("extend") || m.is_ident("push"))
                    && toks.get(j + 2).is_some_and(|p| p.is_punct('('))
                    && sink.is_none()
                {
                    sink = Some((j + 1, if m.is_ident("extend") { "extend" } else { "push" }));
                }
            }
        }
        j += 1;
    }
    let Some((sink_idx, sink_name)) = sink else { return };
    if sanitised {
        return;
    }
    // A bare `.collect()` whose let-ascription names an order-insensitive
    // container is fine: `let m: HashMap<_, _> = other.iter().collect();`.
    if sink_name == "collect" {
        if let Some(target) = let_ascription_target(toks, at) {
            if ORDER_INSENSITIVE_TARGETS.iter().any(|t| t == &target) {
                return;
            }
        }
    }
    // Deferred sort: the sink's target is sorted later in the function.
    let target = sink_target(toks, at, sink_idx);
    if let Some(target) = target {
        let mut j = run_end;
        while j + 2 < fn_end.min(toks.len()) {
            if toks[j].is_ident(&target)
                && toks[j + 1].is_punct('.')
                && toks[j + 2].text.starts_with("sort")
            {
                return;
            }
            j += 1;
        }
    }
    ctx.report(
        Rule::D1,
        at,
        format!(
            "iteration over hash-ordered `{name}` reaches `{sink_name}` without a sort — \
             hash order is arbitrary and must not shape an output"
        ),
        diags,
    );
}

/// Where a flagged sink writes to: the let-bound name for `collect`, the
/// receiver identifier for `push`/`extend`.
fn sink_target(toks: &[Token], at: usize, sink_idx: usize) -> Option<String> {
    let m = toks.get(sink_idx)?;
    if m.is_ident("collect") {
        return let_binding_name(toks, at);
    }
    let recv = toks.get(sink_idx.checked_sub(2)?)?;
    if recv.kind == crate::lexer::TokKind::Ident {
        return Some(recv.text.clone());
    }
    None
}

/// How a `.collect` call orders its output.
enum CollectTarget {
    /// Turbofish names a hash/btree container.
    OrderInsensitive,
    /// Turbofish names `Vec`, `String`, … — order observable.
    Ordered,
    /// No turbofish; decided by the let-ascription, else conservatively
    /// treated as ordered.
    Unknown,
}

/// Inspects the turbofish of `.collect::<T>(…)` at the `collect` token.
fn collect_target(toks: &[Token], collect_idx: usize) -> CollectTarget {
    let punct = |k: usize, c: char| toks.get(collect_idx + k).is_some_and(|t| t.is_punct(c));
    if !(punct(1, ':') && punct(2, ':') && punct(3, '<')) {
        return CollectTarget::Unknown;
    }
    // The target type may be path-qualified (`std::collections::BTreeSet`):
    // follow `ident::` segments to the final type name.
    let mut j = collect_idx + 4;
    let mut last_ident: Option<&Token> = None;
    while let Some(t) = toks.get(j) {
        if t.kind == crate::lexer::TokKind::Ident {
            last_ident = Some(t);
            let path_continues = toks
                .get(j + 1)
                .zip(toks.get(j + 2))
                .is_some_and(|(a, b)| a.is_punct(':') && b.is_punct(':'));
            if !path_continues {
                break;
            }
            j += 3;
            continue;
        }
        if t.is_punct('<') || t.is_punct('>') {
            break;
        }
        j += 1;
    }
    match last_ident {
        Some(t) if ORDER_INSENSITIVE_TARGETS.iter().any(|o| t.is_ident(o)) => {
            CollectTarget::OrderInsensitive
        }
        Some(_) => CollectTarget::Ordered,
        None => CollectTarget::Unknown,
    }
}

/// The `NAME` of `let [mut] NAME [: …] = …` for the statement containing
/// token `at`, if the statement is a let-binding.
fn let_binding_name(toks: &[Token], at: usize) -> Option<String> {
    let start = statement_start(toks, at);
    let mut j = start;
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    j += 1;
    if toks.get(j)?.is_ident("mut") {
        j += 1;
    }
    let name = toks.get(j)?;
    (name.kind == crate::lexer::TokKind::Ident).then(|| name.text.clone())
}

/// The first type identifier of a let-ascription (`let x: Vec<…>` →
/// `Vec`), if the statement containing `at` has one.
fn let_ascription_target(toks: &[Token], at: usize) -> Option<String> {
    let start = statement_start(toks, at);
    if !toks.get(start)?.is_ident("let") {
        return None;
    }
    let mut j = start + 1;
    // Walk the (possibly tuple/struct) pattern up to `:` or `=`.
    let mut depth = 0isize;
    while let Some(t) = toks.get(j) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('=') {
            return None;
        } else if depth == 0 && t.is_punct(':') {
            // First identifier of the type (skipping `&`, `mut`, lifetimes).
            let mut k = j + 1;
            while let Some(t) = toks.get(k) {
                if t.kind == crate::lexer::TokKind::Ident && !t.is_ident("mut") {
                    return Some(t.text.clone());
                }
                k += 1;
            }
            return None;
        }
        j += 1;
    }
    None
}

/// Token index of the statement start (just past the previous `;`, `{` or
/// `}`), scanning backwards without depth tracking.
fn statement_start(toks: &[Token], at: usize) -> usize {
    let mut j = at;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    j
}

/// Token index just past the statement containing `at`: the next `;` at
/// closure-brace depth 0, or the `}` closing the enclosing block.
fn statement_end(toks: &[Token], at: usize) -> usize {
    let mut depth = 0isize;
    let mut j = at;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    j
}

/// `(header_end, body_end)` token indices of the `for` loop starting at
/// `for_idx`: `header_end` is the body's `{`, `body_end` its matching `}`.
fn for_loop_spans(toks: &[Token], for_idx: usize) -> Option<(usize, usize)> {
    let mut j = for_idx + 1;
    let mut paren = 0isize;
    while let Some(t) = toks.get(j) {
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('{') && paren == 0 {
            break;
        } else if t.is_punct(';') && paren == 0 {
            return None; // `for` in a type position (`impl Trait for T;`)?
        }
        j += 1;
    }
    let header_end = j;
    toks.get(header_end)?;
    let mut depth = 0isize;
    while let Some(t) = toks.get(j) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((header_end, j));
            }
        }
        j += 1;
    }
    None
}

/// Identifiers the file associates with `HashMap`/`HashSet`:
/// `let [mut] NAME = Hash…::new()` bindings and
/// `NAME: [&mut] [path::]Wrapper<…Hash…<…>>` ascriptions (params, struct
/// fields and let-ascriptions alike).
fn hash_typed_names(toks: &[Token]) -> BTreeSet<String> {
    let is_ident = |t: &Token| t.kind == crate::lexer::TokKind::Ident;
    let mut names = BTreeSet::new();
    for (k, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over path segments (`std::collections::`), wrapper
        // types (`Arc<`, `Mutex<`) and reference syntax to whatever
        // connects the type expression to a name.  Bounded, so pathological
        // token runs cannot send the walk far afield.
        let mut j = k;
        for _ in 0..16 {
            let Some(p) = j.checked_sub(1).and_then(|n| toks.get(n)) else { break };
            if p.is_punct(':') && j >= 2 && toks[j - 2].is_punct(':') {
                j -= 2; // `::`
                if j > 0 && is_ident(&toks[j - 1]) {
                    j -= 1; // the path segment before it
                }
            } else if p.is_punct('<') {
                j -= 1; // wrapper generics: `Arc<`, `Mutex<`
                if j > 0 && is_ident(&toks[j - 1]) {
                    j -= 1; // the wrapper's name
                }
            } else if p.is_punct('&')
                || p.is_ident("mut")
                || p.is_ident("dyn")
                || p.kind == crate::lexer::TokKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        let Some(conn) = j.checked_sub(1).and_then(|n| toks.get(n)) else { continue };
        // `NAME : …Hash…` — ascription (field, param or let).
        if conn.is_punct(':') && !(j >= 2 && toks[j - 2].is_punct(':')) {
            if let Some(name) = j.checked_sub(2).and_then(|n| toks.get(n)) {
                if is_ident(name) {
                    names.insert(name.text.clone());
                }
            }
            continue;
        }
        // `let [mut] NAME = …Hash…::…` — constructor binding.
        if conn.is_punct('=') {
            let name = j.checked_sub(2).and_then(|n| toks.get(n));
            let kw1 = j.checked_sub(3).and_then(|n| toks.get(n));
            let kw2 = j.checked_sub(4).and_then(|n| toks.get(n));
            let let_ok = kw1.is_some_and(|t| t.is_ident("let"))
                || (kw1.is_some_and(|t| t.is_ident("mut"))
                    && kw2.is_some_and(|t| t.is_ident("let")));
            if let_ok {
                if let Some(name) = name.filter(|t| is_ident(t)) {
                    names.insert(name.text.clone());
                }
            }
        }
    }
    names
}

/// Body spans `(body_start, body_end)` of every `fn` in the file, by
/// brace-matching from the first `{` after each `fn` keyword.
fn fn_body_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            let mut j = i + 1;
            let mut angle = 0isize;
            while let Some(t) = toks.get(j) {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if t.is_punct('{') && angle <= 0 {
                    break;
                } else if t.is_punct(';') && angle <= 0 {
                    j = usize::MAX;
                    break; // declaration without body (trait method)
                }
                j += 1;
            }
            if j == usize::MAX || j >= toks.len() {
                i += 1;
                continue;
            }
            let body_start = j;
            let mut depth = 0isize;
            while let Some(t) = toks.get(j) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        spans.push((body_start, j));
                        break;
                    }
                }
                j += 1;
            }
            i = body_start + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// End of the innermost function body containing token `i`.
fn enclosing_fn_end(fns: &[(usize, usize)], i: usize) -> Option<usize> {
    fns.iter().filter(|&&(s, e)| s <= i && i <= e).map(|&(s, e)| (e - s, e)).min().map(|(_, e)| e)
}
