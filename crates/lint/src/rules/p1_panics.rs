//! P1 — potential panics in library crates must be justified.
//!
//! `unwrap()`, `expect(…)` and slice/array indexing are fine when an
//! invariant genuinely guarantees them — and landmines when the invariant
//! lives only in the author's head.  P1 makes the claim explicit: each
//! occurrence in a library crate either carries an
//! `// panda-lint: allow(P1) -- <why it cannot panic>` annotation, sits in
//! a file whose header `allow-file(P1)` explains a file-wide invariant
//! (dense numeric kernels), or gets rewritten into `Result`/`get`.
//!
//! P1 is **advisory by default** and an error under `--deny-all` (the CI
//! mode) — see `docs/LINTS.md`.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokKind;
use crate::parse::{FileContext, Role};

/// Keywords that can directly precede a `[` without forming an index
/// expression (`let [a, b] = …`, `if let [x] = …`, `in [1, 2]`, …).
const NON_INDEX_KEYWORDS: [&str; 20] = [
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break", "continue",
    "use", "pub", "where", "dyn", "impl", "fn", "for", "while",
];

/// Scans library-crate source for unwrap/expect calls and index
/// expressions.
pub fn check(ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    if !ctx.library_crate || ctx.role != Role::Src {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_span(t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(` — exact method names only, so the
        // non-panicking `unwrap_or*` family never matches.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks.get(i - 1).is_some_and(|p| p.is_punct('.'))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let closed = toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
            if t.is_ident("unwrap") && !closed {
                continue; // `unwrap(…)` with args is not Option::unwrap.
            }
            ctx.report(
                Rule::P1,
                i,
                format!(
                    "`.{}(…)` can panic: return a `Result`, or state the invariant in an \
                     `allow(P1)` justification",
                    t.text
                ),
                diags,
            );
            continue;
        }
        // Index expressions: `expr[…]` where `expr` ends in an identifier
        // (not a keyword, not a macro name) or a closing bracket.
        if t.is_punct('[') && i > 0 {
            let Some(prev) = toks.get(i - 1) else { continue };
            let prev_is_expr_end = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.iter().any(|k| prev.is_ident(k)),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            if !prev_is_expr_end {
                continue;
            }
            // `name![…]` is a macro invocation, not indexing.
            if i >= 2 && toks.get(i - 2).is_some_and(|p| p.is_punct('!')) {
                continue;
            }
            // `x[..]` takes the full range and cannot panic.
            let full_range =
                toks.get(i + 1).zip(toks.get(i + 2)).zip(toks.get(i + 3)).is_some_and(
                    |((a, b), c)| a.is_punct('.') && b.is_punct('.') && c.is_punct(']'),
                );
            if full_range {
                continue;
            }
            ctx.report(
                Rule::P1,
                i,
                "indexing can panic: use `.get(…)`, or state the bounds invariant in an \
                 `allow(P1)` justification"
                    .into(),
                diags,
            );
        }
    }
}
