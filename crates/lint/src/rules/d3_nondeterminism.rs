//! D3 — no wall-clock or entropy sources in result paths.
//!
//! LP optima, proof sequences and join outputs are bit-reproducible
//! functions of (query, statistics, data).  `Instant::now()` feeding a
//! heuristic, or an unseeded RNG feeding anything, silently turns a
//! reproducible artifact into a flaky one.  Timing belongs in the bench
//! crate (`crates/bench`, exempt wholesale), benches, tests and examples;
//! seeded randomness in library code must carry a justification stating
//! why it is deterministic.

use crate::diagnostics::{Diagnostic, Rule};
use crate::parse::{FileContext, Role};

/// Identifiers that read the wall clock or ambient entropy.
const BANNED: [&str; 5] = ["Instant", "SystemTime", "UNIX_EPOCH", "thread_rng", "from_entropy"];

/// Scans non-bench, non-test library code for clock/entropy identifiers
/// and `rand` paths.
pub fn check(ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    if ctx.bench_crate || ctx.role != Role::Src {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_span(t.line) {
            continue;
        }
        if BANNED.iter().any(|b| t.is_ident(b)) {
            ctx.report(
                Rule::D3,
                i,
                format!(
                    "`{}` reads the clock or ambient entropy — results must be \
                     reproducible functions of (query, statistics, data); timing \
                     belongs in crates/bench",
                    t.text
                ),
                diags,
            );
            continue;
        }
        // `rand::…` paths and `use rand` imports.
        if t.is_ident("rand") {
            let path_after = toks
                .get(i + 1)
                .zip(toks.get(i + 2))
                .is_some_and(|(a, b)| a.is_punct(':') && b.is_punct(':'));
            let after_use = i > 0 && toks.get(i - 1).is_some_and(|t| t.is_ident("use"));
            if path_after || after_use {
                ctx.report(
                    Rule::D3,
                    i,
                    "`rand` in library code: randomness must not reach result paths — \
                     if the RNG is deterministically seeded, say so in an allow(D3) \
                     justification"
                        .into(),
                    diags,
                );
            }
        }
    }
}
