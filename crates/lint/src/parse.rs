//! Lightweight structure over the token stream: file roles, `#[cfg(test)]`
//! spans, function bodies and statement spans.
//!
//! This is deliberately not a Rust parser.  The rules only need four
//! structural facts about a file — what kind of target it belongs to,
//! which line ranges are test-only, where function bodies start and end,
//! and which lines form one logical statement — and all four fall out of
//! brace/semicolon matching over the lexed tokens.

use crate::allow::Allows;
use crate::lexer::{self, Lexed, Token};
use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to, derived from its
/// path inside the crate.  Rules scope themselves by role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `src/**` of a crate (including `src/bin/**`).
    Src,
    /// `tests/**` integration tests.
    Test,
    /// `benches/**` bench targets.
    Bench,
    /// `examples/**`.
    Example,
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileContext {
    /// Path as reported in diagnostics (workspace-relative).
    pub path: PathBuf,
    /// Target role (src/test/bench/example).
    pub role: Role,
    /// Whether the file belongs to `crates/bench` (instrumentation crate —
    /// exempt from D3 wholesale).
    pub bench_crate: bool,
    /// Whether the file belongs to a *library* crate for rule P1 (the
    /// engine crates; bench is instrumentation and exempt).
    pub library_crate: bool,
    /// Whether this file is a crate root (`src/lib.rs`, or `src/main.rs`
    /// of a binary-only crate) — the S1 anchor.
    pub crate_root: bool,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// Parsed allow directives.
    pub allows: Allows,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl FileContext {
    /// Builds the context for one file from its source text.
    #[must_use]
    pub fn new(
        path: PathBuf,
        role: Role,
        bench_crate: bool,
        library_crate: bool,
        crate_root: bool,
        src: &str,
        diags: &mut Vec<crate::diagnostics::Diagnostic>,
    ) -> FileContext {
        let Lexed { tokens, comments } = lexer::lex(src);
        let allows = Allows::parse(&path, &comments, diags);
        let test_spans = cfg_test_spans(&tokens);
        FileContext {
            path,
            role,
            bench_crate,
            library_crate,
            crate_root,
            tokens,
            allows,
            test_spans,
        }
    }

    /// Whether a line is inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The line span of the logical statement enclosing token `idx`.
    ///
    /// The scan runs outwards to the nearest `;`/block boundary, but sees
    /// *through* expression-internal braces — balanced groups are skipped
    /// whole, a closure-opening `{` (preceded by `|`, `=` or `=>`) does
    /// not end the backward scan, and an unmatched `}` followed by `)`,
    /// `.`, `,` or `?` does not end the forward scan.  This is what lets
    /// an allow directive above a multi-line iterator chain cover a
    /// violation inside one of its closure bodies.
    #[must_use]
    pub fn statement_span(&self, idx: usize) -> (usize, usize) {
        let toks = &self.tokens;
        // Backward to the statement start.
        let mut lo = idx;
        while let Some(j) = lo.checked_sub(1) {
            let Some(t) = toks.get(j) else { break };
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('}') {
                // Skip the whole balanced group.
                let mut depth = 1isize;
                let mut k = j;
                while depth > 0 {
                    let Some(k1) = k.checked_sub(1) else { break };
                    k = k1;
                    match toks.get(k) {
                        Some(t) if t.is_punct('}') => depth += 1,
                        Some(t) if t.is_punct('{') => depth -= 1,
                        _ => {}
                    }
                }
                if depth > 0 {
                    lo = 0;
                    break;
                }
                lo = k;
                continue;
            }
            if t.is_punct('{') {
                let before = j.checked_sub(1).and_then(|n| toks.get(n));
                let expression_internal =
                    before.is_some_and(|b| b.is_punct('|') || b.is_punct('=') || b.is_punct('>'));
                if !expression_internal {
                    break;
                }
            }
            lo = j;
        }
        // Forward to the statement end.
        let mut hi = idx;
        while let Some(t) = toks.get(hi + 1) {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                let mut depth = 1isize;
                let mut k = hi + 1;
                while depth > 0 {
                    k += 1;
                    match toks.get(k) {
                        Some(t) if t.is_punct('{') => depth += 1,
                        Some(t) if t.is_punct('}') => depth -= 1,
                        Some(_) => {}
                        None => break,
                    }
                }
                hi = k.min(toks.len().saturating_sub(1));
                continue;
            }
            if t.is_punct('}') {
                let after = toks.get(hi + 2);
                let continues = after.is_some_and(|a| {
                    a.is_punct(')') || a.is_punct('.') || a.is_punct(',') || a.is_punct('?')
                });
                if !continues {
                    break;
                }
            }
            hi += 1;
        }
        let line_at = |i: usize| self.tokens.get(i).map_or(1, |t| t.line);
        (line_at(lo), line_at(hi))
    }

    /// Emits a diagnostic for the token at `idx` unless an allow directive
    /// suppresses it.
    pub fn report(
        &self,
        rule: crate::diagnostics::Rule,
        idx: usize,
        message: String,
        diags: &mut Vec<crate::diagnostics::Diagnostic>,
    ) {
        let line = self.tokens.get(idx).map_or(1, |t| t.line);
        let (span_start, span_end) = self.statement_span(idx);
        if self.allows.suppresses(rule, span_start, span_end) {
            return;
        }
        diags.push(crate::diagnostics::Diagnostic {
            rule,
            file: self.path.clone(),
            line,
            span_start,
            span_end,
            message,
        });
    }
}

/// Finds the spans of items annotated `#[cfg(test)]`.
///
/// After the attribute's closing `]`, any further attributes are skipped,
/// then the item runs to its matching `}` (for brace-bodied items) or to
/// the first top-level `;` (for `use`/`type`/fn-declarations).
fn cfg_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start_line = tokens.get(i).map_or(1, |t| t.line);
            // Skip to the end of this attribute (the matching `]`).
            let mut j = skip_attr(tokens, i);
            // Skip any further attributes on the same item.
            while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
                j = skip_attr(tokens, j);
            }
            // Consume the item: up to the matching close of the first `{`,
            // or the first `;` at depth 0.
            let mut depth = 0isize;
            let mut end_line = start_line;
            while let Some(t) = tokens.get(j) {
                end_line = t.line;
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            spans.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Whether tokens at `i` start `#[cfg(test)]` (ignoring any additional
/// predicates such as `#[cfg(all(test, …))]` — the leading `test` ident in
/// the cfg body is what we look for).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let ident = |k: usize, s: &str| tokens.get(i + k).is_some_and(|t| t.is_ident(s));
    let punct = |k: usize, c: char| tokens.get(i + k).is_some_and(|t| t.is_punct(c));
    if !(punct(0, '#') && punct(1, '[') && ident(2, "cfg") && punct(3, '(')) {
        return false;
    }
    // Scan the cfg predicate for a bare `test` ident before the closing
    // `)`, skipping over `not(…)` groups so `#[cfg(not(test))]` — which
    // marks *non*-test code — does not match.
    let mut depth = 1isize;
    let mut j = i + 4;
    while let Some(t) = tokens.get(j) {
        if t.is_ident("not") && tokens.get(j + 1).is_some_and(|t| t.is_punct('(')) {
            let mut inner = 1isize;
            j += 2;
            while let Some(t) = tokens.get(j) {
                if t.is_punct('(') {
                    inner += 1;
                } else if t.is_punct(')') {
                    inner -= 1;
                    if inner == 0 {
                        break;
                    }
                }
                j += 1;
            }
        } else if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident("test") {
            return true;
        }
        j += 1;
    }
    false
}

/// Returns the token index just past the attribute starting at `i`
/// (which must be a `#`).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    // Optional `!` of inner attributes.
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return j;
    }
    let mut depth = 0isize;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Derives a file's [`Role`] from its path components.
#[must_use]
pub fn role_of(rel_path: &Path) -> Role {
    for comp in rel_path.components() {
        let s = comp.as_os_str().to_string_lossy();
        match s.as_ref() {
            "tests" => return Role::Test,
            "benches" => return Role::Bench,
            "examples" => return Role::Example,
            _ => {}
        }
    }
    Role::Src
}
