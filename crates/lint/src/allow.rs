//! Parsing and matching of `panda-lint:` allow directives.
//!
//! Two forms, both requiring a justification after ` -- `:
//!
//! ```text
//! // panda-lint: allow(P1) -- arity checked three lines up
//! // panda-lint: allow(D1, P1) -- more than one rule per directive is fine
//! // panda-lint: allow-file(P1) -- dense numeric kernel; see module docs
//! ```
//!
//! A **line** directive suppresses a matching diagnostic when the directive
//! sits anywhere inside the diagnostic's statement span, or on the line
//! directly above it (the conventional "annotation above the statement"
//! placement).  A justification may continue over following comment lines —
//! the directive's reach extends through its contiguous comment block, so a
//! thorough multi-line justification still counts as "directly above".  A
//! **file** directive suppresses the rule everywhere in the file.  Malformed
//! directives — unknown rule code, missing justification — are themselves
//! violations (rule `L0`), so an allowlist can never rot into silent
//! misconfiguration.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::Comment;
use std::path::Path;

/// One parsed `allow`/`allow-file` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rules the directive suppresses.
    pub rules: Vec<Rule>,
    /// 1-based line the directive comment is on.
    pub line: usize,
    /// Last line of the contiguous comment block the directive starts — a
    /// multi-line justification reaches the statement below the block.
    pub effective_line: usize,
    /// Whether this is the file-wide form.
    pub file_wide: bool,
}

/// All directives of one file, plus the `L0` diagnostics for malformed ones.
#[derive(Debug, Default)]
pub struct Allows {
    directives: Vec<AllowDirective>,
}

impl Allows {
    /// Extracts directives from a file's line comments; malformed ones are
    /// reported into `diags`.
    #[must_use]
    pub fn parse(file: &Path, comments: &[Comment], diags: &mut Vec<Diagnostic>) -> Allows {
        let comment_lines: std::collections::BTreeSet<usize> =
            comments.iter().map(|c| c.line).collect();
        let mut allows = Allows::default();
        for c in comments {
            let Some(rest) = directive_body(&c.text) else { continue };
            match parse_directive(rest) {
                Ok((rules, file_wide)) => {
                    let mut effective_line = c.line;
                    while comment_lines.contains(&(effective_line + 1)) {
                        effective_line += 1;
                    }
                    allows.directives.push(AllowDirective {
                        rules,
                        line: c.line,
                        effective_line,
                        file_wide,
                    });
                }
                Err(why) => diags.push(Diagnostic {
                    rule: Rule::L0,
                    file: file.to_path_buf(),
                    line: c.line,
                    span_start: c.line,
                    span_end: c.line,
                    message: format!("malformed panda-lint directive: {why}"),
                }),
            }
        }
        allows
    }

    /// Whether a diagnostic for `rule` spanning statement lines
    /// `span_start..=span_end` is suppressed.
    #[must_use]
    pub fn suppresses(&self, rule: Rule, span_start: usize, span_end: usize) -> bool {
        self.directives.iter().any(|d| {
            d.rules.contains(&rule)
                && (d.file_wide || (d.effective_line + 1 >= span_start && d.line <= span_end))
        })
    }
}

/// Strips the comment syntax and the `panda-lint:` marker; `None` when the
/// comment is not a directive at all.
fn directive_body(comment: &str) -> Option<&str> {
    let body = comment.trim_start_matches('/').trim_start_matches('!').trim_start();
    body.strip_prefix("panda-lint:").map(str::trim_start)
}

/// Parses `allow(RULES) -- justification` / `allow-file(RULES) -- …`.
fn parse_directive(body: &str) -> Result<(Vec<Rule>, bool), String> {
    let (file_wide, rest) = if let Some(r) = body.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "expected `allow(...)` or `allow-file(...)`, found `{}`",
            body.split_whitespace().next().unwrap_or_default()
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".into());
    };
    let Some((list, rest)) = rest.split_once(')') else {
        return Err("unclosed rule list".into());
    };
    let mut rules = Vec::new();
    for code in list.split(',') {
        let code = code.trim();
        match Rule::parse(code) {
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule code `{code}`")),
        }
    }
    if rules.is_empty() {
        return Err("empty rule list".into());
    }
    let rest = rest.trim_start();
    let justification = rest.strip_prefix("--").map(str::trim).unwrap_or_default();
    if justification.is_empty() {
        return Err("missing justification (`-- <reason>` is required)".into());
    }
    Ok((rules, file_wide))
}
