//! A hand-rolled Rust lexer: just enough token structure for the lint rules.
//!
//! The lexer's one job is to make the rules immune to the classic grep
//! failure modes: rule keywords inside string literals, comments or doc
//! comments must never fire, and `// panda-lint: …` directives must be
//! recognised wherever a line comment can appear.  It therefore handles the
//! full literal surface of the language — nested block comments, raw
//! strings with arbitrary hash counts, byte strings, char-vs-lifetime
//! disambiguation — while collapsing everything the rules do not care
//! about into three coarse token kinds (identifier, punctuation, literal).

// panda-lint: allow-file(P1) -- scanner indices are produced by the scan
// loop itself and are bounded by `bytes.len()` checks on every advance;
// threading Options through the hot loop would obscure the automaton.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `let`, `for`, …).
    Ident,
    /// A single punctuation byte (`.`, `[`, `;`, …).
    Punct,
    /// Any literal: string, raw string, byte string, char or number.
    Literal,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse classification.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Punct`] a single byte; literals keep
    /// only a short prefix — rules never inspect literal bodies).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the given punctuation byte.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the given identifier.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A `//` line comment (doc comments included), with its source line.
///
/// Comments are kept out of the token stream — rules match on tokens only —
/// but are collected separately so the allow-directive parser can see them.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line.
    pub line: usize,
    /// Comment text including the leading `//`.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Every `//` line comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens and line comments.
///
/// The lexer is lossy by design (literal bodies are truncated, block
/// comments vanish) but never mis-classifies: text inside any literal or
/// comment form can not leak into the token stream.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment { line, text: src[start..i].to_string() });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (ni, nl) = skip_string(bytes, i, line);
                out.tokens.push(Token { kind: TokKind::Literal, text: "\"…\"".into(), line });
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (ni, tok) = lex_quote(src, bytes, i, line);
                out.tokens.push(tok);
                i = ni;
            }
            b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        i += 1;
                    } else if c == b'.'
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                        && bytes.get(i.wrapping_sub(1)) != Some(&b'.')
                    {
                        i += 1; // decimal point of a float, not a range
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw/byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
                let next = bytes.get(i).copied();
                if matches!(ident, "r" | "b" | "br") && matches!(next, Some(b'"') | Some(b'#')) {
                    if let Some((ni, nl)) = skip_raw_or_byte_string(bytes, ident, i, line) {
                        out.tokens.push(Token {
                            kind: TokKind::Literal,
                            text: format!("{ident}\"…\""),
                            line,
                        });
                        i = ni;
                        line = nl;
                        continue;
                    }
                }
                if ident == "b" && next == Some(b'\'') {
                    let (ni, _) = lex_quote(src, bytes, i, line);
                    out.tokens.push(Token { kind: TokKind::Literal, text: "b'…'".into(), line });
                    i = ni;
                    continue;
                }
                out.tokens.push(Token { kind: TokKind::Ident, text: ident.to_string(), line });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// after the closing quote and the updated line number.
fn skip_string(bytes: &[u8], start: usize, mut line: usize) -> (usize, usize) {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'"' => return (i + 1, line),
            _ => i += 1,
        }
    }
    (i, line)
}

/// Skips a raw (`r`, `br`) or byte (`b`) string whose prefix identifier has
/// just been consumed and whose next byte is `"` or `#`.  Returns `None`
/// when the hashes are not followed by a quote (e.g. the expression
/// `r#foo` — a raw identifier).
fn skip_raw_or_byte_string(
    bytes: &[u8],
    prefix: &str,
    start: usize,
    mut line: usize,
) -> Option<(usize, usize)> {
    let mut i = start;
    let mut hashes = 0usize;
    if prefix != "b" {
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    if prefix == "b" {
        // Plain byte string: escapes matter, hashes do not.
        let (ni, nl) = skip_string(bytes, i, line);
        return Some((ni, nl));
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = 0usize;
            while j < hashes && bytes.get(i + 1 + j) == Some(&b'#') {
                j += 1;
            }
            if j == hashes {
                return Some((i + 1 + hashes, line));
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    Some((i, line))
}

/// Lexes a `'`-introduced token: a char literal (`'a'`, `'\n'`) or a
/// lifetime (`'a`, `'static`, `'_`).  Returns the index after the token.
fn lex_quote(src: &str, bytes: &[u8], start: usize, line: usize) -> (usize, Token) {
    let mut i = start + 1;
    if bytes.get(i) == Some(&b'\\') {
        // Escaped char literal.
        i += 2;
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1, Token { kind: TokKind::Literal, text: "'…'".into(), line });
    }
    let is_ident_char = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    if bytes.get(i).copied().is_some_and(is_ident_char) {
        if bytes.get(i + 1) == Some(&b'\'') {
            // 'x'
            return (i + 2, Token { kind: TokKind::Literal, text: "'…'".into(), line });
        }
        // Lifetime: consume identifier characters.
        let id_start = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        return (
            i,
            Token { kind: TokKind::Lifetime, text: src[start..i.max(id_start)].to_string(), line },
        );
    }
    // A bare quote (e.g. inside macro-rules oddities): emit as punctuation.
    (i, Token { kind: TokKind::Punct, text: "'".into(), line })
}
