//! `panda-lint` — workspace-native static analysis for the PANDA engine.
//!
//! The engine's two headline guarantees are *statically fragile*:
//!
//! * parallel execution is bit-identical to sequential at any thread count
//!   (every merge is input-ordered, all parallelism goes through the
//!   deterministic pool), and
//! * LP optima and dual certificates are bit-identical across engines.
//!
//! One `HashMap` iteration feeding an output, one stray
//! `std::thread::spawn`, or one wall-clock read in a result path silently
//! breaks them — tests catch the breakage only on the inputs they happen
//! to cover.  This crate encodes the invariants as source-level rules and
//! machine-checks every workspace crate:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | hash iteration order must not reach an ordered sink unsorted |
//! | `D2` | no thread/lock/atomic primitives outside the deterministic pool |
//! | `D3` | no clock/entropy reads in non-bench, non-test code |
//! | `P1` | `unwrap`/`expect`/indexing in library crates needs justification |
//! | `S1` | every crate root declares `#![forbid(unsafe_code)]` |
//! | `L0` | `panda-lint:` directives themselves must be well-formed |
//!
//! Violations are suppressed case-by-case with an explicit, justified
//! directive (`// panda-lint: allow(D1) -- <why this one is sound>`), or
//! file-wide with `allow-file`.  The full catalogue, with examples, is
//! `docs/LINTS.md`; the fixture corpus under `tests/fixtures/` pins each
//! rule's firing behaviour.
//!
//! The crate is deliberately dependency-free (hand-rolled lexer, no TOML
//! or syntax crates): it is part of the trusted base that gates everything
//! else, including the vendored shims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod diagnostics;
pub mod driver;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use diagnostics::{Diagnostic, Rule};
pub use driver::{analyze_source, analyze_workspace};

/// Lints a single source string under a given workspace-relative path —
/// the entry point the fixture tests use.
#[must_use]
pub fn analyze_str(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    driver::analyze_source(std::path::Path::new(rel_path), src, &mut diags);
    diagnostics::sort(&mut diags);
    diags
}
