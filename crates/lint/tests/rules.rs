//! Fixture corpus: every rule fires on its `fail/` fixtures and stays
//! silent on the `pass/` corpus; allow directives suppress; multi-line
//! statement spans anchor correctly.
//!
//! Fixtures are analysed under synthetic workspace paths so the fixture
//! directory itself (excluded from real walks) never matters:
//! `crates/demo/src/lib.rs` for crate-root rules, `…/src/util.rs` for the
//! rest.

#![forbid(unsafe_code)]

use panda_lint::{analyze_str, Rule};
use std::path::Path;

/// Reads a fixture file from `tests/fixtures/`.
fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Lines (1-based) on which `rule` fired for the given fixture analysed
/// under `as_path`.
fn lines_for(rule: Rule, as_path: &str, rel: &str) -> Vec<usize> {
    analyze_str(as_path, &fixture(rel))
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

// ---------------------------------------------------------------- D1 ----

#[test]
fn d1_fires_on_iter_collect() {
    let lines = lines_for(Rule::D1, "crates/demo/src/util.rs", "fail/d1_iter_collect.rs");
    assert_eq!(lines, vec![5, 9, 15], "keys().collect, iter().collect::<Vec>, extend");
}

#[test]
fn d1_fires_on_for_loop_push() {
    let lines = lines_for(Rule::D1, "crates/demo/src/util.rs", "fail/d1_for_push.rs");
    assert_eq!(lines, vec![7, 16], "one hit per unsorted loop");
}

#[test]
fn d1_multiline_statement_has_full_span() {
    let diags = analyze_str("crates/demo/src/util.rs", &fixture("fail/d1_multiline.rs"));
    let d1: Vec<_> = diags.iter().filter(|d| d.rule == Rule::D1).collect();
    assert_eq!(d1.len(), 1, "exactly one finding for the chained statement");
    let d = d1[0];
    assert_eq!(d.line, 6, "anchored at the iterated name");
    assert!(d.span_start <= 6 && d.span_end >= 10, "span covers the whole chain: {d:?}");
}

#[test]
fn d1_silent_on_sanitised_corpus() {
    assert_eq!(lines_for(Rule::D1, "crates/demo/src/util.rs", "pass/d1_sanitised.rs"), vec![]);
}

#[test]
fn d1_fires_in_columnar_dictionary_code() {
    // The column-store idiom: dictionaries and per-code sets are
    // hash-ordered; kernels that let them reach ordered outputs leak
    // nondeterminism into what must be bit-identical row order.
    let lines = lines_for(Rule::D1, "crates/demo/src/util.rs", "fail/d1_columnar_dict.rs");
    assert_eq!(lines, vec![6, 11, 17], "dict collect, code-set extend, per-code for loop");
}

#[test]
fn columnar_kernel_idiom_lints_clean() {
    // The flip side: sorted dictionaries, turbofish collects into
    // order-insensitive maps, and justified gather indexing all pass.
    let diags = analyze_str("crates/demo/src/util.rs", &fixture("pass/columnar_kernel_clean.rs"));
    assert!(diags.is_empty(), "columnar kernel idiom must lint clean: {diags:?}");
}

#[test]
fn d1_fires_on_hash_ordered_cache_eviction() {
    // The plan-cache hazard: eviction order derived from iterating the
    // cache's key map is seed-dependent, so identical runs could evict
    // different plans and report diverging hit/miss reason codes.  This
    // pins why `plan_cache.rs` keeps its entries in a Vec and picks
    // victims by recency tick.
    let lines = lines_for(Rule::D1, "crates/demo/src/util.rs", "fail/d1_cache_eviction.rs");
    assert_eq!(lines, vec![18, 24], "keys().collect eviction order, for-loop eviction queue");
}

#[test]
fn d1_silent_on_tick_ordered_eviction() {
    // The deterministic counterpart: min-by-tick victim selection and a
    // sorted key listing never expose hash order.
    let diags =
        analyze_str("crates/demo/src/util.rs", &fixture("pass/d1_cache_eviction_sorted.rs"));
    assert!(diags.is_empty(), "tick-ordered eviction must lint clean: {diags:?}");
}

// ---------------------------------------------------------------- D2 ----

#[test]
fn d2_fires_on_each_primitive() {
    let lines = lines_for(Rule::D2, "crates/demo/src/util.rs", "fail/d2_primitives.rs");
    assert_eq!(lines, vec![2, 3, 6, 10, 11], "atomic, mutex, spawn, and both fields");
}

#[test]
fn d2_exempts_the_config_module() {
    // The same source analysed under the sanctioned path is clean.
    let src = fixture("fail/d2_primitives.rs");
    let diags = analyze_str("crates/panda-core/src/config.rs", &src);
    assert!(diags.iter().all(|d| d.rule != Rule::D2), "config.rs is D2-exempt by policy");
}

#[test]
fn d2_accepts_the_justified_server_idiom() {
    // The serving layer's exact shape — atomic cancel flag, mutex/condvar
    // bounded queue, reader thread — lints clean because every primitive
    // carries a scheduling justification.
    let diags = analyze_str("crates/server/src/serve.rs", &fixture("pass/d2_server_session.rs"));
    assert!(diags.is_empty(), "justified server idiom must lint clean: {diags:?}");
}

#[test]
fn d2_directives_in_the_server_idiom_are_load_bearing() {
    // Stripping the justifications must re-fire D2 on every primitive:
    // the pass fixture is clean because of the directives, not because
    // the rule misses the serving idiom.
    let stripped: String = fixture("pass/d2_server_session.rs")
        .lines()
        .filter(|l| !l.contains("panda-lint:"))
        .collect::<Vec<_>>()
        .join("\n");
    let d2: Vec<_> = analyze_str("crates/server/src/serve.rs", &stripped)
        .into_iter()
        .filter(|d| d.rule == Rule::D2)
        .collect();
    assert!(d2.len() >= 5, "imports, both struct fields and the spawn must all fire: {d2:?}");
}

// ---------------------------------------------------------------- D3 ----

#[test]
fn d3_fires_on_clock_and_rand() {
    let lines = lines_for(Rule::D3, "crates/demo/src/util.rs", "fail/d3_clock_and_rand.rs");
    assert_eq!(lines, vec![2, 5, 10], "use Instant, Instant::now, rand::");
}

#[test]
fn d3_silent_on_pivot_count_budgets() {
    // The LP solver's budget loops (`while pivots < budget`) count units
    // of work deterministically — nothing for D3 to flag.  This pins the
    // shape used by `panda-lp`'s `PivotBudget` so a future D3 extension
    // cannot accidentally outlaw the budget subsystem.
    let diags = analyze_str("crates/demo/src/util.rs", &fixture("pass/d3_pivot_budget.rs"));
    assert!(
        diags.iter().all(|d| d.rule != Rule::D3),
        "pivot-count budgets must not trip D3: {diags:?}"
    );
}

#[test]
fn d3_fires_on_a_wall_clock_request_timeout() {
    // The serving-layer hazard: an Instant-based request deadline makes
    // the abort point wall-clock-dependent, so identical scripts could
    // produce different transcripts.  Cancellation must stay counter-based
    // (CancelToken polled at pivot counters) — D3 fires on both clock
    // touches in the unjustified timeout.
    let lines = lines_for(Rule::D3, "crates/server/src/session.rs", "fail/d3_server_instant.rs");
    assert_eq!(lines, vec![6, 9], "use Instant, Instant::now");
}

#[test]
fn d3_fires_on_wall_clock_budgets_in_library_code() {
    // The flip side: a budget implemented as an `Instant` deadline is
    // still a clock read, and library code must not carry it no matter
    // what it is called.
    let lines = lines_for(Rule::D3, "crates/demo/src/util.rs", "fail/d3_instant_budget.rs");
    assert_eq!(lines, vec![4, 7], "use Instant, Instant::now");
}

#[test]
fn d3_exempts_bench_tests_and_examples() {
    let src = fixture("fail/d3_clock_and_rand.rs");
    for path in [
        "crates/bench/src/lib.rs",
        "crates/demo/tests/t.rs",
        "examples/quickstart.rs",
        "crates/demo/benches/b.rs",
    ] {
        let diags = analyze_str(path, &src);
        assert!(
            diags.iter().all(|d| d.rule != Rule::D3),
            "{path} must be D3-exempt, got {diags:?}"
        );
    }
}

// ---------------------------------------------------------------- P1 ----

#[test]
fn p1_fires_on_unwrap_expect_indexing() {
    let lines = lines_for(Rule::P1, "crates/demo/src/util.rs", "fail/p1_panics.rs");
    assert_eq!(lines, vec![3, 4, 5, 12], "unwrap, expect, index, multi-line index");
}

#[test]
fn p1_fires_in_columnar_kernel_code() {
    let lines = lines_for(Rule::P1, "crates/demo/src/util.rs", "fail/p1_columnar_kernel.rs");
    assert_eq!(lines, vec![4, 5, 9, 10], "code index, dict index, unwrap, expect");
}

#[test]
fn p1_multiline_span_covers_the_chain() {
    let diags = analyze_str("crates/demo/src/util.rs", &fixture("fail/p1_panics.rs"));
    let mid = diags.iter().find(|d| d.rule == Rule::P1 && d.line == 12).expect("mid-chain hit");
    assert!(mid.span_start <= 10 && mid.span_end >= 14, "span is the whole statement: {mid:?}");
}

#[test]
fn p1_exempt_in_non_library_crates() {
    let src = fixture("fail/p1_panics.rs");
    for path in ["crates/bench/src/lib.rs", "crates/workloads/src/util.rs"] {
        let diags = analyze_str(path, &src);
        assert!(diags.iter().all(|d| d.rule != Rule::P1), "{path} is not a library crate");
    }
}

// ---------------------------------------------------------------- S1 ----

#[test]
fn s1_fires_on_missing_forbid() {
    let lines = lines_for(Rule::S1, "crates/demo/src/lib.rs", "fail/s1_missing_forbid.rs");
    assert_eq!(lines.len(), 1, "crate root without forbid(unsafe_code)");
}

#[test]
fn s1_only_checks_crate_roots() {
    let src = fixture("fail/s1_missing_forbid.rs");
    let diags = analyze_str("crates/demo/src/util.rs", &src);
    assert!(diags.iter().all(|d| d.rule != Rule::S1));
}

#[test]
fn s1_satisfied_by_the_attribute() {
    let diags = analyze_str("crates/demo/src/lib.rs", &fixture("pass/clean_library.rs"));
    assert!(diags.iter().all(|d| d.rule != Rule::S1));
}

// ---------------------------------------------------------------- L0 ----

#[test]
fn l0_fires_on_malformed_directives() {
    let lines = lines_for(Rule::L0, "crates/demo/src/lib.rs", "fail/l0_bad_directives.rs");
    assert_eq!(lines, vec![4, 9, 12], "missing justification, unknown rule, empty list");
}

// ------------------------------------------------------ suppression ----

#[test]
fn allow_directives_suppress_line_trailing_and_multiline() {
    let diags = analyze_str("crates/demo/src/util.rs", &fixture("pass/allow_suppression.rs"));
    assert!(diags.is_empty(), "all violations are justified: {diags:?}");
}

#[test]
fn allow_file_suppresses_the_whole_file() {
    let diags = analyze_str("crates/demo/src/util.rs", &fixture("pass/allow_file_wide.rs"));
    assert!(diags.is_empty(), "file-wide allow covers the dense kernel: {diags:?}");
}

#[test]
fn allow_without_directive_still_fires() {
    // Sanity: the pass corpus minus its directives is NOT clean — strip
    // them and the violations resurface.
    let stripped: String = fixture("pass/allow_suppression.rs")
        .lines()
        .filter(|l| !l.contains("panda-lint:"))
        .collect::<Vec<_>>()
        .join("\n");
    let diags = analyze_str("crates/demo/src/util.rs", &stripped);
    assert!(
        diags.iter().any(|d| d.rule == Rule::P1) && diags.iter().any(|d| d.rule == Rule::D1),
        "directives were load-bearing: {diags:?}"
    );
}

// ----------------------------------------------------------- corpus ----

#[test]
fn every_fail_fixture_fires_and_every_pass_fixture_is_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for (sub, want_clean) in [("pass", true), ("fail", false)] {
        let mut entries: Vec<_> = std::fs::read_dir(dir.join(sub))
            .expect("fixture dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        assert!(!entries.is_empty(), "fixture corpus must not be empty");
        for path in entries {
            let src = std::fs::read_to_string(&path).expect("fixture readable");
            let as_path =
                if path.file_name().is_some_and(|n| n.to_string_lossy().starts_with("s1_")) {
                    "crates/demo/src/lib.rs"
                } else {
                    "crates/demo/src/util.rs"
                };
            let diags = analyze_str(as_path, &src);
            if want_clean {
                assert!(diags.is_empty(), "{} must lint clean, got {diags:?}", path.display());
            } else {
                assert!(!diags.is_empty(), "{} must produce findings", path.display());
            }
        }
    }
}

#[test]
fn rule_catalogue_is_stable() {
    // The rule set is part of the tool's contract with docs/LINTS.md.
    let codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
    assert_eq!(codes, ["D1", "D2", "D3", "P1", "S1", "L0"]);
    assert!(Rule::P1.advisory_by_default());
    assert!(!Rule::D1.advisory_by_default());
}

#[test]
fn fail_fixtures_cover_every_rule() {
    // Acceptance criterion: each rule has at least one failing fixture.
    let mut covered = Vec::new();
    for rel in [
        "fail/d1_iter_collect.rs",
        "fail/d2_primitives.rs",
        "fail/d3_clock_and_rand.rs",
        "fail/p1_panics.rs",
        "fail/s1_missing_forbid.rs",
        "fail/l0_bad_directives.rs",
    ] {
        let as_path =
            if rel.contains("s1_") { "crates/demo/src/lib.rs" } else { "crates/demo/src/util.rs" };
        covered.extend(rules_fired_at(as_path, rel));
    }
    for rule in Rule::ALL {
        assert!(covered.contains(&rule), "no failing fixture covers {rule}");
    }
}

/// Like [`rules_fired`] but with an explicit path.
fn rules_fired_at(as_path: &str, rel: &str) -> Vec<Rule> {
    analyze_str(as_path, &fixture(rel)).into_iter().map(|d| d.rule).collect()
}
