//! Malformed `panda-lint:` directives — each is an L0 violation.
#![forbid(unsafe_code)]

// panda-lint: allow(P1)
pub fn missing_justification(v: &[u64]) -> u64 {
    v[0]
}

// panda-lint: allow(XX) -- no such rule code
pub fn unknown_rule() {}

// panda-lint: allow() -- empty rule list
pub fn empty_list() {}
