// P1 must fire on unjustified panics in columnar kernel code: direct
// code/column indexing and unwraps on dictionary lookups.
pub fn gather(codes: &[u32], dict: &[u64], row: usize) -> u64 {
    let code = codes[row]; // line 4: P1 (code indexing)
    dict[code as usize] // line 5: P1 (dictionary indexing)
}

pub fn dict_code_of(dict: &[u64], value: u64) -> u32 {
    let slot = dict.binary_search(&value).unwrap(); // line 9: P1 (unwrap)
    u32::try_from(slot).expect("dictionary fits in u32") // line 10: P1 (expect)
}
