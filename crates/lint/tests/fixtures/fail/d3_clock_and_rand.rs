// D3 must fire on clock reads and rand paths in library code.
use std::time::Instant; // line 2: D3 (Instant)

pub fn timed() -> u64 {
    let t = Instant::now(); // line 5: D3 (Instant)
    t.elapsed().as_nanos() as u64
}

pub fn random() -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42); // line 10: D3 (rand::)
    rng.gen()
}
