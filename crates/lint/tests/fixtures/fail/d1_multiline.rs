// D1 must fire once on a statement spanning several lines, anchored at the
// iterated name, with the span covering the whole statement.
use std::collections::HashMap;

pub fn multiline(m: &HashMap<u64, u64>) -> Vec<u64> {
    let out: Vec<u64> = m
        .keys()
        .copied()
        .filter(|k| k % 2 == 0)
        .collect();
    out
}
