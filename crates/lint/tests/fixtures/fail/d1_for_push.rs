// D1 must fire: a for-loop over a hash container pushing into a Vec, with
// no later sort of the target in the same function.
use std::collections::{HashMap, HashSet};

pub fn loop_push(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, _) in m {
        // line 7: D1 anchors on the `for`
        out.push(*k);
    }
    out
}

pub fn loop_push_ref(s: &HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for k in s {
        out.push(*k);
    }
    out
}
