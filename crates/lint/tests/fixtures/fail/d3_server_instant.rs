// A wall-clock request timeout in the serving layer: exactly what the
// cooperative CancelToken exists to avoid.  D3 must fire on the clock
// reads even though they are dressed up as "server hygiene" — a timed-out
// request aborts at a wall-clock-dependent point, so reruns of the same
// script would produce different transcripts.
use std::time::Instant; // line 6: D3 (use Instant)

pub fn handle_with_deadline(lines: &[String], millis: u128) -> usize {
    let started = Instant::now(); // line 9: D3 (Instant::now)
    let mut handled = 0;
    for line in lines {
        if started.elapsed().as_millis() > millis {
            break; // nondeterministic abort point
        }
        handled += line.len();
    }
    handled
}
