// P1 must fire on unjustified unwrap/expect/indexing in library code.
pub fn panics(v: &[u64], m: Option<u64>) -> u64 {
    let a = m.unwrap(); // line 3: P1 (unwrap)
    let b = v.first().copied().expect("non-empty"); // line 4: P1 (expect)
    let c = v[0]; // line 5: P1 (indexing)
    a + b + c
}

pub fn multiline_index(rows: &[Vec<u64>]) -> u64 {
    rows.iter()
        .map(|row| {
            row[0] // line 11: P1 — mid-statement, span covers 10..13
        })
        .sum()
}
