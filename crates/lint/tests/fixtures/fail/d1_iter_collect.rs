// D1 must fire: HashMap iteration collected into an order-observing Vec.
use std::collections::HashMap;

pub fn leak_order(m: &HashMap<u64, u64>) -> Vec<u64> {
    m.keys().copied().collect() // line 5: D1
}

pub fn leak_order_turbofish(m: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>() // line 9: D1
}

pub fn leak_order_set() -> Vec<u64> {
    let s: std::collections::HashSet<u64> = [1, 2, 3].into_iter().collect();
    let mut out = Vec::new();
    out.extend(s.iter().copied()); // line 15: D1 (s.iter() feeds extend)
    out
}
