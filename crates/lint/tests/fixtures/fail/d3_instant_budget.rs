// A wall-clock "budget" in library code: exactly the nondeterminism the
// pivot-count budget exists to avoid.  D3 must fire on every clock read
// even when it is dressed up as a resource budget.
use std::time::Instant; // line 4: D3 (Instant)

pub fn optimize_with_deadline(millis: u64) -> u64 {
    let start = Instant::now(); // line 7: D3 (Instant)
    let mut pivots = 0u64;
    while start.elapsed().as_millis() < millis as u128 {
        pivots += 1;
    }
    pivots
}
