// D1 must fire: a plan cache that derives its eviction order from
// hash-map iteration.  Whichever key such a cache evicts depends on
// HashMap's per-process seed, so two identical runs can evict different
// plans and diverge in their hit/miss reason codes.
use std::collections::HashMap;

pub struct CachedPlan {
    pub tick: u64,
}

pub struct PlanCache {
    pub entries: HashMap<u64, CachedPlan>,
}

impl PlanCache {
    /// Picks a victim by walking the hash map in storage order.
    pub fn eviction_order(&self) -> Vec<u64> {
        self.entries.keys().copied().collect() // line 18: D1
    }

    /// Same leak via an explicit loop feeding a push.
    pub fn eviction_queue(&self) -> Vec<u64> {
        let mut order = Vec::new();
        for key in self.entries.keys() { // line 24: D1 (anchored at the header)
            order.push(*key);
        }
        order
    }
}
