// D2 must fire on every ad-hoc parallelism/synchronisation primitive.
use std::sync::atomic::AtomicUsize; // line 2: D2 (AtomicUsize)
use std::sync::Mutex; // line 3: D2 (Mutex)

pub fn spawn_something() {
    let _handle = std::thread::spawn(|| 42); // line 6: D2 (std::thread)
}

pub struct Guarded {
    inner: Mutex<u64>, // line 10: D2 (Mutex)
    count: AtomicUsize, // line 11: D2 (AtomicUsize)
}
