//! A crate root without `#![forbid(unsafe_code)]` — S1 must fire.

pub fn fine() -> u64 {
    42
}
