// D1 must fire in columnar dictionary code: hash-ordered code sets and
// dictionaries leaking into order-observing kernel outputs.
use std::collections::{HashMap, HashSet};

pub fn dict_in_hash_order(dict: &HashMap<u64, u32>) -> Vec<u64> {
    dict.keys().copied().collect() // line 6: D1 (dictionary in hash order)
}

pub fn seen_codes_unsorted(seen: &HashSet<u32>) -> Vec<u32> {
    let mut codes = Vec::new();
    codes.extend(seen.iter().copied()); // line 11: D1 (code set feeds extend)
    codes
}

pub fn rows_per_code(groups: &HashMap<u32, Vec<usize>>) -> Vec<usize> {
    let mut row_ids = Vec::new();
    for (_code, ids) in groups {
        // line 17: D1 anchors on the `for` — shard order would depend on
        // the hash of the dictionary code.
        row_ids.extend(ids.iter().copied());
    }
    row_ids
}
