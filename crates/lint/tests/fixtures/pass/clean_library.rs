//! A well-behaved library file: no rule may fire.
#![forbid(unsafe_code)]
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc; // Arc is fine: sharing is not scheduling

/// Orderly use of hash maps: lookups, order-insensitive folds, BTree
/// round-trips.
pub fn summarise(m: &HashMap<u64, u64>) -> Option<u64> {
    let as_tree: BTreeMap<u64, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();
    let shared = Arc::new(as_tree);
    shared.get(&0).copied()
}

/// Safe accessors only.
pub fn safe_access(v: &[u64]) -> u64 {
    v.first().copied().unwrap_or_default() + v.get(1).copied().unwrap_or(0)
}
