// A deterministic pivot-count budget loop, the shape the LP solver's
// budgeted entry points use: counting units of work is NOT a clock, and
// D3 must stay silent on it.

pub struct PivotBudget {
    limit: u64,
    used: u64,
}

impl PivotBudget {
    pub fn consume(&mut self) -> bool {
        if self.used >= self.limit {
            return false;
        }
        self.used += 1;
        true
    }
}

pub fn optimize(budget: &mut PivotBudget) -> u64 {
    let mut pivots = 0u64;
    while pivots < budget.limit {
        if !budget.consume() {
            break;
        }
        pivots += 1;
    }
    pivots
}
