//! Every violation here carries a justified allow directive — the file
//! must lint clean under every rule.
#![forbid(unsafe_code)]
use std::collections::HashMap;

pub fn annotated(v: &[u64], m: &HashMap<u64, u64>) -> u64 {
    // panda-lint: allow(P1) -- `v` is non-empty: checked by the caller's arity guard
    let first = v[0];
    let count = m.len() as u64; // no iteration — nothing for D1 here
    // panda-lint: allow(D1) -- feeds a commutative sum, order cannot show
    let total: u64 = m.values().copied().collect::<Vec<_>>().iter().sum();
    first + count + total
}

pub fn trailing_same_line(v: &[u64]) -> u64 {
    v[1] // panda-lint: allow(P1) -- length asserted at construction
}

pub fn multiline_statement(rows: &[Vec<u64>]) -> u64 {
    // panda-lint: allow(P1) -- every row has arity >= 1 by RowSet invariant
    rows.iter()
        .map(|row| {
            row[0]
        })
        .sum()
}

// panda-lint: allow(D2) -- doc example only; never spawned in library paths
pub fn sanctioned_primitive_mention(f: fn() -> std::thread::JoinHandle<()>) {
    let _ = f;
}

pub fn long_justification(v: &[u64]) -> u64 {
    // panda-lint: allow(P1) -- a justification thorough enough to need a
    // second comment line still reaches the statement below its block
    v[2]
}
