//! The columnar kernel idiom lints clean: dictionary code paths sort or
//! collect into order-insensitive sinks before anything ordered observes
//! them, and the hot gather loops justify their bounds-checked indexing.
use std::collections::{HashMap, HashSet};

/// The stats-kernel shape: hash-ordered per-code sets collect straight
/// into an order-insensitive map (the turbofish names the sink).
pub fn degrees_by_code(per_code: &[HashSet<u64>]) -> HashMap<u32, usize> {
    per_code
        .iter()
        .enumerate()
        .filter(|(_, set)| !set.is_empty())
        .map(|(code, set)| (code as u32, set.len()))
        .collect::<HashMap<u32, usize>>()
}

/// The dictionary-build shape: values leave hash order through an
/// explicit canonical sort before any code is assigned.
pub fn build_dict(values: &HashSet<u64>) -> Vec<u64> {
    let mut dict: Vec<u64> = values.iter().copied().collect();
    dict.sort_unstable(); // canonical dictionary order
    dict
}

/// Order-insensitive consumers of code sets need no sort at all.
pub fn distinct_codes(seen: &HashSet<u32>) -> usize {
    seen.len()
}

pub fn gather(codes: &[u32], dict: &[u64], row: usize) -> u64 {
    // panda-lint: allow(P1) -- `row` is bounded by the store's row count
    // and every code indexes `dict` by construction of the column store
    dict[codes[row] as usize]
}

pub fn gather_rows(codes: &[u32], dict: &[u64], rows: &[usize]) -> Vec<u64> {
    // panda-lint: allow(P1) -- row ids come from the store's own index
    rows.iter()
        .map(|&row| {
            dict[codes[row] as usize]
        })
        .collect()
}
