//! A file-wide allow: the header directive suppresses P1 everywhere in
//! this file, so the dense indexing below lints clean.
#![forbid(unsafe_code)]

// panda-lint: allow-file(P1) -- dense kernel fixture: indices are loop
// bounds over `n`, in range by construction.

pub fn dense(a: &[u64], b: &[u64], n: usize) -> u64 {
    let mut acc = 0;
    for i in 0..n {
        acc += a[i] * b[n - 1 - i];
    }
    acc
}
