// D1 must stay silent: the deterministic counterpart of the eviction
// fixture.  The victim is chosen by the minimum recency tick — a value
// comparison over the entries, never their hash order — and the only
// collected key list is sorted before anything observes it.
use std::collections::HashMap;

pub struct CachedPlan {
    pub tick: u64,
}

pub struct PlanCache {
    pub entries: HashMap<u64, CachedPlan>,
}

impl PlanCache {
    /// LRU victim: unique ticks make the minimum well-defined, so the
    /// choice is independent of iteration order.
    pub fn victim(&self) -> Option<u64> {
        self.entries.iter().min_by_key(|(_, plan)| plan.tick).map(|(key, _)| *key)
    }

    /// Diagnostic key listing, canonicalised before it leaves.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}
