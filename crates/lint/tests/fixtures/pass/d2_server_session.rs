//! The serving layer's concurrency idiom, fully justified: a one-way
//! atomic cancel flag, a mutex/condvar bounded hand-off queue and one
//! reader thread per connection.  Every primitive carries a scheduling
//! justification, so the file must lint clean under D2 (and every other
//! rule).  This pins the exact shape `crates/server/src/serve.rs` uses.
#![forbid(unsafe_code)]

use std::collections::VecDeque;
// panda-lint: allow(D2) -- one-way cancel flag: a request observes it at
// deterministic pivot counters; flipping it can only abort, never reorder
use std::sync::atomic::{AtomicBool, Ordering};
// panda-lint: allow(D2) -- bounded FIFO hand-off between reader and
// worker: scheduling delays responses but never reorders them
use std::sync::{Condvar, Mutex};

pub struct CancelFlag {
    // panda-lint: allow(D2) -- the flag is set-once; readers poll at
    // deterministic counters, so no ordering-dependent behaviour escapes
    fired: AtomicBool,
}

impl CancelFlag {
    pub fn fire(&self) {
        self.fired.store(true, Ordering::Release);
    }

    pub fn is_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

pub struct BoundedQueue {
    // panda-lint: allow(D2) -- the queue is drained by a single worker in
    // arrival order; the lock protects capacity accounting only
    jobs: Mutex<VecDeque<String>>,
    // panda-lint: allow(D2) -- wakeups only unblock a full/empty wait;
    // they carry no data and cannot affect response bytes
    ready: Condvar,
}

impl BoundedQueue {
    pub fn push(&self, job: String) {
        if let Ok(mut jobs) = self.jobs.lock() {
            jobs.push_back(job);
            self.ready.notify_all();
        }
    }
}

pub fn spawn_reader(queue: &'static BoundedQueue) {
    // panda-lint: allow(D2) -- one reader thread per connection; requests
    // are executed strictly in arrival order by a single worker
    let handle = std::thread::spawn(move || queue.push(String::new()));
    drop(handle);
}
