// D1 must stay silent: every hash iteration here is sanitised before (or
// after) it reaches an ordered sink, or never reaches one at all.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn sorted_after_collect(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut v: Vec<u64> = m.keys().copied().collect();
    v.sort_unstable(); // deferred sort of the collect target
    v
}

pub fn collect_into_btree(m: &HashMap<u64, u64>) -> BTreeMap<u64, u64> {
    // The let-ascription names an order-insensitive container.
    let tree: BTreeMap<u64, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();
    tree
}

pub fn collect_via_turbofish(m: &HashMap<u64, u64>) -> Vec<u64> {
    // BTreeSet collect re-establishes a canonical order before the Vec.
    m.keys().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect()
}

pub fn loop_push_then_sort(s: &HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for k in s {
        out.push(*k);
    }
    out.sort_unstable(); // sort after the loop, same function
    out
}

pub fn order_insensitive_consumers(m: &HashMap<u64, u64>) -> (usize, u64) {
    let n = m.keys().count();
    let max = m.values().copied().max().unwrap_or(0);
    (n, max)
}

pub fn rebuild_hash(m: &HashMap<u64, u64>) -> HashMap<u64, u64> {
    let doubled: HashMap<u64, u64> = m.iter().map(|(k, v)| (*k, v * 2)).collect();
    doubled
}
