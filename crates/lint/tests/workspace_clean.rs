//! The acceptance gate: linting the workspace that contains the linter
//! must produce **zero** findings — errors *and* advisories — so the
//! `--deny-all` CI job is guaranteed to pass at HEAD.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = panda_lint::analyze_workspace(&root).expect("workspace walk succeeds");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "expected a clean workspace, found {} finding(s):\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
