//! Tree decompositions: validity, free-connexity and enumeration.
//!
//! A tree decomposition (TD) of a CQ is specified by its set of *bags*
//! (Section 3.4): the bags must form an acyclic hypergraph and every atom
//! must be contained in some bag.  A TD is *free-connex* if adding an extra
//! hyperedge over the free variables keeps the bag hypergraph acyclic; the
//! set `TD(Q)` used by the paper consists of the free-connex TDs only,
//! because those are the ones whose final Yannakakis pass runs in
//! `O(max_B |Q_B| + |Q(F)|)`.
//!
//! [`TreeDecomposition::enumerate`] produces the non-redundant free-connex
//! TDs of a query by running every variable-elimination order, removing
//! contained bags, and pruning dominated decompositions.  For the paper's
//! 4-cycle query this yields exactly the two decompositions of Figure 1.

// panda-lint: allow-file(P1) -- bag and node indices are produced by
// this module's own enumeration; a miss would be an enumeration bug,
// not an input condition.

use crate::cq::ConjunctiveQuery;
use crate::hypergraph::{is_acyclic, join_tree_of, Hypergraph, JoinTree};
use crate::var::{Var, VarSet};

/// Practical limit on the number of variables for exhaustive
/// elimination-order enumeration (`9! = 362 880` orders).
pub const MAX_ENUMERATION_VARS: usize = 9;

/// A tree decomposition, represented by its bags.
///
/// The tree structure itself is recoverable from the bags (they form an
/// acyclic hypergraph) via [`TreeDecomposition::join_tree`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeDecomposition {
    bags: Vec<VarSet>,
}

impl TreeDecomposition {
    /// Creates a TD from bags, removing duplicate and contained bags and
    /// sorting them into a canonical order.
    #[must_use]
    pub fn new(bags: Vec<VarSet>) -> Self {
        let mut bags = bags;
        bags.sort_unstable();
        bags.dedup();
        // Remove bags contained in other bags (they are redundant).
        let reduced: Vec<VarSet> = bags
            .iter()
            .copied()
            .filter(|b| !bags.iter().any(|other| *b != *other && b.is_subset_of(*other)))
            .collect();
        let mut bags = reduced;
        bags.sort_unstable();
        TreeDecomposition { bags }
    }

    /// The bags.
    #[must_use]
    pub fn bags(&self) -> &[VarSet] {
        &self.bags
    }

    /// Number of bags.
    #[must_use]
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// The union of all bags.
    #[must_use]
    pub fn vertices(&self) -> VarSet {
        self.bags.iter().fold(VarSet::EMPTY, |acc, b| acc.union(*b))
    }

    /// `true` iff this is a valid TD of `query`: the bags cover every atom,
    /// cover every variable, and form an acyclic hypergraph.
    #[must_use]
    pub fn is_valid_for(&self, query: &ConjunctiveQuery) -> bool {
        let covers_atoms =
            query.edges().iter().all(|e| self.bags.iter().any(|b| e.is_subset_of(*b)));
        covers_atoms && self.vertices() == query.all_vars() && is_acyclic(&self.bags)
    }

    /// `true` iff the TD is free-connex with respect to the free variables
    /// `free`: the bag hypergraph stays acyclic after adding an edge over
    /// `free` (Section 3.4).
    #[must_use]
    pub fn is_free_connex(&self, free: VarSet) -> bool {
        let mut edges = self.bags.clone();
        edges.push(free);
        is_acyclic(&edges)
    }

    /// A join tree over the bags (always succeeds for a valid TD).
    #[must_use]
    pub fn join_tree(&self) -> Option<JoinTree> {
        join_tree_of(&self.bags)
    }

    /// `true` iff every bag of `self` is contained in some bag of `other`.
    /// In that case `self` is at least as cheap as `other` for every
    /// monotone cost function, so `other` is redundant for width
    /// computations.
    #[must_use]
    pub fn dominates(&self, other: &TreeDecomposition) -> bool {
        self.bags.iter().all(|b| other.bags.iter().any(|ob| b.is_subset_of(*ob)))
    }

    /// Builds the TD induced by a variable elimination order: eliminating
    /// `v` creates the bag `{v} ∪ neighbours(v)` in the current hypergraph
    /// and merges the edges containing `v` (Section 9.3 mentions the
    /// equivalence of variable elimination and tree decompositions).
    #[must_use]
    pub fn from_elimination_order(query: &ConjunctiveQuery, order: &[Var]) -> Self {
        let mut h = Hypergraph::new(query.num_vars(), query.edges());
        let mut bags = Vec::with_capacity(order.len());
        for &v in order {
            bags.push(h.eliminate(v));
        }
        TreeDecomposition::new(bags)
    }

    /// Enumerates the non-redundant free-connex tree decompositions of a
    /// query — the paper's `TD(Q)` — by trying every elimination order,
    /// deduplicating, filtering on validity and free-connexity, and pruning
    /// decompositions dominated by another one.
    ///
    /// # Panics
    ///
    /// Panics if the query has more than [`MAX_ENUMERATION_VARS`] variables;
    /// for larger queries supply decompositions explicitly.
    #[must_use]
    pub fn enumerate(query: &ConjunctiveQuery) -> Vec<TreeDecomposition> {
        assert!(
            query.num_vars() <= MAX_ENUMERATION_VARS,
            "exhaustive TD enumeration is limited to {MAX_ENUMERATION_VARS} variables"
        );
        let vars: Vec<Var> = query.all_vars().to_vec();
        let mut candidates: Vec<TreeDecomposition> = Vec::new();
        let mut order = vars.clone();
        permute(&mut order, 0, &mut |perm| {
            let td = TreeDecomposition::from_elimination_order(query, perm);
            if !candidates.contains(&td) {
                candidates.push(td);
            }
        });
        candidates.retain(|td| td.is_valid_for(query) && td.is_free_connex(query.free_vars()));
        // Prune dominated TDs: drop T' if some other T (not equal) dominates it.
        let mut keep = vec![true; candidates.len()];
        for i in 0..candidates.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..candidates.len() {
                if i != j
                    && keep[j]
                    && candidates[i].dominates(&candidates[j])
                    && candidates[i] != candidates[j]
                {
                    keep[j] = false;
                }
            }
        }
        let mut result: Vec<TreeDecomposition> = candidates
            .into_iter()
            .zip(keep)
            .filter_map(|(td, k)| if k { Some(td) } else { None })
            .collect();
        result.sort();
        result
    }

    /// Pretty-prints the bags using the query's variable names.
    #[must_use]
    pub fn display_with(&self, query: &ConjunctiveQuery) -> String {
        let parts: Vec<String> =
            self.bags.iter().map(|b| b.display_with(query.var_names())).collect();
        format!("[{}]", parts.join(", "))
    }
}

/// Heap-style recursive permutation enumeration.
fn permute<F: FnMut(&[Var])>(items: &mut [Var], k: usize, visit: &mut F) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn four_cycle() -> ConjunctiveQuery {
        parse_query("Q(X,Y) :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap()
    }

    #[test]
    fn figure1_the_four_cycle_has_exactly_two_free_connex_tds() {
        // Reproduces Figure 1 of the paper: TD(Q□) = {T1, T2} with
        // bags(T1) = {XYZ, ZWX} and bags(T2) = {YZW, WXY}.
        let q = four_cycle();
        let tds = TreeDecomposition::enumerate(&q);
        assert_eq!(tds.len(), 2, "expected exactly the two TDs of Figure 1");
        let t1 = TreeDecomposition::new(vec![vs(&[0, 1, 2]), vs(&[2, 3, 0])]);
        let t2 = TreeDecomposition::new(vec![vs(&[1, 2, 3]), vs(&[3, 0, 1])]);
        assert!(tds.contains(&t1));
        assert!(tds.contains(&t2));
    }

    #[test]
    fn boolean_four_cycle_has_the_same_tds() {
        let q = parse_query("Q() :- R(X,Y), S(Y,Z), T(Z,W), U(W,X)").unwrap();
        let tds = TreeDecomposition::enumerate(&q);
        assert_eq!(tds.len(), 2);
    }

    #[test]
    fn construction_removes_contained_bags() {
        let td = TreeDecomposition::new(vec![vs(&[0, 1, 2]), vs(&[0, 1]), vs(&[0, 1, 2])]);
        assert_eq!(td.bags(), &[vs(&[0, 1, 2])]);
        assert_eq!(td.num_bags(), 1);
    }

    #[test]
    fn validity_checks() {
        let q = four_cycle();
        let t1 = TreeDecomposition::new(vec![vs(&[0, 1, 2]), vs(&[2, 3, 0])]);
        assert!(t1.is_valid_for(&q));
        // Missing coverage of atom U(W,X):
        let bad = TreeDecomposition::new(vec![vs(&[0, 1, 2]), vs(&[2, 3])]);
        assert!(!bad.is_valid_for(&q));
        // Cyclic bag structure is not a TD:
        let cyclic =
            TreeDecomposition::new(vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3]), vs(&[3, 0])]);
        assert!(!cyclic.is_valid_for(&q));
        // Trivial TD is always valid.
        let trivial = TreeDecomposition::new(vec![q.all_vars()]);
        assert!(trivial.is_valid_for(&q));
    }

    #[test]
    fn free_connex_checks_match_the_paper() {
        // T1 and T2 are free-connex for F = {X,Y}; the decomposition with
        // bags {XZ},{YZ} of the 2-path query is not (Section 3.4).
        let t1 = TreeDecomposition::new(vec![vs(&[0, 1, 2]), vs(&[2, 3, 0])]);
        assert!(t1.is_free_connex(vs(&[0, 1])));
        assert!(t1.is_free_connex(VarSet::EMPTY));
        assert!(t1.is_free_connex(vs(&[0, 1, 2, 3])));
        let bad = TreeDecomposition::new(vec![vs(&[0, 2]), vs(&[1, 2])]);
        assert!(!bad.is_free_connex(vs(&[0, 1])));
        assert!(bad.is_free_connex(VarSet::EMPTY));
    }

    #[test]
    fn projection_query_prunes_non_free_connex_tds() {
        // Q(X,Y) :- R(X,Z), S(Z,Y): the decomposition {XZ},{ZY} is a valid
        // TD but not free-connex; only the trivial one survives.
        let q = parse_query("Q(X,Y) :- R(X,Z), S(Z,Y)").unwrap();
        let tds = TreeDecomposition::enumerate(&q);
        assert_eq!(tds.len(), 1);
        assert_eq!(tds[0].bags(), &[q.all_vars()]);
        // The full version keeps the cheaper 2-bag TD instead.
        let q_full = parse_query("Q(X,Z,Y) :- R(X,Z), S(Z,Y)").unwrap();
        let tds_full = TreeDecomposition::enumerate(&q_full);
        assert_eq!(tds_full.len(), 1);
        assert_eq!(tds_full[0].num_bags(), 2);
    }

    #[test]
    fn triangle_query_has_only_the_trivial_td() {
        let q = parse_query("Tri(A,B,C) :- R(A,B), S(B,C), T(A,C)").unwrap();
        let tds = TreeDecomposition::enumerate(&q);
        assert_eq!(tds.len(), 1);
        assert_eq!(tds[0].bags(), &[q.all_vars()]);
    }

    #[test]
    fn acyclic_query_has_its_join_tree_as_a_td() {
        let q = parse_query("Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D)").unwrap();
        let tds = TreeDecomposition::enumerate(&q);
        // The path query's own edges form the best TD.
        assert!(tds.iter().any(|td| td.bags() == [vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3])]));
        for td in &tds {
            assert!(td.is_valid_for(&q));
            assert!(td.join_tree().is_some());
        }
    }

    #[test]
    fn domination_is_reflexive_and_detects_refinement() {
        let small = TreeDecomposition::new(vec![vs(&[0, 1]), vs(&[1, 2])]);
        let big = TreeDecomposition::new(vec![vs(&[0, 1, 2])]);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small));
    }

    #[test]
    fn elimination_order_yields_figure1_td() {
        let q = four_cycle();
        // Eliminate Y first, then Z, W, X ⇒ bags {XYZ}, {XZW}, … reduced to T1.
        let td = TreeDecomposition::from_elimination_order(&q, &[Var(1), Var(2), Var(3), Var(0)]);
        assert_eq!(td.bags(), &[vs(&[0, 1, 2]), vs(&[2, 3, 0])]);
        // Eliminate X first ⇒ T2.
        let td2 = TreeDecomposition::from_elimination_order(&q, &[Var(0), Var(1), Var(2), Var(3)]);
        assert_eq!(td2.bags(), &[vs(&[3, 0, 1]), vs(&[1, 2, 3])]);
    }

    #[test]
    fn display_uses_variable_names() {
        let q = four_cycle();
        let t1 = TreeDecomposition::new(vec![vs(&[0, 1, 2]), vs(&[2, 3, 0])]);
        assert_eq!(t1.display_with(&q), "[{X,Y,Z}, {X,Z,W}]");
    }
}
